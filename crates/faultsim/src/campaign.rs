//! Sampled and exhaustive fault-injection campaigns.
//!
//! Three executors share one sampling scheme and produce identical
//! outcome counts and records for identical seeds:
//!
//! * [`run_campaign`] — the reference serial executor;
//! * [`run_campaign_parallel`] — fans injections out over worker
//!   threads that steal faults from a shared atomic counter (no fixed
//!   chunking, so stragglers cannot idle whole threads);
//! * [`run_campaign_snapshot`] — the snapshot-accelerated engine: the
//!   fault list is pre-sampled and sorted by injection index, the
//!   golden prefix is executed once with periodic
//!   [`ferrum_cpu::snapshot::Snapshot`]s, and every faulted run starts
//!   from the nearest snapshot at-or-before its injection point
//!   instead of from instruction 0;
//! * [`run_campaign_pruned`] — the serial executor armed with a static
//!   [`CoverageMap`]: faults whose outcome the coverage analysis
//!   proved (`Masked` → benign, `Detected` → detected) are booked
//!   without executing at all.
//!
//! Every executor fills [`CampaignResult::stats`] with campaign
//! telemetry: throughput (wall time, injections/sec), snapshot
//! hit-rate and steps saved, per-worker load ([`WorkerStats`]), and the
//! detection-latency distribution ([`DetectionLatency`] — the
//! dynamic-instruction distance from each injection to the checker
//! that caught it).  `stats` is deliberately excluded from
//! `PartialEq`: two campaigns are *equal* when their sampled faults
//! and classified outcomes agree, however long they took.  When the
//! `trace` feature is on, executors additionally emit `ferrum-trace`
//! spans and counters; tracing is observational only and can never
//! change outcomes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use ferrum_rng::Rng64;

use ferrum_asm::analysis::coverage::{CoverageMap, StaticVerdict};
use ferrum_cpu::fault::FaultSpec;
use ferrum_cpu::outcome::StopReason;
use ferrum_cpu::run::{Cpu, Profile};
use ferrum_cpu::snapshot::Snapshot;

use crate::engine::{Engine, EngineKind};
use crate::flight::{self, Booking, Stage, StageClock};

/// Classified result of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Completed with wrong output: silent data corruption.
    Sdc,
    /// A checker fired.
    Detected,
    /// Hardware-style exception.
    Crash,
    /// Step budget exhausted.
    Timeout,
    /// Completed with the correct output.
    Benign,
}

impl Outcome {
    /// All outcome classes.
    pub const ALL: [Outcome; 5] = [
        Outcome::Sdc,
        Outcome::Detected,
        Outcome::Crash,
        Outcome::Timeout,
        Outcome::Benign,
    ];

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Sdc => "SDC",
            Outcome::Detected => "detected",
            Outcome::Crash => "crash",
            Outcome::Timeout => "timeout",
            Outcome::Benign => "benign",
        }
    }

    /// The variant name used by the JSON schemas
    /// (docs/campaign-schema.md records, docs/events-schema.md).
    pub fn variant(self) -> &'static str {
        match self {
            Outcome::Sdc => "Sdc",
            Outcome::Detected => "Detected",
            Outcome::Crash => "Crash",
            Outcome::Timeout => "Timeout",
            Outcome::Benign => "Benign",
        }
    }

    /// Parses a [`Outcome::variant`] name back; `None` otherwise.
    pub fn parse(s: &str) -> Option<Outcome> {
        Outcome::ALL.into_iter().find(|o| o.variant() == s)
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Number of sampled faults (the paper uses 1000 per benchmark).
    pub samples: usize,
    /// RNG seed (campaigns are fully reproducible).
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            samples: 1000,
            seed: 0xFE44_0001,
        }
    }
}

/// Per-worker telemetry for one campaign executor.
///
/// Entry `i` describes worker thread `i`; the serial executors report a
/// single entry.  Work stealing makes the split vary run to run, which
/// is one reason `stats` is excluded from result equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Faulted runs this worker executed.
    pub injections: usize,
    /// Dynamic instructions this worker executed.
    pub steps_executed: u64,
}

/// Detection-latency distribution: for every [`Outcome::Detected`]
/// record, the dynamic-instruction distance from the faulted
/// instruction to the checker that fired.
///
/// Samples are stored sorted, so the distribution compares equal
/// across executors regardless of worker scheduling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectionLatency {
    samples: Vec<u64>,
}

impl DetectionLatency {
    /// Builds the distribution from raw samples (any order).
    pub fn from_samples(mut samples: Vec<u64>) -> DetectionLatency {
        samples.sort_unstable();
        DetectionLatency { samples }
    }

    /// Number of detections observed.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The samples, sorted ascending.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Nearest-rank percentile for `p` in `0.0..=100.0`; `None` when no
    /// detections were observed.  Delegates to the shared
    /// [`crate::stats::percentile_nearest_rank`] definition so latency
    /// reporting, forensic summaries, and flight-recorder snapshots
    /// agree on what a percentile is.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        crate::stats::percentile_nearest_rank(&self.samples, p)
    }

    /// Median detection latency.
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// 95th-percentile detection latency.
    pub fn p95(&self) -> Option<u64> {
        self.percentile(95.0)
    }

    /// Worst observed detection latency.
    pub fn max(&self) -> Option<u64> {
        self.samples.last().copied()
    }

    /// Log2-bucketed histogram as `(lo, hi, count)` rows covering
    /// `lo..=hi`.  Bucket 0 is the exact-zero bucket `[0, 0]` (the
    /// checker immediately following the fault); bucket `k > 0` covers
    /// `[2^(k-1), 2^k - 1]`.  Empty buckets up to the maximum sample
    /// are included so renderers get a contiguous axis.
    pub fn histogram_log2(&self) -> Vec<(u64, u64, u64)> {
        let Some(&max) = self.samples.last() else {
            return Vec::new();
        };
        let bucket = |s: u64| (64 - s.leading_zeros()) as usize;
        let mut counts = vec![0u64; bucket(max) + 1];
        for &s in &self.samples {
            counts[bucket(s)] += 1;
        }
        counts
            .iter()
            .enumerate()
            .map(|(k, &c)| {
                let lo = if k == 0 { 0 } else { 1u64 << (k - 1) };
                let hi = if k == 0 { 0 } else { (1u64 << k) - 1 };
                (lo, hi, c)
            })
            .collect()
    }
}

/// Campaign telemetry: throughput, snapshot efficiency, per-worker
/// load, and detection-latency distribution.
///
/// Purely observational: excluded from [`CampaignResult`] equality so
/// determinism assertions compare sampled faults and outcomes only.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignStats {
    /// Wall-clock duration of the campaign in nanoseconds.
    pub wall_nanos: u128,
    /// Total injected faults (mirrors [`CampaignResult::total`] so the
    /// stats are self-contained).
    pub injections: usize,
    /// Injected faults per wall-clock second.
    pub injections_per_sec: f64,
    /// Worker threads used (1 for the serial executor).
    pub threads: usize,
    /// Snapshots captured along the golden prefix.
    pub snapshots_taken: usize,
    /// Faulted runs that started from a snapshot past instruction 0.
    pub snapshot_hits: usize,
    /// Dynamic instructions *not* re-executed thanks to snapshots
    /// (the sum of each chosen snapshot's instruction boundary).
    pub steps_saved: u64,
    /// Dynamic instructions actually executed across all faulted runs.
    pub steps_executed: u64,
    /// Per-worker injections and steps, indexed by worker thread.
    pub per_worker: Vec<WorkerStats>,
    /// Injection→detection instruction-distance distribution.
    pub latency: DetectionLatency,
    /// Faults booked from a static [`CoverageMap`] verdict instead of
    /// being executed (see [`run_campaign_pruned`]).
    pub pruned_sites: usize,
    /// Faults replayed from an incremental-campaign cache instead of
    /// being executed (see [`crate::compose::run_campaign_incremental`]).
    pub reused_sites: usize,
    /// Execution engine the campaign ran on.  Purely informational —
    /// outcome records are engine-independent per seed; only the
    /// throughput counters above reflect the choice.
    pub engine: EngineKind,
}

impl CampaignStats {
    /// Ratio of the least- to the most-loaded worker's injections:
    /// 1.0 is perfect balance, 0.0 when no work ran.
    pub fn worker_balance(&self) -> f64 {
        let max = self.per_worker.iter().map(|w| w.injections).max().unwrap_or(0);
        let min = self.per_worker.iter().map(|w| w.injections).min().unwrap_or(0);
        if max == 0 {
            0.0
        } else {
            min as f64 / max as f64
        }
    }

    /// Fraction of faulted runs that resumed from a snapshot.
    pub fn snapshot_hit_rate(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.snapshot_hits as f64 / self.injections as f64
        }
    }

    /// Fraction of total work (executed + saved) that snapshots avoided.
    pub fn steps_saved_ratio(&self) -> f64 {
        let total = self.steps_saved + self.steps_executed;
        if total == 0 {
            0.0
        } else {
            self.steps_saved as f64 / total as f64
        }
    }

    /// Fraction of injections decided statically (skipped) by the
    /// pruned engine.
    pub fn prune_rate(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.pruned_sites as f64 / self.injections as f64
        }
    }

    /// Fraction of injections replayed from an incremental-campaign
    /// cache instead of executed.
    pub fn reuse_rate(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.reused_sites as f64 / self.injections as f64
        }
    }
}

/// Aggregated campaign outcome counts.
///
/// Equality compares the deterministic payload (counts and records)
/// and ignores [`CampaignResult::stats`].
#[derive(Debug, Clone, Default)]
pub struct CampaignResult {
    /// Silent data corruptions.
    pub sdc: usize,
    /// Detections.
    pub detected: usize,
    /// Crashes.
    pub crash: usize,
    /// Timeouts.
    pub timeout: usize,
    /// Benign completions.
    pub benign: usize,
    /// Every injected fault with its outcome (for root-cause analysis).
    pub records: Vec<(FaultSpec, Outcome)>,
    /// Throughput observability (not part of equality).
    pub stats: CampaignStats,
}

impl PartialEq for CampaignResult {
    fn eq(&self, other: &CampaignResult) -> bool {
        self.sdc == other.sdc
            && self.detected == other.detected
            && self.crash == other.crash
            && self.timeout == other.timeout
            && self.benign == other.benign
            && self.records == other.records
    }
}

impl CampaignResult {
    /// Total injections.
    pub fn total(&self) -> usize {
        self.sdc + self.detected + self.crash + self.timeout + self.benign
    }

    /// SDC probability over the campaign.
    pub fn sdc_prob(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.sdc as f64 / self.total() as f64
        }
    }

    pub(crate) fn record(&mut self, f: FaultSpec, o: Outcome) {
        match o {
            Outcome::Sdc => self.sdc += 1,
            Outcome::Detected => self.detected += 1,
            Outcome::Crash => self.crash += 1,
            Outcome::Timeout => self.timeout += 1,
            Outcome::Benign => self.benign += 1,
        }
        self.records.push((f, o));
    }
}

/// Classifies one faulted run against the golden output.
pub fn classify(stop: StopReason, output: &[i64], golden: &[i64]) -> Outcome {
    match stop {
        StopReason::Detected => Outcome::Detected,
        StopReason::Crash(_) => Outcome::Crash,
        StopReason::Timeout => Outcome::Timeout,
        StopReason::MainReturned => {
            if output == golden {
                Outcome::Benign
            } else {
                Outcome::Sdc
            }
        }
    }
}

/// Injection→detection distance in dynamic instructions.  The checker
/// that fired is the last executed instruction (dynamic index
/// `dyn_insts - 1`, zero-based); the fault fired while executing the
/// instruction at `inject`.  Saturating: a fault index at-or-past the
/// detecting instruction (possible only for faults sampled past
/// program end) reports 0 rather than wrapping.
pub(crate) fn detection_latency(dyn_insts: u64, inject: u64) -> u64 {
    dyn_insts.saturating_sub(1).saturating_sub(inject)
}

/// Pre-samples the campaign's fault list: `cfg.samples` single-bit
/// faults at sites drawn uniformly from `profile.sites`.  Every
/// executor uses this one function, so the sampled list — and therefore
/// the record stream — is identical across serial, work-stealing,
/// snapshot-accelerated, and decoded runs of the same seed.
///
/// The bit position is drawn uniformly from the site's own
/// `eligible_dest_bits` width ([`ferrum_cpu::run::SiteInfo::bits`]),
/// not from the full `u16` range: a raw bit wider than the destination
/// would be reduced modulo the width at injection time, and for
/// non-power-of-two widths (RFLAGS' 4 probability-relevant bits today;
/// any future irregular destination) `u16::MAX + 1` values folded onto
/// `width` buckets over-weight the low residues.  Drawing below the
/// width keeps every destination bit exactly equally likely
/// (`Rng64::gen_below` is Lemire-unbiased).
pub(crate) fn sample_faults(profile: &Profile, cfg: CampaignConfig) -> Vec<FaultSpec> {
    let mut rng = Rng64::seed_from_u64(cfg.seed);
    (0..cfg.samples)
        .map(|_| {
            let site = profile.sites[rng.gen_range(0..profile.sites.len())];
            FaultSpec::new(site.dyn_index, rng.gen_below(u64::from(site.bits)) as u16)
        })
        .collect()
}

pub(crate) fn finish_stats(
    result: &mut CampaignResult,
    t0: Instant,
    threads: usize,
    engine: EngineKind,
) {
    result.stats.engine = engine;
    let wall = t0.elapsed();
    result.stats.wall_nanos = wall.as_nanos();
    result.stats.injections = result.total();
    result.stats.threads = threads;
    let secs = wall.as_secs_f64();
    result.stats.injections_per_sec = if secs > 0.0 {
        result.total() as f64 / secs
    } else {
        0.0
    };
}

/// Runs a sampled campaign serially — the reference executor.
///
/// # Panics
///
/// Panics if the profile has no injectable sites (with `samples > 0`).
pub fn run_campaign(cpu: &Cpu, profile: &Profile, cfg: CampaignConfig) -> CampaignResult {
    run_campaign_on(Engine::Interpreter(cpu), profile, cfg)
}

/// As [`run_campaign`], on an explicit [`Engine`].  Outcome-identical
/// across engines per seed; only `stats` throughput differs.
///
/// # Panics
///
/// Panics if the profile has no injectable sites (with `samples > 0`).
pub fn run_campaign_on(engine: Engine<'_>, profile: &Profile, cfg: CampaignConfig) -> CampaignResult {
    let _span = ferrum_trace::span("campaign.serial");
    let t0 = Instant::now();
    let mut result = CampaignResult::default();
    flight::campaign_started("serial", engine.kind(), cfg, profile, cfg.samples);
    if cfg.samples == 0 {
        finish_stats(&mut result, t0, 1, engine.kind());
        flight::campaign_finished(&result);
        return result;
    }
    assert!(!profile.sites.is_empty(), "no injectable sites");
    let golden = &profile.result.output;
    let mut latencies = Vec::new();
    for (i, fault) in sample_faults(profile, cfg).into_iter().enumerate() {
        let clock = StageClock::start();
        let run = engine.run(Some(fault));
        clock.stop(0, Stage::Injection);
        result.stats.steps_executed += run.dyn_insts;
        let o = classify(run.stop, &run.output, golden);
        if o == Outcome::Detected {
            latencies.push(detection_latency(run.dyn_insts, fault.dyn_index));
        }
        flight::injection(0, i, fault, o, run.dyn_insts, Booking::Executed);
        result.record(fault, o);
    }
    result.stats.per_worker = vec![WorkerStats {
        injections: result.total(),
        steps_executed: result.stats.steps_executed,
    }];
    result.stats.latency = DetectionLatency::from_samples(latencies);
    finish_stats(&mut result, t0, 1, engine.kind());
    ferrum_trace::counter("campaign.injections", result.total() as u64);
    flight::campaign_finished(&result);
    result
}

/// As [`run_campaign`], but consults a static [`CoverageMap`] first:
/// a fault landing on a byte the analysis proved `Masked` or
/// `Detected` is booked with its known outcome (`Benign` /
/// `Detected`) without executing the faulted run.  Totals, outcome
/// tallies, and `sdc_prob` are identical to the serial engine for the
/// same seed — the map's sound verdicts *are* the outcomes the run
/// would have produced — while the skipped fraction is reported in
/// [`CampaignStats::pruned_sites`] / [`CampaignStats::prune_rate`].
/// Detection-latency samples are only collected for executed faults
/// (a skipped run has no dynamic trace), so `stats.latency` may hold
/// fewer samples than the serial engine's; `stats` is excluded from
/// result equality for exactly this kind of reason.
///
/// # Panics
///
/// Panics if the profile has no injectable sites (with `samples > 0`).
pub fn run_campaign_pruned(
    cpu: &Cpu,
    profile: &Profile,
    cfg: CampaignConfig,
    coverage: &CoverageMap,
) -> CampaignResult {
    run_campaign_pruned_on(Engine::Interpreter(cpu), profile, cfg, coverage)
}

/// As [`run_campaign_pruned`], on an explicit [`Engine`] — the prune
/// multiplier and the decoded engine's raw throughput stack.
///
/// # Panics
///
/// Panics if the profile has no injectable sites (with `samples > 0`).
pub fn run_campaign_pruned_on(
    engine: Engine<'_>,
    profile: &Profile,
    cfg: CampaignConfig,
    coverage: &CoverageMap,
) -> CampaignResult {
    let _span = ferrum_trace::span("campaign.pruned");
    let t0 = Instant::now();
    let mut result = CampaignResult::default();
    flight::campaign_started("pruned", engine.kind(), cfg, profile, cfg.samples);
    if cfg.samples == 0 {
        finish_stats(&mut result, t0, 1, engine.kind());
        flight::campaign_finished(&result);
        return result;
    }
    assert!(!profile.sites.is_empty(), "no injectable sites");
    let golden = &profile.result.output;
    let mut latencies = Vec::new();
    for (i, fault) in sample_faults(profile, cfg).into_iter().enumerate() {
        // Sites are recorded in dynamic order, so dyn_index is sorted.
        let verdict = profile
            .sites
            .binary_search_by_key(&fault.dyn_index, |s| s.dyn_index)
            .ok()
            .and_then(|i| coverage.verdict_at(profile.sites[i].pc, fault.raw_bit));
        match verdict {
            Some(StaticVerdict::Masked) => {
                result.stats.pruned_sites += 1;
                flight::injection(0, i, fault, Outcome::Benign, 0, Booking::Pruned);
                result.record(fault, Outcome::Benign);
            }
            Some(StaticVerdict::Detected) => {
                result.stats.pruned_sites += 1;
                flight::injection(0, i, fault, Outcome::Detected, 0, Booking::Pruned);
                result.record(fault, Outcome::Detected);
            }
            _ => {
                let clock = StageClock::start();
                let run = engine.run(Some(fault));
                clock.stop(0, Stage::Injection);
                result.stats.steps_executed += run.dyn_insts;
                let o = classify(run.stop, &run.output, golden);
                if o == Outcome::Detected {
                    latencies.push(detection_latency(run.dyn_insts, fault.dyn_index));
                }
                flight::injection(0, i, fault, o, run.dyn_insts, Booking::Executed);
                result.record(fault, o);
            }
        }
    }
    result.stats.per_worker = vec![WorkerStats {
        injections: result.total(),
        steps_executed: result.stats.steps_executed,
    }];
    result.stats.latency = DetectionLatency::from_samples(latencies);
    finish_stats(&mut result, t0, 1, engine.kind());
    ferrum_trace::counter("campaign.injections", result.total() as u64);
    ferrum_trace::counter("campaign.pruned", result.stats.pruned_sites as u64);
    flight::campaign_finished(&result);
    result
}

/// As [`run_campaign`], but fans the injections out over `threads`
/// workers that steal the next fault index from a shared atomic
/// counter.  Work stealing keeps every thread busy until the list is
/// drained — a handful of slow faults (e.g. timeout-bound runs) no
/// longer serialises the tail the way fixed chunking did.  Produces
/// byte-identical results to the serial version: the fault list is
/// pre-sampled with the seeded RNG and outcomes are stitched back in
/// sampling order.
pub fn run_campaign_parallel(
    cpu: &Cpu,
    profile: &Profile,
    cfg: CampaignConfig,
    threads: usize,
) -> CampaignResult {
    run_campaign_parallel_on(Engine::Interpreter(cpu), profile, cfg, threads)
}

/// As [`run_campaign_parallel`], on an explicit [`Engine`].
pub fn run_campaign_parallel_on(
    engine: Engine<'_>,
    profile: &Profile,
    cfg: CampaignConfig,
    threads: usize,
) -> CampaignResult {
    let _span = ferrum_trace::span("campaign.parallel");
    let t0 = Instant::now();
    let mut result = CampaignResult::default();
    flight::campaign_started("parallel", engine.kind(), cfg, profile, cfg.samples);
    if cfg.samples == 0 {
        finish_stats(&mut result, t0, threads.max(1), engine.kind());
        flight::campaign_finished(&result);
        return result;
    }
    assert!(!profile.sites.is_empty(), "no injectable sites");
    let golden = &profile.result.output;
    let faults = sample_faults(profile, cfg);
    let threads = threads.max(1).min(faults.len());
    let next = AtomicUsize::new(0);
    let worker = |t: usize| {
        let mut local: Vec<(usize, Outcome, Option<u64>)> = Vec::new();
        let mut steps = 0u64;
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(&fault) = faults.get(i) else {
                return (local, steps);
            };
            let clock = StageClock::start();
            let run = engine.run(Some(fault));
            clock.stop(t, Stage::Injection);
            steps += run.dyn_insts;
            let o = classify(run.stop, &run.output, golden);
            let lat = (o == Outcome::Detected)
                .then(|| detection_latency(run.dyn_insts, fault.dyn_index));
            flight::injection(t, i, fault, o, run.dyn_insts, Booking::Executed);
            local.push((i, o, lat));
        }
    };
    let mut outcomes: Vec<Option<(Outcome, Option<u64>)>> = vec![None; faults.len()];
    let mut per_worker = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|t| scope.spawn(move || worker(t))).collect();
        for h in handles {
            let (local, steps) = h.join().expect("campaign worker panicked");
            per_worker.push(WorkerStats {
                injections: local.len(),
                steps_executed: steps,
            });
            for (i, o, lat) in local {
                outcomes[i] = Some((o, lat));
            }
        }
    });
    let mut latencies = Vec::new();
    for (fault, slot) in faults.into_iter().zip(outcomes) {
        let (outcome, lat) = slot.expect("every fault processed");
        latencies.extend(lat);
        result.record(fault, outcome);
    }
    result.stats.steps_executed = per_worker.iter().map(|w| w.steps_executed).sum();
    result.stats.per_worker = per_worker;
    result.stats.latency = DetectionLatency::from_samples(latencies);
    finish_stats(&mut result, t0, threads, engine.kind());
    ferrum_trace::counter("campaign.injections", result.total() as u64);
    flight::campaign_finished(&result);
    result
}

/// Snapshot-placement policy for [`run_campaign_snapshot`].
#[derive(Debug, Clone, Copy)]
pub struct SnapshotPolicy {
    /// Upper bound on captured snapshots (each clones the full
    /// architectural state, memory included, so this bounds memory).
    pub max_snapshots: usize,
    /// Snapshots are at least this many dynamic instructions apart.
    pub min_interval: u64,
}

impl Default for SnapshotPolicy {
    fn default() -> SnapshotPolicy {
        SnapshotPolicy {
            max_snapshots: 64,
            min_interval: 64,
        }
    }
}

/// The snapshot-accelerated campaign engine.
///
/// Executes the golden prefix **once**, capturing periodic snapshots up
/// to the last injection index, then replays each pre-sampled fault
/// from the nearest snapshot at-or-before its injection point.  Faults
/// are processed in injection-index order by work-stealing workers.
/// Outcome counts and records are byte-identical to [`run_campaign`]
/// with the same seed; only [`CampaignResult::stats`] differs.
///
/// # Panics
///
/// Panics if the profile has no injectable sites (with `samples > 0`).
pub fn run_campaign_snapshot(
    cpu: &Cpu,
    profile: &Profile,
    cfg: CampaignConfig,
    threads: usize,
    policy: SnapshotPolicy,
) -> CampaignResult {
    run_campaign_snapshot_on(Engine::Interpreter(cpu), profile, cfg, threads, policy)
}

/// As [`run_campaign_snapshot`], on an explicit [`Engine`] — snapshots
/// taken by either engine's machine resume on the other, so the
/// prefix-sharing and decoded speedups compose.
///
/// # Panics
///
/// Panics if the profile has no injectable sites (with `samples > 0`).
pub fn run_campaign_snapshot_on(
    engine: Engine<'_>,
    profile: &Profile,
    cfg: CampaignConfig,
    threads: usize,
    policy: SnapshotPolicy,
) -> CampaignResult {
    let _span = ferrum_trace::span("campaign.snapshot");
    let t0 = Instant::now();
    let mut result = CampaignResult::default();
    flight::campaign_started("snapshot", engine.kind(), cfg, profile, cfg.samples);
    if cfg.samples == 0 {
        finish_stats(&mut result, t0, threads.max(1), engine.kind());
        flight::campaign_finished(&result);
        return result;
    }
    assert!(!profile.sites.is_empty(), "no injectable sites");
    let golden = &profile.result.output;
    let faults = sample_faults(profile, cfg);

    // Sort fault indices by injection point: consecutive work items
    // then share snapshots (and the prefix walk below only runs once,
    // up to the last injection).
    let mut order: Vec<usize> = (0..faults.len()).collect();
    order.sort_by_key(|&i| faults[i].dyn_index);
    let last_injection = faults[*order.last().expect("samples > 0")].dyn_index;

    // Golden-prefix pass: walk fault-free, snapshotting at the
    // policy's cadence.  The machine state at boundary k is usable by
    // any fault with dyn_index >= k.  The interpreter walks only to
    // the last injection point (snapshots are pure prefix-skips); the
    // decoded engine walks the whole golden run, because its snapshots
    // double as the convergence checkpoints `resume_converging`
    // compares against — a checkpoint after a fault is what lets the
    // post-fault suffix be stitched instead of re-executed.
    let horizon = match engine.kind() {
        EngineKind::Interpreter => last_injection,
        EngineKind::Decoded => profile.result.dyn_insts,
    };
    let interval = policy
        .min_interval
        .max(horizon / policy.max_snapshots.max(1) as u64)
        .max(1);
    let mut snapshots: Vec<Snapshot> = Vec::new();
    let mut m = engine.machine();
    loop {
        if m.dyn_insts() >= horizon {
            break;
        }
        if m.dyn_insts() > 0
            && m.dyn_insts().is_multiple_of(interval)
            && snapshots.len() < policy.max_snapshots
        {
            let clock = StageClock::start();
            snapshots.push(m.snapshot());
            clock.stop(0, Stage::SnapshotCapture);
        }
        // Advance to the next snapshot boundary (or the horizon) in
        // one call — the decoded engine covers the span in its tight
        // dispatch loop instead of per-step calls.
        let next = if snapshots.len() < policy.max_snapshots {
            (m.dyn_insts() / interval + 1) * interval
        } else {
            horizon
        };
        let clock = StageClock::start();
        let stopped = m.advance_to(next.min(horizon)).is_some();
        clock.stop(0, Stage::GoldenRun);
        if stopped {
            // Golden run ended before the last injection index — the
            // remaining faults land past program end and classify as
            // whatever the resumed (fault-free) tail produces.
            break;
        }
    }

    let next = AtomicUsize::new(0);
    let stats_hits = AtomicUsize::new(0);
    let snapshots = &snapshots;
    let order = &order;
    let faults = &faults;
    let worker = |t: usize| {
        let mut local: Vec<(usize, Outcome, Option<u64>)> = Vec::new();
        let (mut steps, mut saved) = (0u64, 0u64);
        let mut hits = 0usize;
        // One machine per worker, restored in place per fault — the
        // decoded engine's restore is bounded by the stack low-water
        // mark, so reuse turns per-injection state setup from a
        // 512 KiB clone into a few touched kilobytes.  `entry` is the
        // program start, for faults before the first snapshot.
        let mut machine = engine.machine();
        let entry = machine.snapshot();
        loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            let Some(&orig) = order.get(k) else {
                stats_hits.fetch_add(hits, Ordering::Relaxed);
                return (local, steps, saved);
            };
            let fault = faults[orig];
            // Nearest snapshot at-or-before the injection index:
            // the last one with dyn_insts <= fault.dyn_index.
            let pos = match snapshots
                .binary_search_by_key(&(fault.dyn_index + 1), |s| s.dyn_insts())
            {
                Ok(i) | Err(i) => i,
            };
            let start = match pos.checked_sub(1).map(|j| &snapshots[j]) {
                Some(s) => {
                    hits += 1;
                    saved += s.dyn_insts();
                    s
                }
                None => &entry,
            };
            let clock = StageClock::start();
            machine.restore(start);
            clock.stop(t, Stage::SnapshotRestore);
            let clock = StageClock::start();
            let run = machine.run_converging(&[fault], snapshots, &profile.result);
            clock.stop(t, Stage::Replay);
            steps += run.dyn_insts - start.dyn_insts();
            let o = classify(run.stop, &run.output, golden);
            // `Machine::restore` preserves the golden-prefix dynamic
            // instruction count, so `run.dyn_insts` is the same
            // whole-run total the serial executor sees and the latency
            // distribution is engine-independent.
            let lat = (o == Outcome::Detected)
                .then(|| detection_latency(run.dyn_insts, fault.dyn_index));
            flight::injection(t, orig, fault, o, run.dyn_insts, Booking::Executed);
            local.push((orig, o, lat));
        }
    };

    let threads = threads.max(1).min(faults.len());
    let mut outcomes: Vec<Option<(Outcome, Option<u64>)>> = vec![None; faults.len()];
    let mut per_worker = Vec::with_capacity(threads);
    let mut steps_saved = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|t| scope.spawn(move || worker(t))).collect();
        for h in handles {
            let (local, steps, saved) = h.join().expect("campaign worker panicked");
            steps_saved += saved;
            per_worker.push(WorkerStats {
                injections: local.len(),
                steps_executed: steps,
            });
            for (i, o, lat) in local {
                outcomes[i] = Some((o, lat));
            }
        }
    });
    let mut latencies = Vec::new();
    for (fault, slot) in faults.iter().zip(outcomes) {
        let (outcome, lat) = slot.expect("every fault processed");
        latencies.extend(lat);
        result.record(*fault, outcome);
    }
    result.stats.snapshots_taken = snapshots.len();
    result.stats.snapshot_hits = stats_hits.load(Ordering::Relaxed);
    result.stats.steps_executed = per_worker.iter().map(|w| w.steps_executed).sum();
    result.stats.steps_saved = steps_saved;
    result.stats.per_worker = per_worker;
    result.stats.latency = DetectionLatency::from_samples(latencies);
    finish_stats(&mut result, t0, threads, engine.kind());
    ferrum_trace::counter("campaign.injections", result.total() as u64);
    ferrum_trace::counter(
        "campaign.snapshot.hits",
        result.stats.snapshot_hits as u64,
    );
    ferrum_trace::counter("campaign.snapshot.steps_saved", result.stats.steps_saved);
    flight::campaign_finished(&result);
    result
}

/// Runs a **double-fault** campaign: two independent single-bit faults
/// per execution, at two distinct sampled sites.  Single-fault coverage
/// guarantees do not carry over — duplication-based detection can in
/// principle be defeated when both a value and its shadow are corrupted
/// consistently — which is exactly why the paper defers multi-bit
/// faults to future work (§II-A).  `records` stores the first fault of
/// each pair.
pub fn run_double_campaign(cpu: &Cpu, profile: &Profile, cfg: CampaignConfig) -> CampaignResult {
    run_double_campaign_on(Engine::Interpreter(cpu), profile, cfg)
}

/// As [`run_double_campaign`], on an explicit [`Engine`].
pub fn run_double_campaign_on(
    engine: Engine<'_>,
    profile: &Profile,
    cfg: CampaignConfig,
) -> CampaignResult {
    let _span = ferrum_trace::span("campaign.double");
    let t0 = Instant::now();
    let mut result = CampaignResult::default();
    flight::campaign_started("double", engine.kind(), cfg, profile, cfg.samples);
    if cfg.samples == 0 {
        finish_stats(&mut result, t0, 1, engine.kind());
        flight::campaign_finished(&result);
        return result;
    }
    assert!(!profile.sites.is_empty(), "no injectable sites");
    let golden = &profile.result.output;
    let mut rng = Rng64::seed_from_u64(cfg.seed);
    let mut latencies = Vec::new();
    for i in 0..cfg.samples {
        let a = profile.sites[rng.gen_range(0..profile.sites.len())];
        let b = profile.sites[rng.gen_range(0..profile.sites.len())];
        let fa = FaultSpec::new(a.dyn_index, rng.gen_below(u64::from(a.bits)) as u16);
        let fb = FaultSpec::new(b.dyn_index, rng.gen_below(u64::from(b.bits)) as u16);
        let clock = StageClock::start();
        let run = engine.run_multi(&[fa, fb]);
        clock.stop(0, Stage::Injection);
        result.stats.steps_executed += run.dyn_insts;
        let o = classify(run.stop, &run.output, golden);
        if o == Outcome::Detected {
            // Latency is measured from the *earlier* of the two faults.
            latencies.push(detection_latency(
                run.dyn_insts,
                fa.dyn_index.min(fb.dyn_index),
            ));
        }
        flight::injection(0, i, fa, o, run.dyn_insts, Booking::Executed);
        result.record(fa, o);
    }
    result.stats.per_worker = vec![WorkerStats {
        injections: result.total(),
        steps_executed: result.stats.steps_executed,
    }];
    result.stats.latency = DetectionLatency::from_samples(latencies);
    finish_stats(&mut result, t0, 1, engine.kind());
    ferrum_trace::counter("campaign.injections", result.total() as u64);
    flight::campaign_finished(&result);
    result
}

/// Multiplier for the exhaustive sweep's bit stride.  Odd, hence
/// coprime with 256: `k ↦ k·97 mod 256` is a permutation of `0..256`,
/// and consecutive `k` land ~97 bit positions apart, spreading a small
/// `bits_per_site` across the whole 256-bit range.  (The previous
/// multiplier, 257, is ≡ 1 mod 256 — the identity permutation — so
/// "evenly spread" silently degraded to "the lowest k bits".)
const BIT_STRIDE: u32 = 97;

/// Injects into *every* site with `bits_per_site` evenly spread bit
/// positions — the exhaustive sweep used to prove coverage claims on
/// small kernels.
pub fn exhaustive_campaign(cpu: &Cpu, profile: &Profile, bits_per_site: u16) -> CampaignResult {
    exhaustive_campaign_on(Engine::Interpreter(cpu), profile, bits_per_site)
}

/// As [`exhaustive_campaign`], on an explicit [`Engine`].
pub fn exhaustive_campaign_on(
    engine: Engine<'_>,
    profile: &Profile,
    bits_per_site: u16,
) -> CampaignResult {
    let _span = ferrum_trace::span("campaign.exhaustive");
    let t0 = Instant::now();
    let golden = &profile.result.output;
    let mut result = CampaignResult::default();
    let total = profile.sites.len() * usize::from(bits_per_site);
    flight::campaign_started(
        "exhaustive",
        engine.kind(),
        CampaignConfig {
            samples: total,
            seed: 0,
        },
        profile,
        total,
    );
    let mut latencies = Vec::new();
    let mut index = 0usize;
    for site in &profile.sites {
        for k in 0..bits_per_site {
            // Spread raw bits across this site's own destination width.
            // (Spreading over a fixed 256 and reducing modulo the width
            // at injection time collapses the stride for narrow
            // destinations: e.g. `k·97 mod 256` reduced mod 4 for an
            // RFLAGS site walks residues unevenly.  Every eligible
            // width is a power of two and 97 is odd, so `k·97 mod w`
            // still permutes `0..w` per site.)
            let raw = (u32::from(k) * BIT_STRIDE % site.bits.max(1)) as u16;
            let fault = FaultSpec::new(site.dyn_index, raw);
            let clock = StageClock::start();
            let run = engine.run(Some(fault));
            clock.stop(0, Stage::Injection);
            result.stats.steps_executed += run.dyn_insts;
            let o = classify(run.stop, &run.output, golden);
            if o == Outcome::Detected {
                latencies.push(detection_latency(run.dyn_insts, fault.dyn_index));
            }
            flight::injection(0, index, fault, o, run.dyn_insts, Booking::Executed);
            index += 1;
            result.record(fault, o);
        }
    }
    result.stats.per_worker = vec![WorkerStats {
        injections: result.total(),
        steps_executed: result.stats.steps_executed,
    }];
    result.stats.latency = DetectionLatency::from_samples(latencies);
    finish_stats(&mut result, t0, 1, engine.kind());
    ferrum_trace::counter("campaign.injections", result.total() as u64);
    flight::campaign_finished(&result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::module::{Global, Module};
    use ferrum_mir::types::Ty;

    fn sum_module() -> Module {
        let mut module = Module::new();
        let g = module.add_global(Global::new("tab", vec![1, 2, 3, 4]));
        let mut b = FunctionBuilder::new("main", &[], None);
        let base = b.global(g);
        let mut acc = b.iconst(Ty::I64, 0);
        for i in 0..4 {
            let idx = b.iconst(Ty::I64, i);
            let p = b.gep(base, idx);
            let v = b.load(Ty::I64, p);
            acc = b.add(Ty::I64, acc, v);
        }
        b.print(acc);
        b.ret(None);
        module.functions.push(b.finish());
        module
    }

    fn sum_cpu() -> Cpu {
        let asm = ferrum_backend::compile(&sum_module()).unwrap();
        Cpu::load(&asm).unwrap()
    }

    fn protected_sum_cpu() -> Cpu {
        let asm = ferrum_eddi::ferrum::Ferrum::new()
            .protect_module(&sum_module())
            .unwrap();
        Cpu::load(&asm).unwrap()
    }

    #[test]
    fn classification_rules() {
        use ferrum_cpu::outcome::CrashKind;
        assert_eq!(classify(StopReason::Detected, &[], &[]), Outcome::Detected);
        assert_eq!(
            classify(StopReason::Crash(CrashKind::DivideError), &[], &[]),
            Outcome::Crash
        );
        assert_eq!(classify(StopReason::Timeout, &[], &[]), Outcome::Timeout);
        assert_eq!(
            classify(StopReason::MainReturned, &[1], &[1]),
            Outcome::Benign
        );
        assert_eq!(classify(StopReason::MainReturned, &[2], &[1]), Outcome::Sdc);
        assert_eq!(classify(StopReason::MainReturned, &[], &[1]), Outcome::Sdc);
    }

    #[test]
    fn unprotected_program_shows_sdcs() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let res = run_campaign(
            &cpu,
            &profile,
            CampaignConfig {
                samples: 300,
                seed: 7,
            },
        );
        assert_eq!(res.total(), 300);
        assert!(
            res.sdc > 0,
            "unprotected program must exhibit SDCs: {res:?}"
        );
        assert_eq!(
            res.detected, 0,
            "nothing can detect in an unprotected program"
        );
    }

    #[test]
    fn campaigns_are_reproducible() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 100,
            seed: 42,
        };
        let a = run_campaign(&cpu, &profile, cfg);
        let b = run_campaign(&cpu, &profile, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let a = run_campaign(
            &cpu,
            &profile,
            CampaignConfig {
                samples: 100,
                seed: 1,
            },
        );
        let b = run_campaign(
            &cpu,
            &profile,
            CampaignConfig {
                samples: 100,
                seed: 2,
            },
        );
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn pruned_campaign_is_outcome_identical_and_prunes() {
        let asm = ferrum_eddi::ferrum::Ferrum::new()
            .protect_module(&sum_module())
            .unwrap();
        let coverage = CoverageMap::analyze(&asm);
        let cpu = Cpu::load(&asm).unwrap();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 300,
            seed: 11,
        };
        let serial = run_campaign(&cpu, &profile, cfg);
        let pruned = run_campaign_pruned(&cpu, &profile, cfg, &coverage);
        assert_eq!(serial, pruned, "pruned engine must be outcome-identical");
        assert!(
            pruned.stats.pruned_sites > 0,
            "a FERRUM-protected program must have statically-decided sites"
        );
        assert!(
            (pruned.stats.prune_rate() - pruned.stats.pruned_sites as f64 / 300.0).abs() < 1e-12
        );
        assert!(
            pruned.stats.steps_executed < serial.stats.steps_executed,
            "skipped faults must not execute"
        );
    }

    #[test]
    fn pruned_campaign_with_empty_map_matches_serial() {
        // An empty coverage map decides nothing: the pruned engine
        // degenerates to the serial one, including its step counts.
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 120,
            seed: 5,
        };
        let serial = run_campaign(&cpu, &profile, cfg);
        let pruned = run_campaign_pruned(&cpu, &profile, cfg, &CoverageMap::default());
        assert_eq!(serial, pruned);
        assert_eq!(pruned.stats.pruned_sites, 0);
        assert_eq!(pruned.stats.prune_rate(), 0.0);
        assert_eq!(pruned.stats.steps_executed, serial.stats.steps_executed);
        assert_eq!(pruned.stats.latency, serial.stats.latency);
    }

    #[test]
    fn exhaustive_covers_every_site() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let res = exhaustive_campaign(&cpu, &profile, 3);
        assert_eq!(res.total(), profile.sites.len() * 3);
    }

    #[test]
    fn exhaustive_bit_stride_spreads_positions() {
        // The first n raw values must be distinct and genuinely spread
        // over 0..256, not the lowest n bit positions.
        let raws: Vec<u16> = (0..8u16).map(|k| (u32::from(k) * BIT_STRIDE % 256) as u16).collect();
        let mut sorted = raws.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "positions must be distinct: {raws:?}");
        // Even spread: consecutive sorted positions (cyclically) are at
        // least 16 apart for n = 8 over a 256-bit range.
        for w in sorted.windows(2) {
            assert!(w[1] - w[0] >= 16, "clustered positions: {sorted:?}");
        }
        assert!(256 - sorted.last().unwrap() + sorted.first().unwrap() >= 16);
        // And the full 256-value cycle is a permutation of 0..256.
        let mut all: Vec<u16> = (0..256u16)
            .map(|k| (u32::from(k) * BIT_STRIDE % 256) as u16)
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 256);
    }

    #[test]
    fn parallel_campaign_matches_serial_exactly() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 240,
            seed: 77,
        };
        let serial = run_campaign(&cpu, &profile, cfg);
        for threads in [1, 3, 8] {
            let par = run_campaign_parallel(&cpu, &profile, cfg, threads);
            assert_eq!(par, serial, "{threads} threads");
        }
    }

    #[test]
    fn snapshot_campaign_matches_serial_exactly() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 240,
            seed: 77,
        };
        let serial = run_campaign(&cpu, &profile, cfg);
        for threads in [1, 4] {
            for policy in [
                SnapshotPolicy::default(),
                SnapshotPolicy {
                    max_snapshots: 200,
                    min_interval: 1,
                },
                SnapshotPolicy {
                    max_snapshots: 0,
                    min_interval: 1,
                },
            ] {
                let snap = run_campaign_snapshot(&cpu, &profile, cfg, threads, policy);
                assert_eq!(snap, serial, "{threads} threads, {policy:?}");
            }
        }
    }

    #[test]
    fn snapshot_campaign_reports_savings() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 200,
            seed: 9,
        };
        let policy = SnapshotPolicy {
            max_snapshots: 1000,
            min_interval: 1,
        };
        let res = run_campaign_snapshot(&cpu, &profile, cfg, 2, policy);
        assert!(res.stats.snapshots_taken > 0);
        assert!(res.stats.snapshot_hits > 0);
        assert!(res.stats.steps_saved > 0, "{:?}", res.stats);
        assert!(res.stats.steps_saved_ratio() > 0.0);
        // The reference executor re-executes everything.
        let serial = run_campaign(&cpu, &profile, cfg);
        assert!(serial.stats.steps_executed > res.stats.steps_executed);
    }

    #[test]
    fn zero_sample_campaigns_are_empty_not_panicking() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 0,
            seed: 1,
        };
        for res in [
            run_campaign(&cpu, &profile, cfg),
            run_campaign_parallel(&cpu, &profile, cfg, 8),
            run_campaign_snapshot(&cpu, &profile, cfg, 8, SnapshotPolicy::default()),
            run_double_campaign(&cpu, &profile, cfg),
        ] {
            assert_eq!(res.total(), 0);
            assert!(res.records.is_empty());
            assert_eq!(res.sdc_prob(), 0.0);
        }
    }

    #[test]
    fn double_fault_campaign_runs_and_counts() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 150,
            seed: 21,
        };
        let res = run_double_campaign(&cpu, &profile, cfg);
        assert_eq!(res.total(), 150);
        assert!(res.sdc > 0, "two faults in an unprotected program: {res:?}");
        let res2 = run_double_campaign(&cpu, &profile, cfg);
        assert_eq!(res, res2, "reproducible");
    }

    #[test]
    fn outcome_counts_sum_to_total() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let res = run_campaign(
            &cpu,
            &profile,
            CampaignConfig {
                samples: 250,
                seed: 3,
            },
        );
        assert_eq!(
            res.sdc + res.detected + res.crash + res.timeout + res.benign,
            res.records.len()
        );
        assert!((res.sdc_prob() - res.sdc as f64 / 250.0).abs() < 1e-12);
    }

    #[test]
    fn latency_percentiles_are_nearest_rank() {
        let lat = DetectionLatency::from_samples(vec![5, 1, 3, 2, 4]);
        assert_eq!(lat.count(), 5);
        assert_eq!(lat.samples(), &[1, 2, 3, 4, 5]);
        assert_eq!(lat.p50(), Some(3));
        assert_eq!(lat.p95(), Some(5));
        assert_eq!(lat.max(), Some(5));
        assert_eq!(lat.percentile(0.0), Some(1));
        assert_eq!(lat.percentile(100.0), Some(5));
        let empty = DetectionLatency::default();
        assert_eq!(empty.p50(), None);
        assert_eq!(empty.max(), None);
        assert!(empty.histogram_log2().is_empty());
    }

    #[test]
    fn latency_percentile_edge_cases() {
        // Nearest-rank on degenerate distributions: empty (no
        // detections), a single sample, and all-equal samples.
        let empty = DetectionLatency::from_samples(vec![]);
        assert_eq!(empty.count(), 0);
        for p in [0.0, 50.0, 95.0, 100.0] {
            assert_eq!(empty.percentile(p), None);
        }
        assert_eq!(empty.p50(), None);
        assert_eq!(empty.p95(), None);
        assert_eq!(empty.max(), None);

        let single = DetectionLatency::from_samples(vec![42]);
        assert_eq!(single.count(), 1);
        for p in [0.0, 1.0, 50.0, 95.0, 100.0] {
            assert_eq!(single.percentile(p), Some(42), "p={p}");
        }
        assert_eq!((single.p50(), single.p95(), single.max()), (Some(42), Some(42), Some(42)));
        assert_eq!(single.histogram_log2().iter().map(|&(_, _, c)| c).sum::<u64>(), 1);

        let equal = DetectionLatency::from_samples(vec![7; 9]);
        assert_eq!(equal.count(), 9);
        for p in [0.0, 50.0, 95.0, 100.0] {
            assert_eq!(equal.percentile(p), Some(7), "p={p}");
        }
        assert_eq!(equal.max(), Some(7));
        // All nine samples land in the [4,7] bucket.
        assert_eq!(equal.histogram_log2().last(), Some(&(4, 7, 9)));
    }

    #[test]
    fn latency_histogram_buckets_are_log2() {
        let lat = DetectionLatency::from_samples(vec![0, 1, 2, 3, 4, 9]);
        let h = lat.histogram_log2();
        // [0,0]=1, [1,1]=1, [2,3]=2, [4,7]=1, [8,15]=1
        assert_eq!(
            h,
            vec![(0, 0, 1), (1, 1, 1), (2, 3, 2), (4, 7, 1), (8, 15, 1)]
        );
        // Contiguous axis even with an empty bucket.
        let sparse = DetectionLatency::from_samples(vec![1, 8]);
        assert_eq!(
            sparse.histogram_log2(),
            vec![(0, 0, 0), (1, 1, 1), (2, 3, 0), (4, 7, 0), (8, 15, 1)]
        );
    }

    #[test]
    fn detection_latency_distance_is_saturating() {
        assert_eq!(detection_latency(10, 4), 5);
        assert_eq!(detection_latency(10, 9), 0);
        assert_eq!(detection_latency(10, 20), 0);
        assert_eq!(detection_latency(0, 0), 0);
    }

    #[test]
    fn detection_latencies_match_across_engines() {
        let cpu = protected_sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 240,
            seed: 77,
        };
        let serial = run_campaign(&cpu, &profile, cfg);
        assert!(
            serial.detected > 0,
            "protected program must detect: {serial:?}"
        );
        assert_eq!(serial.stats.latency.count(), serial.detected);
        let (p50, p95, max) = (
            serial.stats.latency.p50().unwrap(),
            serial.stats.latency.p95().unwrap(),
            serial.stats.latency.max().unwrap(),
        );
        assert!(p50 <= p95 && p95 <= max, "p50={p50} p95={p95} max={max}");
        let total: u64 = serial
            .stats
            .latency
            .histogram_log2()
            .iter()
            .map(|&(_, _, c)| c)
            .sum();
        assert_eq!(total as usize, serial.detected);

        let par = run_campaign_parallel(&cpu, &profile, cfg, 4);
        assert_eq!(par.stats.latency, serial.stats.latency);
        let snap = run_campaign_snapshot(
            &cpu,
            &profile,
            cfg,
            4,
            SnapshotPolicy {
                max_snapshots: 200,
                min_interval: 1,
            },
        );
        assert_eq!(snap.stats.latency, serial.stats.latency);
    }

    #[test]
    fn per_worker_stats_cover_all_work() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 120,
            seed: 5,
        };
        let serial = run_campaign(&cpu, &profile, cfg);
        assert_eq!(serial.stats.per_worker.len(), 1);
        assert!((serial.stats.worker_balance() - 1.0).abs() < 1e-12);
        for res in [
            run_campaign_parallel(&cpu, &profile, cfg, 4),
            run_campaign_snapshot(&cpu, &profile, cfg, 4, SnapshotPolicy::default()),
        ] {
            assert!(!res.stats.per_worker.is_empty());
            assert!(res.stats.per_worker.len() <= 4);
            let inj: usize = res.stats.per_worker.iter().map(|w| w.injections).sum();
            assert_eq!(inj, res.total());
            let steps: u64 = res.stats.per_worker.iter().map(|w| w.steps_executed).sum();
            assert_eq!(steps, res.stats.steps_executed);
            let bal = res.stats.worker_balance();
            assert!((0.0..=1.0).contains(&bal), "balance {bal}");
        }
        assert_eq!(CampaignStats::default().worker_balance(), 0.0);
    }

    #[test]
    fn sampled_raw_bits_stay_within_site_width() {
        // Regression (fault-bit uniformity fix): the sampler must draw
        // the bit position from the site's own eligible width, never
        // from the full u16 range.  Pre-fix code used `gen_u16()`, so
        // with hundreds of samples some raw_bit always landed >= bits.
        let cpu = protected_sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 500,
            seed: 31,
        };
        for fault in sample_faults(&profile, cfg) {
            let i = profile
                .sites
                .binary_search_by_key(&fault.dyn_index, |s| s.dyn_index)
                .expect("sampled faults land on profiled sites");
            let bits = profile.sites[i].bits;
            assert!(
                u32::from(fault.raw_bit) < bits,
                "raw_bit {} out of range for a {bits}-bit destination",
                fault.raw_bit
            );
        }
    }

    #[test]
    fn sampled_bits_are_uniform_within_width() {
        // Chi-square uniformity over the 64-bit GPR sites: bucket the
        // sampled bit positions into 8 byte-lanes and require the
        // statistic to stay below the p=0.001 critical value for 7
        // degrees of freedom (24.32).  The pre-fix sampler fails the
        // companion range test above; this one pins that the *new*
        // draw is genuinely uniform, not merely in range.
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 4000,
            seed: 1234,
        };
        let mut buckets = [0u64; 8];
        let mut n = 0u64;
        for fault in sample_faults(&profile, cfg) {
            let i = profile
                .sites
                .binary_search_by_key(&fault.dyn_index, |s| s.dyn_index)
                .unwrap();
            if profile.sites[i].bits == 64 {
                buckets[usize::from(fault.raw_bit) / 8] += 1;
                n += 1;
            }
        }
        assert!(n > 1000, "not enough 64-bit samples: {n}");
        let expected = n as f64 / 8.0;
        let chi2: f64 = buckets
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 24.32, "non-uniform bit sampling: chi2={chi2} {buckets:?}");
    }

    #[test]
    fn timeout_budget_is_engine_independent() {
        // Step-budget audit (resume accounting): a snapshot carries its
        // dyn_insts, so a resumed faulted run gets only the *remaining*
        // budget — the snapshot and decoded engines must classify
        // exactly the same faults as Timeout as the serial engine,
        // which never resumes.  A tight limit makes any double-counting
        // of the prefix allowance visible immediately.
        let cpu = sum_cpu().with_step_limit(12);
        let profile = cpu.profile();
        assert!(
            !profile.sites.is_empty(),
            "tight-limit profile still has sites"
        );
        let cfg = CampaignConfig {
            samples: 150,
            seed: 8,
        };
        let serial = run_campaign(&cpu, &profile, cfg);
        let policy = SnapshotPolicy {
            max_snapshots: 64,
            min_interval: 1,
        };
        let snap = run_campaign_snapshot(&cpu, &profile, cfg, 2, policy);
        assert_eq!(snap, serial);
        let dc = ferrum_cpu::decoded::DecodedCpu::new(&cpu);
        let dec = run_campaign_snapshot_on(Engine::Decoded(&dc), &profile, cfg, 2, policy);
        assert_eq!(dec, serial);
    }

    #[test]
    fn decoded_engine_matches_interpreter_for_every_executor() {
        let cpu = protected_sum_cpu();
        let dc = ferrum_cpu::decoded::DecodedCpu::new(&cpu);
        let profile = cpu.profile();
        let dprofile = Engine::Decoded(&dc).profile();
        assert_eq!(profile.sites, dprofile.sites);
        assert_eq!(profile.result, dprofile.result);
        let cfg = CampaignConfig {
            samples: 200,
            seed: 77,
        };
        let e = Engine::Decoded(&dc);
        assert_eq!(run_campaign_on(e, &profile, cfg), run_campaign(&cpu, &profile, cfg));
        assert_eq!(
            run_campaign_parallel_on(e, &profile, cfg, 3),
            run_campaign_parallel(&cpu, &profile, cfg, 3)
        );
        assert_eq!(
            run_campaign_snapshot_on(e, &profile, cfg, 3, SnapshotPolicy::default()),
            run_campaign_snapshot(&cpu, &profile, cfg, 3, SnapshotPolicy::default())
        );
        assert_eq!(
            run_double_campaign_on(e, &profile, cfg),
            run_double_campaign(&cpu, &profile, cfg)
        );
        assert_eq!(
            exhaustive_campaign_on(e, &profile, 2),
            exhaustive_campaign(&cpu, &profile, 2)
        );
        // Latency distributions (not just outcome counts) agree.
        assert_eq!(
            run_campaign_on(e, &profile, cfg).stats.latency,
            run_campaign(&cpu, &profile, cfg).stats.latency
        );
    }

    #[test]
    fn pruned_campaign_runs_on_decoded_engine() {
        let asm = ferrum_eddi::ferrum::Ferrum::new()
            .protect_module(&sum_module())
            .unwrap();
        let coverage = CoverageMap::analyze(&asm);
        let cpu = Cpu::load(&asm).unwrap();
        let dc = ferrum_cpu::decoded::DecodedCpu::new(&cpu);
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 200,
            seed: 11,
        };
        let serial = run_campaign(&cpu, &profile, cfg);
        let pruned = run_campaign_pruned_on(Engine::Decoded(&dc), &profile, cfg, &coverage);
        assert_eq!(pruned, serial);
        assert!(pruned.stats.pruned_sites > 0, "prune multiplier stacks");
    }

    #[test]
    fn stats_record_throughput() {
        let cpu = sum_cpu();
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 50,
            seed: 4,
        };
        let res = run_campaign_parallel(&cpu, &profile, cfg, 4);
        assert!(res.stats.wall_nanos > 0);
        assert!(res.stats.injections_per_sec > 0.0);
        assert!(res.stats.threads >= 1 && res.stats.threads <= 4);
        assert!(res.stats.steps_executed > 0);
    }
}
