//! Seeded protection-weakening mutations for lint cross-validation.
//!
//! The static soundness lint (`ferrum_asm::analysis::lint`) claims that
//! its findings correspond to real detection gaps.  This module makes
//! that claim testable: each [`MutationKind`] surgically weakens one
//! protection idiom in an already-protected [`AsmProgram`] — without
//! changing fault-free behaviour — so a test can assert that (a) the
//! lint flags the mutated site and (b) an exhaustive injection campaign
//! observes SDCs that the stock program does not have.
//!
//! Mutations identify protection instructions purely by provenance and
//! shape; they never re-run a protection pass, so the mutant differs
//! from stock by exactly the seeded defect.

use ferrum_asm::flags::Cc;
use ferrum_asm::inst::Inst;
use ferrum_asm::operand::Operand;
use ferrum_asm::program::AsmProgram;
use ferrum_asm::EXIT_FUNCTION;

/// One class of deliberate protection weakening.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Remove one checker branch (`jne exit_function`): the comparison
    /// still runs but a mismatch no longer stops the program.
    DropChecker,
    /// Re-route one SIMD batch capture pair onto the slot of the
    /// previous pair (`pinsrq` lane 1 → lane 0), overwriting a pending
    /// capture before its drain.
    ReuseBatchSlot,
    /// Remove one spliced deferred-flags recheck (the `cmpb`+`jne` pair
    /// at the head of a branch-target block), leaving that CFG successor
    /// without flag verification.
    SkipEdgeRecheck,
}

impl MutationKind {
    /// Stable short name for test diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::DropChecker => "drop-checker",
            MutationKind::ReuseBatchSlot => "reuse-batch-slot",
            MutationKind::SkipEdgeRecheck => "skip-edge-recheck",
        }
    }
}

/// Where a mutation was applied.
#[derive(Debug, Clone)]
pub struct MutationSite {
    /// Enclosing function.
    pub function: String,
    /// Block label of the mutated instruction(s).
    pub block: String,
    /// Index (pre-mutation) of the first mutated instruction.
    pub inst_index: usize,
    /// What was done.
    pub description: String,
}

/// True for a protection-inserted `jne exit_function`.
fn is_checker_branch(ai: &ferrum_asm::program::AsmInst) -> bool {
    ai.prov.is_protection()
        && matches!(
            &ai.inst,
            Inst::Jcc { cc: Cc::Ne, target } if target == EXIT_FUNCTION
        )
}

/// True for the spliced pair recheck at a block head: a protection
/// `cmpb %reg, %reg` followed by a checker branch.
fn starts_with_pair_recheck(b: &ferrum_asm::program::AsmBlock) -> bool {
    let Some(cmp) = b.insts.first() else {
        return false;
    };
    let Some(jne) = b.insts.get(1) else {
        return false;
    };
    cmp.prov.is_protection()
        && matches!(
            &cmp.inst,
            Inst::Cmp {
                src: Operand::Reg(_),
                dst: Operand::Reg(_),
                w
            } if *w == ferrum_asm::reg::Width::W8
        )
        && is_checker_branch(jne)
}

/// The (dup, orig) `pinsrq` lane-1 capture pair of one batched site:
/// returns the index of the second capture given the first.
fn lane1_capture_pair(b: &ferrum_asm::program::AsmBlock, i: usize) -> Option<usize> {
    let is_lane1 = |idx: usize| -> Option<u8> {
        let ai = b.insts.get(idx)?;
        if !ai.prov.is_protection() {
            return None;
        }
        match &ai.inst {
            Inst::Pinsrq { lane: 1, dst, .. } => Some(dst.0),
            _ => None,
        }
    };
    let first = is_lane1(i)?;
    // The partner capture follows within a couple of instructions (the
    // original site sits between the dup- and dest-captures) and targets
    // the other accumulator of the pair.
    for j in i + 1..=(i + 3).min(b.insts.len().saturating_sub(1)) {
        if let Some(second) = is_lane1(j) {
            if second != first {
                return Some(j);
            }
        }
    }
    None
}

/// Enumerates every applicable site for `kind` in `p`.
fn sites(p: &AsmProgram, kind: MutationKind) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for (fi, f) in p.functions.iter().enumerate() {
        for (bi, b) in f.blocks.iter().enumerate() {
            match kind {
                MutationKind::DropChecker => {
                    for (ii, ai) in b.insts.iter().enumerate() {
                        if is_checker_branch(ai) {
                            out.push((fi, bi, ii));
                        }
                    }
                }
                MutationKind::ReuseBatchSlot => {
                    for ii in 0..b.insts.len() {
                        if lane1_capture_pair(b, ii).is_some() {
                            out.push((fi, bi, ii));
                            break; // one per block is plenty
                        }
                    }
                }
                MutationKind::SkipEdgeRecheck => {
                    if starts_with_pair_recheck(b) {
                        out.push((fi, bi, 0));
                    }
                }
            }
        }
    }
    out
}

/// Number of distinct sites `kind` can target in `p`.
pub fn count_mutation_sites(p: &AsmProgram, kind: MutationKind) -> usize {
    sites(p, kind).len()
}

/// Applies the `k`-th mutation of `kind` to a copy of `p`.
///
/// Returns `None` when `k` is out of range.  Mutants preserve fault-free
/// behaviour: dropped checkers only fire on mismatches, and the batch
/// slot reuse redirects a *matched* dup/orig capture pair, so the drain
/// still compares equal values on a clean run.
pub fn apply_mutation(
    p: &AsmProgram,
    kind: MutationKind,
    k: usize,
) -> Option<(AsmProgram, MutationSite)> {
    let &(fi, bi, ii) = sites(p, kind).get(k)?;
    let mut out = p.clone();
    let f = &mut out.functions[fi];
    let block_label = f.blocks[bi].label.clone();
    let description;
    match kind {
        MutationKind::DropChecker => {
            let removed = f.blocks[bi].insts.remove(ii);
            description = format!(
                "removed checker `{}`",
                ferrum_asm::printer::print_inst(&removed.inst)
            );
        }
        MutationKind::ReuseBatchSlot => {
            let jj = lane1_capture_pair(&f.blocks[bi], ii)?;
            for idx in [ii, jj] {
                if let Inst::Pinsrq { lane, .. } = &mut f.blocks[bi].insts[idx].inst {
                    *lane = 0;
                }
            }
            description = "redirected lane-1 capture pair onto occupied lane 0".to_string();
        }
        MutationKind::SkipEdgeRecheck => {
            f.blocks[bi].insts.drain(0..2);
            description = "removed spliced deferred-flags recheck".to_string();
        }
    }
    let site = MutationSite {
        function: out.functions[fi].name.clone(),
        block: block_label,
        inst_index: ii,
        description,
    };
    Some((out, site))
}
