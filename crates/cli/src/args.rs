//! Shared command-line parsing for the `ferrum-*` binaries.
//!
//! Every tool in this crate speaks the same dialect: at most one
//! positional operand (a workload name or an input listing), boolean
//! flags, and valued options, with `-h`/`--help` anywhere producing the
//! usage text.  Each binary used to hand-roll the same `while let`
//! loop; this module is that loop written once, plus typed accessors
//! for the options the tools share (`--samples`, `--seed`, `--scale`,
//! `--technique`).

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

use ferrum_eddi::Technique;
use ferrum_faultsim::EngineKind;
use ferrum_workloads::Scale;

use crate::CliTechnique;

/// What a binary accepts: its boolean flags, its valued options, and
/// whether it takes a positional operand.
#[derive(Debug, Clone, Copy)]
pub struct ArgSpec {
    /// Boolean flags (`--json`, `--catalog`, ...).
    pub flags: &'static [&'static str],
    /// Options that consume the next argument (`--samples`, `-o`, ...).
    pub values: &'static [&'static str],
    /// Whether one positional operand is accepted.
    pub positional: bool,
}

/// Why parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `-h`/`--help` was given (or the command line was empty): print
    /// the usage text and exit with status 2, matching the historical
    /// behaviour of every `ferrum-*` tool.
    Help,
    /// A real mistake, with a message for stderr.
    Message(String),
}

/// The parsed command line.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    /// The positional operand, when the spec accepts one.
    pub positional: Option<String>,
    flags: BTreeSet<&'static str>,
    values: BTreeMap<&'static str, String>,
}

/// Parses `args` (without the program name) against `spec`.
///
/// # Errors
///
/// [`ArgError::Help`] for an empty line or an explicit help request;
/// [`ArgError::Message`] for unknown options, missing option values,
/// repeated flags or options, and unexpected positionals.
pub fn parse_args(args: &[String], spec: &ArgSpec) -> Result<ParsedArgs, ArgError> {
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        return Err(ArgError::Help);
    }
    let mut parsed = ParsedArgs::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(&flag) = spec.flags.iter().find(|&&f| f == a) {
            if !parsed.flags.insert(flag) {
                return Err(ArgError::Message(format!("duplicate flag `{flag}`")));
            }
        } else if let Some(&opt) = spec.values.iter().find(|&&v| v == a) {
            let Some(v) = it.next() else {
                return Err(ArgError::Message(format!("`{opt}` needs a value")));
            };
            // `--samples --json` used to swallow `--json` as the value,
            // silently dropping the flag; nothing in this dialect takes
            // a `--`-prefixed value, so refuse to consume one.
            if v.starts_with("--") {
                return Err(ArgError::Message(format!(
                    "`{opt}` needs a value, found option `{v}`"
                )));
            }
            if parsed.values.insert(opt, v.clone()).is_some() {
                return Err(ArgError::Message(format!("duplicate option `{opt}`")));
            }
        } else if spec.positional
            && parsed.positional.is_none()
            && (!a.starts_with('-') || a == "-")
        {
            parsed.positional = Some(a.clone());
        } else {
            return Err(ArgError::Message(format!("unknown option `{a}`")));
        }
    }
    Ok(parsed)
}

impl ParsedArgs {
    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }

    /// The raw value of an option, when given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError> {
        match self.value(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| ArgError::Message(format!("`{name}` cannot parse `{raw}`"))),
        }
    }

    /// `--samples`, defaulting to the campaign-size `default`.
    pub fn samples(&self, default: usize) -> Result<usize, ArgError> {
        Ok(self.parsed("--samples")?.unwrap_or(default))
    }

    /// `--seed`, defaulting to `default`.
    pub fn seed(&self, default: u64) -> Result<u64, ArgError> {
        Ok(self.parsed("--seed")?.unwrap_or(default))
    }

    /// `--scale test|paper`, defaulting to [`Scale::Test`].
    pub fn scale(&self) -> Result<Scale, ArgError> {
        match self.value("--scale") {
            None | Some("test") => Ok(Scale::Test),
            Some("paper") => Ok(Scale::Paper),
            Some(other) => Err(ArgError::Message(format!(
                "unknown scale `{other}` (test | paper)"
            ))),
        }
    }

    /// `--technique` as a pipeline [`Technique`] (the workload-driven
    /// tools), defaulting to `default`.
    pub fn technique_core(&self, default: Technique) -> Result<Technique, ArgError> {
        match self.value("--technique") {
            None => Ok(default),
            Some("ferrum") => Ok(Technique::Ferrum),
            Some("hybrid") => Ok(Technique::HybridAsmEddi),
            Some("ir-eddi") => Ok(Technique::IrEddi),
            Some("none") => Ok(Technique::None),
            Some(other) => Err(ArgError::Message(format!(
                "unknown technique `{other}` (ferrum | hybrid | ir-eddi | none)"
            ))),
        }
    }

    /// `--engine interpreter|decoded`, defaulting to the reference
    /// interpreter.
    pub fn engine(&self) -> Result<EngineKind, ArgError> {
        match self.value("--engine") {
            None => Ok(EngineKind::default()),
            Some(s) => EngineKind::parse(s).ok_or_else(|| {
                ArgError::Message(format!("unknown engine `{s}` (interpreter | decoded)"))
            }),
        }
    }

    /// `--technique` as a listing-level [`CliTechnique`] (the tools
    /// that operate on bare assembly), defaulting to FERRUM.
    pub fn technique_cli(&self) -> Result<CliTechnique, ArgError> {
        match self.value("--technique") {
            None => Ok(CliTechnique::Ferrum),
            Some(s) => CliTechnique::parse(s).ok_or_else(|| {
                ArgError::Message(format!(
                    "unknown technique `{s}` (ferrum | ferrum-zmm | scalar)"
                ))
            }),
        }
    }
}

/// Test support for the binaries: asserts that `spec` rejects every
/// repeated flag, every repeated option, and every option that would
/// otherwise swallow a `--`-prefixed token as its value.  Each
/// `ferrum-*` binary runs this against its own [`ArgSpec`] so the
/// duplicate-argument regressions stay pinned per tool, not just on
/// the shared parser.
pub fn assert_spec_rejects_misuse(spec: &ArgSpec) {
    let v = |args: &[&str]| -> Vec<String> { args.iter().map(|s| (*s).to_owned()).collect() };
    for flag in spec.flags {
        let err = parse_args(&v(&[flag, flag]), spec).expect_err("duplicate flag accepted");
        assert_eq!(
            err,
            ArgError::Message(format!("duplicate flag `{flag}`")),
            "{flag}"
        );
    }
    for opt in spec.values {
        let err =
            parse_args(&v(&[opt, "1", opt, "1"]), spec).expect_err("duplicate option accepted");
        assert_eq!(
            err,
            ArgError::Message(format!("duplicate option `{opt}`")),
            "{opt}"
        );
        let err = parse_args(&v(&[opt, "--warp"]), spec).expect_err("option swallowed a flag");
        assert_eq!(
            err,
            ArgError::Message(format!("`{opt}` needs a value, found option `--warp`")),
            "{opt}"
        );
    }
}

/// Standard error exit: prints the message (if any) and the usage text
/// to stderr, and returns the conventional status 2.
pub fn usage_exit(usage: &str, err: &ArgError) -> ExitCode {
    if let ArgError::Message(m) = err {
        eprintln!("{m}");
    }
    eprintln!("{usage}");
    ExitCode::from(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: ArgSpec = ArgSpec {
        flags: &["--json", "--catalog"],
        values: &["--samples", "--seed", "--scale", "--technique"],
        positional: true,
    };

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_the_common_shape() {
        let p = parse_args(
            &v(&["bfs", "--json", "--samples", "250", "--seed", "9"]),
            &SPEC,
        )
        .expect("parses");
        assert_eq!(p.positional.as_deref(), Some("bfs"));
        assert!(p.flag("--json"));
        assert!(!p.flag("--catalog"));
        assert_eq!(p.samples(400).unwrap(), 250);
        assert_eq!(p.seed(0xFE44).unwrap(), 9);
        assert_eq!(p.scale().unwrap(), Scale::Test);
    }

    #[test]
    fn defaults_apply_when_options_are_absent() {
        let p = parse_args(&v(&["--catalog"]), &SPEC).expect("parses");
        assert_eq!(p.positional, None);
        assert_eq!(p.samples(400).unwrap(), 400);
        assert_eq!(p.seed(0xFE44).unwrap(), 0xFE44);
        assert_eq!(
            p.technique_core(Technique::Ferrum).unwrap(),
            Technique::Ferrum
        );
        assert_eq!(p.technique_cli().unwrap(), CliTechnique::Ferrum);
    }

    #[test]
    fn typed_accessors_parse_their_domains() {
        let p = parse_args(
            &v(&["x", "--scale", "paper", "--technique", "hybrid"]),
            &SPEC,
        )
        .expect("parses");
        assert_eq!(p.scale().unwrap(), Scale::Paper);
        assert_eq!(
            p.technique_core(Technique::Ferrum).unwrap(),
            Technique::HybridAsmEddi
        );
        let p = parse_args(&v(&["x", "--technique", "ferrum-zmm"]), &SPEC).expect("parses");
        assert_eq!(p.technique_cli().unwrap(), CliTechnique::FerrumZmm);
        assert!(p.technique_core(Technique::Ferrum).is_err());
    }

    #[test]
    fn duplicate_flags_are_rejected() {
        // Regression: `--json --json` used to silently collapse into
        // one flag; repeated arguments are always a user mistake.
        let err = parse_args(&v(&["bfs", "--json", "--json"]), &SPEC).unwrap_err();
        assert_eq!(
            err,
            ArgError::Message("duplicate flag `--json`".to_owned())
        );
    }

    #[test]
    fn duplicate_options_are_rejected() {
        // Regression: `--samples 1 --samples 2` used to silently keep
        // the last value.
        let err = parse_args(&v(&["bfs", "--samples", "1", "--samples", "2"]), &SPEC).unwrap_err();
        assert_eq!(
            err,
            ArgError::Message("duplicate option `--samples`".to_owned())
        );
        let err = parse_args(&v(&["--seed", "1", "--seed", "1"]), &SPEC).unwrap_err();
        assert!(matches!(err, ArgError::Message(m) if m.contains("duplicate option `--seed`")));
    }

    #[test]
    fn options_do_not_swallow_flags_as_values() {
        // Regression: `--samples --json` used to consume `--json` as
        // the sample count, silently dropping the flag; `--seed --warp`
        // likewise hid the unknown `--warp` inside the seed value.
        for tail in [
            &["--samples", "--json"][..],
            &["--samples", "--samples"][..],
            &["--seed", "--warp"][..],
        ] {
            let mut args = vec!["bfs"];
            args.extend_from_slice(tail);
            let err = parse_args(&v(&args), &SPEC).unwrap_err();
            assert_eq!(
                err,
                ArgError::Message(format!("`{}` needs a value, found option `{}`", tail[0], tail[1])),
                "{tail:?}"
            );
        }
    }

    #[test]
    fn engine_accessor_parses_both_engines() {
        const ENGINE_SPEC: ArgSpec = ArgSpec {
            flags: &[],
            values: &["--engine"],
            positional: true,
        };
        let p = parse_args(&v(&["bfs"]), &ENGINE_SPEC).expect("parses");
        assert_eq!(p.engine().unwrap(), EngineKind::Interpreter);
        let p = parse_args(&v(&["bfs", "--engine", "decoded"]), &ENGINE_SPEC).expect("parses");
        assert_eq!(p.engine().unwrap(), EngineKind::Decoded);
        let p = parse_args(&v(&["bfs", "--engine", "interpreter"]), &ENGINE_SPEC).expect("parses");
        assert_eq!(p.engine().unwrap(), EngineKind::Interpreter);
        let p = parse_args(&v(&["bfs", "--engine", "jit"]), &ENGINE_SPEC).expect("parses");
        assert!(p.engine().is_err());
    }

    #[test]
    fn stdin_dash_is_a_positional() {
        let p = parse_args(&v(&["-", "--json"]), &SPEC).expect("parses");
        assert_eq!(p.positional.as_deref(), Some("-"));
    }

    #[test]
    fn errors_are_distinguished_from_help() {
        assert!(matches!(parse_args(&v(&[]), &SPEC), Err(ArgError::Help)));
        assert!(matches!(
            parse_args(&v(&["bfs", "--help"]), &SPEC),
            Err(ArgError::Help)
        ));
        assert!(matches!(
            parse_args(&v(&["--warp"]), &SPEC),
            Err(ArgError::Message(_))
        ));
        assert!(matches!(
            parse_args(&v(&["--samples"]), &SPEC),
            Err(ArgError::Message(_))
        ));
        let p = parse_args(&v(&["x", "--samples", "many"]), &SPEC).expect("parses");
        assert!(matches!(p.samples(400), Err(ArgError::Message(_))));
        // Two positionals: the second is rejected.
        assert!(matches!(
            parse_args(&v(&["a", "b"]), &SPEC),
            Err(ArgError::Message(_))
        ));
    }
}
