//! Shared command-line parsing for the `ferrum-*` binaries.
//!
//! Every tool in this crate speaks the same dialect: at most one
//! positional operand (a workload name or an input listing), boolean
//! flags, and valued options, with `-h`/`--help` anywhere producing the
//! usage text.  Each binary used to hand-roll the same `while let`
//! loop; this module is that loop written once, plus typed accessors
//! for the options the tools share (`--samples`, `--seed`, `--scale`,
//! `--technique`).

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

use ferrum_eddi::Technique;
use ferrum_faultsim::EngineKind;
use ferrum_workloads::Scale;

use crate::CliTechnique;

/// What a binary accepts: its boolean flags, its valued options, and
/// whether it takes a positional operand.
#[derive(Debug, Clone, Copy)]
pub struct ArgSpec {
    /// Boolean flags (`--json`, `--catalog`, ...).
    pub flags: &'static [&'static str],
    /// Options that consume the next argument (`--samples`, `-o`, ...).
    pub values: &'static [&'static str],
    /// Whether one positional operand is accepted.
    pub positional: bool,
}

/// Why parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `-h`/`--help` was given (or the command line was empty): print
    /// the usage text and exit with status 2, matching the historical
    /// behaviour of every `ferrum-*` tool.
    Help,
    /// A real mistake, with a message for stderr.
    Message(String),
}

/// The parsed command line.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    /// The positional operand, when the spec accepts one.
    pub positional: Option<String>,
    flags: BTreeSet<&'static str>,
    values: BTreeMap<&'static str, String>,
}

/// Parses `args` (without the program name) against `spec`.
///
/// # Errors
///
/// [`ArgError::Help`] for an empty line or an explicit help request;
/// [`ArgError::Message`] for unknown options, missing option values,
/// repeated flags or options, and unexpected positionals.
pub fn parse_args(args: &[String], spec: &ArgSpec) -> Result<ParsedArgs, ArgError> {
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        return Err(ArgError::Help);
    }
    let mut parsed = ParsedArgs::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(&flag) = spec.flags.iter().find(|&&f| f == a) {
            if !parsed.flags.insert(flag) {
                return Err(ArgError::Message(format!("duplicate flag `{flag}`")));
            }
        } else if let Some(&opt) = spec.values.iter().find(|&&v| v == a) {
            let Some(v) = it.next() else {
                return Err(ArgError::Message(format!("`{opt}` needs a value")));
            };
            // `--samples --json` used to swallow `--json` as the value,
            // silently dropping the flag; nothing in this dialect takes
            // a `--`-prefixed value, so refuse to consume one.
            if v.starts_with("--") {
                return Err(ArgError::Message(format!(
                    "`{opt}` needs a value, found option `{v}`"
                )));
            }
            if parsed.values.insert(opt, v.clone()).is_some() {
                return Err(ArgError::Message(format!("duplicate option `{opt}`")));
            }
        } else if spec.positional
            && parsed.positional.is_none()
            && (!a.starts_with('-') || a == "-")
        {
            parsed.positional = Some(a.clone());
        } else {
            return Err(ArgError::Message(format!("unknown option `{a}`")));
        }
    }
    Ok(parsed)
}

impl ParsedArgs {
    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }

    /// The raw value of an option, when given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError> {
        match self.value(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| ArgError::Message(format!("`{name}` cannot parse `{raw}`"))),
        }
    }

    /// `--samples`, defaulting to the campaign-size `default`.
    pub fn samples(&self, default: usize) -> Result<usize, ArgError> {
        Ok(self.parsed("--samples")?.unwrap_or(default))
    }

    /// `--seed`, defaulting to `default`.
    pub fn seed(&self, default: u64) -> Result<u64, ArgError> {
        Ok(self.parsed("--seed")?.unwrap_or(default))
    }

    /// `--scale test|paper`, defaulting to [`Scale::Test`].
    pub fn scale(&self) -> Result<Scale, ArgError> {
        match self.value("--scale") {
            None | Some("test") => Ok(Scale::Test),
            Some("paper") => Ok(Scale::Paper),
            Some(other) => Err(ArgError::Message(format!(
                "unknown scale `{other}` (test | paper)"
            ))),
        }
    }

    /// `--opt 0|1`, the backend optimization level.  `None` means the
    /// flag was absent, which catalog self-checking tools interpret as
    /// "run every level".
    pub fn opt_level(&self) -> Result<Option<ferrum_backend::OptLevel>, ArgError> {
        match self.value("--opt") {
            None => Ok(None),
            Some(s) => ferrum_backend::OptLevel::parse(s)
                .map(Some)
                .ok_or_else(|| ArgError::Message(format!("unknown opt level `{s}` (0 | 1)"))),
        }
    }

    /// `--technique` as a pipeline [`Technique`] (the workload-driven
    /// tools), defaulting to `default`.
    pub fn technique_core(&self, default: Technique) -> Result<Technique, ArgError> {
        match self.value("--technique") {
            None => Ok(default),
            Some("ferrum") => Ok(Technique::Ferrum),
            Some("hybrid") => Ok(Technique::HybridAsmEddi),
            Some("ir-eddi") => Ok(Technique::IrEddi),
            Some("none") => Ok(Technique::None),
            Some(other) => Err(ArgError::Message(format!(
                "unknown technique `{other}` (ferrum | hybrid | ir-eddi | none)"
            ))),
        }
    }

    /// `--engine interpreter|decoded`, defaulting to the reference
    /// interpreter.
    pub fn engine(&self) -> Result<EngineKind, ArgError> {
        match self.value("--engine") {
            None => Ok(EngineKind::default()),
            Some(s) => EngineKind::parse(s).ok_or_else(|| {
                ArgError::Message(format!("unknown engine `{s}` (interpreter | decoded)"))
            }),
        }
    }

    /// `--technique` as a listing-level [`CliTechnique`] (the tools
    /// that operate on bare assembly), defaulting to FERRUM.
    pub fn technique_cli(&self) -> Result<CliTechnique, ArgError> {
        match self.value("--technique") {
            None => Ok(CliTechnique::Ferrum),
            Some(s) => CliTechnique::parse(s).ok_or_else(|| {
                ArgError::Message(format!(
                    "unknown technique `{s}` (ferrum | ferrum-zmm | scalar)"
                ))
            }),
        }
    }
}

/// One documented argument in a tool's usage text.
#[derive(Debug, Clone, Copy)]
pub struct ArgHelp {
    /// The flag or option name (`--samples`, `-o`).
    pub name: &'static str,
    /// The value placeholder for options (`<n>`); `None` for flags.
    pub value: Option<&'static str>,
    /// Help text; embedded newlines continue at the help column.
    pub help: &'static str,
}

/// A tool's complete command-line surface: the usage forms, the
/// documented arguments, and the [`ArgSpec`] the parser enforces.
/// [`render`](UsageSpec::render) derives the `--help` text from this
/// one table, so the help can never drift from what the parser
/// actually accepts — [`check`](UsageSpec::check) pins the two
/// together and every binary asserts it in its tests.
#[derive(Debug, Clone, Copy)]
pub struct UsageSpec {
    /// The binary name (`ferrum-coverage`).
    pub tool: &'static str,
    /// Usage forms, without the tool name (`"<workload> [options]"`).
    pub forms: &'static [&'static str],
    /// One entry per flag and option in [`UsageSpec::spec`].
    pub args: &'static [ArgHelp],
    /// The machine-readable spec handed to [`parse_args`].
    pub spec: ArgSpec,
}

impl UsageSpec {
    /// Renders the usage text: the `usage:` forms followed by an
    /// aligned two-column argument table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, form) in self.forms.iter().enumerate() {
            let head = if i == 0 { "usage:" } else { "      " };
            out.push_str(&format!("{head} {} {form}\n", self.tool));
        }
        let label = |a: &ArgHelp| match a.value {
            Some(v) => format!("{} {v}", a.name),
            None => a.name.to_owned(),
        };
        let width = self.args.iter().map(|a| label(a).len()).max().unwrap_or(0);
        for a in self.args {
            for (i, line) in a.help.split('\n').enumerate() {
                if i == 0 {
                    out.push_str(&format!("  {:<width$}  {line}\n", label(a)));
                } else {
                    out.push_str(&format!("  {:<width$}  {line}\n", ""));
                }
            }
        }
        // Callers print with `eprintln!`; drop the trailing newline.
        out.pop();
        out
    }

    /// Checks that the argument table and the parser spec agree: every
    /// flag is documented without a value placeholder, every option
    /// with one, and nothing is documented that the parser rejects.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch.
    pub fn check(&self) -> Result<(), String> {
        for &f in self.spec.flags {
            match self.args.iter().find(|a| a.name == f) {
                None => return Err(format!("{}: flag `{f}` is undocumented", self.tool)),
                Some(a) if a.value.is_some() => {
                    return Err(format!("{}: flag `{f}` documented with a value", self.tool))
                }
                Some(_) => {}
            }
        }
        for &v in self.spec.values {
            match self.args.iter().find(|a| a.name == v) {
                None => return Err(format!("{}: option `{v}` is undocumented", self.tool)),
                Some(a) if a.value.is_none() => {
                    return Err(format!("{}: option `{v}` documented as a flag", self.tool))
                }
                Some(_) => {}
            }
        }
        for a in self.args {
            if !self.spec.flags.contains(&a.name) && !self.spec.values.contains(&a.name) {
                return Err(format!(
                    "{}: `{}` documented but not parsed",
                    self.tool, a.name
                ));
            }
        }
        if self.forms.is_empty() {
            return Err(format!("{}: no usage forms", self.tool));
        }
        Ok(())
    }
}

/// Test support for the binaries: asserts the usage table matches the
/// parser spec ([`UsageSpec::check`]), that the rendered text mentions
/// the tool and every argument, and that the spec rejects argument
/// misuse ([`assert_spec_rejects_misuse`]).
pub fn assert_usage_consistent(u: &UsageSpec) {
    if let Err(m) = u.check() {
        panic!("{m}");
    }
    let text = u.render();
    assert!(text.starts_with("usage: "), "{}: bad header", u.tool);
    assert!(text.contains(u.tool), "{}: tool name missing", u.tool);
    for a in u.args {
        assert!(text.contains(a.name), "{}: `{}` not rendered", u.tool, a.name);
    }
    assert_spec_rejects_misuse(&u.spec);
}

/// Test support for the binaries: asserts that `spec` rejects every
/// repeated flag, every repeated option, and every option that would
/// otherwise swallow a `--`-prefixed token as its value.  Each
/// `ferrum-*` binary runs this against its own [`ArgSpec`] so the
/// duplicate-argument regressions stay pinned per tool, not just on
/// the shared parser.
pub fn assert_spec_rejects_misuse(spec: &ArgSpec) {
    let v = |args: &[&str]| -> Vec<String> { args.iter().map(|s| (*s).to_owned()).collect() };
    for flag in spec.flags {
        let err = parse_args(&v(&[flag, flag]), spec).expect_err("duplicate flag accepted");
        assert_eq!(
            err,
            ArgError::Message(format!("duplicate flag `{flag}`")),
            "{flag}"
        );
    }
    for opt in spec.values {
        let err =
            parse_args(&v(&[opt, "1", opt, "1"]), spec).expect_err("duplicate option accepted");
        assert_eq!(
            err,
            ArgError::Message(format!("duplicate option `{opt}`")),
            "{opt}"
        );
        let err = parse_args(&v(&[opt, "--warp"]), spec).expect_err("option swallowed a flag");
        assert_eq!(
            err,
            ArgError::Message(format!("`{opt}` needs a value, found option `--warp`")),
            "{opt}"
        );
    }
}

/// Standard error exit: prints the message (if any) and the usage text
/// to stderr, and returns the conventional status 2.
pub fn usage_exit(usage: &str, err: &ArgError) -> ExitCode {
    if let ArgError::Message(m) = err {
        eprintln!("{m}");
    }
    eprintln!("{usage}");
    ExitCode::from(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: ArgSpec = ArgSpec {
        flags: &["--json", "--catalog"],
        values: &["--samples", "--seed", "--scale", "--technique"],
        positional: true,
    };

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_the_common_shape() {
        let p = parse_args(
            &v(&["bfs", "--json", "--samples", "250", "--seed", "9"]),
            &SPEC,
        )
        .expect("parses");
        assert_eq!(p.positional.as_deref(), Some("bfs"));
        assert!(p.flag("--json"));
        assert!(!p.flag("--catalog"));
        assert_eq!(p.samples(400).unwrap(), 250);
        assert_eq!(p.seed(0xFE44).unwrap(), 9);
        assert_eq!(p.scale().unwrap(), Scale::Test);
    }

    #[test]
    fn defaults_apply_when_options_are_absent() {
        let p = parse_args(&v(&["--catalog"]), &SPEC).expect("parses");
        assert_eq!(p.positional, None);
        assert_eq!(p.samples(400).unwrap(), 400);
        assert_eq!(p.seed(0xFE44).unwrap(), 0xFE44);
        assert_eq!(
            p.technique_core(Technique::Ferrum).unwrap(),
            Technique::Ferrum
        );
        assert_eq!(p.technique_cli().unwrap(), CliTechnique::Ferrum);
    }

    #[test]
    fn typed_accessors_parse_their_domains() {
        let p = parse_args(
            &v(&["x", "--scale", "paper", "--technique", "hybrid"]),
            &SPEC,
        )
        .expect("parses");
        assert_eq!(p.scale().unwrap(), Scale::Paper);
        assert_eq!(
            p.technique_core(Technique::Ferrum).unwrap(),
            Technique::HybridAsmEddi
        );
        let p = parse_args(&v(&["x", "--technique", "ferrum-zmm"]), &SPEC).expect("parses");
        assert_eq!(p.technique_cli().unwrap(), CliTechnique::FerrumZmm);
        assert!(p.technique_core(Technique::Ferrum).is_err());
    }

    #[test]
    fn duplicate_flags_are_rejected() {
        // Regression: `--json --json` used to silently collapse into
        // one flag; repeated arguments are always a user mistake.
        let err = parse_args(&v(&["bfs", "--json", "--json"]), &SPEC).unwrap_err();
        assert_eq!(
            err,
            ArgError::Message("duplicate flag `--json`".to_owned())
        );
    }

    #[test]
    fn duplicate_options_are_rejected() {
        // Regression: `--samples 1 --samples 2` used to silently keep
        // the last value.
        let err = parse_args(&v(&["bfs", "--samples", "1", "--samples", "2"]), &SPEC).unwrap_err();
        assert_eq!(
            err,
            ArgError::Message("duplicate option `--samples`".to_owned())
        );
        let err = parse_args(&v(&["--seed", "1", "--seed", "1"]), &SPEC).unwrap_err();
        assert!(matches!(err, ArgError::Message(m) if m.contains("duplicate option `--seed`")));
    }

    #[test]
    fn options_do_not_swallow_flags_as_values() {
        // Regression: `--samples --json` used to consume `--json` as
        // the sample count, silently dropping the flag; `--seed --warp`
        // likewise hid the unknown `--warp` inside the seed value.
        for tail in [
            &["--samples", "--json"][..],
            &["--samples", "--samples"][..],
            &["--seed", "--warp"][..],
        ] {
            let mut args = vec!["bfs"];
            args.extend_from_slice(tail);
            let err = parse_args(&v(&args), &SPEC).unwrap_err();
            assert_eq!(
                err,
                ArgError::Message(format!("`{}` needs a value, found option `{}`", tail[0], tail[1])),
                "{tail:?}"
            );
        }
    }

    #[test]
    fn engine_accessor_parses_both_engines() {
        const ENGINE_SPEC: ArgSpec = ArgSpec {
            flags: &[],
            values: &["--engine"],
            positional: true,
        };
        let p = parse_args(&v(&["bfs"]), &ENGINE_SPEC).expect("parses");
        assert_eq!(p.engine().unwrap(), EngineKind::Interpreter);
        let p = parse_args(&v(&["bfs", "--engine", "decoded"]), &ENGINE_SPEC).expect("parses");
        assert_eq!(p.engine().unwrap(), EngineKind::Decoded);
        let p = parse_args(&v(&["bfs", "--engine", "interpreter"]), &ENGINE_SPEC).expect("parses");
        assert_eq!(p.engine().unwrap(), EngineKind::Interpreter);
        let p = parse_args(&v(&["bfs", "--engine", "jit"]), &ENGINE_SPEC).expect("parses");
        assert!(p.engine().is_err());
    }

    #[test]
    fn usage_spec_renders_aligned_help() {
        const U: UsageSpec = UsageSpec {
            tool: "ferrum-x",
            forms: &["<workload> [options]", "--catalog [--json]"],
            args: &[
                ArgHelp {
                    name: "--json",
                    value: None,
                    help: "emit JSON",
                },
                ArgHelp {
                    name: "--catalog",
                    value: None,
                    help: "self-check across\nevery workload",
                },
                ArgHelp {
                    name: "--samples",
                    value: Some("<n>"),
                    help: "fault budget",
                },
            ],
            spec: ArgSpec {
                flags: &["--json", "--catalog"],
                values: &["--samples"],
                positional: true,
            },
        };
        U.check().expect("consistent");
        let text = U.render();
        assert!(text.starts_with("usage: ferrum-x <workload> [options]\n"));
        assert!(text.contains("       ferrum-x --catalog [--json]\n"));
        assert!(text.contains("--samples <n>  fault budget"));
        // The multi-line help continues at the help column.
        let cont = text
            .lines()
            .find(|l| l.contains("every workload"))
            .expect("continuation");
        assert_eq!(
            cont.find("every workload"),
            text.lines()
                .find(|l| l.contains("self-check across"))
                .and_then(|l| l.find("self-check across"))
        );
        assert_usage_consistent(&U);
    }

    #[test]
    fn usage_spec_check_finds_drift() {
        const SPEC_ONLY: ArgSpec = ArgSpec {
            flags: &["--json"],
            values: &[],
            positional: false,
        };
        // Undocumented flag.
        let u = UsageSpec {
            tool: "t",
            forms: &["x"],
            args: &[],
            spec: SPEC_ONLY,
        };
        assert!(u.check().unwrap_err().contains("undocumented"));
        // Documented but unparsed argument.
        let u = UsageSpec {
            tool: "t",
            forms: &["x"],
            args: &[
                ArgHelp {
                    name: "--json",
                    value: None,
                    help: "j",
                },
                ArgHelp {
                    name: "--ghost",
                    value: None,
                    help: "g",
                },
            ],
            spec: SPEC_ONLY,
        };
        assert!(u.check().unwrap_err().contains("not parsed"));
        // Flag documented as an option.
        let u = UsageSpec {
            tool: "t",
            forms: &["x"],
            args: &[ArgHelp {
                name: "--json",
                value: Some("<v>"),
                help: "j",
            }],
            spec: SPEC_ONLY,
        };
        assert!(u.check().unwrap_err().contains("with a value"));
    }

    #[test]
    fn stdin_dash_is_a_positional() {
        let p = parse_args(&v(&["-", "--json"]), &SPEC).expect("parses");
        assert_eq!(p.positional.as_deref(), Some("-"));
    }

    #[test]
    fn errors_are_distinguished_from_help() {
        assert!(matches!(parse_args(&v(&[]), &SPEC), Err(ArgError::Help)));
        assert!(matches!(
            parse_args(&v(&["bfs", "--help"]), &SPEC),
            Err(ArgError::Help)
        ));
        assert!(matches!(
            parse_args(&v(&["--warp"]), &SPEC),
            Err(ArgError::Message(_))
        ));
        assert!(matches!(
            parse_args(&v(&["--samples"]), &SPEC),
            Err(ArgError::Message(_))
        ));
        let p = parse_args(&v(&["x", "--samples", "many"]), &SPEC).expect("parses");
        assert!(matches!(p.samples(400), Err(ArgError::Message(_))));
        // Two positionals: the second is rejected.
        assert!(matches!(
            parse_args(&v(&["a", "b"]), &SPEC),
            Err(ArgError::Message(_))
        ));
    }
}
