//! Shared `--catalog` self-check plumbing for the `ferrum-*` binaries.
//!
//! Every tool exposes the same mode — run a per-workload check across
//! the bundled catalog, print one record per result (JSON object or
//! text line), and fold the verdicts into a single exit status.  The
//! loop, error reporting, and exit-code mapping live here; the tools
//! supply only the check itself.

use std::fmt::Display;
use std::process::ExitCode;

use ferrum::json::Json;
use ferrum_backend::OptLevel;
use ferrum_workloads::catalog::all_workloads;
use ferrum_workloads::Workload;

/// The optimization levels a `--catalog` self-check should cover:
/// exactly the one `--opt` asked for, or every level when the flag was
/// absent — protection soundness must hold on optimized output too.
pub fn catalog_levels(opt: Option<OptLevel>) -> Vec<OptLevel> {
    match opt {
        Some(o) => vec![o],
        None => vec![OptLevel::O0, OptLevel::O1],
    }
}

/// One printable result from a catalog check.  A workload may produce
/// several (e.g. `ferrum-lint` emits one per technique).
pub struct CheckLine {
    /// Whether this result passed.
    pub ok: bool,
    /// Record printed (pretty) under `--json`.
    pub json: Json,
    /// Line printed otherwise (no trailing newline).
    pub text: String,
}

/// Runs `check` over every bundled workload, printing each returned
/// [`CheckLine`] as it arrives.  Returns `Some(all_ok)` when every
/// check ran, or `None` after printing `"{tool}: {workload}: {err}"`
/// on the first check that failed to run at all.
pub fn catalog_selfcheck<E: Display>(
    tool: &str,
    json: bool,
    mut check: impl FnMut(&Workload) -> Result<Vec<CheckLine>, E>,
) -> Option<bool> {
    let mut all_ok = true;
    for w in all_workloads() {
        let lines = match check(&w) {
            Ok(lines) => lines,
            Err(e) => {
                eprintln!("{tool}: {}: {e}", w.name);
                return None;
            }
        };
        for line in lines {
            all_ok &= line.ok;
            if json {
                println!("{}", line.json.to_string_pretty());
            } else {
                println!("{}", line.text);
            }
        }
    }
    Some(all_ok)
}

/// Maps a [`catalog_selfcheck`] result to the shared exit-code
/// convention: 0 all passed, 1 some check failed, [`ExitCode::FAILURE`]
/// a check could not run.
pub fn catalog_exit(result: Option<bool>) -> ExitCode {
    match result {
        Some(true) => ExitCode::SUCCESS,
        Some(false) => ExitCode::from(1),
        None => ExitCode::FAILURE,
    }
}
