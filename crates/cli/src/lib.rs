//! # ferrum-cli — command-line protection of assembly listings
//!
//! The paper's §II-D deployment story: "the source of the target program
//! is compiled down to assembly code, then the EDDI methodology can be
//! applied on the compiled assembly code before translating to
//! executable".  [`protect_listing`] is exactly that step for the
//! `ferrum-asm` dialect, exposed as the `ferrum-protect` binary:
//!
//! ```sh
//! ferrum-protect input.s -o protected.s --technique ferrum
//! ferrum-protect input.s --run                 # simulate instead of printing
//! ferrum-protect input.s --campaign 500        # quick fault campaign
//! ```

pub mod args;
pub mod catalog;

use std::fmt;

use ferrum_asm::program::AsmProgram;
use ferrum_eddi::ferrum::{Ferrum, FerrumConfig};
use ferrum_eddi::hybrid::HybridAsmEddi;

/// Which assembly-level technique to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliTechnique {
    /// FERRUM (SIMD batching + deferred flags + peephole).
    Ferrum,
    /// FERRUM with AVX-512 batches of eight.
    FerrumZmm,
    /// Plain scalar duplication of every site (assembly half of the
    /// hybrid baseline; `cmp`/`test` sites are left to an IR-level
    /// prepass the CLI cannot run on bare assembly).
    Scalar,
}

impl CliTechnique {
    /// Parses a `--technique` value.
    pub fn parse(s: &str) -> Option<CliTechnique> {
        match s {
            "ferrum" => Some(CliTechnique::Ferrum),
            "ferrum-zmm" => Some(CliTechnique::FerrumZmm),
            "scalar" => Some(CliTechnique::Scalar),
            _ => None,
        }
    }
}

impl fmt::Display for CliTechnique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CliTechnique::Ferrum => "ferrum",
            CliTechnique::FerrumZmm => "ferrum-zmm",
            CliTechnique::Scalar => "scalar",
        })
    }
}

/// Errors surfaced by the CLI pipeline.
#[derive(Debug)]
pub enum CliError {
    /// The input failed to parse.
    Parse(ferrum_asm::parser::ParseError),
    /// The parsed program failed validation.
    Invalid(String),
    /// A protection pass rejected the program.
    Pass(ferrum_eddi::PassError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Parse(e) => write!(f, "{e}"),
            CliError::Invalid(m) => write!(f, "invalid program: {m}"),
            CliError::Pass(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses and validates an assembly listing.
fn parse_listing(text: &str) -> Result<AsmProgram, CliError> {
    let prog = ferrum_asm::parser::parse_program(text).map_err(CliError::Parse)?;
    prog.validate()
        .map_err(|e| CliError::Invalid(e.first().map(ToString::to_string).unwrap_or_default()))?;
    Ok(prog)
}

/// Protects a listing and statically verifies the result with
/// `ferrum-lint` (exposed as the `ferrum-lint` binary).  Protection
/// happens in-memory: a printed listing loses the provenance tags the
/// lint keys on, so lint-after-parse would have nothing to check.
/// FERRUM techniques use manifest-driven linting — the pass declares
/// its reserved registers and accumulators and the lint verifies the
/// claims on top of its own shape inference.
///
/// # Errors
///
/// Parse, validation, and pass failures.
pub fn lint_listing(
    text: &str,
    technique: CliTechnique,
) -> Result<ferrum_asm::analysis::lint::LintReport, CliError> {
    use ferrum_asm::analysis::lint::{lint_program, lint_program_with};
    let prog = parse_listing(text)?;
    match technique {
        CliTechnique::Ferrum | CliTechnique::FerrumZmm => {
            let cfg = FerrumConfig {
                zmm: technique == CliTechnique::FerrumZmm,
                ..FerrumConfig::default()
            };
            let (prot, manifests) = Ferrum::with_config(cfg)
                .protect_with_manifest(&prog)
                .map_err(CliError::Pass)?;
            Ok(lint_program_with(&prot, &manifests))
        }
        CliTechnique::Scalar => {
            let prot = HybridAsmEddi::new()
                .protect_asm(&prog)
                .map_err(CliError::Pass)?;
            Ok(lint_program(&prot))
        }
    }
}

/// Parses an assembly listing, protects it, and returns the protected
/// program.
///
/// # Errors
///
/// Parse, validation, and pass failures.
pub fn protect_listing(text: &str, technique: CliTechnique) -> Result<AsmProgram, CliError> {
    let prog = parse_listing(text)?;
    match technique {
        CliTechnique::Ferrum => Ferrum::new().protect(&prog).map_err(CliError::Pass),
        CliTechnique::FerrumZmm => {
            let cfg = FerrumConfig {
                zmm: true,
                ..FerrumConfig::default()
            };
            Ferrum::with_config(cfg)
                .protect(&prog)
                .map_err(CliError::Pass)
        }
        CliTechnique::Scalar => HybridAsmEddi::new()
            .protect_asm(&prog)
            .map_err(CliError::Pass),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTING: &str = "\
.globl main
main:
main_entry:
\tmovq $6, %rax
\tmovq $7, %rcx
\timulq %rcx, %rax
\tmovq %rax, %rdi
\tcall print_i64
\tret
";

    #[test]
    fn listing_protects_and_runs() {
        for t in [
            CliTechnique::Ferrum,
            CliTechnique::FerrumZmm,
            CliTechnique::Scalar,
        ] {
            let prot = protect_listing(LISTING, t).unwrap_or_else(|e| panic!("{t}: {e}"));
            assert!(prot.validate().is_ok(), "{t}");
            let cpu = ferrum_cpu::run::Cpu::load(&prot).expect("loads");
            let r = cpu.run(None);
            assert_eq!(r.output, vec![42], "{t}");
        }
    }

    #[test]
    fn ferrum_protected_listing_has_full_coverage() {
        let prot = protect_listing(LISTING, CliTechnique::Ferrum).expect("protects");
        let cpu = ferrum_cpu::run::Cpu::load(&prot).expect("loads");
        let profile = cpu.profile();
        let res = ferrum_faultsim::campaign::exhaustive_campaign(&cpu, &profile, 8);
        assert_eq!(res.sdc, 0, "{res:?}");
    }

    #[test]
    fn lint_listing_is_clean_for_all_techniques() {
        for t in [
            CliTechnique::Ferrum,
            CliTechnique::FerrumZmm,
            CliTechnique::Scalar,
        ] {
            let rep = lint_listing(LISTING, t).unwrap_or_else(|e| panic!("{t}: {e}"));
            assert!(rep.insts_scanned > 0, "{t}");
            assert!(
                rep.is_clean(),
                "{t}: {} finding(s); first: {:#?}",
                rep.findings.len(),
                rep.findings.first()
            );
        }
    }

    #[test]
    fn garbage_input_is_rejected_gracefully() {
        assert!(matches!(
            protect_listing("florble %zork\n", CliTechnique::Ferrum),
            Err(CliError::Parse(_))
        ));
        // A parsable but main-less program fails validation.
        let r = protect_listing(".globl f\nf:\nf0:\n\tret\n", CliTechnique::Ferrum);
        assert!(matches!(r, Err(CliError::Invalid(_))), "{r:?}");
    }

    #[test]
    fn technique_names_parse() {
        assert_eq!(CliTechnique::parse("ferrum"), Some(CliTechnique::Ferrum));
        assert_eq!(
            CliTechnique::parse("ferrum-zmm"),
            Some(CliTechnique::FerrumZmm)
        );
        assert_eq!(CliTechnique::parse("scalar"), Some(CliTechnique::Scalar));
        assert_eq!(CliTechnique::parse("magic"), None);
    }
}
