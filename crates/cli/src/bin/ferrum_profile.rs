//! `ferrum-profile` — exact execution profiles and differential
//! overhead attribution at pc granularity.
//!
//! ```text
//! usage: ferrum-profile <workload> [options]
//!        ferrum-profile --catalog [--json]
//!   --technique <t>  ferrum | hybrid | ir-eddi | none   (default: ferrum)
//!   --scale <s>      test | paper   (default: test)
//!   --opt <l>        backend optimization level 0 | 1   (default: 0)
//!   --top <n>        rows in the hot-spot / site tables (default 10)
//!   --diff           per-site overhead vs the peepholed baseline
//!   --folded         folded call stacks (flamegraph format) to stdout
//!   --json           emit per docs/profile-schema.md instead of text
//!   --catalog        self-check across every bundled workload and
//!                    technique: per-pc profiles must be byte-identical
//!                    across the interpreter and decoded engines, and
//!                    per-site overhead must sum exactly to the
//!                    per-mechanism attribution totals
//! ```
//!
//! Profiles are **exact**, not sampled: both engines charge every
//! dynamic instruction to its pc during the golden walk, so the profile
//! doubles as a cross-engine oracle — any divergence in dispatch order,
//! cycle pricing, or call tracking fails the run before it can corrupt
//! a campaign.  `ferrum-profile` therefore *always* collects the
//! profile on both engines and refuses to print a mismatch.

use std::process::ExitCode;

use ferrum::json::{Json, ToJson};
use ferrum::report::{
    pc_profile_to_json, render_diff_sites, render_function_profile, render_hotspots,
};
use ferrum::{diff_profile, DecodedCpu, Pipeline, Technique};
use ferrum_cli::args::{parse_args, usage_exit, ArgError, ArgHelp, ArgSpec, UsageSpec};
use ferrum_cli::catalog::{catalog_exit, catalog_selfcheck, CheckLine};
use ferrum_cpu::run::{Cpu, Profile};
use ferrum_workloads::catalog::{workload, Scale, Workload};

const USAGE: UsageSpec = UsageSpec {
    tool: "ferrum-profile",
    forms: &["<workload> [options]", "--catalog [--json]"],
    args: &[
        ArgHelp {
            name: "--technique",
            value: Some("<t>"),
            help: "ferrum | hybrid | ir-eddi | none   (default: ferrum)",
        },
        ArgHelp {
            name: "--scale",
            value: Some("<s>"),
            help: "test | paper   (default: test)",
        },
        ArgHelp {
            name: "--opt",
            value: Some("<l>"),
            help: "backend optimization level 0 | 1   (default: 0;\n--catalog: both levels)",
        },
        ArgHelp {
            name: "--top",
            value: Some("<n>"),
            help: "rows in the hot-spot / site tables (default 10)",
        },
        ArgHelp {
            name: "--diff",
            value: None,
            help: "per-site overhead vs the peepholed baseline",
        },
        ArgHelp {
            name: "--folded",
            value: None,
            help: "folded call stacks (flamegraph format) to stdout",
        },
        ArgHelp {
            name: "--json",
            value: None,
            help: "emit per docs/profile-schema.md instead of text",
        },
        ArgHelp {
            name: "--catalog",
            value: None,
            help: "self-check across every bundled workload and\ntechnique: per-pc profiles must be byte-identical\nacross the interpreter and decoded engines, and\nper-site overhead must sum exactly to the\nper-mechanism attribution totals",
        },
    ],
    spec: ArgSpec {
        flags: &["--diff", "--folded", "--json", "--catalog"],
        values: &["--technique", "--scale", "--opt", "--top"],
        positional: true,
    },
};

struct Options {
    technique: Technique,
    scale: Scale,
    opt: Option<ferrum::OptLevel>,
    top: usize,
    diff: bool,
    folded: bool,
    json: bool,
}

/// Profiles `cpu` on both engines and checks the cross-engine oracle:
/// the per-pc / per-function / folded-stack counts, the mechanism
/// totals, and the golden result must all be byte-identical.  Returns
/// the (shared) profile and whether the oracle held.
fn profile_both_engines(cpu: &Cpu) -> (Profile, bool) {
    let interp = cpu.profile();
    let decoded = DecodedCpu::new(cpu).profile();
    let identical = interp.pcs == decoded.pcs
        && interp.mech_counts == decoded.mech_counts
        && interp.result == decoded.result;
    (interp, identical)
}

fn run_one(name: &str, opts: &Options) -> ExitCode {
    let Some(w) = workload(name) else {
        eprintln!("ferrum-profile: unknown workload `{name}`");
        return ExitCode::FAILURE;
    };
    let pipeline = Pipeline::new().with_opt_level(opts.opt.unwrap_or_default());
    let module = w.build(opts.scale);

    let run = || -> Result<ExitCode, ferrum::Error> {
        let prog = pipeline.protect(&module, opts.technique)?;
        let cpu = pipeline.load(&prog)?;
        let (profile, identical) = profile_both_engines(&cpu);
        if !identical {
            eprintln!("ferrum-profile: {name}: interpreter and decoded profiles DIVERGED");
            return Ok(ExitCode::from(1));
        }
        if opts.folded {
            print!("{}", profile.pcs.folded(cpu.image()));
            return Ok(ExitCode::SUCCESS);
        }
        if opts.diff {
            let d = diff_profile(&pipeline, &module, opts.technique)?;
            if opts.json {
                let doc = Json::obj(vec![
                    ("workload", name.to_json()),
                    ("opt", pipeline.opt_level().to_json()),
                    ("diff", d.to_json()),
                ]);
                println!("{}", doc.to_string_pretty());
            } else {
                print!("{}", render_diff_sites(name, &d, opts.top));
            }
            if !d.sites_reconcile() {
                eprintln!("ferrum-profile: {name}: site overhead does not reconcile");
                return Ok(ExitCode::from(1));
            }
            return Ok(ExitCode::SUCCESS);
        }
        if opts.json {
            let doc = Json::obj(vec![
                ("workload", name.to_json()),
                ("technique", opts.technique.to_json()),
                ("opt", pipeline.opt_level().to_json()),
                ("engines_identical", Json::Bool(identical)),
                ("profile", pc_profile_to_json(cpu.image(), &profile.pcs)),
            ]);
            println!("{}", doc.to_string_pretty());
        } else {
            print!("{}", render_hotspots(name, cpu.image(), &profile.pcs, opts.top));
            println!();
            print!("{}", render_function_profile(cpu.image(), &profile.pcs));
        }
        Ok(ExitCode::SUCCESS)
    };
    run().unwrap_or_else(|e| {
        eprintln!("ferrum-profile: {name}: {e}");
        ExitCode::FAILURE
    })
}

/// Self-check for one workload at one opt level: for every technique,
/// the cross-engine profile oracle and the exact per-site
/// reconciliation down to pc granularity.
fn catalog_check(
    pipeline: &Pipeline,
    w: &Workload,
    opts: &Options,
) -> Result<Vec<CheckLine>, ferrum::Error> {
    let opt = pipeline.opt_level();
    let module = w.build(opts.scale);
    let mut lines = Vec::new();
    for technique in [
        Technique::None,
        Technique::IrEddi,
        Technique::HybridAsmEddi,
        Technique::Ferrum,
    ] {
        let prog = pipeline.protect(&module, technique)?;
        let cpu = pipeline.load(&prog)?;
        let (profile, identical) = profile_both_engines(&cpu);
        let d = diff_profile(pipeline, &module, technique)?;
        let reconciles = d.sites_reconcile();
        let total = profile.pcs.total();
        lines.push(CheckLine {
            ok: identical && reconciles,
            json: Json::obj(vec![
                ("workload", w.name.to_json()),
                ("technique", technique.to_json()),
                ("opt", opt.to_json()),
                ("dyn_insts", total.insts.to_json()),
                ("cycles", total.cycles.to_json()),
                ("sites", (d.sites.len() as u64).to_json()),
                ("engines_identical", Json::Bool(identical)),
                ("sites_reconcile", Json::Bool(reconciles)),
            ]),
            text: format!(
                "{} [{} {}]: {} dyn insts / {} cycles, {} site(s); engines {}; site sum {}",
                w.name,
                technique,
                opt.label(),
                total.insts,
                total.cycles,
                d.sites.len(),
                if identical { "identical" } else { "DIVERGED" },
                if reconciles { "exact" } else { "MISMATCH" },
            ),
        });
    }
    Ok(lines)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (parsed, opts) = match parse_args(&args, &USAGE.spec).and_then(|p| {
        let top = match p.value("--top") {
            None => 10,
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError::Message(format!("invalid --top value `{raw}`")))?,
        };
        let opts = Options {
            technique: p.technique_core(Technique::Ferrum)?,
            scale: p.scale()?,
            opt: p.opt_level()?,
            top,
            diff: p.flag("--diff"),
            folded: p.flag("--folded"),
            json: p.flag("--json"),
        };
        Ok((p, opts))
    }) {
        Ok(r) => r,
        Err(e) => return usage_exit(&USAGE.render(), &e),
    };

    if parsed.flag("--catalog") {
        let levels = ferrum_cli::catalog::catalog_levels(opts.opt);
        return catalog_exit(catalog_selfcheck("ferrum-profile", opts.json, |w| {
            let mut lines = Vec::new();
            for &o in &levels {
                let pipeline = Pipeline::new().with_opt_level(o);
                lines.extend(catalog_check(&pipeline, w, &opts)?);
            }
            Ok::<_, ferrum::Error>(lines)
        }));
    }
    match parsed.positional.as_deref() {
        Some(n) => run_one(n, &opts),
        None => usage_exit(&USAGE.render(), &ArgError::Help),
    }
}

#[cfg(test)]
mod spec_tests {
    #[test]
    fn spec_rejects_duplicate_and_swallowed_arguments() {
        ferrum_cli::args::assert_usage_consistent(&super::USAGE);
    }
}
