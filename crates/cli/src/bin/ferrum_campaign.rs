//! `ferrum-campaign` — long-running campaigns with live telemetry and
//! a resume-grade journal.
//!
//! ```text
//! usage: ferrum-campaign <workload> [options]
//!        ferrum-campaign --catalog [--json]
//!   --technique <t>   ferrum | hybrid | ir-eddi | none   (default: ferrum)
//!   --samples <n>     sampled faults (default 400)
//!   --seed <s>        campaign seed (default 0xFE44)
//!   --scale <s>       test | paper   (default: test)
//!   --opt <l>         backend optimization level 0 | 1   (default: 0)
//!   --engine <e>      interpreter | decoded   (default: interpreter)
//!   --executor <x>    serial | parallel | snapshot   (default: serial)
//!   --threads <n>     worker threads for parallel/snapshot (default 4)
//!   --events <path>   stream NDJSON events to <path> (docs/events-schema.md)
//!   --journal <path>  write-ahead journal at <path> (shard completions)
//!   --resume          resume a killed campaign from --journal
//!   --json            emit the final result as JSON instead of text
//!   --catalog         flight-recorder self-check across every workload
//! ```
//!
//! The tool protects and loads the workload, installs a
//! [`FlightRecorder`](ferrum::FlightRecorder), and runs the chosen
//! campaign executor with a live progress table on stdout.  `--events`
//! and `--journal` tee the same event stream into NDJSON files; a
//! journal cut short by a crash or kill feeds `--resume`, which
//! replays completed shards and injects only the remainder — the
//! result is byte-identical to an uninterrupted run of the same seed.
//!
//! `--catalog` runs every workload × all four techniques × both
//! engines and asserts the recorder's contract: event streams are
//! internally consistent (monotone sequence numbers, shard records
//! reassemble the exact campaign record stream, snapshot tallies sum
//! to the final stats), recording is outcome-pure (recorder on/off
//! results are identical), NDJSON round-trips losslessly, and
//! journal-resume after a simulated mid-campaign kill is
//! byte-identical with the journaled fraction reused.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ferrum::flight::{journal_from_ndjson, parse_events, NdjsonSink, StallTracker};
use ferrum::json::{Json, ToJson};
use ferrum::report::{render_flight_summary, render_progress_header, render_progress_row_flagged};
use ferrum::{
    install_flight_recorder, program_signature, resume_campaign_from_journal,
    uninstall_flight_recorder, CampaignConfig, CampaignEvent, CampaignFingerprint, CampaignResult,
    EngineKind, FlightEvent, FlightRecorder, FlightSink, JournalSnapshot, MemorySink, Pipeline,
    SnapshotPolicy, Technique, TeeSink,
};
use ferrum_cli::args::{parse_args, usage_exit, ArgError, ArgHelp, ArgSpec, UsageSpec};
use ferrum_cli::catalog::{catalog_exit, catalog_selfcheck, CheckLine};
use ferrum_faultsim::campaign::{run_campaign_on, run_campaign_parallel_on, run_campaign_snapshot_on};
use ferrum_workloads::catalog::{workload, Scale, Workload};

const USAGE: UsageSpec = UsageSpec {
    tool: "ferrum-campaign",
    forms: &["<workload> [options]", "--catalog [--json]"],
    args: &[
        ArgHelp {
            name: "--technique",
            value: Some("<t>"),
            help: "ferrum | hybrid | ir-eddi | none   (default: ferrum)",
        },
        ArgHelp {
            name: "--samples",
            value: Some("<n>"),
            help: "sampled faults (default 400)",
        },
        ArgHelp {
            name: "--seed",
            value: Some("<s>"),
            help: "campaign seed (default 0xFE44)",
        },
        ArgHelp {
            name: "--scale",
            value: Some("<s>"),
            help: "test | paper   (default: test)",
        },
        ArgHelp {
            name: "--opt",
            value: Some("<l>"),
            help: "backend optimization level 0 | 1   (default: 0;\n--catalog: both levels)",
        },
        ArgHelp {
            name: "--engine",
            value: Some("<e>"),
            help: "interpreter | decoded   (default: interpreter)",
        },
        ArgHelp {
            name: "--executor",
            value: Some("<x>"),
            help: "serial | parallel | snapshot   (default: serial)",
        },
        ArgHelp {
            name: "--threads",
            value: Some("<n>"),
            help: "worker threads for parallel/snapshot (default 4)",
        },
        ArgHelp {
            name: "--events",
            value: Some("<path>"),
            help: "stream NDJSON events to <path> (docs/events-schema.md)",
        },
        ArgHelp {
            name: "--journal",
            value: Some("<path>"),
            help: "write-ahead journal at <path> (shard completions)",
        },
        ArgHelp {
            name: "--resume",
            value: None,
            help: "resume a killed campaign from --journal: replay its\ncompleted shards, inject only the remainder, and rewrite\nthe journal complete",
        },
        ArgHelp {
            name: "--json",
            value: None,
            help: "emit the final result as JSON instead of text",
        },
        ArgHelp {
            name: "--catalog",
            value: None,
            help: "self-check across every bundled workload, all four\ntechniques, both engines: event streams internally\nconsistent (monotone seq, shard records reassemble the\ncampaign, snapshot sums equal final stats), recording\noutcome-pure, NDJSON lossless, and journal-resume after a\nsimulated mid-campaign kill byte-identical",
        },
    ],
    spec: ArgSpec {
        flags: &["--resume", "--json", "--catalog"],
        values: &[
            "--technique",
            "--samples",
            "--seed",
            "--scale",
            "--opt",
            "--engine",
            "--executor",
            "--threads",
            "--events",
            "--journal",
        ],
        positional: true,
    },
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Executor {
    Serial,
    Parallel,
    Snapshot,
}

impl Executor {
    fn parse(s: &str) -> Option<Executor> {
        match s {
            "serial" => Some(Executor::Serial),
            "parallel" => Some(Executor::Parallel),
            "snapshot" => Some(Executor::Snapshot),
            _ => None,
        }
    }
}

struct Options {
    technique: Technique,
    samples: usize,
    seed: u64,
    scale: Scale,
    opt: Option<ferrum::OptLevel>,
    engine: EngineKind,
    executor: Executor,
    threads: usize,
    events: Option<String>,
    journal: Option<String>,
    resume: bool,
    json: bool,
}

fn technique_label(t: Technique) -> &'static str {
    match t {
        Technique::None => "none",
        Technique::IrEddi => "ir-eddi",
        Technique::HybridAsmEddi => "hybrid",
        Technique::Ferrum => "ferrum",
    }
}

/// Live TTY sink: header on campaign start, one row per progress
/// snapshot, stalled workers (heartbeats silent for more than twice
/// their observed cadence) flagged on the row.  Purely observational,
/// like every flight sink.
struct LiveProgress {
    started: AtomicBool,
    tracker: std::sync::Mutex<StallTracker>,
}

impl FlightSink for LiveProgress {
    fn record_event(&self, ev: &FlightEvent) {
        if let Ok(mut t) = self.tracker.lock() {
            t.observe(ev);
        }
        match &ev.event {
            CampaignEvent::Started { fingerprint, total, shards, .. }
                if !self.started.swap(true, Ordering::Relaxed) =>
            {
                println!(
                    "campaign [{}:{}] seed {:#x}: {} faults in {} shards",
                    fingerprint.executor,
                    fingerprint.engine.label(),
                    fingerprint.seed,
                    total,
                    shards
                );
                print!("{}", render_progress_header());
            }
            CampaignEvent::Progress(p) => {
                let stalled = self
                    .tracker
                    .lock()
                    .map_or_else(|_| Vec::new(), |t| t.stalled(ev.nanos));
                print!("{}", render_progress_row_flagged(p, &stalled));
            }
            _ => {}
        }
    }
}

/// Assembles the tee of enabled sinks; `None` when nothing listens
/// (no recorder installed — the campaign runs probe-free).
fn build_sinks(opts: &Options) -> Result<Option<Arc<dyn FlightSink>>, String> {
    let mut sinks: Vec<Arc<dyn FlightSink>> = Vec::new();
    if !opts.json {
        sinks.push(Arc::new(LiveProgress {
            started: AtomicBool::new(false),
            tracker: std::sync::Mutex::new(StallTracker::new()),
        }));
    }
    if let Some(path) = &opts.events {
        sinks.push(Arc::new(
            NdjsonSink::create(path).map_err(|e| format!("--events {path}: {e}"))?,
        ));
    }
    if let Some(path) = &opts.journal {
        sinks.push(Arc::new(
            NdjsonSink::create(path).map_err(|e| format!("--journal {path}: {e}"))?,
        ));
    }
    Ok(match sinks.len() {
        0 => None,
        1 => Some(sinks.pop().expect("len 1")),
        _ => Some(Arc::new(TeeSink::new(sinks))),
    })
}

fn run_one(name: &str, opts: &Options) -> ExitCode {
    let Some(w) = workload(name) else {
        eprintln!("ferrum-campaign: unknown workload `{name}`");
        return ExitCode::FAILURE;
    };
    let cfg = CampaignConfig {
        samples: opts.samples,
        seed: opts.seed,
    };

    // Read the journal *before* sinks truncate it for rewriting.
    let journal: Option<JournalSnapshot> = if opts.resume {
        let Some(path) = &opts.journal else {
            eprintln!("ferrum-campaign: --resume needs --journal <path>");
            return ExitCode::FAILURE;
        };
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| journal_from_ndjson(&text))
        {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("ferrum-campaign: --resume {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let pipeline = Pipeline::new().with_opt_level(opts.opt.unwrap_or_default());
    let module = w.build(opts.scale);
    let run = (|| {
        let prog = pipeline.protect(&module, opts.technique)?;
        let cpu = pipeline.load(&prog)?;
        let profile = cpu.profile();

        if let Some(sink) = build_sinks(opts).map_err(ferrum::Error::msg)? {
            install_flight_recorder(Arc::new(
                FlightRecorder::new(sink)
                    .with_labels(name, technique_label(opts.technique))
                    .with_program_hash(program_signature(&prog)),
            ));
        }
        let result = opts.engine.with_cpu(&cpu, |engine| match &journal {
            Some(j) => resume_campaign_from_journal(engine, &profile, cfg, j)
                .map_err(ferrum::Error::msg),
            None => Ok(match opts.executor {
                Executor::Serial => run_campaign_on(engine, &profile, cfg),
                Executor::Parallel => {
                    run_campaign_parallel_on(engine, &profile, cfg, opts.threads)
                }
                Executor::Snapshot => run_campaign_snapshot_on(
                    engine,
                    &profile,
                    cfg,
                    opts.threads,
                    SnapshotPolicy::default(),
                ),
            }),
        });
        uninstall_flight_recorder();
        let result = result?;

        let fp = CampaignFingerprint {
            workload: name.to_owned(),
            technique: technique_label(opts.technique).to_owned(),
            executor: match (opts.resume, opts.executor) {
                (true, _) => "resume",
                (false, Executor::Serial) => "serial",
                (false, Executor::Parallel) => "parallel",
                (false, Executor::Snapshot) => "snapshot",
            }
            .to_owned(),
            engine: opts.engine,
            samples: cfg.samples,
            seed: cfg.seed,
            sites: profile.sites.len(),
            golden_dyn_insts: profile.result.dyn_insts,
            program_hash: program_signature(&prog),
        };
        Ok::<_, ferrum::Error>((fp, result))
    })();
    let (fp, result) = match run {
        Ok(r) => r,
        Err(e) => {
            uninstall_flight_recorder();
            eprintln!("ferrum-campaign: {name}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.json {
        let doc = Json::obj(vec![
            ("workload", name.to_json()),
            ("technique", technique_label(opts.technique).to_json()),
            ("executor", fp.executor.to_json()),
            ("program_hash", fp.program_hash.to_json()),
            ("sdc", result.sdc.to_json()),
            ("detected", result.detected.to_json()),
            ("crash", result.crash.to_json()),
            ("timeout", result.timeout.to_json()),
            ("benign", result.benign.to_json()),
            ("sdc_prob", result.sdc_prob().to_json()),
            ("stats", result.stats.to_json()),
        ]);
        println!("{}", doc.to_string_pretty());
    } else {
        print!("{}", render_flight_summary(&fp, &result));
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// --catalog self-check
// ---------------------------------------------------------------------------

struct StreamAudit {
    problems: Vec<String>,
    shards_completed: usize,
}

fn audit(mut v: Vec<String>, label: &str, cond: bool) -> Vec<String> {
    if !cond {
        v.push(label.to_owned());
    }
    v
}

/// Checks one captured event stream against the final result: the
/// monotone-counter and snapshot-sum consistency contract.
fn audit_stream(events: &[FlightEvent], result: &CampaignResult) -> StreamAudit {
    let mut problems = Vec::new();
    problems = audit(problems, "stream empty", !events.is_empty());
    // seq is 0..n in delivery order.
    problems = audit(
        problems,
        "seq not monotone",
        events.iter().enumerate().all(|(i, e)| e.seq == i as u64),
    );
    problems = audit(
        problems,
        "first event not started",
        matches!(events.first().map(|e| &e.event), Some(CampaignEvent::Started { .. })),
    );
    problems = audit(
        problems,
        "last event not finished",
        matches!(events.last().map(|e| &e.event), Some(CampaignEvent::Finished { .. })),
    );

    let (mut scheduled, mut declared) = (0usize, 0usize);
    if let Some(CampaignEvent::Started { total, shards, .. }) = events.first().map(|e| &e.event) {
        declared = *shards;
        problems = audit(problems, "started total != result", *total == result.total());
    }
    let mut records = Vec::new();
    let mut tallies_sum = 0usize;
    let mut shard_list = Vec::new();
    let mut last_done = 0usize;
    let mut monotone = true;
    let mut final_snapshot_ok = false;
    for ev in events {
        match &ev.event {
            CampaignEvent::ShardScheduled { .. } => scheduled += 1,
            CampaignEvent::ShardCompleted(s) => {
                tallies_sum += s.tallies.total();
                shard_list.push(s.clone());
            }
            CampaignEvent::Progress(p) => {
                monotone &= p.done >= last_done;
                last_done = p.done;
                final_snapshot_ok = p.done == p.total
                    && p.done == result.total()
                    && p.tallies.matches(result);
            }
            _ => {}
        }
    }
    shard_list.sort_by_key(|s| s.start);
    for s in &shard_list {
        records.extend(s.records.iter().copied());
    }
    problems = audit(problems, "scheduled != declared shards", scheduled == declared);
    problems = audit(problems, "completed != declared shards", shard_list.len() == declared);
    problems = audit(problems, "shard tallies != total", tallies_sum == result.total());
    problems = audit(
        problems,
        "shard records != campaign records",
        records == result.records,
    );
    problems = audit(problems, "progress not monotone", monotone);
    problems = audit(problems, "final snapshot != final stats", final_snapshot_ok);
    StreamAudit {
        problems,
        shards_completed: shard_list.len(),
    }
}

/// One workload's self-check: every technique × both engines.
fn catalog_check(
    pipeline: &Pipeline,
    w: &Workload,
    opts: &Options,
) -> Result<Vec<CheckLine>, ferrum::Error> {
    let opt = pipeline.opt_level();
    let module = w.build(opts.scale);
    let cfg = CampaignConfig {
        samples: opts.samples,
        seed: opts.seed,
    };
    let mut lines = Vec::new();
    for technique in [
        Technique::None,
        Technique::IrEddi,
        Technique::HybridAsmEddi,
        Technique::Ferrum,
    ] {
        let prog = pipeline.protect(&module, technique)?;
        let cpu = pipeline.load(&prog)?;
        let profile = cpu.profile();
        let hash = program_signature(&prog);
        for engine in EngineKind::ALL {
            // Baseline without a recorder: the purity reference.
            let bare = engine.with_cpu(&cpu, |e| run_campaign_on(e, &profile, cfg));

            // Recorded run.
            let sink = Arc::new(MemorySink::new());
            install_flight_recorder(Arc::new(
                FlightRecorder::new(sink.clone())
                    .with_labels(w.name, technique_label(technique))
                    .with_program_hash(hash),
            ));
            let recorded = engine.with_cpu(&cpu, |e| run_campaign_on(e, &profile, cfg));
            uninstall_flight_recorder();
            let events = sink.events();

            let mut a = audit_stream(&events, &recorded);
            a.problems = audit(a.problems, "recording not outcome-pure", recorded == bare);

            // NDJSON round-trip on the real stream.
            let ndjson: String = events
                .iter()
                .map(|e| ferrum::flight::event_to_ndjson(e) + "\n")
                .collect();
            let round = parse_events(&ndjson).unwrap_or_default();
            a.problems = audit(a.problems, "ndjson round-trip lossy", round == events);

            // Simulated mid-campaign kill: truncate the stream right
            // after half the shard completions, resume from what's
            // left of the journal.
            let kill_after = a.shards_completed / 2;
            let mut seen = 0usize;
            let cut = events
                .iter()
                .position(|e| {
                    if matches!(e.event, CampaignEvent::ShardCompleted(_)) {
                        seen += 1;
                    }
                    seen == kill_after.max(1)
                })
                .map_or(events.len(), |i| i + 1);
            let truncated = &events[..cut];
            let (resume_ok, reused_ok) = match JournalSnapshot::from_events(truncated) {
                Some(journal) if !journal.finished => {
                    let completed = journal.completed();
                    match engine
                        .with_cpu(&cpu, |e| resume_campaign_from_journal(e, &profile, cfg, &journal))
                    {
                        Ok(resumed) => (
                            resumed == bare,
                            resumed.stats.reused_sites == completed && completed > 0,
                        ),
                        Err(_) => (false, false),
                    }
                }
                _ => (false, false),
            };
            a.problems = audit(a.problems, "resume not byte-identical", resume_ok);
            a.problems = audit(a.problems, "resume reuse wrong", reused_ok);

            let ok = a.problems.is_empty();
            lines.push(CheckLine {
                ok,
                json: Json::obj(vec![
                    ("workload", w.name.to_json()),
                    ("technique", technique_label(technique).to_json()),
                    ("opt", opt.to_json()),
                    ("engine", engine.label().to_json()),
                    ("events", events.len().to_json()),
                    ("shards", a.shards_completed.to_json()),
                    (
                        "problems",
                        Json::Arr(a.problems.iter().map(|p| p.as_str().to_json()).collect()),
                    ),
                ]),
                text: format!(
                    "{}/{} [{}/{}]: {} events, {} shards — {}",
                    w.name,
                    technique_label(technique),
                    engine.label(),
                    opt.label(),
                    events.len(),
                    a.shards_completed,
                    if ok {
                        "stream consistent, pure, resume identical".to_owned()
                    } else {
                        a.problems.join("; ")
                    },
                ),
            });
        }
    }
    Ok(lines)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (parsed, opts) = match parse_args(&args, &USAGE.spec).and_then(|p| {
        let executor = match p.value("--executor") {
            None => Executor::Serial,
            Some(s) => Executor::parse(s).ok_or_else(|| {
                ArgError::Message(format!(
                    "unknown executor `{s}` (serial | parallel | snapshot)"
                ))
            })?,
        };
        let threads = match p.value("--threads") {
            None => 4,
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError::Message(format!("`--threads` cannot parse `{raw}`")))?,
        };
        let opts = Options {
            technique: p.technique_core(Technique::Ferrum)?,
            samples: p.samples(400)?,
            seed: p.seed(0xFE44)?,
            scale: p.scale()?,
            opt: p.opt_level()?,
            engine: p.engine()?,
            executor,
            threads,
            events: p.value("--events").map(str::to_owned),
            journal: p.value("--journal").map(str::to_owned),
            resume: p.flag("--resume"),
            json: p.flag("--json"),
        };
        Ok((p, opts))
    }) {
        Ok(r) => r,
        Err(e) => return usage_exit(&USAGE.render(), &e),
    };

    if parsed.flag("--catalog") {
        let levels = ferrum_cli::catalog::catalog_levels(opts.opt);
        return catalog_exit(catalog_selfcheck("ferrum-campaign", opts.json, |w| {
            let mut lines = Vec::new();
            for &o in &levels {
                let pipeline = Pipeline::new().with_opt_level(o);
                lines.extend(catalog_check(&pipeline, w, &opts)?);
            }
            Ok::<_, ferrum::Error>(lines)
        }));
    }
    match parsed.positional.as_deref() {
        Some(n) => run_one(n, &opts),
        None => usage_exit(&USAGE.render(), &ArgError::Help),
    }
}

#[cfg(test)]
mod spec_tests {
    #[test]
    fn spec_rejects_duplicate_and_swallowed_arguments() {
        ferrum_cli::args::assert_usage_consistent(&super::USAGE);
    }
}
