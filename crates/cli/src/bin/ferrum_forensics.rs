//! `ferrum-forensics` — differential-replay SDC forensics.
//!
//! ```text
//! usage: ferrum-forensics <workload> [options]
//!        ferrum-forensics --catalog [--json]
//!   --technique <t>   ferrum | hybrid | ir-eddi | none   (default: ferrum)
//!   --samples <n>     faults for the campaign (default 400)
//!   --seed <s>        campaign seed (default 0xFE44)
//!   --scale <s>       test | paper   (default: test)
//!   --opt <l>         backend optimization level 0 | 1   (default: 0)
//!   --outcome <o>     sdc | detected | crash | timeout | benign | all
//!                     — which campaign outcomes to replay (default: sdc)
//!   --records <n>     cap on fully analyzed records (default 64)
//!   --show <n>        print the first n full incident records (default 3)
//!   --no-bisect       skip kill-window bisection (faster)
//!   --json            emit the report as JSON instead of text
//!   --catalog         self-check across every bundled workload under
//!                     FERRUM and IR-EDDI: the forensic campaign must be
//!                     outcome-identical to the serial engine, every
//!                     analyzed record must locate its divergence at the
//!                     injected site, at least 90% must carry a
//!                     classified escape reason, and every bisected kill
//!                     window must contain the injection
//! ```
//!
//! The tool protects the workload, runs a fault campaign with
//! differential replay attached ([`ferrum::run_campaign_forensic`]),
//! and explains each selected outcome: first architectural divergence,
//! taint fan-out, the checkers that ran afterwards with classified
//! escape reasons, and the bisected kill window.  SDC records are then
//! cross-linked to the static coverage map so every statically-`Unknown`
//! site that produced an SDC gets a measured explanation.

use std::process::ExitCode;

use ferrum::json::{Json, ToJson};
use ferrum::report::{
    render_forensic_record, render_forensics_report, render_unknown_site_explanations,
};
use ferrum::{
    explain_unknown_sites, run_campaign_forensic, CampaignConfig, CoverageMap, ForensicConfig,
    Outcome, Pipeline, Technique,
};
use ferrum_cli::args::{parse_args, usage_exit, ArgError, ArgHelp, ArgSpec, ParsedArgs, UsageSpec};
use ferrum_cli::catalog::{catalog_exit, catalog_selfcheck, CheckLine};
use ferrum_faultsim::campaign::run_campaign;
use ferrum_workloads::catalog::{workload, Scale, Workload};

const USAGE: UsageSpec = UsageSpec {
    tool: "ferrum-forensics",
    forms: &["<workload> [options]", "--catalog [--json]"],
    args: &[
        ArgHelp {
            name: "--technique",
            value: Some("<t>"),
            help: "ferrum | hybrid | ir-eddi | none   (default: ferrum)",
        },
        ArgHelp {
            name: "--samples",
            value: Some("<n>"),
            help: "faults for the campaign (default 400)",
        },
        ArgHelp {
            name: "--seed",
            value: Some("<s>"),
            help: "campaign seed (default 0xFE44)",
        },
        ArgHelp {
            name: "--scale",
            value: Some("<s>"),
            help: "test | paper   (default: test)",
        },
        ArgHelp {
            name: "--opt",
            value: Some("<l>"),
            help: "backend optimization level 0 | 1   (default: 0;\n--catalog: both levels)",
        },
        ArgHelp {
            name: "--outcome",
            value: Some("<o>"),
            help: "sdc | detected | crash | timeout | benign | all\n-- which campaign outcomes to replay (default: sdc)",
        },
        ArgHelp {
            name: "--records",
            value: Some("<n>"),
            help: "cap on fully analyzed records (default 64)",
        },
        ArgHelp {
            name: "--show",
            value: Some("<n>"),
            help: "print the first n full incident records (default 3)",
        },
        ArgHelp {
            name: "--no-bisect",
            value: None,
            help: "skip kill-window bisection (faster)",
        },
        ArgHelp {
            name: "--json",
            value: None,
            help: "emit the report as JSON instead of text",
        },
        ArgHelp {
            name: "--catalog",
            value: None,
            help: "self-check across every bundled workload under\nFERRUM and IR-EDDI: the forensic campaign must be\noutcome-identical to the serial engine, every record\nmust locate its divergence at the injected site, and\nevery bisected kill window must contain the injection",
        },
    ],
    spec: ArgSpec {
        flags: &["--json", "--catalog", "--no-bisect"],
        values: &[
            "--technique",
            "--samples",
            "--seed",
            "--scale",
            "--opt",
            "--outcome",
            "--records",
            "--show",
        ],
        positional: true,
    },
};

struct Options {
    technique: Technique,
    samples: usize,
    seed: u64,
    scale: Scale,
    opt: Option<ferrum::OptLevel>,
    fcfg: ForensicConfig,
    show: usize,
    json: bool,
}

fn parse_outcomes(p: &ParsedArgs) -> Result<Vec<Outcome>, ArgError> {
    match p.value("--outcome") {
        None | Some("sdc") => Ok(vec![Outcome::Sdc]),
        Some("detected") => Ok(vec![Outcome::Detected]),
        Some("crash") => Ok(vec![Outcome::Crash]),
        Some("timeout") => Ok(vec![Outcome::Timeout]),
        Some("benign") => Ok(vec![Outcome::Benign]),
        Some("all") => Ok(Outcome::ALL.to_vec()),
        Some(other) => Err(ArgError::Message(format!(
            "unknown outcome `{other}` (sdc | detected | crash | timeout | benign | all)"
        ))),
    }
}

fn options(p: &ParsedArgs) -> Result<Options, ArgError> {
    let defaults = ForensicConfig::default();
    let records = match p.value("--records") {
        None => defaults.max_records,
        Some(raw) => raw
            .parse()
            .map_err(|_| ArgError::Message(format!("`--records` cannot parse `{raw}`")))?,
    };
    let show = match p.value("--show") {
        None => 3,
        Some(raw) => raw
            .parse()
            .map_err(|_| ArgError::Message(format!("`--show` cannot parse `{raw}`")))?,
    };
    Ok(Options {
        technique: p.technique_core(Technique::Ferrum)?,
        samples: p.samples(400)?,
        seed: p.seed(0xFE44)?,
        scale: p.scale()?,
        opt: p.opt_level()?,
        fcfg: ForensicConfig {
            outcomes: parse_outcomes(p)?,
            max_records: records,
            bisect: !p.flag("--no-bisect"),
            ..defaults
        },
        show,
        json: p.flag("--json"),
    })
}

fn technique_label(t: Technique) -> &'static str {
    match t {
        Technique::None => "none",
        Technique::IrEddi => "ir-eddi",
        Technique::HybridAsmEddi => "hybrid",
        Technique::Ferrum => "ferrum",
    }
}

fn run_one(name: &str, opts: &Options) -> ExitCode {
    let Some(w) = workload(name) else {
        eprintln!("ferrum-forensics: unknown workload `{name}`");
        return ExitCode::FAILURE;
    };
    let pipeline = Pipeline::new().with_opt_level(opts.opt.unwrap_or_default());
    let module = w.build(opts.scale);
    let cfg = CampaignConfig {
        samples: opts.samples,
        seed: opts.seed,
    };
    let (campaign, report, explanations) = match (|| {
        let prog = pipeline.protect(&module, opts.technique)?;
        let map = CoverageMap::analyze(&prog);
        let cpu = pipeline.load(&prog)?;
        let profile = cpu.profile();
        let (campaign, report) = run_campaign_forensic(&cpu, &profile, cfg, &opts.fcfg);
        let explanations = explain_unknown_sites(&profile, &map, &report);
        Ok::<_, ferrum::Error>((campaign, report, explanations))
    })() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ferrum-forensics: {name}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let label = format!("{name} ({})", technique_label(opts.technique));
    if opts.json {
        let doc = Json::obj(vec![
            ("workload", name.to_json()),
            ("technique", technique_label(opts.technique).to_json()),
            ("sdc", campaign.sdc.to_json()),
            ("detected", campaign.detected.to_json()),
            ("crash", campaign.crash.to_json()),
            ("timeout", campaign.timeout.to_json()),
            ("benign", campaign.benign.to_json()),
            ("forensics", report.to_json()),
            ("unknown_site_explanations", explanations.to_json()),
        ]);
        println!("{}", doc.to_string_pretty());
    } else {
        println!(
            "campaign ({} faults): SDC {}  detected {}  crash {}  timeout {}  benign {}",
            campaign.total(),
            campaign.sdc,
            campaign.detected,
            campaign.crash,
            campaign.timeout,
            campaign.benign
        );
        print!("{}", render_forensics_report(&label, &report));
        for rec in report.records.iter().take(opts.show) {
            println!();
            print!("{}", render_forensic_record(rec));
        }
        println!();
        print!("{}", render_unknown_site_explanations(&explanations));
    }
    ExitCode::SUCCESS
}

/// Self-check for one workload under one technique: the forensic
/// campaign must be a transparent wrapper (outcome-identical to the
/// serial engine for the same seed), every record must locate its first
/// divergence exactly at the injected site, at least 90% of the records
/// must carry a classified escape reason, and every bisected,
/// non-escaped kill window must contain the injection boundary.
fn check_one(
    pipeline: &Pipeline,
    w: &Workload,
    technique: Technique,
    opts: &Options,
) -> Result<CheckLine, ferrum::Error> {
    let opt = pipeline.opt_level();
    let module = w.build(opts.scale);
    let prog = pipeline.protect(&module, technique)?;
    let cpu = pipeline.load(&prog)?;
    let profile = cpu.profile();
    let cfg = CampaignConfig {
        samples: opts.samples,
        seed: opts.seed,
    };
    let serial = run_campaign(&cpu, &profile, cfg);
    let (forensic, report) = run_campaign_forensic(&cpu, &profile, cfg, &opts.fcfg);

    let identical = forensic == serial;
    let located = report.records.iter().all(|r| {
        r.divergence
            .is_some_and(|d| d.dyn_index == r.fault.dyn_index)
    });
    let classified = report.analyzed() == 0
        || report.classified() as f64 >= 0.9 * report.analyzed() as f64;
    let windows_ok = report.records.iter().all(|r| {
        r.kill_window
            .is_none_or(|kw| kw.escaped || kw.contains(r.fault.dyn_index))
    });

    let label = technique_label(technique);
    Ok(CheckLine {
        ok: identical && located && classified && windows_ok,
        json: Json::obj(vec![
            ("workload", w.name.to_json()),
            ("technique", label.to_json()),
            ("opt", opt.to_json()),
            ("sdc", forensic.sdc.to_json()),
            ("analyzed", report.analyzed().to_json()),
            ("outcomes_identical", Json::Bool(identical)),
            ("divergences_located", Json::Bool(located)),
            ("classified", report.classified().to_json()),
            ("kill_windows_sound", Json::Bool(windows_ok)),
        ]),
        text: format!(
            "{}/{label} [{}]: {} SDC, {} analyzed ({} classified); outcomes {}; divergences {}; kill windows {}",
            w.name,
            opt.label(),
            forensic.sdc,
            report.analyzed(),
            report.classified(),
            if identical { "identical" } else { "DIVERGED" },
            if located { "located" } else { "MISLOCATED" },
            if windows_ok { "sound" } else { "UNSOUND" },
        ),
    })
}

fn catalog_check(
    pipeline: &Pipeline,
    w: &Workload,
    opts: &Options,
) -> Result<Vec<CheckLine>, ferrum::Error> {
    [Technique::Ferrum, Technique::IrEddi]
        .into_iter()
        .map(|t| check_one(pipeline, w, t, opts))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args, &USAGE.spec) {
        Ok(p) => p,
        Err(e) => return usage_exit(&USAGE.render(), &e),
    };
    let opts = match options(&parsed) {
        Ok(o) => o,
        Err(e) => return usage_exit(&USAGE.render(), &e),
    };

    if parsed.flag("--catalog") {
        let levels = ferrum_cli::catalog::catalog_levels(opts.opt);
        return catalog_exit(catalog_selfcheck("ferrum-forensics", opts.json, |w| {
            let mut lines = Vec::new();
            for &o in &levels {
                let pipeline = Pipeline::new().with_opt_level(o);
                lines.extend(catalog_check(&pipeline, w, &opts)?);
            }
            Ok::<_, ferrum::Error>(lines)
        }));
    }
    match parsed.positional.as_deref() {
        Some(n) => run_one(n, &opts),
        None => usage_exit(&USAGE.render(), &ArgError::Help),
    }
}

#[cfg(test)]
mod spec_tests {
    #[test]
    fn spec_rejects_duplicate_and_swallowed_arguments() {
        ferrum_cli::args::assert_usage_consistent(&super::USAGE);
    }
}
