//! `ferrum-cpu` — execution-engine self-check and single-run driver.
//!
//! ```text
//! usage: ferrum-cpu <workload> [options]
//!        ferrum-cpu --selfcheck [--json]
//!   --technique <t>  ferrum | hybrid | ir-eddi | none  (default: ferrum)
//!   --scale <s>      test | paper   (default: test)
//!   --engine <e>     interpreter | decoded   (default: interpreter)
//!   --json           emit the run result as JSON instead of text
//!   --selfcheck      engine-identity sweep: every bundled workload ×
//!                    every technique, asserting that the decode-once
//!                    flattened engine reproduces the reference
//!                    interpreter byte-for-byte — same run result and
//!                    the same profile (injectable sites, provenance
//!                    counts, mechanism counts, golden output)
//! ```
//!
//! The self-check is the tier-1 gate for `ferrum_cpu::decoded`: any
//! divergence between the two engines on any workload/technique pair
//! fails the sweep with a per-pair verdict line.

use std::process::ExitCode;

use ferrum::json::{Json, ToJson};
use ferrum::{DecodedCpu, Pipeline, Technique};
use ferrum_cli::args::{parse_args, usage_exit, ArgError, ArgHelp, ArgSpec, UsageSpec};
use ferrum_cli::catalog::{catalog_exit, catalog_selfcheck, CheckLine};
use ferrum_cpu::run::{Cpu, Profile};
use ferrum_faultsim::EngineKind;
use ferrum_workloads::catalog::{workload, Scale, Workload};

const USAGE: UsageSpec = UsageSpec {
    tool: "ferrum-cpu",
    forms: &["<workload> [options]", "--selfcheck [--json]"],
    args: &[
        ArgHelp {
            name: "--technique",
            value: Some("<t>"),
            help: "ferrum | hybrid | ir-eddi | none  (default: ferrum)",
        },
        ArgHelp {
            name: "--scale",
            value: Some("<s>"),
            help: "test | paper   (default: test)",
        },
        ArgHelp {
            name: "--engine",
            value: Some("<e>"),
            help: "interpreter | decoded   (default: interpreter)",
        },
        ArgHelp {
            name: "--opt",
            value: Some("<l>"),
            help: "backend optimization level 0 | 1   (default: 0;\n--selfcheck: both levels)",
        },
        ArgHelp {
            name: "--json",
            value: None,
            help: "emit the run result as JSON instead of text",
        },
        ArgHelp {
            name: "--selfcheck",
            value: None,
            help: "engine-identity sweep: every bundled workload x\nevery technique, asserting that the decode-once\nflattened engine reproduces the reference\ninterpreter byte-for-byte",
        },
    ],
    spec: ArgSpec {
        flags: &["--json", "--selfcheck"],
        values: &["--technique", "--scale", "--engine", "--opt"],
        positional: true,
    },
};

const TECHNIQUES: [Technique; 4] = [
    Technique::None,
    Technique::IrEddi,
    Technique::HybridAsmEddi,
    Technique::Ferrum,
];

fn load(
    w: &Workload,
    technique: Technique,
    scale: Scale,
    opt: ferrum::OptLevel,
) -> Result<Cpu, ferrum::Error> {
    let pipeline = Pipeline::new().with_opt_level(opt);
    let module = w.build(scale);
    let prog = pipeline.protect(&module, technique)?;
    pipeline.load(&prog)
}

fn profiles_match(a: &Profile, b: &Profile) -> bool {
    a.sites == b.sites
        && a.prov_counts == b.prov_counts
        && a.mech_counts == b.mech_counts
        && a.result == b.result
}

/// Engine-identity check for one workload: run + profile identity of
/// the decoded engine against the interpreter, per technique.
fn selfcheck(w: &Workload, opt: ferrum::OptLevel) -> Result<Vec<CheckLine>, ferrum::Error> {
    let mut lines = Vec::new();
    for technique in TECHNIQUES {
        let cpu = load(w, technique, Scale::Test, opt)?;
        let decoded = DecodedCpu::new(&cpu);
        let run_ok = decoded.run(None) == cpu.run(None);
        let (ip, dp) = (cpu.profile(), decoded.profile());
        let profile_ok = profiles_match(&ip, &dp);
        lines.push(CheckLine {
            ok: run_ok && profile_ok,
            json: Json::obj(vec![
                ("workload", w.name.to_json()),
                ("technique", technique.label().to_json()),
                ("opt", opt.to_json()),
                ("run_identical", Json::Bool(run_ok)),
                ("profile_identical", Json::Bool(profile_ok)),
                ("sites", ip.sites.len().to_json()),
                ("superinstructions", decoded.superinstructions().to_json()),
            ]),
            text: format!(
                "{}/{} [{}]: run {}, profile {} ({} sites, {} superinstructions)",
                w.name,
                technique.label(),
                opt.label(),
                if run_ok { "identical" } else { "DIVERGED" },
                if profile_ok { "identical" } else { "DIVERGED" },
                ip.sites.len(),
                decoded.superinstructions(),
            ),
        });
    }
    Ok(lines)
}

fn run_one(
    name: &str,
    technique: Technique,
    scale: Scale,
    engine: EngineKind,
    opt: ferrum::OptLevel,
    json: bool,
) -> ExitCode {
    let Some(w) = workload(name) else {
        eprintln!("ferrum-cpu: unknown workload `{name}`");
        return ExitCode::FAILURE;
    };
    let cpu = match load(&w, technique, scale, opt) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ferrum-cpu: {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let r = engine.with_cpu(&cpu, |e| e.run(None));
    let correct = r.output == w.oracle(scale);
    if json {
        let doc = Json::obj(vec![
            ("workload", name.to_json()),
            ("technique", technique.label().to_json()),
            ("engine", engine.label().to_json()),
            ("stop", format!("{:?}", r.stop).to_json()),
            ("output", Json::Arr(r.output.iter().map(|&x| Json::Int(x)).collect())),
            ("output_correct", Json::Bool(correct)),
            ("cycles", r.cycles.to_json()),
            ("dyn_insts", r.dyn_insts.to_json()),
        ]);
        println!("{}", doc.to_string_pretty());
    } else {
        println!(
            "{name}/{} on {}: {:?}, {} dyn insts, {} cycles, output {}",
            technique.label(),
            engine.label(),
            r.stop,
            r.dyn_insts,
            r.cycles,
            if correct { "correct" } else { "WRONG" },
        );
    }
    if correct {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args, &USAGE.spec) {
        Ok(p) => p,
        Err(e) => return usage_exit(&USAGE.render(), &e),
    };
    let json = parsed.flag("--json");
    if parsed.flag("--selfcheck") {
        let levels = match parsed.opt_level() {
            Ok(o) => ferrum_cli::catalog::catalog_levels(o),
            Err(e) => return usage_exit(&USAGE.render(), &e),
        };
        return catalog_exit(catalog_selfcheck("ferrum-cpu", json, |w| {
            let mut lines = Vec::new();
            for &o in &levels {
                lines.extend(selfcheck(w, o)?);
            }
            Ok::<_, ferrum::Error>(lines)
        }));
    }
    let opts = match parsed.technique_core(Technique::Ferrum).and_then(|t| {
        Ok((
            t,
            parsed.scale()?,
            parsed.engine()?,
            parsed.opt_level()?.unwrap_or_default(),
        ))
    }) {
        Ok(o) => o,
        Err(e) => return usage_exit(&USAGE.render(), &e),
    };
    match parsed.positional.as_deref() {
        Some(n) => run_one(n, opts.0, opts.1, opts.2, opts.3, json),
        None => usage_exit(&USAGE.render(), &ArgError::Help),
    }
}

#[cfg(test)]
mod spec_tests {
    #[test]
    fn spec_rejects_duplicate_and_swallowed_arguments() {
        ferrum_cli::args::assert_usage_consistent(&super::USAGE);
    }
}
