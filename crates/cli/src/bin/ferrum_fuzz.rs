//! `ferrum-fuzz` — differential fuzzing of the compile + protect
//! pipeline.
//!
//! ```text
//! usage: ferrum-fuzz [options]
//!   --programs <n>   programs to generate and check (default 200)
//!   --seed <s>       seed of the first program; program i uses s+i
//!                    (default 42)
//!   --samples <n>    faults for each coverage cross-check campaign
//!                    (default 25; 0 disables the campaign stage)
//!   --json           emit the final report as JSON instead of text
//! ```
//!
//! Each seeded program is pushed through the whole oracle stack
//! (`ferrum_fuzz::harness`): MIR interpreter vs `-O0` vs `-O1` on
//! both execution engines, pass-bundle idempotence and stat
//! exactness, protection transparency and lint cleanliness for every
//! technique at both levels, and static-coverage soundness under a
//! small pruned-vs-serial campaign.  Exit status 0 means every check
//! of every program agreed; 1 means at least one divergence (each is
//! printed with its seed, stage, and detail — pin it in
//! `tests/fuzz_regressions.rs`).

use std::process::ExitCode;

use ferrum::json::{Json, ToJson};
use ferrum_cli::args::{parse_args, usage_exit, ArgError, ArgHelp, ArgSpec, UsageSpec};
use ferrum_fuzz::{run_fuzz, FuzzConfig};

const USAGE: UsageSpec = UsageSpec {
    tool: "ferrum-fuzz",
    forms: &["[options]"],
    args: &[
        ArgHelp {
            name: "--programs",
            value: Some("<n>"),
            help: "programs to generate and check (default 200)",
        },
        ArgHelp {
            name: "--seed",
            value: Some("<s>"),
            help: "seed of the first program; program i uses s+i\n(default 42)",
        },
        ArgHelp {
            name: "--samples",
            value: Some("<n>"),
            help: "faults for each coverage cross-check campaign\n(default 25; 0 disables the campaign stage)",
        },
        ArgHelp {
            name: "--json",
            value: None,
            help: "emit the final report as JSON instead of text",
        },
    ],
    spec: ArgSpec {
        flags: &["--json"],
        values: &["--programs", "--seed", "--samples"],
        positional: false,
    },
};

fn parse_u64(p: &ferrum_cli::args::ParsedArgs, name: &str, default: u64) -> Result<u64, ArgError> {
    match p.value(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| ArgError::Message(format!("`{name}` cannot parse `{raw}`"))),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, json) = match parse_args(&args, &USAGE.spec).and_then(|p| {
        let cfg = FuzzConfig {
            programs: parse_u64(&p, "--programs", 200)?,
            base_seed: parse_u64(&p, "--seed", 42)?,
            campaign_samples: parse_u64(&p, "--samples", 25)? as usize,
        };
        Ok((cfg, p.flag("--json")))
    }) {
        Ok(r) => r,
        Err(e) => return usage_exit(&USAGE.render(), &e),
    };

    let report = run_fuzz(&cfg, |done, rep| {
        if !json && done % 100 == 0 {
            println!(
                "  {done}/{} programs, {} checks, {} divergences",
                cfg.programs,
                rep.checks,
                rep.divergences.len()
            );
        }
    });

    if json {
        let doc = Json::obj(vec![
            ("programs", report.programs.to_json()),
            ("base_seed", cfg.base_seed.to_json()),
            ("campaign_samples", cfg.campaign_samples.to_json()),
            ("checks", report.checks.to_json()),
            ("mir_insts", report.mir_insts.to_json()),
            (
                "divergences",
                Json::Arr(
                    report
                        .divergences
                        .iter()
                        .map(|d| {
                            Json::obj(vec![
                                ("seed", d.seed.to_json()),
                                ("stage", d.stage.to_json()),
                                ("detail", d.detail.as_str().to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", doc.to_string_pretty());
    } else {
        println!(
            "ferrum-fuzz: {} programs (seeds {}..{}), {} checks, {} MIR insts generated",
            report.programs,
            cfg.base_seed,
            cfg.base_seed + report.programs,
            report.checks,
            report.mir_insts
        );
        for d in &report.divergences {
            println!("  DIVERGENCE seed {} [{}]: {}", d.seed, d.stage, d.detail);
        }
        println!(
            "result: {}",
            if report.is_clean() {
                "clean — every layer agreed on every program".to_owned()
            } else {
                format!("{} divergences", report.divergences.len())
            }
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

#[cfg(test)]
mod spec_tests {
    #[test]
    fn spec_rejects_duplicate_and_swallowed_arguments() {
        ferrum_cli::args::assert_usage_consistent(&super::USAGE);
    }
}
