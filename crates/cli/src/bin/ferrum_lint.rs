//! `ferrum-lint` — static protection-soundness analysis.
//!
//! ```text
//! usage: ferrum-lint <input.s | -> [options]
//!        ferrum-lint --catalog [--json]
//!   --technique <t>   ferrum | ferrum-zmm | scalar   (default: ferrum)
//!   --json            emit the report as JSON instead of text
//!   --catalog         self-check: protect every bundled workload under
//!                     FERRUM and the hybrid baseline, lint each result
//! ```
//!
//! The listing is protected *in-memory* and the pass output linted
//! directly: a printed listing has lost the provenance tags
//! (`Provenance::Protection`) the lint keys on.  Exit status 0 means
//! every report was clean; 1 means at least one contract violation.

use std::io::Read;
use std::process::ExitCode;

use ferrum::json::ToJson;
use ferrum::report::render_lint_report;
use ferrum_asm::analysis::lint::{lint_program, lint_program_with, LintReport};
use ferrum_cli::catalog::{catalog_exit, catalog_selfcheck, CheckLine};
use ferrum_cli::{lint_listing, CliTechnique};
use ferrum_eddi::ferrum::Ferrum;
use ferrum_eddi::hybrid::HybridAsmEddi;
use ferrum_workloads::catalog::Scale;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ferrum-lint <input.s | -> [--technique ferrum|ferrum-zmm|scalar] [--json]\n       ferrum-lint --catalog [--json]"
    );
    ExitCode::from(2)
}

fn emit(rep: &LintReport, label: &str, json: bool) {
    if json {
        println!("{}", rep.to_json().to_string_pretty());
    } else {
        print!("{label}: {}", render_lint_report(rep));
    }
}

/// Protects every catalog workload under FERRUM (manifest-driven) and
/// the hybrid baseline and lints each result — one [`CheckLine`] per
/// technique, driven by the shared [`catalog_selfcheck`] loop.
fn catalog_check(w: &ferrum_workloads::Workload) -> Result<Vec<CheckLine>, String> {
    let m = w.build(Scale::Test);
    let asm = ferrum_backend::compile(&m).map_err(|e| format!("compile failed: {e}"))?;
    let ferrum_rep = Ferrum::new()
        .protect_with_manifest(&asm)
        .map(|(prot, manifests)| lint_program_with(&prot, &manifests))
        .map_err(|e| format!("ferrum pass failed: {e}"))?;
    let hybrid_rep = HybridAsmEddi::new()
        .protect(&m)
        .map(|prot| lint_program(&prot))
        .map_err(|e| format!("hybrid pass failed: {e}"))?;
    Ok([("ferrum", ferrum_rep), ("hybrid", hybrid_rep)]
        .into_iter()
        .map(|(label, rep)| CheckLine {
            ok: rep.is_clean(),
            json: rep.to_json(),
            text: if rep.is_clean() {
                format!("{}/{label}: clean ({} insts)", w.name, rep.insts_scanned)
            } else {
                format!("{}/{label}: {}", w.name, render_lint_report(&rep))
                    .trim_end()
                    .to_owned()
            },
        })
        .collect())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        return usage();
    }
    let mut input: Option<String> = None;
    let mut technique = CliTechnique::Ferrum;
    let mut json = false;
    let mut catalog = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--catalog" => catalog = true,
            "--technique" => {
                let Some(t) = it.next().and_then(|s| CliTechnique::parse(s)) else {
                    eprintln!("unknown technique (ferrum | ferrum-zmm | scalar)");
                    return ExitCode::from(2);
                };
                technique = t;
            }
            other if input.is_none() && !other.starts_with("--") => {
                input = Some(other.to_owned());
            }
            other => {
                eprintln!("unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if catalog {
        return catalog_exit(catalog_selfcheck("ferrum-lint", json, catalog_check));
    }

    let Some(input) = input else {
        return usage();
    };
    let text = if input == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("failed to read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read `{input}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    match lint_listing(&text, technique) {
        Ok(rep) => {
            let clean = rep.is_clean();
            emit(&rep, &format!("{input} [{technique}]"), json);
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("ferrum-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
