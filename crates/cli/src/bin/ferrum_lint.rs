//! `ferrum-lint` — static protection-soundness analysis.
//!
//! ```text
//! usage: ferrum-lint <input.s | -> [options]
//!        ferrum-lint --catalog [--json]
//!   --technique <t>   ferrum | ferrum-zmm | scalar   (default: ferrum)
//!   --json            emit the report as JSON instead of text
//!   --catalog         self-check: protect every bundled workload under
//!                     FERRUM and the hybrid baseline, lint each result
//! ```
//!
//! The listing is protected *in-memory* and the pass output linted
//! directly: a printed listing has lost the provenance tags
//! (`Provenance::Protection`) the lint keys on.  Exit status 0 means
//! every report was clean; 1 means at least one contract violation.

use std::io::Read;
use std::process::ExitCode;

use ferrum::json::ToJson;
use ferrum::report::render_lint_report;
use ferrum_asm::analysis::lint::{lint_program, lint_program_with, LintReport};
use ferrum_cli::args::{parse_args, usage_exit, ArgError, ArgHelp, ArgSpec, UsageSpec};
use ferrum_cli::catalog::{catalog_exit, catalog_selfcheck, CheckLine};
use ferrum_cli::lint_listing;
use ferrum_eddi::ferrum::Ferrum;
use ferrum_eddi::hybrid::HybridAsmEddi;
use ferrum_workloads::catalog::Scale;

const USAGE: UsageSpec = UsageSpec {
    tool: "ferrum-lint",
    forms: &["<input.s | -> [options]", "--catalog [--json]"],
    args: &[
        ArgHelp {
            name: "--technique",
            value: Some("<t>"),
            help: "ferrum | ferrum-zmm | scalar   (default: ferrum)",
        },
        ArgHelp {
            name: "--opt",
            value: Some("<l>"),
            help: "backend optimization level for --catalog\n0 | 1   (default: both levels)",
        },
        ArgHelp {
            name: "--json",
            value: None,
            help: "emit the report as JSON instead of text",
        },
        ArgHelp {
            name: "--catalog",
            value: None,
            help: "self-check: protect every bundled workload under\nFERRUM and the hybrid baseline, lint each result",
        },
    ],
    spec: ArgSpec {
        flags: &["--json", "--catalog"],
        values: &["--technique", "--opt"],
        positional: true,
    },
};

fn emit(rep: &LintReport, label: &str, json: bool) {
    if json {
        println!("{}", rep.to_json().to_string_pretty());
    } else {
        print!("{label}: {}", render_lint_report(rep));
    }
}

/// Protects every catalog workload under FERRUM (manifest-driven) and
/// the hybrid baseline and lints each result — one [`CheckLine`] per
/// technique, driven by the shared [`catalog_selfcheck`] loop.
fn catalog_check(
    w: &ferrum_workloads::Workload,
    opt: ferrum_backend::OptLevel,
) -> Result<Vec<CheckLine>, String> {
    let m = w.build(Scale::Test);
    let asm = ferrum_backend::compile_opt(&m, opt).map_err(|e| format!("compile failed: {e}"))?;
    let ferrum_rep = Ferrum::new()
        .protect_with_manifest(&asm)
        .map(|(prot, manifests)| lint_program_with(&prot, &manifests))
        .map_err(|e| format!("ferrum pass failed: {e}"))?;
    let hybrid_rep = HybridAsmEddi::new()
        .protect_opt(&m, opt)
        .map(|(prot, _)| lint_program(&prot))
        .map_err(|e| format!("hybrid pass failed: {e}"))?;
    Ok([("ferrum", ferrum_rep), ("hybrid", hybrid_rep)]
        .into_iter()
        .map(|(label, rep)| CheckLine {
            ok: rep.is_clean(),
            json: rep.to_json(),
            text: if rep.is_clean() {
                format!(
                    "{}/{label} [{}]: clean ({} insts)",
                    w.name,
                    opt.label(),
                    rep.insts_scanned
                )
            } else {
                format!(
                    "{}/{label} [{}]: {}",
                    w.name,
                    opt.label(),
                    render_lint_report(&rep)
                )
                .trim_end()
                .to_owned()
            },
        })
        .collect())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (parsed, technique) = match parse_args(&args, &USAGE.spec)
        .and_then(|p| p.technique_cli().map(|t| (p, t)))
    {
        Ok(r) => r,
        Err(e) => return usage_exit(&USAGE.render(), &e),
    };
    let json = parsed.flag("--json");

    if parsed.flag("--catalog") {
        let levels = match parsed.opt_level() {
            Ok(o) => ferrum_cli::catalog::catalog_levels(o),
            Err(e) => return usage_exit(&USAGE.render(), &e),
        };
        return catalog_exit(catalog_selfcheck("ferrum-lint", json, |w| {
            let mut lines = Vec::new();
            for &o in &levels {
                lines.extend(catalog_check(w, o)?);
            }
            Ok::<_, String>(lines)
        }));
    }

    let Some(input) = parsed.positional else {
        return usage_exit(&USAGE.render(), &ArgError::Help);
    };
    let text = if input == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("failed to read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read `{input}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    match lint_listing(&text, technique) {
        Ok(rep) => {
            let clean = rep.is_clean();
            emit(&rep, &format!("{input} [{technique}]"), json);
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("ferrum-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod spec_tests {
    #[test]
    fn spec_rejects_duplicate_and_swallowed_arguments() {
        ferrum_cli::args::assert_usage_consistent(&super::USAGE);
    }
}
