//! `ferrum-trace` — pipeline observability: per-mechanism overhead
//! attribution and campaign telemetry.
//!
//! ```text
//! usage: ferrum-trace <workload> [options]
//!        ferrum-trace --catalog [--json]
//!   --samples <n>   faults per campaign (default 400)
//!   --seed <s>      campaign seed (default 0xFE44)
//!   --scale <s>     test | paper   (default: test)
//!   --opt <l>       backend optimization level 0 | 1   (default: 0)
//!   --engine <e>    interpreter | decoded   (default: interpreter;
//!                   outcomes are byte-identical, only throughput moves)
//!   --json          emit the report as JSON instead of text
//!   --catalog       self-check across every bundled workload: the
//!                   per-mechanism executed-instruction (and cycle)
//!                   counts must sum *exactly* to the protected-minus-
//!                   baseline delta, and campaign outcomes must be
//!                   identical with and without a trace sink installed
//! ```
//!
//! Built with the `trace` cargo feature, the run also installs a
//! [`ferrum_trace::RingSink`] and prints a probe summary (span wall
//! time and counters).  Without the feature the probes compile out and
//! the attribution/telemetry sections — which flow through provenance
//! and [`ferrum::CampaignStats`], not the sink — are unchanged.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;

use ferrum::json::{Json, ToJson};
use ferrum::report::{render_attribution_table, render_latency_histogram};
use ferrum::{
    attribute_overhead, CampaignConfig, CampaignResult, Pipeline, SnapshotPolicy, Technique,
};
use ferrum_cli::args::{parse_args, usage_exit, ArgError, ArgHelp, ArgSpec, UsageSpec};
use ferrum_cli::catalog::{catalog_exit, catalog_selfcheck, CheckLine};
use ferrum_faultsim::campaign::run_campaign_snapshot_on;
use ferrum_faultsim::EngineKind;
use ferrum_trace::{EventKind, RingSink};
use ferrum_workloads::catalog::{workload, Scale, Workload};

const USAGE: UsageSpec = UsageSpec {
    tool: "ferrum-trace",
    forms: &["<workload> [options]", "--catalog [--json]"],
    args: &[
        ArgHelp {
            name: "--samples",
            value: Some("<n>"),
            help: "faults per campaign (default 400)",
        },
        ArgHelp {
            name: "--seed",
            value: Some("<s>"),
            help: "campaign seed (default 0xFE44)",
        },
        ArgHelp {
            name: "--scale",
            value: Some("<s>"),
            help: "test | paper   (default: test)",
        },
        ArgHelp {
            name: "--opt",
            value: Some("<l>"),
            help: "backend optimization level 0 | 1   (default: 0;\n--catalog: both levels)",
        },
        ArgHelp {
            name: "--engine",
            value: Some("<e>"),
            help: "interpreter | decoded   (default: interpreter;\noutcomes are byte-identical, only throughput moves)",
        },
        ArgHelp {
            name: "--json",
            value: None,
            help: "emit the report as JSON instead of text",
        },
        ArgHelp {
            name: "--catalog",
            value: None,
            help: "self-check across every bundled workload: the\nper-mechanism executed-instruction (and cycle) counts\nmust sum exactly to the protected-minus-baseline\ndelta, and campaign outcomes must be identical with\nand without a trace sink installed",
        },
    ],
    spec: ArgSpec {
        flags: &["--json", "--catalog"],
        values: &["--samples", "--seed", "--scale", "--opt", "--engine"],
        positional: true,
    },
};

struct Options {
    samples: usize,
    seed: u64,
    scale: Scale,
    opt: Option<ferrum::OptLevel>,
    engine: EngineKind,
    json: bool,
}

fn threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs the FERRUM campaign for one workload on the snapshot engine.
fn ferrum_campaign(
    pipeline: &Pipeline,
    w: &Workload,
    opts: &Options,
) -> Result<CampaignResult, ferrum::Error> {
    let module = w.build(opts.scale);
    let prog = pipeline.protect(&module, Technique::Ferrum)?;
    let cpu = pipeline.load(&prog)?;
    let profile = cpu.profile();
    Ok(opts.engine.with_cpu(&cpu, |engine| {
        run_campaign_snapshot_on(
            engine,
            &profile,
            CampaignConfig {
                samples: opts.samples,
                seed: opts.seed,
            },
            threads(),
            SnapshotPolicy::default(),
        )
    }))
}

/// Aggregates ring-buffer events into per-name span nanos and counter
/// totals (empty when the `trace` feature is off — the sink never saw
/// an event).
fn probe_summary(sink: &RingSink) -> (BTreeMap<&'static str, u64>, BTreeMap<&'static str, u64>) {
    let mut spans = BTreeMap::new();
    let mut counters = BTreeMap::new();
    for ev in sink.events() {
        match ev.kind {
            EventKind::SpanEnd => *spans.entry(ev.name).or_insert(0) += ev.value,
            EventKind::Counter => *counters.entry(ev.name).or_insert(0) += ev.value,
            EventKind::SpanStart => {}
        }
    }
    (spans, counters)
}

fn run_one(name: &str, opts: &Options) -> ExitCode {
    let Some(w) = workload(name) else {
        eprintln!("ferrum-trace: unknown workload `{name}`");
        return ExitCode::FAILURE;
    };
    let pipeline = Pipeline::new().with_opt_level(opts.opt.unwrap_or_default());
    let module = w.build(opts.scale);

    let sink = Arc::new(RingSink::new(64 * 1024));
    ferrum_trace::install(sink.clone());
    let att = match attribute_overhead(&pipeline, &module) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ferrum-trace: {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let campaign = match ferrum_campaign(&pipeline, &w, opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ferrum-trace: {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    ferrum_trace::uninstall();

    if opts.json {
        let (spans, counters) = probe_summary(&sink);
        let map = |m: BTreeMap<&'static str, u64>| {
            Json::Obj(m.into_iter().map(|(k, v)| (k.to_owned(), v.to_json())).collect())
        };
        let doc = Json::obj(vec![
            ("workload", name.to_json()),
            ("attribution", att.to_json()),
            ("campaign_stats", campaign.stats.to_json()),
            ("probe_spans_nanos", map(spans)),
            ("probe_counters", map(counters)),
        ]);
        println!("{}", doc.to_string_pretty());
    } else {
        print!("{}", render_attribution_table(name, &att));
        println!();
        print!("{}", render_latency_histogram(&campaign.stats.latency));
        let s = &campaign.stats;
        println!(
            "campaign: {} injections, {} threads, {:.0} inj/sec, snapshot hit-rate {:.0}%, steps saved {:.0}%, worker balance {:.2}",
            s.injections,
            s.threads,
            s.injections_per_sec,
            s.snapshot_hit_rate() * 100.0,
            s.steps_saved_ratio() * 100.0,
            s.worker_balance(),
        );
        let (spans, counters) = probe_summary(&sink);
        if spans.is_empty() && counters.is_empty() {
            println!("probes: none recorded (build with `--features trace` for span/counter events)");
        } else {
            for (n, nanos) in spans {
                println!("span    {n:<28} {:>12.3} ms", nanos as f64 / 1e6);
            }
            for (n, v) in counters {
                println!("counter {n:<28} {v:>12}");
            }
        }
    }
    if att.reconciles() {
        ExitCode::SUCCESS
    } else {
        eprintln!("ferrum-trace: {name}: mechanism counts do not reconcile");
        ExitCode::from(1)
    }
}

/// Self-check for one workload: exact per-mechanism reconciliation and
/// trace-sink transparency (outcomes identical with and without a sink
/// installed).  Driven by the shared [`catalog_selfcheck`] loop.
fn catalog_check(
    pipeline: &Pipeline,
    w: &Workload,
    opts: &Options,
) -> Result<Vec<CheckLine>, ferrum::Error> {
    let opt = pipeline.opt_level();
    let module = w.build(opts.scale);
    let att = attribute_overhead(pipeline, &module)?;
    let exact = att.reconciles();

    let sink = Arc::new(RingSink::new(4096));
    ferrum_trace::install(sink);
    let traced = ferrum_campaign(pipeline, w, opts);
    ferrum_trace::uninstall();
    let plain = ferrum_campaign(pipeline, w, opts)?;
    let traced = traced?;
    let transparent = traced == plain && traced.stats.latency == plain.stats.latency;

    Ok(vec![CheckLine {
        ok: exact && transparent,
        json: Json::obj(vec![
            ("workload", w.name.to_json()),
            ("opt", opt.to_json()),
            ("protection_insts", att.protection_insts().to_json()),
            ("mechanism_sum_exact", Json::Bool(exact)),
            ("trace_transparent", Json::Bool(transparent)),
        ]),
        text: format!(
            "{} [{}]: mechanism sum {} ({} prot insts, +{:.1}% cycles); trace on/off outcomes {}",
            w.name,
            opt.label(),
            if exact { "exact" } else { "MISMATCH" },
            att.protection_insts(),
            att.cycle_overhead() * 100.0,
            if transparent { "identical" } else { "DIVERGED" },
        ),
    }])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (parsed, opts) = match parse_args(&args, &USAGE.spec).and_then(|p| {
        let opts = Options {
            samples: p.samples(400)?,
            seed: p.seed(0xFE44)?,
            scale: p.scale()?,
            opt: p.opt_level()?,
            engine: p.engine()?,
            json: p.flag("--json"),
        };
        Ok((p, opts))
    }) {
        Ok(r) => r,
        Err(e) => return usage_exit(&USAGE.render(), &e),
    };

    if parsed.flag("--catalog") {
        let levels = ferrum_cli::catalog::catalog_levels(opts.opt);
        return catalog_exit(catalog_selfcheck("ferrum-trace", opts.json, |w| {
            let mut lines = Vec::new();
            for &o in &levels {
                let pipeline = Pipeline::new().with_opt_level(o);
                lines.extend(catalog_check(&pipeline, w, &opts)?);
            }
            Ok::<_, ferrum::Error>(lines)
        }));
    }
    match parsed.positional.as_deref() {
        Some(n) => run_one(n, &opts),
        None => usage_exit(&USAGE.render(), &ArgError::Help),
    }
}

#[cfg(test)]
mod spec_tests {
    #[test]
    fn spec_rejects_duplicate_and_swallowed_arguments() {
        ferrum_cli::args::assert_usage_consistent(&super::USAGE);
    }
}
