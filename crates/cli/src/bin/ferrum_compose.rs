//! `ferrum-compose` — compositional verdicts and incremental campaigns.
//!
//! ```text
//! usage: ferrum-compose <workload> [options]
//!        ferrum-compose --catalog [--json]
//!   --technique <t>   ferrum | hybrid | ir-eddi | none   (default: ferrum)
//!   --samples <n>     faults for the stratified campaign (default 400)
//!   --seed <s>        campaign seed (default 0xFE44)
//!   --scale <s>       test | paper   (default: test)
//!   --opt <l>         backend optimization level 0 | 1   (default: 0)
//!   --json            emit the report as JSON instead of text
//!   --catalog         self-check across every bundled workload: no
//!                     composed Masked/Detected verdict may be
//!                     contradicted by a monolithic campaign outcome,
//!                     and an incremental re-run against the fresh
//!                     cache must be record-identical to the
//!                     stratified campaign with a 100% reuse rate
//! ```
//!
//! The tool protects the workload, computes per-function
//! fault-propagation summaries (`ferrum_asm::analysis::summary`),
//! composes them through caller-side liveness into whole-program
//! verdicts (`ferrum_faultsim::compose`), prints the per-function
//! lift table, then runs a stratified campaign and replays it
//! incrementally to report the cache reuse rate.  JSON output follows
//! docs/compose-schema.md.

use std::process::ExitCode;

use ferrum::json::{Json, ToJson};
use ferrum::report::{composition_to_json, render_composition};
use ferrum::{
    compose, CampaignConfig, ComposedMap, CoverageMap, Pipeline, StaticVerdict, SummaryMap,
    Technique,
};
use ferrum_cli::args::{parse_args, usage_exit, ArgHelp, ArgSpec, UsageSpec};
use ferrum_cli::catalog::{catalog_exit, catalog_selfcheck, CheckLine};
use ferrum_cpu::run::Profile;
use ferrum_faultsim::campaign::{run_campaign, CampaignResult, Outcome};
use ferrum_faultsim::{run_campaign_incremental, run_campaign_stratified};
use ferrum_workloads::catalog::{workload, Scale, Workload};

const USAGE: UsageSpec = UsageSpec {
    tool: "ferrum-compose",
    forms: &["<workload> [options]", "--catalog [--json]"],
    args: &[
        ArgHelp {
            name: "--technique",
            value: Some("<t>"),
            help: "ferrum | hybrid | ir-eddi | none   (default: ferrum)",
        },
        ArgHelp {
            name: "--samples",
            value: Some("<n>"),
            help: "faults for the stratified campaign (default 400)",
        },
        ArgHelp {
            name: "--seed",
            value: Some("<s>"),
            help: "campaign seed (default 0xFE44)",
        },
        ArgHelp {
            name: "--scale",
            value: Some("<s>"),
            help: "test | paper   (default: test)",
        },
        ArgHelp {
            name: "--opt",
            value: Some("<l>"),
            help: "backend optimization level 0 | 1   (default: 0;\n--catalog: both levels)",
        },
        ArgHelp {
            name: "--json",
            value: None,
            help: "emit the report as JSON instead of text",
        },
        ArgHelp {
            name: "--catalog",
            value: None,
            help: "self-check across every bundled workload: no composed\nMasked/Detected verdict may be contradicted by a\nmonolithic campaign outcome, and an incremental re-run\nagainst the fresh cache must be record-identical to the\nstratified campaign with a 100% reuse rate",
        },
    ],
    spec: ArgSpec {
        flags: &["--json", "--catalog"],
        values: &["--technique", "--samples", "--seed", "--scale", "--opt"],
        positional: true,
    },
};

struct Options {
    technique: Technique,
    samples: usize,
    seed: u64,
    scale: Scale,
    opt: Option<ferrum::OptLevel>,
    json: bool,
}

fn technique_label(t: Technique) -> &'static str {
    match t {
        Technique::None => "none",
        Technique::IrEddi => "ir-eddi",
        Technique::HybridAsmEddi => "hybrid",
        Technique::Ferrum => "ferrum",
    }
}

/// Checks every monolithic campaign outcome against the composed map:
/// a composed `Masked` must be `Benign`, a composed `Detected` must be
/// `Detected`.  Returns the number of contradicted records.
fn contradictions(composed: &ComposedMap, profile: &Profile, serial: &CampaignResult) -> usize {
    serial
        .records
        .iter()
        .filter(|&&(fault, outcome)| {
            let verdict = profile
                .sites
                .binary_search_by_key(&fault.dyn_index, |s| s.dyn_index)
                .ok()
                .and_then(|i| composed.verdict_at(profile.sites[i].pc, fault.raw_bit));
            match verdict {
                Some(StaticVerdict::Masked) => outcome != Outcome::Benign,
                Some(StaticVerdict::Detected) => outcome != Outcome::Detected,
                _ => false,
            }
        })
        .count()
}

fn run_one(name: &str, opts: &Options) -> ExitCode {
    let Some(w) = workload(name) else {
        eprintln!("ferrum-compose: unknown workload `{name}`");
        return ExitCode::FAILURE;
    };
    let pipeline = Pipeline::new().with_opt_level(opts.opt.unwrap_or_default());
    let module = w.build(opts.scale);
    let cfg = CampaignConfig {
        samples: opts.samples,
        seed: opts.seed,
    };
    let (composed, stratified, incremental) = match (|| {
        let prog = pipeline.protect(&module, opts.technique)?;
        let coverage = CoverageMap::analyze(&prog);
        let summary = SummaryMap::build(&prog, &coverage);
        let composed = compose(&prog, &coverage, &summary);
        let cpu = pipeline.load(&prog)?;
        let profile = cpu.profile();
        let (stratified, cache) = run_campaign_stratified(&cpu, &profile, cfg, &prog);
        let (incremental, _) = run_campaign_incremental(&cpu, &profile, cfg, &prog, &cache);
        Ok::<_, ferrum::Error>((composed, stratified, incremental))
    })() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ferrum-compose: {name}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.json {
        let doc = Json::obj(vec![
            ("workload", name.to_json()),
            ("technique", technique_label(opts.technique).to_json()),
            ("composition", composition_to_json(&composed)),
            ("campaign_stats", stratified.stats.to_json()),
            ("detected", stratified.detected.to_json()),
            ("benign", stratified.benign.to_json()),
            ("sdc", stratified.sdc.to_json()),
            ("incremental_stats", incremental.stats.to_json()),
            (
                "incremental_identical",
                Json::Bool(incremental == stratified),
            ),
        ]);
        println!("{}", doc.to_string_pretty());
    } else {
        let label = format!("{name} ({})", technique_label(opts.technique));
        print!("{}", render_composition(&label, &composed));
        println!();
        println!(
            "stratified campaign: {} injections, SDC {}  detected {}  benign {}",
            stratified.total(),
            stratified.sdc,
            stratified.detected,
            stratified.benign,
        );
        println!(
            "incremental replay: {} of {} faults reused ({:.1}%), outcomes {}",
            incremental.stats.reused_sites,
            incremental.total(),
            incremental.stats.reuse_rate() * 100.0,
            if incremental == stratified {
                "identical"
            } else {
                "DIVERGED"
            },
        );
    }
    ExitCode::SUCCESS
}

/// Self-check for one workload under FERRUM: the composed verdicts
/// must never contradict a monolithic campaign outcome, and the
/// incremental executor must reproduce the stratified campaign exactly
/// from a fresh cache.
fn catalog_check(
    pipeline: &Pipeline,
    w: &Workload,
    opts: &Options,
) -> Result<Vec<CheckLine>, ferrum::Error> {
    let opt = pipeline.opt_level();
    let module = w.build(opts.scale);
    let prog = pipeline.protect(&module, Technique::Ferrum)?;
    let coverage = CoverageMap::analyze(&prog);
    let summary = SummaryMap::build(&prog, &coverage);
    let composed = compose(&prog, &coverage, &summary);
    let cpu = pipeline.load(&prog)?;
    let profile = cpu.profile();
    let cfg = CampaignConfig {
        samples: opts.samples,
        seed: opts.seed,
    };

    let serial = run_campaign(&cpu, &profile, cfg);
    let contradicted = contradictions(&composed, &profile, &serial);

    let (stratified, cache) = run_campaign_stratified(&cpu, &profile, cfg, &prog);
    let (incremental, _) = run_campaign_incremental(&cpu, &profile, cfg, &prog, &cache);
    let identical = incremental == stratified;
    let full_reuse = incremental.stats.reused_sites == incremental.total();

    let ok = contradicted == 0 && identical && full_reuse;
    Ok(vec![CheckLine {
        ok,
        json: Json::obj(vec![
            ("workload", w.name.to_json()),
            ("opt", opt.to_json()),
            ("total_sites", coverage.total_sites().to_json()),
            ("lifted", composed.lifted().to_json()),
            ("contradicted", contradicted.to_json()),
            ("incremental_identical", Json::Bool(identical)),
            ("reuse_rate", incremental.stats.reuse_rate().to_json()),
        ]),
        text: format!(
            "{} [{}]: {} sites, {} lifted; composed verdicts {}; incremental {} (reuse {:.1}%)",
            w.name,
            opt.label(),
            coverage.total_sites(),
            composed.lifted(),
            if contradicted == 0 {
                "sound".to_owned()
            } else {
                format!("{contradicted} CONTRADICTED")
            },
            if identical { "identical" } else { "DIVERGED" },
            incremental.stats.reuse_rate() * 100.0,
        ),
    }])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (parsed, opts) = match parse_args(&args, &USAGE.spec).and_then(|p| {
        let opts = Options {
            technique: p.technique_core(Technique::Ferrum)?,
            samples: p.samples(400)?,
            seed: p.seed(0xFE44)?,
            scale: p.scale()?,
            opt: p.opt_level()?,
            json: p.flag("--json"),
        };
        Ok((p, opts))
    }) {
        Ok(r) => r,
        Err(e) => return usage_exit(&USAGE.render(), &e),
    };

    if parsed.flag("--catalog") {
        let levels = ferrum_cli::catalog::catalog_levels(opts.opt);
        return catalog_exit(catalog_selfcheck("ferrum-compose", opts.json, |w| {
            let mut lines = Vec::new();
            for &o in &levels {
                let pipeline = Pipeline::new().with_opt_level(o);
                lines.extend(catalog_check(&pipeline, w, &opts)?);
            }
            Ok::<_, ferrum::Error>(lines)
        }));
    }
    match parsed.positional.as_deref() {
        Some(n) => run_one(n, &opts),
        None => usage_exit(&USAGE.render(), &ferrum_cli::args::ArgError::Help),
    }
}

#[cfg(test)]
mod spec_tests {
    #[test]
    fn spec_rejects_duplicate_and_swallowed_arguments() {
        ferrum_cli::args::assert_usage_consistent(&super::USAGE);
    }
}
