//! `ferrum-protect` — apply assembly-level EDDI to an assembly listing.
//!
//! ```text
//! usage: ferrum-protect <input.s | -> [options]
//!   -o <file>            write the protected listing (default: stdout)
//!   --technique <t>      ferrum | ferrum-zmm | scalar   (default: ferrum)
//!   --run                simulate the protected program and print its output
//!   --campaign <n>       run an n-fault campaign and print the outcome counts
//!   --stats              print static instruction counts before/after
//!   --emit-gnu           write GNU-assembler output (assemble with
//!                        `gcc -no-pie out.s` and run on real x86-64)
//! ```

use std::io::Read;
use std::process::ExitCode;

use ferrum_cli::args::{parse_args, usage_exit, ArgError, ArgHelp, ArgSpec, UsageSpec};
use ferrum_cli::protect_listing;
use ferrum_faultsim::campaign::{run_campaign, CampaignConfig};

const USAGE: UsageSpec = UsageSpec {
    tool: "ferrum-protect",
    forms: &["<input.s | -> [options]"],
    args: &[
        ArgHelp {
            name: "-o",
            value: Some("<file>"),
            help: "write the protected listing (default: stdout)",
        },
        ArgHelp {
            name: "--technique",
            value: Some("<t>"),
            help: "ferrum | ferrum-zmm | scalar   (default: ferrum)",
        },
        ArgHelp {
            name: "--run",
            value: None,
            help: "simulate the protected program and print its output",
        },
        ArgHelp {
            name: "--campaign",
            value: Some("<n>"),
            help: "run an n-fault campaign and print the outcome counts",
        },
        ArgHelp {
            name: "--stats",
            value: None,
            help: "print static instruction counts before/after",
        },
        ArgHelp {
            name: "--emit-gnu",
            value: None,
            help: "write GNU-assembler output (assemble with\n`gcc -no-pie out.s` and run on real x86-64)",
        },
    ],
    spec: ArgSpec {
        flags: &["--run", "--stats", "--emit-gnu"],
        values: &["-o", "--technique", "--campaign"],
        positional: true,
    },
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args, &USAGE.spec) {
        Ok(p) => p,
        Err(e) => return usage_exit(&USAGE.render(), &e),
    };
    let technique = match parsed.technique_cli() {
        Ok(t) => t,
        Err(e) => return usage_exit(&USAGE.render(), &e),
    };
    let campaign: Option<usize> = match parsed.value("--campaign").map(str::parse) {
        None => None,
        Some(Ok(n)) => Some(n),
        Some(Err(_)) => {
            return usage_exit(
                &USAGE.render(),
                &ArgError::Message("`--campaign` needs a fault count".into()),
            )
        }
    };
    let Some(input) = parsed.positional.clone() else {
        return usage_exit(&USAGE.render(), &ArgError::Help);
    };
    let out_path = parsed.value("-o").map(str::to_owned);
    let do_run = parsed.flag("--run");
    let stats = parsed.flag("--stats");
    let emit_gnu = parsed.flag("--emit-gnu");

    let text = if input == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("failed to read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read `{input}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let before = ferrum_asm::parser::parse_program(&text)
        .map(|p| p.static_inst_count())
        .unwrap_or(0);
    let prot = match protect_listing(&text, technique) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ferrum-protect: {e}");
            return ExitCode::FAILURE;
        }
    };
    if stats {
        eprintln!(
            "{technique}: {before} -> {} static instructions",
            prot.static_inst_count()
        );
    }
    if do_run || campaign.is_some() {
        let cpu = match ferrum_cpu::run::Cpu::load(&prot) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("load error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if do_run {
            let r = cpu.run(None);
            println!("stop: {}", r.stop);
            println!("output: {:?}", r.output);
            println!(
                "cycles: {}  dynamic instructions: {}",
                r.cycles, r.dyn_insts
            );
        }
        if let Some(n) = campaign {
            let profile = cpu.profile();
            let res = run_campaign(
                &cpu,
                &profile,
                CampaignConfig {
                    samples: n,
                    seed: 7,
                },
            );
            println!(
                "campaign ({n} faults): SDC {}  detected {}  crash {}  timeout {}  benign {}",
                res.sdc, res.detected, res.crash, res.timeout, res.benign
            );
        }
        return ExitCode::SUCCESS;
    }
    let listing = if emit_gnu {
        ferrum_asm::gnu::emit_gnu(&prot)
    } else {
        ferrum_asm::printer::print_program(&prot)
    };
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, listing) {
                eprintln!("cannot write `{p}`: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{listing}"),
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod spec_tests {
    #[test]
    fn spec_rejects_duplicate_and_swallowed_arguments() {
        ferrum_cli::args::assert_usage_consistent(&super::USAGE);
    }
}
