//! `ferrum-protect` — apply assembly-level EDDI to an assembly listing.
//!
//! ```text
//! usage: ferrum-protect <input.s | -> [options]
//!   -o <file>            write the protected listing (default: stdout)
//!   --technique <t>      ferrum | ferrum-zmm | scalar   (default: ferrum)
//!   --run                simulate the protected program and print its output
//!   --campaign <n>       run an n-fault campaign and print the outcome counts
//!   --stats              print static instruction counts before/after
//!   --emit-gnu           write GNU-assembler output (assemble with
//!                        `gcc -no-pie out.s` and run on real x86-64)
//! ```

use std::io::Read;
use std::process::ExitCode;

use ferrum_cli::{protect_listing, CliTechnique};
use ferrum_faultsim::campaign::{run_campaign, CampaignConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: ferrum-protect <input.s | -> [-o out.s] [--technique ferrum|ferrum-zmm|scalar] [--run] [--campaign N] [--stats]"
        );
        return ExitCode::from(2);
    }
    let input = &args[0];
    let mut out_path: Option<String> = None;
    let mut technique = CliTechnique::Ferrum;
    let mut do_run = false;
    let mut campaign: Option<usize> = None;
    let mut stats = false;
    let mut emit_gnu = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => out_path = it.next().cloned(),
            "--technique" => {
                let Some(t) = it.next().and_then(|s| CliTechnique::parse(s)) else {
                    eprintln!("unknown technique (ferrum | ferrum-zmm | scalar)");
                    return ExitCode::from(2);
                };
                technique = t;
            }
            "--run" => do_run = true,
            "--emit-gnu" => emit_gnu = true,
            "--campaign" => campaign = it.next().and_then(|s| s.parse().ok()),
            "--stats" => stats = true,
            other => {
                eprintln!("unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let text = if input == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("failed to read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read `{input}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let before = ferrum_asm::parser::parse_program(&text)
        .map(|p| p.static_inst_count())
        .unwrap_or(0);
    let prot = match protect_listing(&text, technique) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ferrum-protect: {e}");
            return ExitCode::FAILURE;
        }
    };
    if stats {
        eprintln!(
            "{technique}: {before} -> {} static instructions",
            prot.static_inst_count()
        );
    }
    if do_run || campaign.is_some() {
        let cpu = match ferrum_cpu::run::Cpu::load(&prot) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("load error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if do_run {
            let r = cpu.run(None);
            println!("stop: {}", r.stop);
            println!("output: {:?}", r.output);
            println!(
                "cycles: {}  dynamic instructions: {}",
                r.cycles, r.dyn_insts
            );
        }
        if let Some(n) = campaign {
            let profile = cpu.profile();
            let res = run_campaign(
                &cpu,
                &profile,
                CampaignConfig {
                    samples: n,
                    seed: 7,
                },
            );
            println!(
                "campaign ({n} faults): SDC {}  detected {}  crash {}  timeout {}  benign {}",
                res.sdc, res.detected, res.crash, res.timeout, res.benign
            );
        }
        return ExitCode::SUCCESS;
    }
    let listing = if emit_gnu {
        ferrum_asm::gnu::emit_gnu(&prot)
    } else {
        ferrum_asm::printer::print_program(&prot)
    };
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, listing) {
                eprintln!("cannot write `{p}`: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{listing}"),
    }
    ExitCode::SUCCESS
}
