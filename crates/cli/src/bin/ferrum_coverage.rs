//! `ferrum-coverage` — static per-site vulnerability maps.
//!
//! ```text
//! usage: ferrum-coverage <workload> [options]
//!        ferrum-coverage --catalog [--json]
//!   --technique <t>   ferrum | hybrid | ir-eddi   (default: ferrum)
//!   --samples <n>     faults for the measured campaign (default 400)
//!   --seed <s>        campaign seed (default 0xFE44)
//!   --scale <s>       test | paper   (default: test)
//!   --sites           include the per-site verdict lists in the output
//!   --json            emit the report as JSON instead of text
//!   --catalog         self-check across every bundled workload: the
//!                     pruned campaign must be outcome-identical to the
//!                     serial engine, every sound verdict must agree
//!                     with injection, and the FERRUM prune rate must
//!                     clear 20%
//! ```
//!
//! The tool protects the workload, classifies every injectable fault
//! site (`ferrum_asm::analysis::coverage`), prints the per-mechanism
//! rollups with the predicted detection-coverage bounds, then runs a
//! pruned injection campaign and prints the predicted-vs-measured
//! table.

use std::process::ExitCode;

use ferrum::json::{Json, ToJson};
use ferrum::report::{
    coverage_to_json, predicted_vs_measured_to_json, render_predicted_vs_measured,
    render_static_coverage,
};
use ferrum::{CampaignConfig, CoverageMap, Pipeline, StaticVerdict, Technique};
use ferrum_cli::args::{parse_args, usage_exit, ArgHelp, ArgSpec, UsageSpec};
use ferrum_cli::catalog::{catalog_exit, catalog_selfcheck, CheckLine};
use ferrum_faultsim::campaign::{run_campaign, run_campaign_pruned, Outcome};
use ferrum_workloads::catalog::{workload, Scale, Workload};

const USAGE: UsageSpec = UsageSpec {
    tool: "ferrum-coverage",
    forms: &["<workload> [options]", "--catalog [--json]"],
    args: &[
        ArgHelp {
            name: "--technique",
            value: Some("<t>"),
            help: "ferrum | hybrid | ir-eddi   (default: ferrum)",
        },
        ArgHelp {
            name: "--samples",
            value: Some("<n>"),
            help: "faults for the measured campaign (default 400)",
        },
        ArgHelp {
            name: "--seed",
            value: Some("<s>"),
            help: "campaign seed (default 0xFE44)",
        },
        ArgHelp {
            name: "--scale",
            value: Some("<s>"),
            help: "test | paper   (default: test)",
        },
        ArgHelp {
            name: "--opt",
            value: Some("<l>"),
            help: "backend optimization level 0 | 1   (default: 0;\n--catalog: both levels)",
        },
        ArgHelp {
            name: "--sites",
            value: None,
            help: "include the per-site verdict lists in the output",
        },
        ArgHelp {
            name: "--json",
            value: None,
            help: "emit the report as JSON instead of text",
        },
        ArgHelp {
            name: "--catalog",
            value: None,
            help: "self-check across every bundled workload: the pruned\ncampaign must be outcome-identical to the serial\nengine, every sound verdict must agree with\ninjection, and the FERRUM prune rate must clear 20%",
        },
    ],
    spec: ArgSpec {
        flags: &["--json", "--sites", "--catalog"],
        values: &["--technique", "--samples", "--seed", "--scale", "--opt"],
        positional: true,
    },
};

struct Options {
    technique: Technique,
    samples: usize,
    seed: u64,
    scale: Scale,
    opt: Option<ferrum::OptLevel>,
    sites: bool,
    json: bool,
}

fn technique_label(t: Technique) -> &'static str {
    match t {
        Technique::None => "none",
        Technique::IrEddi => "ir-eddi",
        Technique::HybridAsmEddi => "hybrid",
        Technique::Ferrum => "ferrum",
    }
}

fn run_one(name: &str, opts: &Options) -> ExitCode {
    let Some(w) = workload(name) else {
        eprintln!("ferrum-coverage: unknown workload `{name}`");
        return ExitCode::FAILURE;
    };
    let pipeline = Pipeline::new().with_opt_level(opts.opt.unwrap_or_default());
    let module = w.build(opts.scale);
    let (map, campaign) = match (|| {
        let prog = pipeline.protect(&module, opts.technique)?;
        let map = CoverageMap::analyze(&prog);
        let cpu = pipeline.load(&prog)?;
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: opts.samples,
            seed: opts.seed,
        };
        let campaign = run_campaign_pruned(&cpu, &profile, cfg, &map);
        Ok::<_, ferrum::Error>((map, campaign))
    })() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ferrum-coverage: {name}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.json {
        let doc = Json::obj(vec![
            ("workload", name.to_json()),
            ("technique", technique_label(opts.technique).to_json()),
            ("coverage", coverage_to_json(&map, opts.sites)),
            (
                "predicted_vs_measured",
                predicted_vs_measured_to_json(&map, &campaign),
            ),
            ("campaign_stats", campaign.stats.to_json()),
            ("detected", campaign.detected.to_json()),
            ("benign", campaign.benign.to_json()),
            ("sdc", campaign.sdc.to_json()),
        ]);
        println!("{}", doc.to_string_pretty());
    } else {
        let label = format!("{name} ({})", technique_label(opts.technique));
        print!("{}", render_static_coverage(&label, &map));
        if opts.sites {
            for f in &map.functions {
                let r = &f.rollup;
                println!(
                    "  fn {:<24} {:>5} sites: {} masked, {} detected, {} vulnerable, {} unknown",
                    f.name, f.sites.len(), r.masked, r.detected, r.vulnerable, r.unknown
                );
            }
        }
        println!();
        print!("{}", render_predicted_vs_measured(&label, &map, &campaign));
    }
    ExitCode::SUCCESS
}

/// Self-check for one workload under FERRUM: every sound verdict must
/// agree with injection, the pruned engine must be outcome-identical to
/// the serial one, and the prune rate must clear the 20% floor.
fn catalog_check(
    pipeline: &Pipeline,
    w: &Workload,
    opts: &Options,
) -> Result<Vec<CheckLine>, ferrum::Error> {
    let opt = pipeline.opt_level();
    let module = w.build(opts.scale);
    let prog = pipeline.protect(&module, Technique::Ferrum)?;
    let map = CoverageMap::analyze(&prog);
    let cpu = pipeline.load(&prog)?;
    let profile = cpu.profile();
    let cfg = CampaignConfig {
        samples: opts.samples,
        seed: opts.seed,
    };
    let serial = run_campaign(&cpu, &profile, cfg);
    let pruned = run_campaign_pruned(&cpu, &profile, cfg, &map);

    let identical = serial == pruned;
    let prune_ok = pruned.stats.prune_rate() >= 0.20;
    // Soundness: the serial (all-injected) outcomes must agree with
    // every decided verdict the map claims for the sampled faults.
    let sound = serial.records.iter().all(|&(fault, outcome)| {
        let verdict = profile
            .sites
            .binary_search_by_key(&fault.dyn_index, |s| s.dyn_index)
            .ok()
            .and_then(|i| map.verdict_at(profile.sites[i].pc, fault.raw_bit));
        match verdict {
            Some(StaticVerdict::Masked) => outcome == Outcome::Benign,
            Some(StaticVerdict::Detected) => outcome == Outcome::Detected,
            _ => true,
        }
    });

    let rollup = map.rollup();
    Ok(vec![CheckLine {
        ok: identical && prune_ok && sound,
        json: Json::obj(vec![
            ("workload", w.name.to_json()),
            ("opt", opt.to_json()),
            ("total_sites", map.total_sites().to_json()),
            ("decided_fraction", rollup.decided_fraction().to_json()),
            ("prune_rate", pruned.stats.prune_rate().to_json()),
            ("pruned_identical", Json::Bool(identical)),
            ("verdicts_sound", Json::Bool(sound)),
        ]),
        text: format!(
            "{} [{}]: {} sites, {:.1}% decided, prune rate {:.1}% ({} of {}); pruned outcomes {}; verdicts {}",
            w.name,
            opt.label(),
            map.total_sites(),
            rollup.decided_fraction() * 100.0,
            pruned.stats.prune_rate() * 100.0,
            pruned.stats.pruned_sites,
            pruned.total(),
            if identical { "identical" } else { "DIVERGED" },
            if sound { "sound" } else { "UNSOUND" },
        ),
    }])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (parsed, opts) = match parse_args(&args, &USAGE.spec).and_then(|p| {
        let opts = Options {
            technique: p.technique_core(Technique::Ferrum)?,
            samples: p.samples(400)?,
            seed: p.seed(0xFE44)?,
            scale: p.scale()?,
            opt: p.opt_level()?,
            sites: p.flag("--sites"),
            json: p.flag("--json"),
        };
        Ok((p, opts))
    }) {
        Ok(r) => r,
        Err(e) => return usage_exit(&USAGE.render(), &e),
    };

    if parsed.flag("--catalog") {
        let levels = ferrum_cli::catalog::catalog_levels(opts.opt);
        return catalog_exit(catalog_selfcheck("ferrum-coverage", opts.json, |w| {
            let mut lines = Vec::new();
            for &o in &levels {
                let pipeline = Pipeline::new().with_opt_level(o);
                lines.extend(catalog_check(&pipeline, w, &opts)?);
            }
            Ok::<_, ferrum::Error>(lines)
        }));
    }
    match parsed.positional.as_deref() {
        Some(n) => run_one(n, &opts),
        None => usage_exit(&USAGE.render(), &ferrum_cli::args::ArgError::Help),
    }
}

#[cfg(test)]
mod spec_tests {
    #[test]
    fn spec_rejects_duplicate_and_swallowed_arguments() {
        ferrum_cli::args::assert_usage_consistent(&super::USAGE);
    }
}
