//! Seeded, terminating MIR program generator.
//!
//! Design constraints, in priority order:
//!
//! 1. **Determinism** — one `u64` seed fully determines the program.
//!    The harness and the pinned regression tests rely on this.
//! 2. **No undefined behaviour** — generated programs never trap: all
//!    divisors are masked into `1..=8`, all array indices are masked
//!    into bounds, and every loop is counted with a constant trip
//!    count, so the interpreter, the `-O0` program, and the `-O1`
//!    program must agree on *normal termination*, not just on output.
//! 3. **Total liveness** — every scalar variable is printed before
//!    `main` returns and loop bodies print intermediate state, so the
//!    optimizer cannot delete its way past a miscompilation.  This is
//!    what makes the fuzzer a *differential* witness rather than a
//!    crash hunter.
//! 4. **Shape diversity** — nested diamonds and counted loops (the
//!    split-block CFGs IR-EDDI produces), frame-slot merges through
//!    memory (the exact shape the slot-aware LVN rewrites), helper
//!    calls, global and local arrays, and mixed 64/32-bit arithmetic.

use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::func::Function;
use ferrum_mir::inst::{BinOp, ICmpPred};
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;
use ferrum_mir::value::Value;
use ferrum_rng::Rng64;

/// Every generated array (global or local) has this many words, and
/// every masked index lands in `0..ARRAY_LEN`.
pub const ARRAY_LEN: u32 = 8;

/// Shape summary of one generated program, for fuzz-report rollups.
#[derive(Debug, Clone, Copy, Default)]
pub struct GenStats {
    /// Static MIR instructions across all functions.
    pub mir_insts: usize,
    /// Basic blocks in `main`.
    pub blocks: usize,
    /// Helper functions generated.
    pub helpers: usize,
}

const PREDS: [ICmpPred; 10] = [
    ICmpPred::Eq,
    ICmpPred::Ne,
    ICmpPred::Slt,
    ICmpPred::Sle,
    ICmpPred::Sgt,
    ICmpPred::Sge,
    ICmpPred::Ult,
    ICmpPred::Ule,
    ICmpPred::Ugt,
    ICmpPred::Uge,
];

fn pick<T: Copy>(rng: &mut Rng64, xs: &[T]) -> T {
    xs[rng.gen_below(xs.len() as u64) as usize]
}

/// A small signed constant with occasional interesting extremes.
fn small_const(rng: &mut Rng64) -> i64 {
    match rng.gen_below(10) {
        0 => 0,
        1 => -1,
        2 => i64::from(i32::MAX),
        3 => -(1 << 20),
        _ => (rng.next_u64() % 2000) as i64 - 1000,
    }
}

/// A trap-free binary operation: divisors and shift amounts are
/// masked so no operand choice can fault.
fn safe_bin(b: &mut FunctionBuilder, rng: &mut Rng64, ty: Ty, x: Value, y: Value) -> Value {
    match rng.gen_below(10) {
        0 => b.bin(BinOp::Add, ty, x, y),
        1 => b.bin(BinOp::Sub, ty, x, y),
        2 => b.bin(BinOp::Mul, ty, x, y),
        3 => b.bin(BinOp::And, ty, x, y),
        4 => b.bin(BinOp::Or, ty, x, y),
        5 => b.bin(BinOp::Xor, ty, x, y),
        6 | 7 => {
            // Divisor masked into 1..=8: never zero, never -1, so
            // neither divide-by-zero nor MIN/-1 overflow can occur.
            let seven = b.iconst(ty, 7);
            let one = b.iconst(ty, 1);
            let m = b.bin(BinOp::And, ty, y, seven);
            let d = b.bin(BinOp::Add, ty, m, one);
            let op = if rng.gen_below(2) == 0 { BinOp::SDiv } else { BinOp::SRem };
            b.bin(op, ty, x, d)
        }
        _ => {
            // Shift amount masked into 0..=7, well inside every width.
            let seven = b.iconst(ty, 7);
            let amt = b.bin(BinOp::And, ty, y, seven);
            let op = pick(rng, &[BinOp::Shl, BinOp::AShr, BinOp::LShr]);
            b.bin(op, ty, x, amt)
        }
    }
}

/// A pure helper: straight-line arithmetic over its parameters with a
/// comparison folded in through `sext`, returning one `i64`.
fn gen_helper(rng: &mut Rng64, name: &str, arity: usize) -> Function {
    let params = vec![Ty::I64; arity];
    let mut b = FunctionBuilder::new(name, &params, Some(Ty::I64));
    let mut pool: Vec<Value> = (0..arity as u32).map(|i| b.arg(i)).collect();
    pool.push(b.iconst(Ty::I64, small_const(rng)));
    for _ in 0..3 + rng.gen_below(5) {
        let x = pick(rng, &pool);
        let y = pick(rng, &pool);
        let v = if rng.gen_below(5) == 0 {
            let c = b.icmp(pick(rng, &PREDS), Ty::I64, x, y);
            b.sext(Ty::I1, Ty::I64, c)
        } else {
            safe_bin(&mut b, rng, Ty::I64, x, y)
        };
        pool.push(v);
    }
    let r = pick(rng, &pool);
    b.ret(Some(r));
    b.finish()
}

struct MainGen<'r> {
    rng: &'r mut Rng64,
    b: FunctionBuilder,
    /// Scalar `i64` frame slots (alloca'd in the entry block).
    slots: Vec<Value>,
    /// Array base pointers, each `ARRAY_LEN` words.
    arrays: Vec<Value>,
    /// Free loop-counter slots.  Disjoint from `slots` — ordinary
    /// statements must never store through a live counter, or a loop
    /// body could reset its own induction variable forever.
    counters: Vec<Value>,
    helpers: Vec<(String, usize)>,
    /// Remaining statement budget, shared across nesting levels.
    budget: usize,
}

impl MainGen<'_> {
    /// Loads a random live variable, or materializes a constant.
    fn val(&mut self) -> Value {
        if self.rng.gen_below(4) == 0 {
            let c = small_const(self.rng);
            self.b.iconst(Ty::I64, c)
        } else {
            let s = pick(self.rng, &self.slots);
            self.b.load(Ty::I64, s)
        }
    }

    /// An in-bounds element address of a random array.
    fn elem_addr(&mut self) -> Value {
        let base = pick(self.rng, &self.arrays);
        let idx = if self.rng.gen_below(2) == 0 {
            let i = self.rng.gen_below(u64::from(ARRAY_LEN)) as i64;
            self.b.iconst(Ty::I64, i)
        } else {
            // Data-dependent but masked in bounds.
            let v = self.val();
            let mask = self.b.iconst(Ty::I64, i64::from(ARRAY_LEN) - 1);
            self.b.and(Ty::I64, v, mask)
        };
        self.b.gep(base, idx)
    }

    /// A small trap-free expression over live variables.
    fn expr(&mut self) -> Value {
        let mut acc = self.val();
        for _ in 0..1 + self.rng.gen_below(3) {
            let y = self.val();
            acc = match self.rng.gen_below(8) {
                0 => {
                    let c = self.b.icmp(pick(self.rng, &PREDS), Ty::I64, acc, y);
                    self.b.sext(Ty::I1, Ty::I64, c)
                }
                1 => {
                    // 32-bit excursion: truncate, operate narrow,
                    // widen back — exercises the W32 lowering paths.
                    let a32 = self.b.trunc(Ty::I64, Ty::I32, acc);
                    let y32 = self.b.trunc(Ty::I64, Ty::I32, y);
                    let r32 = safe_bin(&mut self.b, self.rng, Ty::I32, a32, y32);
                    if self.rng.gen_below(2) == 0 {
                        self.b.sext(Ty::I32, Ty::I64, r32)
                    } else {
                        self.b.zext(Ty::I32, Ty::I64, r32)
                    }
                }
                2 if !self.helpers.is_empty() => {
                    let (name, arity) = pick_owned(self.rng, &self.helpers);
                    let mut args = vec![acc];
                    for _ in 1..arity {
                        args.push(y);
                    }
                    self.b.call(name, args, Some(Ty::I64)).expect("helper returns")
                }
                3 => {
                    let addr = self.elem_addr();
                    let loaded = self.b.load(Ty::I64, addr);
                    safe_bin(&mut self.b, self.rng, Ty::I64, acc, loaded)
                }
                _ => safe_bin(&mut self.b, self.rng, Ty::I64, acc, y),
            };
        }
        acc
    }

    fn stmt(&mut self, depth: usize) {
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        match self.rng.gen_below(if depth < 2 { 8 } else { 5 }) {
            0 | 1 => {
                let v = self.expr();
                let s = pick(self.rng, &self.slots);
                self.b.store(Ty::I64, v, s);
            }
            2 => {
                let v = self.expr();
                let addr = self.elem_addr();
                self.b.store(Ty::I64, v, addr);
            }
            3 => {
                let v = self.expr();
                self.b.print(v);
            }
            4 => {
                let addr = self.elem_addr();
                let v = self.b.load(Ty::I64, addr);
                let s = pick(self.rng, &self.slots);
                self.b.store(Ty::I64, v, s);
            }
            5 | 6 => self.if_stmt(depth),
            _ => self.loop_stmt(depth),
        }
    }

    /// A diamond merging through frame slots (MIR has no phis — both
    /// arms store, the continuation loads).
    fn if_stmt(&mut self, depth: usize) {
        let x = self.val();
        let y = self.val();
        let c = self.b.icmp(pick(self.rng, &PREDS), Ty::I64, x, y);
        let then_bb = self.b.create_block("t");
        let else_bb = self.b.create_block("e");
        let join_bb = self.b.create_block("j");
        self.b.br(c, then_bb, else_bb);

        self.b.switch_to(then_bb);
        for _ in 0..1 + self.rng.gen_below(2) {
            self.stmt(depth + 1);
        }
        self.b.jmp(join_bb);

        self.b.switch_to(else_bb);
        for _ in 0..1 + self.rng.gen_below(2) {
            self.stmt(depth + 1);
        }
        self.b.jmp(join_bb);

        self.b.switch_to(join_bb);
    }

    /// A counted loop: trip count is a constant `2..=ARRAY_LEN - 1`,
    /// so the loop counter doubles as an always-in-bounds array index.
    fn loop_stmt(&mut self, depth: usize) {
        let Some(i_slot) = self.counters.pop() else {
            // Counter slots exhausted (deep nesting) — degrade to a
            // diamond rather than risk a shared induction variable.
            self.if_stmt(depth);
            return;
        };
        let trips = 2 + self.rng.gen_below(u64::from(ARRAY_LEN) - 2) as i64;
        let zero = self.b.iconst(Ty::I64, 0);
        self.b.store(Ty::I64, zero, i_slot);

        let header = self.b.create_block("h");
        let body = self.b.create_block("b");
        let exit = self.b.create_block("x");
        self.b.jmp(header);

        self.b.switch_to(header);
        let iv = self.b.load(Ty::I64, i_slot);
        let bound = self.b.iconst(Ty::I64, trips);
        let c = self.b.icmp(ICmpPred::Slt, Ty::I64, iv, bound);
        self.b.br(c, body, exit);

        self.b.switch_to(body);
        // Touch an array element at the loop counter.
        let base = pick(self.rng, &self.arrays);
        let iv2 = self.b.load(Ty::I64, i_slot);
        let addr = self.b.gep(base, iv2);
        if self.rng.gen_below(2) == 0 {
            let v = self.b.load(Ty::I64, addr);
            let acc = pick(self.rng, &self.slots);
            let old = self.b.load(Ty::I64, acc);
            let sum = self.b.add(Ty::I64, old, v);
            self.b.store(Ty::I64, sum, acc);
        } else {
            let v = self.expr();
            self.b.store(Ty::I64, v, addr);
        }
        for _ in 0..self.rng.gen_below(2) {
            self.stmt(depth + 1);
        }
        // i += 1 — reload, because nested statements may have clobbered
        // the register the header value lived in (that pressure is the
        // point).
        let iv3 = self.b.load(Ty::I64, i_slot);
        let one = self.b.iconst(Ty::I64, 1);
        let next = self.b.add(Ty::I64, iv3, one);
        self.b.store(Ty::I64, next, i_slot);
        self.b.jmp(header);

        self.b.switch_to(exit);
        self.counters.push(i_slot);
    }
}

fn pick_owned(rng: &mut Rng64, xs: &[(String, usize)]) -> (String, usize) {
    let (n, a) = &xs[rng.gen_below(xs.len() as u64) as usize];
    (n.clone(), *a)
}

/// Generates one complete, verified-shape module from `seed`.
///
/// The same seed always yields the same module; different seeds yield
/// structurally diverse ones (0–2 helpers, 1–2 globals, up to two
/// levels of control-flow nesting, 10–28 statements).
pub fn generate_module(seed: u64) -> (Module, GenStats) {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut module = Module::new();

    let n_globals = 1 + rng.gen_below(2);
    let mut global_bases = Vec::new();
    for g in 0..n_globals {
        let words: Vec<i64> = (0..ARRAY_LEN).map(|_| small_const(&mut rng)).collect();
        global_bases.push(module.add_global(Global::new(format!("g{g}"), words)));
    }

    let n_helpers = rng.gen_below(3) as usize;
    let mut helpers = Vec::new();
    for h in 0..n_helpers {
        let arity = 1 + rng.gen_below(2) as usize;
        let name = format!("helper{h}");
        module.functions.push(gen_helper(&mut rng, &name, arity));
        helpers.push((name, arity));
    }

    let mut b = FunctionBuilder::new("main", &[], Some(Ty::I64));
    let n_slots = 3 + rng.gen_below(3) as usize;
    let mut slots = Vec::new();
    for _ in 0..n_slots {
        slots.push(b.alloca(Ty::I64));
    }
    let counters = (0..3).map(|_| b.alloca(Ty::I64)).collect::<Vec<_>>();
    let mut arrays: Vec<Value> = vec![b.alloca_array(Ty::I64, ARRAY_LEN)];
    for gid in &global_bases {
        arrays.push(b.global(*gid));
    }
    // Seed every slot with a distinct constant so nothing is read
    // uninitialized.
    for s in slots.clone() {
        let c = small_const(&mut rng);
        let v = b.iconst(Ty::I64, c);
        b.store(Ty::I64, v, s);
    }
    // The local array too.
    let local = arrays[0];
    for i in 0..i64::from(ARRAY_LEN) {
        let idx = b.iconst(Ty::I64, i);
        let addr = b.gep(local, idx);
        let c = small_const(&mut rng);
        let v = b.iconst(Ty::I64, c);
        b.store(Ty::I64, v, addr);
    }

    let budget = 10 + rng.gen_below(19) as usize;
    let mut g = MainGen {
        rng: &mut rng,
        b,
        slots,
        arrays,
        counters,
        helpers,
        budget,
    };
    while g.budget > 0 {
        g.stmt(0);
    }

    // Make the whole store observable: print every scalar slot and the
    // fence-post elements of every array.
    for s in g.slots.clone() {
        let v = g.b.load(Ty::I64, s);
        g.b.print(v);
    }
    for base in g.arrays.clone() {
        for i in [0, i64::from(ARRAY_LEN) - 1] {
            let idx = g.b.iconst(Ty::I64, i);
            let addr = g.b.gep(base, idx);
            let v = g.b.load(Ty::I64, addr);
            g.b.print(v);
        }
    }
    let zero = g.b.iconst(Ty::I64, 0);
    g.b.ret(Some(zero));
    let main = g.b.finish();

    let stats = GenStats {
        mir_insts: main.inst_count() + module.functions.iter().map(Function::inst_count).sum::<usize>(),
        blocks: main.blocks.len(),
        helpers: n_helpers,
    };
    module.functions.push(main);
    (module, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            let (a, _) = generate_module(seed);
            let (b, _) = generate_module(seed);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn generated_modules_verify_and_terminate() {
        for seed in 0..50 {
            let (m, stats) = generate_module(seed);
            ferrum_mir::verify::verify_module(&m)
                .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            let r = ferrum_mir::interp::Interp::new(&m)
                .run()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!r.output.is_empty(), "seed {seed}: nothing printed");
            assert!(stats.mir_insts > 0);
        }
    }

    #[test]
    fn seeds_produce_structural_diversity() {
        let mut saw_loop = false;
        let mut saw_helper = false;
        for seed in 0..40 {
            let (m, stats) = generate_module(seed);
            let main = m.function("main").expect("main exists");
            if main.blocks.len() > 4 {
                saw_loop = true;
            }
            if stats.helpers > 0 {
                saw_helper = true;
            }
        }
        assert!(saw_loop, "no seed produced interesting CFG");
        assert!(saw_helper, "no seed produced helpers");
    }
}
