//! Differential fuzzing for the FERRUM compilation and protection
//! pipeline.
//!
//! The crate has two halves:
//!
//! * [`gen`] — a seeded, terminating MIR program generator.  Programs
//!   are built from the same [`ferrum_mir::builder::FunctionBuilder`]
//!   the bundled workloads use, with bounded loops, nested diamonds,
//!   local and global arrays, helper calls, and mixed-width
//!   arithmetic.  Every scalar variable the program computes is
//!   printed before `main` returns, so no miscompilation can hide
//!   behind dead code — the generator keeps the whole store live.
//! * [`harness`] — the differential oracle stack.  For each seed the
//!   harness checks the MIR interpreter, the `-O0` and `-O1` backend
//!   output on both execution engines, pass-bundle idempotence and
//!   stat exactness, protection transparency and lint cleanliness for
//!   every technique at both optimization levels, and (optionally)
//!   static-coverage soundness against a pruned-vs-serial campaign.
//!
//! The harness exists because the `-O1` pass bundle rewrites exactly
//! the code shapes the protection passes key on (frame-slot
//! round-trips, duplicated ALU chains, compare/branch sequences).
//! Eight bundled workloads are nowhere near enough to trust that
//! interaction; a thousand seeded programs with adversarial CFGs are
//! a much stronger witness.  Every divergence the harness ever finds
//! is minimized into `tests/fuzz_regressions.rs` at the workspace
//! root and pinned by seed.

pub mod gen;
pub mod harness;

pub use gen::{generate_module, GenStats};
pub use harness::{check_program, run_fuzz, Divergence, FuzzConfig, FuzzReport};
