//! The differential oracle stack.
//!
//! One seed flows through every layer the repo has and every layer
//! must agree:
//!
//! ```text
//! MIR interpreter  ──┐
//! -O0 × {interp, decoded} engines ──┤
//! -O1 × {interp, decoded} engines ──┼──  identical printed output
//! {ir-eddi, hybrid, ferrum} × {-O0, -O1}, fault-free ──┘
//!
//! plus: per-pc profiles byte-identical across engines (profile oracle)
//!       O1(O1(p)) == O1(p)            (idempotence)
//!       Δsize == PassStats claims      (stat exactness)
//!       manifests ∩ regalloc pool = ∅  (reservation discipline)
//!       lint(ferrum|hybrid) clean      (protection contracts)
//!       pruned campaign ≡ serial       (coverage soundness)
//! ```
//!
//! A failed check is a [`Divergence`] naming the seed and the stage;
//! the harness never panics on a finding, so one bad seed cannot mask
//! others in the same run.

use ferrum::{
    CampaignConfig, CoverageMap, Outcome, Pipeline, StaticVerdict, StopReason, Technique,
};
use ferrum_asm::analysis::lint::{lint_program, lint_program_with};
use ferrum_backend::{compile, compile_opt, OptLevel, ProgramMeta};
use ferrum_cpu::decoded::DecodedCpu;
use ferrum_faultsim::campaign::{run_campaign, run_campaign_pruned};
use ferrum_mir::interp::Interp;

use crate::gen::generate_module;

/// One failed differential check.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The generator seed that produced the program.
    pub seed: u64,
    /// Which check failed (stable label, e.g. `"o1-semantics"`).
    pub stage: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// Fuzzing campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Number of programs; program `i` uses seed `base_seed + i`.
    pub programs: u64,
    /// Seed of the first program.
    pub base_seed: u64,
    /// Faults for the coverage cross-check campaign (0 disables the
    /// campaign stage, which dominates runtime).
    pub campaign_samples: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            programs: 200,
            base_seed: 42,
            campaign_samples: 25,
        }
    }
}

/// Aggregate result of a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Programs generated and checked.
    pub programs: u64,
    /// Individual differential checks executed.
    pub checks: u64,
    /// Total static MIR instructions generated.
    pub mir_insts: u64,
    /// Every failed check, in seed order.
    pub divergences: Vec<Divergence>,
}

impl FuzzReport {
    /// True when every check of every program agreed.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

struct Checker {
    seed: u64,
    checks: u64,
    divergences: Vec<Divergence>,
}

impl Checker {
    fn check(&mut self, stage: &'static str, ok: bool, detail: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.divergences.push(Divergence {
                seed: self.seed,
                stage,
                detail: detail(),
            });
        }
    }
}

/// Runs the full oracle stack on one seed.  Returns the check count
/// and any divergences; a stage whose prerequisites failed is skipped
/// rather than reported twice.
pub fn check_program(seed: u64, campaign_samples: usize) -> (u64, u64, Vec<Divergence>) {
    let (module, stats) = generate_module(seed);
    let mut c = Checker {
        seed,
        checks: 0,
        divergences: Vec::new(),
    };

    let verified = ferrum_mir::verify::verify_module(&module);
    c.check("verify", verified.is_ok(), || format!("{:?}", verified.unwrap_err()));

    // Golden oracle: the MIR interpreter.
    let oracle = match Interp::new(&module).run() {
        Ok(r) => r.output,
        Err(e) => {
            c.check("interp-trap", false, || e.to_string());
            return (stats.mir_insts as u64, c.checks, c.divergences);
        }
    };
    c.check("interp-output", !oracle.is_empty(), || "program printed nothing".into());

    // Raw compilation at both levels, on both execution engines.
    let mut programs = Vec::new();
    for opt in [OptLevel::O0, OptLevel::O1] {
        let prog = match compile_opt(&module, opt) {
            Ok(p) => p,
            Err(e) => {
                c.check("compile", false, || format!("[{}] {e}", opt.label()));
                continue;
            }
        };
        let valid = prog.validate();
        c.check("validate", valid.is_ok(), || {
            format!("[{}] {:?}", opt.label(), valid.unwrap_err())
        });
        let cpu = match ferrum_cpu::run::Cpu::load(&prog) {
            Ok(cpu) => cpu,
            Err(e) => {
                c.check("load", false, || format!("[{}] {e}", opt.label()));
                continue;
            }
        };
        let run = cpu.run(None);
        c.check("semantics", run.stop == StopReason::MainReturned && run.output == oracle, || {
            format!(
                "[{}] stop {:?}, output {:?} vs oracle {:?}",
                opt.label(),
                run.stop,
                run.output,
                oracle
            )
        });
        let decoded = DecodedCpu::new(&cpu).run(None);
        c.check("engine-identity", decoded.output == run.output && decoded.stop == run.stop, || {
            format!("[{}] decoded engine disagrees with interpreter engine", opt.label())
        });
        // Exact profiles are a stronger identity oracle than output
        // comparison: both engines must charge every dynamic
        // instruction to the same pc, function, and call stack.
        let iprof = cpu.profile();
        let dprof = DecodedCpu::new(&cpu).profile();
        c.check(
            "profile-identity",
            iprof.pcs == dprof.pcs && iprof.mech_counts == dprof.mech_counts,
            || format!("[{}] per-pc profiles diverge between engines", opt.label()),
        );
        c.check(
            "profile-totals",
            iprof.pcs.total().insts == iprof.result.dyn_insts
                && iprof.pcs.total().cycles == iprof.result.cycles,
            || {
                format!(
                    "[{}] pc totals {:?} disagree with golden run ({} insts / {} cycles)",
                    opt.label(),
                    iprof.pcs.total(),
                    iprof.result.dyn_insts,
                    iprof.result.cycles
                )
            },
        );
        programs.push((opt, prog));
    }

    // Pass-bundle algebra on the raw programs.
    let meta = ProgramMeta::from_module(&module);
    if let Some((_, o1)) = programs.iter().find(|(o, _)| *o == OptLevel::O1) {
        let mut again = o1.clone();
        let stats2 = ferrum_backend::opt::optimize(&mut again, &meta);
        c.check("idempotence", stats2.bundle_is_noop() && again == *o1, || {
            format!("second bundle run changed code: {stats2:?}")
        });
    }
    if let Ok(mut prog) = compile(&module) {
        let before = prog.static_inst_count() as u64;
        let pass_stats = ferrum_backend::opt::optimize(&mut prog, &meta);
        let after = prog.static_inst_count() as u64;
        c.check("pass-stats", before - after == pass_stats.insts_removed(), || {
            format!("size delta {before} -> {after}, stats claim {pass_stats:?}")
        });
    }

    // Protection transparency and lint cleanliness at both levels.
    for (opt, raw) in &programs {
        let pipeline = Pipeline::new().with_opt_level(*opt);
        for technique in Technique::PROTECTED {
            let prog = match pipeline.protect(&module, technique) {
                Ok(p) => p,
                Err(e) => {
                    c.check("protect", false, || format!("[{}/{technique}] {e}", opt.label()));
                    continue;
                }
            };
            let run = match pipeline.load(&prog) {
                Ok(cpu) => cpu.run(None),
                Err(e) => {
                    c.check("protect-load", false, || {
                        format!("[{}/{technique}] {e}", opt.label())
                    });
                    continue;
                }
            };
            c.check(
                "protect-semantics",
                run.stop == StopReason::MainReturned && run.output == oracle,
                || {
                    format!(
                        "[{}/{technique}] stop {:?}, output {:?} vs oracle {:?}",
                        opt.label(),
                        run.stop,
                        run.output,
                        oracle
                    )
                },
            );
        }

        // FERRUM with manifests: lint under the declared reservations,
        // and the reservations must be disjoint from the -O1 pool.
        match ferrum_eddi::Ferrum::new().protect_with_manifest(raw) {
            Ok((prot, manifests)) => {
                let rep = lint_program_with(&prot, &manifests);
                c.check("lint-ferrum", rep.is_clean(), || {
                    format!("[{}] {} findings", opt.label(), rep.findings.len())
                });
                let clash = manifests.values().flat_map(|m| m.reserved_gprs.iter()).find(|g| {
                    ferrum_backend::regalloc::POOL.contains(g)
                });
                c.check("manifest-pool", clash.is_none(), || {
                    format!("[{}] reserved {} is in the regalloc pool", opt.label(), clash.unwrap())
                });
            }
            Err(e) => c.check("lint-ferrum", false, || format!("[{}] {e}", opt.label())),
        }
        match ferrum_eddi::HybridAsmEddi::new().protect_opt(&module, *opt) {
            Ok((prot, _)) => {
                let rep = lint_program(&prot);
                c.check("lint-hybrid", rep.is_clean(), || {
                    format!("[{}] {} findings", opt.label(), rep.findings.len())
                });
            }
            Err(e) => c.check("lint-hybrid", false, || format!("[{}] {e}", opt.label())),
        }
    }

    // Coverage soundness on the optimized FERRUM program: the pruned
    // campaign must be outcome-identical to the serial engine, and no
    // decided static verdict may be contradicted by injection.
    if campaign_samples > 0 {
        let pipeline = Pipeline::new().with_opt_level(OptLevel::O1);
        if let Ok(prog) = pipeline.protect(&module, Technique::Ferrum) {
            if let Ok(cpu) = pipeline.load(&prog) {
                let map = CoverageMap::analyze(&prog);
                let profile = cpu.profile();
                let cfg = CampaignConfig {
                    samples: campaign_samples,
                    seed: seed ^ 0xC0FFEE,
                };
                let serial = run_campaign(&cpu, &profile, cfg);
                let pruned = run_campaign_pruned(&cpu, &profile, cfg, &map);
                c.check("pruned-identity", serial == pruned, || {
                    "pruned campaign diverged from serial engine".into()
                });
                let contradicted = serial
                    .records
                    .iter()
                    .filter(|&&(fault, outcome)| {
                        let verdict = profile
                            .sites
                            .binary_search_by_key(&fault.dyn_index, |s| s.dyn_index)
                            .ok()
                            .and_then(|i| map.verdict_at(profile.sites[i].pc, fault.raw_bit));
                        match verdict {
                            Some(StaticVerdict::Masked) => outcome != Outcome::Benign,
                            Some(StaticVerdict::Detected) => outcome != Outcome::Detected,
                            _ => false,
                        }
                    })
                    .count();
                c.check("verdict-soundness", contradicted == 0, || {
                    format!("{contradicted} static verdicts contradicted by injection")
                });
            }
        }
    }

    (stats.mir_insts as u64, c.checks, c.divergences)
}

/// Runs the whole campaign.  `progress` is called after every program
/// with `(programs_done, &report_so_far)`.
pub fn run_fuzz(cfg: &FuzzConfig, mut progress: impl FnMut(u64, &FuzzReport)) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..cfg.programs {
        let seed = cfg.base_seed.wrapping_add(i);
        let (insts, checks, divs) = check_program(seed, cfg.campaign_samples);
        report.programs += 1;
        report.checks += checks;
        report.mir_insts += insts;
        report.divergences.extend(divs);
        progress(i + 1, &report);
    }
    report
}

/// Collects the manifest-less lint helper used above; exposed for the
/// regression tests so a pinned seed can re-run exactly one stage.
pub fn divergences_for_seed(seed: u64) -> Vec<Divergence> {
    check_program(seed, 25).2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_sweep_is_clean() {
        let report = run_fuzz(
            &FuzzConfig {
                programs: 25,
                base_seed: 42,
                campaign_samples: 10,
            },
            |_, _| {},
        );
        assert_eq!(report.programs, 25);
        assert!(
            report.is_clean(),
            "divergences: {:#?}",
            report.divergences
        );
    }
}
