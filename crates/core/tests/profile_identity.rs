//! Cross-engine profile identity over the full catalog.
//!
//! The exact profile is a cross-engine oracle (DESIGN.md §5j): both
//! engines charge every dynamic instruction to its pc during the
//! profile walk, so the per-pc, per-function, and folded-stack counts
//! — and the per-mechanism rollup — must be byte-identical between the
//! reference interpreter and the decode-once engine for every
//! workload, technique, and optimization level.  A divergence here
//! means the engines disagree on dispatch order, cycle pricing, or
//! call tracking, which would silently skew every downstream
//! overhead table.

use ferrum::{DecodedCpu, OptLevel, Pipeline, Technique};
use ferrum_workloads::{all_workloads, Scale};

const TECHNIQUES: [Technique; 4] = [
    Technique::None,
    Technique::IrEddi,
    Technique::HybridAsmEddi,
    Technique::Ferrum,
];

#[test]
fn per_pc_profiles_are_byte_identical_across_engines() {
    for opt in [OptLevel::O0, OptLevel::O1] {
        let pipeline = Pipeline::new().with_opt_level(opt);
        for w in all_workloads() {
            let module = w.build(Scale::Test);
            for technique in TECHNIQUES {
                let ctx = format!("{}/{technique}/{}", w.name, opt.label());
                let prog = pipeline
                    .protect(&module, technique)
                    .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                let cpu = pipeline.load(&prog).unwrap_or_else(|e| panic!("{ctx}: {e}"));
                let interp = cpu.profile();
                let decoded = DecodedCpu::new(&cpu).profile();
                assert_eq!(interp.result, decoded.result, "{ctx}: golden result");
                assert_eq!(interp.pcs.pcs, decoded.pcs.pcs, "{ctx}: per-pc counts");
                assert_eq!(interp.pcs.funcs, decoded.pcs.funcs, "{ctx}: per-function counts");
                assert_eq!(interp.pcs.stacks, decoded.pcs.stacks, "{ctx}: folded stacks");
                assert_eq!(interp.mech_counts, decoded.mech_counts, "{ctx}: mechanism rollup");
                // The profile reconciles with itself: pc totals equal
                // the golden run, and folded stacks partition it.
                let total = interp.pcs.total();
                assert_eq!(total.insts, interp.result.dyn_insts, "{ctx}");
                assert_eq!(total.cycles, interp.result.cycles, "{ctx}");
                let stack_cycles: u64 = interp.pcs.stacks.iter().map(|(_, c)| c.cycles).sum();
                assert_eq!(stack_cycles, interp.result.cycles, "{ctx}");
            }
        }
    }
}

#[test]
fn per_site_overhead_reconciles_for_the_full_matrix() {
    // The pc-granular refinement of the PR 3 exact-sum invariant:
    // summing the per-site mechanism counts of the differential
    // profile must land exactly on the whole-program per-mechanism
    // attribution, for every workload x technique x opt level.
    for opt in [OptLevel::O0, OptLevel::O1] {
        let pipeline = Pipeline::new().with_opt_level(opt);
        for w in all_workloads() {
            let module = w.build(Scale::Test);
            for technique in TECHNIQUES {
                let ctx = format!("{}/{technique}/{}", w.name, opt.label());
                let d = ferrum::diff_profile(&pipeline, &module, technique)
                    .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                assert!(d.sites_reconcile(), "{ctx}: site sum != mechanism totals");
            }
        }
    }
}
