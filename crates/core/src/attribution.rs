//! Per-mechanism overhead attribution.
//!
//! FERRUM's runtime overhead is the sum of several distinct mechanisms
//! — scalar duplication, immediate checks, SIMD batch captures and
//! flushes, deferred flag detection, and stack-level register
//! requisition.  Every instruction a protection pass inserts carries a
//! [`Mechanism`] in its provenance, and the simulator's profile
//! ([`ferrum_cpu::run::Profile::mech_counts`]) accumulates executed
//! instructions and cycles per mechanism.  This module pairs those
//! counts with the right baseline so the attribution is *exact*:
//!
//! > baseline dynamic instructions + Σ per-mechanism instructions
//! > = protected dynamic instructions
//!
//! The subtlety is the baseline.  FERRUM runs the backend peephole
//! pass before protecting (the paper's "other compiler-level
//! transformations"), so the raw compile is the wrong reference — the
//! mechanism sum would be off by exactly the peephole savings.
//! [`attribute_overhead`] therefore compares against the *peepholed*
//! unprotected program whenever the pipeline's FERRUM configuration
//! peepholes.  The exact-sum identity holds because protection only
//! inserts instructions and never changes fault-free control flow:
//! checker branches fall through on a clean run, and requisition stubs
//! execute their relocated instructions exactly once.

use ferrum_asm::provenance::Mechanism;
use ferrum_cpu::run::MechCounts;
use ferrum_eddi::Technique;
use ferrum_mir::module::Module;

use crate::{Error, Pipeline};

/// Exact per-mechanism breakdown of FERRUM's dynamic overhead on one
/// workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverheadAttribution {
    /// Fault-free dynamic instructions of the peepholed unprotected
    /// program.
    pub baseline_dyn_insts: u64,
    /// Fault-free cycles of the peepholed unprotected program.
    pub baseline_cycles: u64,
    /// Fault-free dynamic instructions of the FERRUM-protected program.
    pub protected_dyn_insts: u64,
    /// Fault-free cycles of the FERRUM-protected program.
    pub protected_cycles: u64,
    /// Executed instructions and cycles per protection mechanism.
    pub mech: MechCounts,
}

impl OverheadAttribution {
    /// Dynamic protection instructions (the mechanism sum).
    pub fn protection_insts(&self) -> u64 {
        self.mech.total_insts()
    }

    /// Protection cycles (the mechanism sum).
    pub fn protection_cycles(&self) -> u64 {
        self.mech.total_cycles()
    }

    /// True when the per-mechanism counts account for the
    /// protected-minus-baseline delta *exactly*, in both instructions
    /// and cycles.  A `false` here means an emission site is missing
    /// its mechanism tag (or a pass rewrote baseline code).
    pub fn reconciles(&self) -> bool {
        self.baseline_dyn_insts + self.mech.total_insts() == self.protected_dyn_insts
            && self.baseline_cycles + self.mech.total_cycles() == self.protected_cycles
    }

    /// Cycle overhead of protection versus the baseline (0.30 = +30%).
    pub fn cycle_overhead(&self) -> f64 {
        if self.baseline_cycles == 0 {
            0.0
        } else {
            self.protected_cycles as f64 / self.baseline_cycles as f64 - 1.0
        }
    }

    /// Share of all protection cycles spent in mechanism `m`
    /// (0.0 when no protection cycles were executed).
    pub fn cycle_share(&self, m: Mechanism) -> f64 {
        let total = self.mech.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.mech.get(m).cycles as f64 / total as f64
        }
    }
}

/// Profiles `module` unprotected (peepholed, matching the pipeline's
/// FERRUM configuration) and FERRUM-protected, and returns the exact
/// per-mechanism overhead breakdown.
///
/// # Errors
///
/// Propagates compilation and protection failures.
pub fn attribute_overhead(
    pipeline: &Pipeline,
    module: &Module,
) -> Result<OverheadAttribution, Error> {
    let _span = ferrum_trace::span("attribution");
    // The baseline must compile at the pipeline's opt level, or the
    // exact-sum reconciliation would attribute optimizer savings to
    // protection mechanisms.
    let mut baseline = ferrum_backend::compile_opt(module, pipeline.opt_level())?;
    if pipeline.ferrum_config().peephole {
        ferrum_backend::peephole::run(&mut baseline);
    }
    let base_profile = pipeline.load(&baseline)?.profile();

    let protected = pipeline.protect(module, Technique::Ferrum)?;
    let prot_profile = pipeline.load(&protected)?.profile();
    debug_assert_eq!(
        base_profile.result.output, prot_profile.result.output,
        "protection must be output-transparent"
    );

    Ok(OverheadAttribution {
        baseline_dyn_insts: base_profile.result.dyn_insts,
        baseline_cycles: base_profile.result.cycles,
        protected_dyn_insts: prot_profile.result.dyn_insts,
        protected_cycles: prot_profile.result.cycles,
        mech: prot_profile.mech_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_workloads::{workload, Scale};

    #[test]
    fn attribution_reconciles_exactly_on_a_workload() {
        let pipeline = Pipeline::new();
        let module = workload("kmeans").expect("exists").build(Scale::Test);
        let att = attribute_overhead(&pipeline, &module).expect("attributes");
        assert!(att.protection_insts() > 0, "{att:?}");
        assert!(
            att.reconciles(),
            "mechanism sum {} + baseline {} != protected {} (cycles {} + {} vs {})",
            att.protection_insts(),
            att.baseline_dyn_insts,
            att.protected_dyn_insts,
            att.protection_cycles(),
            att.baseline_cycles,
            att.protected_cycles,
        );
        assert!(att.cycle_overhead() > 0.0);
        let share_sum: f64 = Mechanism::ALL
            .into_iter()
            .map(|m| att.cycle_share(m))
            .sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to 1: {share_sum}");
    }

    #[test]
    fn attribution_respects_pipeline_ablation_config() {
        use ferrum_eddi::FerrumConfig;
        // With SIMD off, batch mechanisms must not appear.
        let pipeline = Pipeline::new().with_ferrum_config(FerrumConfig {
            simd: false,
            ..FerrumConfig::default()
        });
        let module = workload("knn").expect("exists").build(Scale::Test);
        let att = attribute_overhead(&pipeline, &module).expect("attributes");
        assert!(att.reconciles(), "{att:?}");
        assert_eq!(att.mech.get(Mechanism::BatchCapture).insts, 0);
        assert_eq!(att.mech.get(Mechanism::BatchFlush).insts, 0);
        assert!(att.mech.get(Mechanism::Dup).insts > 0);
    }
}
