//! Text rendering of evaluation results in the shape of the paper's
//! figures.

use ferrum_eddi::Technique;

use crate::experiment::WorkloadReport;

/// Renders Fig. 10's data: SDC coverage per benchmark × technique.
pub fn render_coverage_table(reports: &[WorkloadReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16}{:>16}{:>16}{:>16}\n",
        "benchmark", "IR-EDDI", "HYBRID-ASM", "FERRUM"
    ));
    let mut sums = [0.0f64; 3];
    for r in reports {
        out.push_str(&format!("{:<16}", r.name));
        for (i, t) in Technique::PROTECTED.into_iter().enumerate() {
            let c = r.technique(t).map_or(0.0, |x| x.coverage);
            sums[i] += c;
            out.push_str(&format!("{:>15.1}%", c * 100.0));
        }
        out.push('\n');
    }
    if !reports.is_empty() {
        out.push_str(&format!("{:<16}", "average"));
        for s in sums {
            out.push_str(&format!("{:>15.1}%", s / reports.len() as f64 * 100.0));
        }
        out.push('\n');
    }
    out
}

/// Renders Fig. 11's data: runtime overhead per benchmark × technique.
pub fn render_overhead_table(reports: &[WorkloadReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16}{:>16}{:>16}{:>16}\n",
        "benchmark", "IR-EDDI", "HYBRID-ASM", "FERRUM"
    ));
    let mut sums = [0.0f64; 3];
    for r in reports {
        out.push_str(&format!("{:<16}", r.name));
        for (i, t) in Technique::PROTECTED.into_iter().enumerate() {
            let o = r.technique(t).map_or(0.0, |x| x.overhead);
            sums[i] += o;
            out.push_str(&format!("{:>15.1}%", o * 100.0));
        }
        out.push('\n');
    }
    if !reports.is_empty() {
        out.push_str(&format!("{:<16}", "average"));
        for s in sums {
            out.push_str(&format!("{:>15.1}%", s / reports.len() as f64 * 100.0));
        }
        out.push('\n');
    }
    out
}

/// Renders a grouped horizontal bar chart (the shape of the paper's
/// Figs. 10–11) in plain text.  `max` sets the full-bar scale.
pub fn render_bars(
    title: &str,
    reports: &[WorkloadReport],
    value: impl Fn(&crate::experiment::TechniqueReport) -> f64,
    max: f64,
) -> String {
    const WIDTH: usize = 40;
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for r in reports {
        out.push_str(&format!(
            "{}
",
            r.name
        ));
        for t in Technique::PROTECTED {
            let Some(tr) = r.technique(t) else { continue };
            let v = value(tr);
            let filled = ((v / max) * WIDTH as f64).round().clamp(0.0, WIDTH as f64) as usize;
            let short = match t {
                Technique::IrEddi => "IR    ",
                Technique::HybridAsmEddi => "HYBRID",
                Technique::Ferrum => "FERRUM",
                Technique::None => "RAW   ",
            };
            out.push_str(&format!(
                "  {short} |{}{}| {:5.1}%
",
                "█".repeat(filled),
                " ".repeat(WIDTH - filled),
                v * 100.0
            ));
        }
    }
    out
}

/// Serialises the full evaluation to pretty JSON (machine-readable
/// artifact for downstream analysis; the campaign `records` are
/// omitted via the type's fields being aggregate counts plus records —
/// callers who want compact output can clear `campaign.records`).
///
/// # Panics
///
/// Never panics for reports produced by
/// [`crate::experiment::evaluate_workload`].
pub fn to_json(reports: &[WorkloadReport]) -> String {
    serde_json::to_string_pretty(reports).expect("reports serialise")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{evaluate_workload, EvalConfig};
    use crate::Pipeline;
    use ferrum_workloads::{workload, Scale};

    #[test]
    fn tables_render_with_averages() {
        let pipeline = Pipeline::new();
        let w = workload("knn").expect("exists");
        let cfg = EvalConfig {
            samples: 150,
            seed: 5,
            scale: Scale::Test,
        };
        let report = evaluate_workload(&pipeline, &w, cfg).expect("evaluates");
        let cov = render_coverage_table(std::slice::from_ref(&report));
        assert!(cov.contains("knn"));
        assert!(cov.contains("average"));
        assert!(cov.contains('%'));
        let ovh = render_overhead_table(std::slice::from_ref(&report));
        assert!(ovh.contains("FERRUM"));
        assert!(ovh.lines().count() == 3);
    }

    #[test]
    fn bar_chart_renders_scaled_bars() {
        let pipeline = Pipeline::new();
        let w = workload("knn").expect("exists");
        let cfg = EvalConfig {
            samples: 120,
            seed: 5,
            scale: Scale::Test,
        };
        let report = evaluate_workload(&pipeline, &w, cfg).expect("evaluates");
        let chart = render_bars(
            "coverage",
            std::slice::from_ref(&report),
            |t| t.coverage,
            1.0,
        );
        assert!(chart.contains("knn"));
        assert!(chart.contains("FERRUM"));
        assert!(chart.contains('█'));
        // FERRUM's coverage bar is full (100%).
        let full_bar = "█".repeat(40);
        assert!(chart.contains(&full_bar), "{chart}");
    }

    #[test]
    fn json_export_round_trips_key_fields() {
        let pipeline = Pipeline::new();
        let w = workload("bfs").expect("exists");
        let cfg = EvalConfig {
            samples: 100,
            seed: 6,
            scale: Scale::Test,
        };
        let report = evaluate_workload(&pipeline, &w, cfg).expect("evaluates");
        let json = to_json(std::slice::from_ref(&report));
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert_eq!(v[0]["name"], "bfs");
        assert!(v[0]["raw_cycles"].as_u64().unwrap() > 0);
        assert_eq!(v[0]["techniques"].as_array().unwrap().len(), 3);
        assert_eq!(v[0]["techniques"][2]["technique"], "Ferrum");
        assert!(v[0]["techniques"][2]["coverage"].as_f64().unwrap() >= 0.99);
    }

    #[test]
    fn empty_reports_render_header_only() {
        assert_eq!(render_coverage_table(&[]).lines().count(), 1);
        assert_eq!(render_overhead_table(&[]).lines().count(), 1);
    }
}
