//! Text rendering of evaluation results in the shape of the paper's
//! figures, plus the machine-readable JSON artifact.

use ferrum_asm::analysis::coverage::{CoverageMap, VerdictCounts};
use ferrum_asm::analysis::lint::{LintFinding, LintReport};
use ferrum_asm::provenance::Mechanism;
use ferrum_cpu::differential::DiffLoc;
use ferrum_cpu::fault::FaultSpec;
use ferrum_cpu::run::MechCounts;
use ferrum_cpu::{Image, PcCount, PcProfile};
use ferrum_eddi::Technique;
use ferrum_faultsim::campaign::{
    CampaignResult, CampaignStats, DetectionLatency, Outcome, WorkerStats,
};
use ferrum_faultsim::compose::ComposedMap;
use ferrum_faultsim::flight::{CampaignFingerprint, ProgressSnapshot};
use ferrum_faultsim::forensics::{
    CheckerEscape, Divergence, EscapeReason, ForensicRecord, ForensicsReport, KillWindow,
    TaintSample, TaintTimeline, UnknownSiteExplanation,
};
use ferrum_faultsim::rootcause::RootCauseReport;
use ferrum_faultsim::stats::wilson_interval;

use crate::attribution::OverheadAttribution;
use crate::experiment::{TechniqueReport, WorkloadReport};
use crate::json::{Json, ToJson};
use crate::profile::{DiffProfile, SiteOverhead};

/// Renders Fig. 10's data: SDC coverage per benchmark × technique.
pub fn render_coverage_table(reports: &[WorkloadReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16}{:>16}{:>16}{:>16}\n",
        "benchmark", "IR-EDDI", "HYBRID-ASM", "FERRUM"
    ));
    let mut sums = [0.0f64; 3];
    for r in reports {
        out.push_str(&format!("{:<16}", r.name));
        for (i, t) in Technique::PROTECTED.into_iter().enumerate() {
            let c = r.technique(t).map_or(0.0, |x| x.coverage);
            sums[i] += c;
            out.push_str(&format!("{:>15.1}%", c * 100.0));
        }
        out.push('\n');
    }
    if !reports.is_empty() {
        out.push_str(&format!("{:<16}", "average"));
        for s in sums {
            out.push_str(&format!("{:>15.1}%", s / reports.len() as f64 * 100.0));
        }
        out.push('\n');
    }
    out
}

/// Renders Fig. 11's data: runtime overhead per benchmark × technique.
pub fn render_overhead_table(reports: &[WorkloadReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16}{:>16}{:>16}{:>16}\n",
        "benchmark", "IR-EDDI", "HYBRID-ASM", "FERRUM"
    ));
    let mut sums = [0.0f64; 3];
    for r in reports {
        out.push_str(&format!("{:<16}", r.name));
        for (i, t) in Technique::PROTECTED.into_iter().enumerate() {
            let o = r.technique(t).map_or(0.0, |x| x.overhead);
            sums[i] += o;
            out.push_str(&format!("{:>15.1}%", o * 100.0));
        }
        out.push('\n');
    }
    if !reports.is_empty() {
        out.push_str(&format!("{:<16}", "average"));
        for s in sums {
            out.push_str(&format!("{:>15.1}%", s / reports.len() as f64 * 100.0));
        }
        out.push('\n');
    }
    out
}

/// Renders a grouped horizontal bar chart (the shape of the paper's
/// Figs. 10–11) in plain text.  `max` sets the full-bar scale.
pub fn render_bars(
    title: &str,
    reports: &[WorkloadReport],
    value: impl Fn(&crate::experiment::TechniqueReport) -> f64,
    max: f64,
) -> String {
    const WIDTH: usize = 40;
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for r in reports {
        out.push_str(&format!(
            "{}
",
            r.name
        ));
        for t in Technique::PROTECTED {
            let Some(tr) = r.technique(t) else { continue };
            let v = value(tr);
            let filled = ((v / max) * WIDTH as f64).round().clamp(0.0, WIDTH as f64) as usize;
            let short = match t {
                Technique::IrEddi => "IR    ",
                Technique::HybridAsmEddi => "HYBRID",
                Technique::Ferrum => "FERRUM",
                Technique::None => "RAW   ",
            };
            out.push_str(&format!(
                "  {short} |{}{}| {:5.1}%
",
                "█".repeat(filled),
                " ".repeat(WIDTH - filled),
                v * 100.0
            ));
        }
    }
    out
}

/// Renders the campaign-engine throughput counters: injections/sec,
/// snapshot hit-rate, and the share of dynamic instructions the
/// snapshot engine did not have to re-execute.
pub fn render_throughput_table(reports: &[WorkloadReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44}{:>8}{:>12}{:>11}{:>10}{:>13}\n",
        "benchmark", "threads", "inj/sec", "snapshots", "hit-rate", "steps-saved"
    ));
    for r in reports {
        for t in &r.techniques {
            let s = &t.campaign.stats;
            out.push_str(&format!(
                "{:<44}{:>8}{:>12.0}{:>11}{:>9.0}%{:>12.0}%\n",
                format!("{}/{}", r.name, t.technique),
                s.threads,
                s.injections_per_sec,
                s.snapshots_taken,
                s.snapshot_hit_rate() * 100.0,
                s.steps_saved_ratio() * 100.0,
            ));
        }
    }
    out
}

/// Renders the per-mechanism overhead-attribution table for one
/// workload: executed instructions and cycles per protection mechanism,
/// each mechanism's share of the total protection cycles, and the
/// exact reconciliation against the peepholed baseline.
pub fn render_attribution_table(name: &str, att: &OverheadAttribution) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{name}: FERRUM overhead attribution (baseline {} insts / {} cycles)\n",
        att.baseline_dyn_insts, att.baseline_cycles
    ));
    out.push_str(&format!(
        "{:<16}{:>12}{:>12}{:>12}\n",
        "mechanism", "dyn insts", "cycles", "cycle-share"
    ));
    for (m, c) in att.mech.iter() {
        out.push_str(&format!(
            "{:<16}{:>12}{:>12}{:>11.1}%\n",
            m.label(),
            c.insts,
            c.cycles,
            att.cycle_share(m) * 100.0
        ));
    }
    out.push_str(&format!(
        "{:<16}{:>12}{:>12}{:>11.1}%\n",
        "total",
        att.protection_insts(),
        att.protection_cycles(),
        if att.protection_cycles() == 0 { 0.0 } else { 100.0 }
    ));
    out.push_str(&format!(
        "protected: {} insts / {} cycles (+{:.1}% cycles); mechanism sum {}\n",
        att.protected_dyn_insts,
        att.protected_cycles,
        att.cycle_overhead() * 100.0,
        if att.reconciles() { "exact" } else { "DOES NOT RECONCILE" }
    ));
    out
}

/// Renders the detection-latency distribution: percentiles plus a
/// log2-bucketed histogram (injection→detection instruction distance).
pub fn render_latency_histogram(lat: &DetectionLatency) -> String {
    let mut out = String::new();
    if lat.count() == 0 {
        out.push_str("no detections observed\n");
        return out;
    }
    out.push_str(&format!(
        "detections: {}   p50: {}   p95: {}   max: {} dynamic insts\n",
        lat.count(),
        lat.p50().unwrap_or(0),
        lat.p95().unwrap_or(0),
        lat.max().unwrap_or(0)
    ));
    const WIDTH: usize = 32;
    let hist = lat.histogram_log2();
    let peak = hist.iter().map(|&(_, _, c)| c).max().unwrap_or(1).max(1);
    for (lo, hi, c) in hist {
        let filled = ((c as f64 / peak as f64) * WIDTH as f64).round() as usize;
        out.push_str(&format!(
            "{:>8}..{:<8}{:>8} |{}{}|\n",
            lo,
            hi,
            c,
            "█".repeat(filled),
            " ".repeat(WIDTH - filled)
        ));
    }
    out
}

/// Renders per-benchmark detection-latency percentiles and worker
/// balance from the campaign telemetry.
pub fn render_telemetry_table(reports: &[WorkloadReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44}{:>10}{:>8}{:>8}{:>8}{:>9}\n",
        "benchmark", "detected", "p50", "p95", "max", "balance"
    ));
    for r in reports {
        for t in &r.techniques {
            let s = &t.campaign.stats;
            out.push_str(&format!(
                "{:<44}{:>10}{:>8}{:>8}{:>8}{:>8.2}\n",
                format!("{}/{}", r.name, t.technique),
                s.latency.count(),
                s.latency.p50().map_or_else(|| "-".into(), |v| v.to_string()),
                s.latency.p95().map_or_else(|| "-".into(), |v| v.to_string()),
                s.latency.max().map_or_else(|| "-".into(), |v| v.to_string()),
                s.worker_balance(),
            ));
        }
    }
    out
}

/// Header for the live campaign progress table streamed by
/// `ferrum-campaign` (one [`render_progress_row`] per
/// [`ProgressSnapshot`]).
pub fn render_progress_header() -> String {
    format!(
        "{:<14}{:>6}{:>7}{:>9}{:>7}{:>9}{:>9}{:>12}{:>10}  {}\n",
        "done", "%", "sdc", "detected", "crash", "timeout", "benign", "inj/s", "eta", "sdc 95% CI"
    )
}

/// One row of the live campaign progress table: completion, running
/// outcome tallies, rolling injections/sec, ETA, and the Wilson
/// interval on SDC probability.
pub fn render_progress_row(p: &ProgressSnapshot) -> String {
    let pct = if p.total == 0 {
        100.0
    } else {
        100.0 * p.done as f64 / p.total as f64
    };
    let eta = match p.eta_nanos {
        Some(n) => format!("{:.1}s", n as f64 / 1e9),
        None => "-".to_owned(),
    };
    format!(
        "{:<14}{:>6.1}{:>7}{:>9}{:>7}{:>9}{:>9}{:>12.0}{:>10}  [{:.4}, {:.4}]\n",
        format!("{}/{}", p.done, p.total),
        pct,
        p.tallies.sdc,
        p.tallies.detected,
        p.tallies.crash,
        p.tallies.timeout,
        p.tallies.benign,
        p.rate,
        eta,
        p.sdc_ci.0,
        p.sdc_ci.1
    )
}

/// A progress row with stalled-worker flags: [`render_progress_row`]
/// plus a trailing `!! stalled: w2,w5` marker when
/// [`StallTracker::stalled`](crate::flight::StallTracker::stalled)
/// reports silent workers.
pub fn render_progress_row_flagged(p: &ProgressSnapshot, stalled: &[usize]) -> String {
    let mut row = render_progress_row(p);
    if !stalled.is_empty() {
        let names: Vec<String> = stalled.iter().map(|w| format!("w{w}")).collect();
        row.pop();
        row.push_str(&format!("  !! stalled: {}\n", names.join(",")));
    }
    row
}

/// Renders the end-of-campaign flight summary: fingerprint, shard
/// layout, and final throughput — the `ferrum-campaign` footer.
pub fn render_flight_summary(fp: &CampaignFingerprint, result: &CampaignResult) -> String {
    let s = &result.stats;
    let mut out = String::new();
    out.push_str(&format!(
        "campaign {}/{} [{}:{}] seed {:#x}: {} injections in {:.1} ms ({:.0} inj/s, {} threads)\n",
        if fp.workload.is_empty() { "?" } else { &fp.workload },
        if fp.technique.is_empty() { "?" } else { &fp.technique },
        fp.executor,
        fp.engine.label(),
        fp.seed,
        s.injections,
        s.wall_nanos as f64 / 1e6,
        s.injections_per_sec,
        s.threads
    ));
    out.push_str(&format!(
        "outcomes: {} sdc / {} detected / {} crash / {} timeout / {} benign (sdc p = {:.4})\n",
        result.sdc, result.detected, result.crash, result.timeout, result.benign,
        result.sdc_prob()
    ));
    if s.pruned_sites > 0 || s.reused_sites > 0 {
        out.push_str(&format!(
            "pruned: {} ({:.1}%)   reused: {} ({:.1}%)\n",
            s.pruned_sites,
            s.prune_rate() * 100.0,
            s.reused_sites,
            s.reuse_rate() * 100.0
        ));
    }
    out
}

/// Renders a `ferrum-lint` report for terminal consumption: one line
/// per finding (`contract  function/block[index]: explanation`) plus a
/// summary line, mirroring compiler-diagnostic conventions.
pub fn render_lint_report(rep: &LintReport) -> String {
    let mut out = String::new();
    for f in &rep.findings {
        out.push_str(&format!(
            "{:<16} {}/{}[{}] ({}): {}\n",
            f.contract.name(),
            f.function,
            f.block,
            f.inst_index,
            f.provenance,
            f.explanation
        ));
    }
    out.push_str(&format!(
        "{} finding(s) in {} function(s), {} instruction(s) scanned\n",
        rep.findings.len(),
        rep.functions_scanned,
        rep.insts_scanned
    ));
    out
}

impl ToJson for LintFinding {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("contract", Json::Str(self.contract.name().to_owned())),
            ("function", self.function.to_json()),
            ("block", self.block.to_json()),
            ("inst_index", self.inst_index.to_json()),
            ("provenance", Json::Str(self.provenance.to_string())),
            ("explanation", self.explanation.to_json()),
        ])
    }
}

impl ToJson for LintReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("clean", Json::Bool(self.is_clean())),
            ("functions_scanned", self.functions_scanned.to_json()),
            ("insts_scanned", self.insts_scanned.to_json()),
            ("findings", self.findings.to_json()),
        ])
    }
}

impl ToJson for Outcome {
    fn to_json(&self) -> Json {
        Json::Str(self.variant().to_owned())
    }
}

impl ToJson for Technique {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Technique::None => "None",
                Technique::IrEddi => "IrEddi",
                Technique::HybridAsmEddi => "HybridAsmEddi",
                Technique::Ferrum => "Ferrum",
            }
            .to_owned(),
        )
    }
}

impl ToJson for FaultSpec {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("dyn_index", self.dyn_index.to_json()),
            ("raw_bit", Json::Int(i64::from(self.raw_bit))),
        ])
    }
}

impl ToJson for Mechanism {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_owned())
    }
}

impl ToJson for MechCounts {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(m, c)| {
                    (
                        m.label().to_owned(),
                        Json::obj(vec![
                            ("insts", c.insts.to_json()),
                            ("cycles", c.cycles.to_json()),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

impl ToJson for OverheadAttribution {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("baseline_dyn_insts", self.baseline_dyn_insts.to_json()),
            ("baseline_cycles", self.baseline_cycles.to_json()),
            ("protected_dyn_insts", self.protected_dyn_insts.to_json()),
            ("protected_cycles", self.protected_cycles.to_json()),
            ("cycle_overhead", self.cycle_overhead().to_json()),
            ("mechanisms", self.mech.to_json()),
            ("reconciles", Json::Bool(self.reconciles())),
        ])
    }
}

impl ToJson for WorkerStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("injections", self.injections.to_json()),
            ("steps_executed", self.steps_executed.to_json()),
        ])
    }
}

impl ToJson for DetectionLatency {
    fn to_json(&self) -> Json {
        let opt = |v: Option<u64>| v.map_or(Json::Null, |v| v.to_json());
        let hist = self
            .histogram_log2()
            .into_iter()
            .map(|(lo, hi, c)| {
                Json::obj(vec![
                    ("lo", lo.to_json()),
                    ("hi", hi.to_json()),
                    ("count", c.to_json()),
                ])
            })
            .collect();
        Json::obj(vec![
            ("count", self.count().to_json()),
            ("p50", opt(self.p50())),
            ("p95", opt(self.p95())),
            ("max", opt(self.max())),
            ("histogram_log2", Json::Arr(hist)),
        ])
    }
}

impl ToJson for CampaignStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("engine", self.engine.label().to_json()),
            ("wall_nanos", Json::Int(self.wall_nanos as i64)),
            ("injections", self.injections.to_json()),
            ("injections_per_sec", self.injections_per_sec.to_json()),
            ("threads", self.threads.to_json()),
            ("snapshots_taken", self.snapshots_taken.to_json()),
            ("snapshot_hits", self.snapshot_hits.to_json()),
            ("snapshot_hit_rate", self.snapshot_hit_rate().to_json()),
            ("steps_saved", self.steps_saved.to_json()),
            ("steps_executed", self.steps_executed.to_json()),
            ("steps_saved_ratio", self.steps_saved_ratio().to_json()),
            ("per_worker", self.per_worker.to_json()),
            ("worker_balance", self.worker_balance().to_json()),
            ("detection_latency", self.latency.to_json()),
            ("pruned_sites", self.pruned_sites.to_json()),
            ("prune_rate", self.prune_rate().to_json()),
            ("reused_sites", self.reused_sites.to_json()),
            ("reuse_rate", self.reuse_rate().to_json()),
        ])
    }
}

impl ToJson for VerdictCounts {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("masked", self.masked.to_json()),
            ("detected", self.detected.to_json()),
            ("vulnerable", self.vulnerable.to_json()),
            ("unknown", self.unknown.to_json()),
            ("total", self.total().to_json()),
            ("detection_lower_bound", self.detection_lower_bound().to_json()),
            ("detection_upper_bound", self.detection_upper_bound().to_json()),
            ("decided_fraction", self.decided_fraction().to_json()),
        ])
    }
}

/// Serialises a [`CoverageMap`] (see docs/coverage-schema.md).  With
/// `include_sites`, each function carries its full per-site verdict
/// list; without, only the rollups — site lists are large.
pub fn coverage_to_json(map: &CoverageMap, include_sites: bool) -> Json {
    let functions = map
        .functions
        .iter()
        .map(|f| {
            let mut fields = vec![
                ("name", f.name.to_json()),
                ("sites", f.sites.len().to_json()),
                ("rollup", f.rollup.to_json()),
            ];
            if include_sites {
                let sites = f
                    .sites
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("pc", s.pc.to_json()),
                            ("bits", (s.bits as u64).to_json()),
                            (
                                "mechanism",
                                s.prov
                                    .mechanism()
                                    .map_or(Json::Null, |m| m.label().to_json()),
                            ),
                            (
                                "verdicts",
                                Json::Arr(
                                    s.verdicts.iter().map(|v| v.label().to_json()).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect();
                fields.push(("site_verdicts", Json::Arr(sites)));
            }
            Json::obj(fields)
        })
        .collect();
    let mechanisms = map
        .mechanism_rollup()
        .into_iter()
        .map(|(m, c)| (m.map_or("app", Mechanism::label).to_owned(), c.to_json()))
        .collect();
    Json::obj(vec![
        ("total_sites", map.total_sites().to_json()),
        ("rollup", map.rollup().to_json()),
        ("mechanisms", Json::Obj(mechanisms)),
        ("functions", Json::Arr(functions)),
    ])
}

/// Renders the static coverage map: per-mechanism verdict-unit counts
/// and the predicted detection-coverage bounds.
pub fn render_static_coverage(name: &str, map: &CoverageMap) -> String {
    let mut out = String::new();
    out.push_str(&format!("static coverage: {name}\n"));
    out.push_str(&format!(
        "{:<16}{:>10}{:>10}{:>12}{:>10}{:>10}\n",
        "mechanism", "masked", "detected", "vulnerable", "unknown", "decided"
    ));
    let mut rows: Vec<(String, VerdictCounts)> = map
        .mechanism_rollup()
        .into_iter()
        .map(|(m, c)| (m.map_or("app", Mechanism::label).to_owned(), c))
        .collect();
    rows.push(("total".to_owned(), map.rollup()));
    for (label, c) in rows {
        out.push_str(&format!(
            "{:<16}{:>10}{:>10}{:>12}{:>10}{:>9.1}%\n",
            label,
            c.masked,
            c.detected,
            c.vulnerable,
            c.unknown,
            c.decided_fraction() * 100.0,
        ));
    }
    let r = map.rollup();
    out.push_str(&format!(
        "predicted detection coverage (static-site weighted): {:.1}% .. {:.1}%\n",
        r.detection_lower_bound() * 100.0,
        r.detection_upper_bound() * 100.0,
    ));
    out
}

/// Renders the predicted bounds next to a measured campaign.  The
/// static bounds weight every program-text site equally while a
/// sampled campaign weights sites by dynamic execution frequency, so
/// the measured rate may legitimately sit outside the static band —
/// the table exists to surface exactly that relationship.
pub fn render_predicted_vs_measured(
    name: &str,
    map: &CoverageMap,
    campaign: &CampaignResult,
) -> String {
    let r = map.rollup();
    let total = campaign.total().max(1);
    let (det_lo, det_hi) = wilson_interval(campaign.detected, campaign.total());
    let (sdc_lo, sdc_hi) = wilson_interval(campaign.sdc, campaign.total());
    let mut out = String::new();
    out.push_str(&format!("predicted vs measured: {name}\n"));
    out.push_str(&format!(
        "  static detected (lower bound)    {:>6.1}%\n",
        r.detection_lower_bound() * 100.0
    ));
    out.push_str(&format!(
        "  static non-masked (upper bound)  {:>6.1}%\n",
        r.detection_upper_bound() * 100.0
    ));
    out.push_str(&format!(
        "  measured detection rate          {:>6.1}%   ({}/{} injections, 95% CI {:.1}..{:.1}%)\n",
        campaign.detected as f64 / total as f64 * 100.0,
        campaign.detected,
        campaign.total(),
        det_lo * 100.0,
        det_hi * 100.0,
    ));
    out.push_str(&format!(
        "  measured sdc rate                {:>6.1}%   (95% CI {:.1}..{:.1}%)\n",
        campaign.sdc as f64 / total as f64 * 100.0,
        sdc_lo * 100.0,
        sdc_hi * 100.0,
    ));
    out.push_str(&format!(
        "  prune rate                       {:>6.1}%   ({} of {} booked statically)\n",
        campaign.stats.prune_rate() * 100.0,
        campaign.stats.pruned_sites,
        campaign.total(),
    ));
    out
}

/// The predicted-vs-measured comparison as JSON: static bounds plus
/// measured point estimates with their 95% Wilson intervals.
pub fn predicted_vs_measured_to_json(map: &CoverageMap, campaign: &CampaignResult) -> Json {
    let r = map.rollup();
    let total = campaign.total().max(1);
    let (det_lo, det_hi) = wilson_interval(campaign.detected, campaign.total());
    let (sdc_lo, sdc_hi) = wilson_interval(campaign.sdc, campaign.total());
    let rate = |n: usize| n as f64 / total as f64;
    Json::obj(vec![
        ("static_lower_bound", r.detection_lower_bound().to_json()),
        ("static_upper_bound", r.detection_upper_bound().to_json()),
        ("injections", campaign.total().to_json()),
        ("measured_detection_rate", rate(campaign.detected).to_json()),
        ("detection_ci95_lo", det_lo.to_json()),
        ("detection_ci95_hi", det_hi.to_json()),
        ("measured_sdc_rate", rate(campaign.sdc).to_json()),
        ("sdc_ci95_lo", sdc_lo.to_json()),
        ("sdc_ci95_hi", sdc_hi.to_json()),
        ("prune_rate", campaign.stats.prune_rate().to_json()),
    ])
}

/// Serialises a [`ComposedMap`] (see docs/compose-schema.md): the
/// whole-program composed verdicts next to the local rollups, with the
/// per-function lift counts.
pub fn composition_to_json(map: &ComposedMap) -> Json {
    let functions = map
        .functions
        .iter()
        .map(|f| {
            Json::obj(vec![
                ("name", f.name.to_json()),
                ("sites", f.sites.len().to_json()),
                ("call_sites", f.call_sites.to_json()),
                ("local", f.local.to_json()),
                ("composed", f.composed.to_json()),
                ("lifted", f.lifted.to_json()),
            ])
        })
        .collect();
    Json::obj(vec![
        ("local", map.local_rollup().to_json()),
        ("composed", map.composed_rollup().to_json()),
        ("lifted", map.lifted().to_json()),
        ("functions", Json::Arr(functions)),
    ])
}

/// Renders the composed verdict map: per-function local vs composed
/// unknown counts and the units the caller-side lift decided.
pub fn render_composition(name: &str, map: &ComposedMap) -> String {
    let mut out = String::new();
    out.push_str(&format!("composed coverage: {name}\n"));
    out.push_str(&format!(
        "{:<24}{:>7}{:>10}{:>15}{:>18}{:>8}\n",
        "function", "sites", "callers", "local unknown", "composed unknown", "lifted"
    ));
    for f in &map.functions {
        out.push_str(&format!(
            "{:<24}{:>7}{:>10}{:>15}{:>18}{:>8}\n",
            f.name,
            f.sites.len(),
            f.call_sites,
            f.local.unknown,
            f.composed.unknown,
            f.lifted,
        ));
    }
    let (l, c) = (map.local_rollup(), map.composed_rollup());
    out.push_str(&format!(
        "composition lifted {} of {} locally-unknown units ({:.1}% -> {:.1}% decided)\n",
        map.lifted(),
        l.unknown,
        l.decided_fraction() * 100.0,
        c.decided_fraction() * 100.0,
    ));
    out
}

/// Renders a forensics report: coverage of the analysis itself (how
/// many matching outcomes were replayed, located, classified), the
/// escape-reason histogram, the per-mechanism checker-escape rollup,
/// and the propagation-depth / injection→output latency summaries.
pub fn render_forensics_report(name: &str, rep: &ForensicsReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("forensics: {name}\n"));
    out.push_str(&format!(
        "  analyzed {} of {} matching outcome(s): {} located, {} classified\n",
        rep.analyzed(),
        rep.matching_total,
        rep.located(),
        rep.classified(),
    ));
    if rep.records.is_empty() {
        out.push_str("  nothing to explain\n");
        return out;
    }
    out.push_str("  escape reasons:\n");
    for &(reason, n) in &rep.reason_histogram {
        out.push_str(&format!("    {:<28}{:>6}\n", reason.label(), n));
    }
    if !rep.mechanism_escapes.is_empty() {
        out.push_str("  checker escapes by mechanism:\n");
        for &(mech, n) in &rep.mechanism_escapes {
            out.push_str(&format!("    {:<28}{:>6}\n", mech.label(), n));
        }
    }
    if let Some((lo, med, hi)) = rep.depth_summary() {
        out.push_str(&format!(
            "  propagation depth (locations):  min {lo}  median {med}  max {hi}\n"
        ));
    }
    if let Some((lo, med, hi)) = rep.latency_summary() {
        out.push_str(&format!(
            "  injection→output latency:       min {lo}  median {med}  max {hi}\n"
        ));
    }
    out
}

/// Renders one forensic record as a multi-line incident report.
pub fn render_forensic_record(rec: &ForensicRecord) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fault @dyn {} bit {} (pc {}) -> {:?}\n",
        rec.fault.dyn_index, rec.fault.raw_bit, rec.site_pc, rec.outcome
    ));
    match &rec.divergence {
        Some(d) => out.push_str(&format!(
            "  first divergence: {} at dyn {} (pc {}, {})\n",
            d.loc, d.dyn_index, d.pc, d.prov
        )),
        None => out.push_str("  first divergence: not located\n"),
    }
    let t = &rec.taint;
    out.push_str(&format!(
        "  taint: peak {} live, depth {}{}{}\n",
        t.peak_live,
        t.propagation_depth,
        t.quiescence
            .map_or(String::new(), |q| format!(", quiesced at dyn {q}")),
        t.time_to_output
            .map_or(String::new(), |o| format!(", output hit at dyn {o}")),
    ));
    if let Some(w) = &rec.kill_window {
        if w.escaped {
            out.push_str("  kill window: escaped (no register repair restores the output)\n");
        } else {
            out.push_str(&format!(
                "  kill window: [{}, {}] ({} insts)\n",
                w.start,
                w.end,
                w.len()
            ));
        }
    }
    out.push_str(&format!(
        "  checkers executed after injection: {}\n",
        rec.checkers.len()
    ));
    const SHOWN: usize = 10;
    for c in rec.checkers.iter().take(SHOWN) {
        out.push_str(&format!(
            "    +{:<8} {:<14} {:<26} inputs-tainted: {}\n",
            c.dyn_index.saturating_sub(rec.fault.dyn_index),
            c.mechanism.label(),
            c.reason.label(),
            c.inputs_tainted,
        ));
    }
    if rec.checkers.len() > SHOWN {
        out.push_str(&format!("    ... ({} more)\n", rec.checkers.len() - SHOWN));
    }
    if let Some(reason) = rec.primary_reason {
        out.push_str(&format!("  primary escape reason: {}\n", reason.label()));
    }
    out
}

/// Renders the cross-link between statically-`Unknown` coverage sites
/// and the measured forensic explanations of their sampled SDCs.
pub fn render_unknown_site_explanations(expl: &[UnknownSiteExplanation]) -> String {
    let mut out = String::new();
    if expl.is_empty() {
        out.push_str("no statically-unknown sites produced an analyzed SDC\n");
        return out;
    }
    out.push_str(&format!(
        "{} statically-unknown site(s) with a measured SDC explanation:\n",
        expl.len()
    ));
    for e in expl {
        out.push_str(&format!(
            "  pc {:<6} dyn {:<8} bit {:<4} {:<14} {}\n",
            e.pc,
            e.dyn_index,
            e.raw_bit,
            e.mechanism.map_or("app", Mechanism::label),
            e.reason.map_or("unclassified", EscapeReason::label),
        ));
    }
    out
}

impl ToJson for CampaignResult {
    fn to_json(&self) -> Json {
        let records = self
            .records
            .iter()
            .map(|(f, o)| Json::Arr(vec![f.to_json(), o.to_json()]))
            .collect();
        Json::obj(vec![
            ("sdc", self.sdc.to_json()),
            ("detected", self.detected.to_json()),
            ("crash", self.crash.to_json()),
            ("timeout", self.timeout.to_json()),
            ("benign", self.benign.to_json()),
            ("records", Json::Arr(records)),
            ("stats", self.stats.to_json()),
        ])
    }
}

impl ToJson for RootCauseReport {
    fn to_json(&self) -> Json {
        let glue = self
            .glue
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.to_json()))
            .collect();
        Json::obj(vec![
            ("from_ir", self.from_ir.to_json()),
            ("glue", Json::Obj(glue)),
            ("protection", self.protection.to_json()),
            ("synthetic", self.synthetic.to_json()),
            ("total_sdc", self.total_sdc.to_json()),
        ])
    }
}

impl ToJson for EscapeReason {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_owned())
    }
}

impl ToJson for DiffLoc {
    fn to_json(&self) -> Json {
        let kind = match self {
            DiffLoc::Gpr(_) => "gpr",
            DiffLoc::SimdLane { .. } => "simd-lane",
            DiffLoc::Flags => "flags",
            DiffLoc::Mem { .. } => "mem",
            DiffLoc::Output { .. } => "output",
        };
        Json::obj(vec![
            ("kind", Json::Str(kind.to_owned())),
            ("loc", Json::Str(self.to_string())),
        ])
    }
}

impl ToJson for Divergence {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("dyn_index", self.dyn_index.to_json()),
            ("pc", self.pc.to_json()),
            ("provenance", Json::Str(self.prov.to_string())),
            ("loc", self.loc.to_json()),
        ])
    }
}

impl ToJson for CheckerEscape {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("dyn_index", self.dyn_index.to_json()),
            ("pc", self.pc.to_json()),
            ("mechanism", self.mechanism.to_json()),
            ("reason", self.reason.to_json()),
            ("inputs_tainted", Json::Bool(self.inputs_tainted)),
        ])
    }
}

impl ToJson for TaintSample {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("dyn_index", self.dyn_index.to_json()),
            ("gprs", self.gprs.to_json()),
            ("simd_lanes", self.simd_lanes.to_json()),
            ("flags", Json::Bool(self.flags)),
            ("mem_bytes", self.mem_bytes.to_json()),
            ("live", self.live().to_json()),
            ("cumulative", self.cumulative.to_json()),
        ])
    }
}

impl ToJson for TaintTimeline {
    fn to_json(&self) -> Json {
        let opt = |v: Option<u64>| v.map_or(Json::Null, |v| v.to_json());
        Json::obj(vec![
            ("samples", self.samples.to_json()),
            ("peak_live", self.peak_live.to_json()),
            ("propagation_depth", self.propagation_depth.to_json()),
            ("quiescence", opt(self.quiescence)),
            ("time_to_output", opt(self.time_to_output)),
        ])
    }
}

impl ToJson for KillWindow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("start", self.start.to_json()),
            ("end", self.end.to_json()),
            ("len", self.len().to_json()),
            ("escaped", Json::Bool(self.escaped)),
        ])
    }
}

impl ToJson for ForensicRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("fault", self.fault.to_json()),
            ("outcome", self.outcome.to_json()),
            ("site_pc", self.site_pc.to_json()),
            (
                "divergence",
                self.divergence.as_ref().map_or(Json::Null, ToJson::to_json),
            ),
            ("taint", self.taint.to_json()),
            ("checkers", self.checkers.to_json()),
            (
                "primary_reason",
                self.primary_reason.map_or(Json::Null, |r| r.to_json()),
            ),
            (
                "kill_window",
                self.kill_window.as_ref().map_or(Json::Null, ToJson::to_json),
            ),
        ])
    }
}

impl ToJson for ForensicsReport {
    fn to_json(&self) -> Json {
        let summary = |s: Option<(u64, u64, u64)>| match s {
            Some((lo, med, hi)) => Json::obj(vec![
                ("min", lo.to_json()),
                ("median", med.to_json()),
                ("max", hi.to_json()),
            ]),
            None => Json::Null,
        };
        let reasons = self
            .reason_histogram
            .iter()
            .map(|&(r, n)| (r.label().to_owned(), n.to_json()))
            .collect();
        let mechs = self
            .mechanism_escapes
            .iter()
            .map(|&(m, n)| (m.label().to_owned(), n.to_json()))
            .collect();
        Json::obj(vec![
            ("matching_total", self.matching_total.to_json()),
            ("analyzed", self.analyzed().to_json()),
            ("located", self.located().to_json()),
            ("classified", self.classified().to_json()),
            ("reason_histogram", Json::Obj(reasons)),
            ("mechanism_escapes", Json::Obj(mechs)),
            (
                "depth_summary",
                summary(
                    self.depth_summary()
                        .map(|(a, b, c)| (a as u64, b as u64, c as u64)),
                ),
            ),
            ("latency_summary", summary(self.latency_summary())),
            ("records", self.records.to_json()),
        ])
    }
}

impl ToJson for UnknownSiteExplanation {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("pc", self.pc.to_json()),
            ("dyn_index", self.dyn_index.to_json()),
            ("raw_bit", Json::Int(i64::from(self.raw_bit))),
            (
                "mechanism",
                self.mechanism.map_or(Json::Null, |m| m.to_json()),
            ),
            ("reason", self.reason.map_or(Json::Null, |r| r.to_json())),
        ])
    }
}

impl ToJson for ferrum_backend::OptLevel {
    fn to_json(&self) -> Json {
        Json::Str(self.label().to_owned())
    }
}

impl ToJson for ferrum_backend::PassStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("regalloc_candidates", self.regalloc_candidates.to_json()),
            ("regalloc_allocated", self.regalloc_allocated.to_json()),
            ("loads_forwarded", self.loads_forwarded.to_json()),
            ("loads_removed", self.loads_removed.to_json()),
            ("exprs_forwarded", self.exprs_forwarded.to_json()),
            ("exprs_removed", self.exprs_removed.to_json()),
            ("stores_removed", self.stores_removed.to_json()),
            ("branches_fused", self.branches_fused.to_json()),
            ("fused_insts_removed", self.fused_insts_removed.to_json()),
            ("dead_removed", self.dead_removed.to_json()),
            ("jumps_removed", self.jumps_removed.to_json()),
            ("insts_removed", self.insts_removed().to_json()),
        ])
    }
}

impl ToJson for TechniqueReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("technique", self.technique.to_json()),
            ("cycles", self.cycles.to_json()),
            ("overhead", self.overhead.to_json()),
            ("sdc_prob", self.sdc_prob.to_json()),
            ("coverage", self.coverage.to_json()),
            ("static_insts", self.static_insts.to_json()),
            ("dyn_insts", self.dyn_insts.to_json()),
            ("campaign", self.campaign.to_json()),
            ("rootcause", self.rootcause.to_json()),
            ("pass_stats", self.pass_stats.to_json()),
        ])
    }
}

impl ToJson for WorkloadReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("raw_cycles", self.raw_cycles.to_json()),
            ("raw_static_insts", self.raw_static_insts.to_json()),
            ("raw_sdc_prob", self.raw_sdc_prob.to_json()),
            ("opt", self.opt.to_json()),
            ("raw_pass_stats", self.raw_pass_stats.to_json()),
            ("techniques", self.techniques.to_json()),
        ])
    }
}

/// Renders the exact-profile hot-spot table: the `n` hottest pcs by
/// cycles, with their function, provenance, and share of total cycles.
pub fn render_hotspots(name: &str, image: &Image, pcs: &PcProfile, n: usize) -> String {
    let total = pcs.total();
    let mut out = String::new();
    out.push_str(&format!(
        "{name}: exact profile ({} dyn insts / {} cycles)\n",
        total.insts, total.cycles
    ));
    out.push_str(&format!(
        "{:<8}{:<20}{:>12}{:>12}{:>9}  {}\n",
        "pc", "function", "dyn insts", "cycles", "share", "provenance"
    ));
    for (pc, c) in pcs.hottest_pcs().into_iter().take(n) {
        let share = if total.cycles == 0 {
            0.0
        } else {
            c.cycles as f64 / total.cycles as f64 * 100.0
        };
        out.push_str(&format!(
            "{:<8}{:<20}{:>12}{:>12}{:>8.1}%  {}\n",
            pc,
            image.func_name(pc),
            c.insts,
            c.cycles,
            share,
            image.insts[pc].prov,
        ));
    }
    out
}

/// Renders the per-function rollup of an exact profile, descending by
/// cycles.
pub fn render_function_profile(image: &Image, pcs: &PcProfile) -> String {
    let total = pcs.total();
    let mut rows: Vec<(usize, PcCount)> = pcs
        .funcs
        .iter()
        .enumerate()
        .filter(|(_, c)| c.insts > 0)
        .map(|(fi, c)| (fi, *c))
        .collect();
    rows.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(&b.0)));
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20}{:>12}{:>12}{:>9}\n",
        "function", "dyn insts", "cycles", "share"
    ));
    for (fi, c) in rows {
        let share = if total.cycles == 0 {
            0.0
        } else {
            c.cycles as f64 / total.cycles as f64 * 100.0
        };
        out.push_str(&format!(
            "{:<20}{:>12}{:>12}{:>8.1}%\n",
            image.funcs[fi].name, c.insts, c.cycles, share
        ));
    }
    out
}

/// Renders the differential per-site overhead table: the `n` sites with
/// the most protection cycles, each with its own work, overhead, and
/// dominant mechanism — the pc-granular refinement of
/// [`render_attribution_table`].
pub fn render_diff_sites(name: &str, d: &DiffProfile, n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{name}: {} per-site overhead (baseline {} cycles, protected {} cycles, +{:.1}%)\n",
        d.technique,
        d.attribution.baseline_cycles,
        d.attribution.protected_cycles,
        d.attribution.cycle_overhead() * 100.0,
    ));
    out.push_str(&format!(
        "{:<24}{:>12}{:>14}{:>14}{:>9}  {}\n",
        "site", "work-cyc", "overhead-ins", "overhead-cyc", "share", "dominant"
    ));
    let prot_total = d.attribution.protection_cycles();
    for s in d.top_sites(n) {
        let share = if prot_total == 0 {
            0.0
        } else {
            s.overhead_cycles() as f64 / prot_total as f64 * 100.0
        };
        out.push_str(&format!(
            "{:<24}{:>12}{:>14}{:>14}{:>8.1}%  {}\n",
            s.label(),
            s.work.cycles,
            s.overhead_insts(),
            s.overhead_cycles(),
            share,
            s.dominant_mechanism().map_or("-", Mechanism::label),
        ));
    }
    out.push_str(&format!(
        "site sum over {} site(s): {} insts / {} cycles ({})\n",
        d.sites.len(),
        d.site_mech_totals().total_insts(),
        d.site_mech_totals().total_cycles(),
        if d.sites_reconcile() {
            "reconciles exactly with mechanism totals"
        } else {
            "DOES NOT RECONCILE"
        }
    ));
    out
}

/// Serialises an exact profile per `docs/profile-schema.md`: totals,
/// non-zero pcs in hot-spot order, per-function rollup, and folded
/// stacks.
pub fn pc_profile_to_json(image: &Image, pcs: &PcProfile) -> Json {
    let total = pcs.total();
    let hot = pcs
        .hottest_pcs()
        .into_iter()
        .map(|(pc, c)| {
            Json::obj(vec![
                ("pc", pc.to_json()),
                ("func", Json::Str(image.func_name(pc).to_owned())),
                ("prov", Json::Str(image.insts[pc].prov.to_string())),
                ("insts", c.insts.to_json()),
                ("cycles", c.cycles.to_json()),
            ])
        })
        .collect();
    let funcs = pcs
        .funcs
        .iter()
        .enumerate()
        .filter(|(_, c)| c.insts > 0)
        .map(|(fi, c)| {
            Json::obj(vec![
                ("func", Json::Str(image.funcs[fi].name.clone())),
                ("insts", c.insts.to_json()),
                ("cycles", c.cycles.to_json()),
            ])
        })
        .collect();
    let stacks = pcs
        .stacks
        .iter()
        .map(|(stack, c)| {
            let names: Vec<&str> = stack
                .iter()
                .map(|&f| image.funcs[f as usize].name.as_str())
                .collect();
            Json::obj(vec![
                ("stack", Json::Str(names.join(";"))),
                ("insts", c.insts.to_json()),
                ("cycles", c.cycles.to_json()),
            ])
        })
        .collect();
    Json::obj(vec![
        (
            "total",
            Json::obj(vec![
                ("insts", total.insts.to_json()),
                ("cycles", total.cycles.to_json()),
            ]),
        ),
        ("pcs", Json::Arr(hot)),
        ("funcs", Json::Arr(funcs)),
        ("stacks", Json::Arr(stacks)),
    ])
}

impl ToJson for SiteOverhead {
    fn to_json(&self) -> Json {
        let mechs = self
            .mech
            .iter()
            .filter(|(_, c)| c.insts > 0)
            .map(|(m, c)| {
                (
                    m.label().to_owned(),
                    Json::obj(vec![
                        ("insts", c.insts.to_json()),
                        ("cycles", c.cycles.to_json()),
                    ]),
                )
            })
            .collect();
        Json::obj(vec![
            ("site", Json::Str(self.label())),
            ("func", self.func.to_json()),
            (
                "anchor_pc",
                self.anchor_pc.map_or(Json::Null, |pc| pc.to_json()),
            ),
            (
                "ir_index",
                self.ir_index.map_or(Json::Null, |i| u64::from(i).to_json()),
            ),
            (
                "work",
                Json::obj(vec![
                    ("insts", self.work.insts.to_json()),
                    ("cycles", self.work.cycles.to_json()),
                ]),
            ),
            ("overhead_insts", self.overhead_insts().to_json()),
            ("overhead_cycles", self.overhead_cycles().to_json()),
            (
                "dominant",
                self.dominant_mechanism().map_or(Json::Null, |m| m.to_json()),
            ),
            ("mechanisms", Json::Obj(mechs)),
        ])
    }
}

impl ToJson for DiffProfile {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("technique", self.technique.to_json()),
            ("attribution", self.attribution.to_json()),
            ("sites_reconcile", Json::Bool(self.sites_reconcile())),
            ("sites", self.sites.to_json()),
        ])
    }
}

/// Serialises the full evaluation to pretty JSON (machine-readable
/// artifact for downstream analysis; the campaign `records` are
/// omitted via the type's fields being aggregate counts plus records —
/// callers who want compact output can clear `campaign.records`).
pub fn to_json(reports: &[WorkloadReport]) -> String {
    reports.to_json().to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{evaluate_workload, EvalConfig};
    use crate::Pipeline;
    use ferrum_workloads::{workload, Scale};

    #[test]
    fn profile_renderers_and_json_cover_the_diff() {
        use crate::profile::diff_profile;
        let pipeline = Pipeline::new();
        let module = workload("needle").expect("exists").build(Scale::Test);
        let d = diff_profile(&pipeline, &module, crate::Technique::Ferrum).expect("diffs");
        let table = render_diff_sites("needle", &d, 10);
        assert!(table.contains("per-site overhead"), "{table}");
        assert!(table.contains("reconciles exactly"), "{table}");
        assert!(table.lines().count() <= 13, "{table}");
        let j = d.to_json();
        assert_eq!(j.get("sites_reconcile"), Some(&Json::Bool(true)));
        assert!(!j.get("sites").unwrap().as_array().unwrap().is_empty());
        // Hot-spot rendering over the protected profile.
        let protected = pipeline
            .protect(&module, crate::Technique::Ferrum)
            .unwrap();
        let cpu = pipeline.load(&protected).unwrap();
        let hot = render_hotspots("needle", cpu.image(), &d.protected_pcs, 5);
        assert!(hot.contains("exact profile"), "{hot}");
        assert_eq!(hot.lines().count(), 7, "{hot}");
        let funcs = render_function_profile(cpu.image(), &d.protected_pcs);
        assert!(funcs.contains("main"), "{funcs}");
        let pj = pc_profile_to_json(cpu.image(), &d.protected_pcs);
        assert_eq!(
            pj.get("total").unwrap().get("cycles").unwrap().as_u64(),
            Some(d.attribution.protected_cycles)
        );
    }

    #[test]
    fn flagged_progress_row_marks_stalled_workers() {
        let p = ProgressSnapshot {
            done: 2,
            total: 4,
            tallies: Default::default(),
            sdc_ci: (0.0, 1.0),
            rate: 100.0,
            worker_rates: vec![50.0, 50.0],
            eta_nanos: None,
            pruned: 0,
            reused: 0,
            elapsed_nanos: 10,
        };
        assert_eq!(render_progress_row_flagged(&p, &[]), render_progress_row(&p));
        let flagged = render_progress_row_flagged(&p, &[1, 3]);
        assert!(flagged.ends_with("!! stalled: w1,w3\n"), "{flagged}");
        assert!(flagged.starts_with(render_progress_row(&p).trim_end_matches('\n')));
    }

    #[test]
    fn tables_render_with_averages() {
        let pipeline = Pipeline::new();
        let w = workload("knn").expect("exists");
        let cfg = EvalConfig {
            samples: 150,
            seed: 5,
            scale: Scale::Test,
            ..EvalConfig::default()
        };
        let report = evaluate_workload(&pipeline, &w, cfg).expect("evaluates");
        let cov = render_coverage_table(std::slice::from_ref(&report));
        assert!(cov.contains("knn"));
        assert!(cov.contains("average"));
        assert!(cov.contains('%'));
        let ovh = render_overhead_table(std::slice::from_ref(&report));
        assert!(ovh.contains("FERRUM"));
        assert!(ovh.lines().count() == 3);
    }

    #[test]
    fn bar_chart_renders_scaled_bars() {
        let pipeline = Pipeline::new();
        let w = workload("knn").expect("exists");
        let cfg = EvalConfig {
            samples: 120,
            seed: 5,
            scale: Scale::Test,
            ..EvalConfig::default()
        };
        let report = evaluate_workload(&pipeline, &w, cfg).expect("evaluates");
        let chart = render_bars(
            "coverage",
            std::slice::from_ref(&report),
            |t| t.coverage,
            1.0,
        );
        assert!(chart.contains("knn"));
        assert!(chart.contains("FERRUM"));
        assert!(chart.contains('█'));
        // FERRUM's coverage bar is full (100%).
        let full_bar = "█".repeat(40);
        assert!(chart.contains(&full_bar), "{chart}");
    }

    #[test]
    fn json_export_round_trips_key_fields() {
        let pipeline = Pipeline::new();
        let w = workload("bfs").expect("exists");
        let cfg = EvalConfig {
            samples: 100,
            seed: 6,
            scale: Scale::Test,
            ..EvalConfig::default()
        };
        let report = evaluate_workload(&pipeline, &w, cfg).expect("evaluates");
        let json = to_json(std::slice::from_ref(&report));
        let v = crate::json::parse(&json).expect("valid json");
        let first = v.idx(0).unwrap();
        assert_eq!(first.get("name").unwrap().as_str(), Some("bfs"));
        assert!(first.get("raw_cycles").unwrap().as_u64().unwrap() > 0);
        let techniques = first.get("techniques").unwrap().as_array().unwrap();
        assert_eq!(techniques.len(), 3);
        let ferrum = &techniques[2];
        assert_eq!(
            ferrum.get("technique").unwrap().as_str(),
            Some("Ferrum")
        );
        assert!(ferrum.get("coverage").unwrap().as_f64().unwrap() >= 0.99);
        // The throughput stats ride along in the artifact.
        let stats = ferrum.get("campaign").unwrap().get("stats").unwrap();
        assert!(stats.get("injections_per_sec").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(stats.get("injections").unwrap().as_u64(), Some(100));
    }

    #[test]
    fn throughput_table_lists_engine_counters() {
        let pipeline = Pipeline::new();
        let w = workload("knn").expect("exists");
        let cfg = EvalConfig {
            samples: 120,
            seed: 11,
            scale: Scale::Test,
            ..EvalConfig::default()
        };
        let report = evaluate_workload(&pipeline, &w, cfg).expect("evaluates");
        let table = render_throughput_table(std::slice::from_ref(&report));
        assert!(table.contains("inj/sec"));
        assert!(table.contains("knn/FERRUM"));
        assert_eq!(table.lines().count(), 4, "{table}");
    }

    #[test]
    fn attribution_table_and_json_reconcile() {
        let pipeline = Pipeline::new();
        let module = workload("pathfinder").expect("exists").build(Scale::Test);
        let att = crate::attribution::attribute_overhead(&pipeline, &module).expect("attributes");
        let table = render_attribution_table("pathfinder", &att);
        assert!(table.contains("mechanism"), "{table}");
        assert!(table.contains("dup"), "{table}");
        assert!(table.contains("mechanism sum exact"), "{table}");
        let v = crate::json::parse(&att.to_json().to_string_pretty()).expect("valid json");
        assert_eq!(v.get("reconciles").unwrap(), &Json::Bool(true));
        let dup = v.get("mechanisms").unwrap().get("dup").unwrap();
        assert!(dup.get("insts").unwrap().as_u64().unwrap() > 0);
    }

    #[test]
    fn telemetry_renders_latency_and_worker_balance() {
        let pipeline = Pipeline::new();
        let w = workload("knn").expect("exists");
        let cfg = EvalConfig {
            samples: 150,
            seed: 8,
            scale: Scale::Test,
            ..EvalConfig::default()
        };
        let report = evaluate_workload(&pipeline, &w, cfg).expect("evaluates");
        let ferrum = report.technique(Technique::Ferrum).unwrap();
        let lat = &ferrum.campaign.stats.latency;
        assert!(lat.count() > 0, "FERRUM campaign must detect something");
        let hist = render_latency_histogram(lat);
        assert!(hist.contains("detections:"), "{hist}");
        assert!(hist.contains('█'), "{hist}");
        assert!(
            render_latency_histogram(&DetectionLatency::default()).contains("no detections")
        );
        let table = render_telemetry_table(std::slice::from_ref(&report));
        assert!(table.contains("p50"), "{table}");
        assert!(table.contains("knn/FERRUM"), "{table}");
        assert_eq!(table.lines().count(), 4, "{table}");
        // And the machine-readable artifact carries the same telemetry.
        let v = crate::json::parse(&ferrum.campaign.stats.to_json().to_string_pretty())
            .expect("valid json");
        let dl = v.get("detection_latency").unwrap();
        assert_eq!(dl.get("count").unwrap().as_u64(), Some(lat.count() as u64));
        assert!(dl.get("p50").unwrap().as_u64().is_some());
        assert!(!dl.get("histogram_log2").unwrap().as_array().unwrap().is_empty());
        let workers = v.get("per_worker").unwrap().as_array().unwrap();
        let inj: u64 = workers
            .iter()
            .map(|w| w.get("injections").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(inj, 150);
    }

    #[test]
    fn empty_reports_render_header_only() {
        assert_eq!(render_coverage_table(&[]).lines().count(), 1);
        assert_eq!(render_overhead_table(&[]).lines().count(), 1);
    }

    #[test]
    fn lint_report_renders_and_round_trips_json() {
        use ferrum_asm::analysis::lint::{LintContract, LintFinding, LintReport};
        use ferrum_asm::provenance::Provenance;
        let rep = LintReport {
            findings: vec![LintFinding {
                contract: LintContract::CheckedSync,
                function: "main".into(),
                block: "main_bb0".into(),
                inst_index: 7,
                provenance: Provenance::Synthetic,
                explanation: "unverified result consumed".into(),
            }],
            functions_scanned: 2,
            insts_scanned: 41,
        };
        let text = render_lint_report(&rep);
        assert!(text.contains("checked-sync"), "{text}");
        assert!(text.contains("main/main_bb0[7]"), "{text}");
        assert!(text.contains("1 finding(s) in 2 function(s)"), "{text}");
        let v = crate::json::parse(&rep.to_json().to_string_pretty()).expect("valid json");
        assert_eq!(v.get("clean").unwrap(), &Json::Bool(false));
        assert_eq!(v.get("insts_scanned").unwrap().as_u64(), Some(41));
        let f = v.get("findings").unwrap().idx(0).unwrap();
        assert_eq!(f.get("contract").unwrap().as_str(), Some("checked-sync"));
        assert_eq!(f.get("inst_index").unwrap().as_u64(), Some(7));

        // A clean report says so.
        let clean = LintReport {
            findings: Vec::new(),
            functions_scanned: 1,
            insts_scanned: 3,
        };
        assert!(render_lint_report(&clean).starts_with("0 finding(s)"));
        let v = crate::json::parse(&clean.to_json().to_string_pretty()).expect("valid json");
        assert_eq!(v.get("clean").unwrap(), &Json::Bool(true));
    }

    #[test]
    fn predicted_vs_measured_carries_wilson_intervals() {
        use ferrum_faultsim::campaign::{run_campaign, CampaignConfig};
        let pipeline = Pipeline::new();
        let module = workload("knn").expect("exists").build(Scale::Test);
        let prog = pipeline.protect(&module, Technique::Ferrum).expect("builds");
        let cpu = pipeline.load(&prog).expect("loads");
        let profile = cpu.profile();
        let map = CoverageMap::analyze(&prog);
        let cfg = CampaignConfig {
            samples: 120,
            seed: 0x51,
        };
        let campaign = run_campaign(&cpu, &profile, cfg);
        let text = render_predicted_vs_measured("knn", &map, &campaign);
        assert!(text.contains("95% CI"), "{text}");
        assert!(text.contains("measured detection rate"), "{text}");
        let v = crate::json::parse(
            &predicted_vs_measured_to_json(&map, &campaign).to_string_pretty(),
        )
        .expect("valid json");
        assert_eq!(v.get("injections").unwrap().as_u64(), Some(120));
        let rate = v.get("measured_detection_rate").unwrap().as_f64().unwrap();
        let lo = v.get("detection_ci95_lo").unwrap().as_f64().unwrap();
        let hi = v.get("detection_ci95_hi").unwrap().as_f64().unwrap();
        assert!(lo <= rate && rate <= hi, "point estimate inside the CI");
        assert!(hi - lo < 0.25, "CI width sane for 120 samples: {lo}..{hi}");
        let slo = v.get("sdc_ci95_lo").unwrap().as_f64().unwrap();
        let shi = v.get("sdc_ci95_hi").unwrap().as_f64().unwrap();
        assert!(slo <= v.get("measured_sdc_rate").unwrap().as_f64().unwrap());
        assert!(shi <= 1.0);
    }

    #[test]
    fn forensics_report_renders_and_round_trips_json() {
        use ferrum_faultsim::campaign::CampaignConfig;
        use ferrum_faultsim::forensics::{run_campaign_forensic, ForensicConfig};
        let pipeline = Pipeline::new();
        let module = workload("knn").expect("exists").build(Scale::Test);
        let prog = pipeline.protect(&module, Technique::None).expect("builds");
        let cpu = pipeline.load(&prog).expect("loads");
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 250,
            seed: 0x51,
        };
        let (campaign, rep) =
            run_campaign_forensic(&cpu, &profile, cfg, &ForensicConfig::default());
        assert!(campaign.sdc > 0, "unprotected knn must produce SDCs");
        assert!(rep.analyzed() > 0);

        let text = render_forensics_report("knn/raw", &rep);
        assert!(text.contains("forensics: knn/raw"), "{text}");
        assert!(text.contains("escape reasons:"), "{text}");
        // Unprotected code has no checkers: every record is
        // checker-not-reached and depth/latency summaries render.
        assert!(text.contains("checker-not-reached"), "{text}");
        assert!(text.contains("propagation depth"), "{text}");

        let rec_text = render_forensic_record(&rep.records[0]);
        assert!(rec_text.contains("first divergence:"), "{rec_text}");
        assert!(rec_text.contains("taint: peak"), "{rec_text}");
        assert!(rec_text.contains("primary escape reason:"), "{rec_text}");

        let v = crate::json::parse(&rep.to_json().to_string_pretty()).expect("valid json");
        assert_eq!(
            v.get("analyzed").unwrap().as_u64(),
            Some(rep.analyzed() as u64)
        );
        assert_eq!(
            v.get("located").unwrap().as_u64(),
            Some(rep.analyzed() as u64),
            "every analyzed record locates its divergence"
        );
        let hist = v.get("reason_histogram").unwrap();
        assert!(hist.get("checker-not-reached").unwrap().as_u64().unwrap() > 0);
        let rec = v.get("records").unwrap().idx(0).unwrap();
        assert_eq!(rec.get("outcome").unwrap().as_str(), Some("Sdc"));
        let div = rec.get("divergence").unwrap();
        assert_eq!(
            div.get("dyn_index").unwrap().as_u64(),
            rec.get("fault").unwrap().get("dyn_index").unwrap().as_u64(),
            "divergence sits at the injected site"
        );
        assert!(div.get("loc").unwrap().get("kind").unwrap().as_str().is_some());
        let taint = rec.get("taint").unwrap();
        assert!(taint.get("propagation_depth").unwrap().as_u64().unwrap() >= 1);
        assert!(!taint.get("samples").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn unknown_site_explanations_render_both_shapes() {
        use ferrum_faultsim::forensics::{EscapeReason, UnknownSiteExplanation};
        assert!(render_unknown_site_explanations(&[]).contains("no statically-unknown"));
        let expl = vec![UnknownSiteExplanation {
            pc: 42,
            dyn_index: 1_000,
            raw_bit: 7,
            mechanism: Some(Mechanism::Dup),
            reason: Some(EscapeReason::DupAlsoCorrupted),
        }];
        let text = render_unknown_site_explanations(&expl);
        assert!(text.contains("pc 42"), "{text}");
        assert!(text.contains("dup-also-corrupted"), "{text}");
        let v = crate::json::parse(&expl.to_json().to_string_pretty()).expect("valid json");
        let e = v.idx(0).unwrap();
        assert_eq!(e.get("mechanism").unwrap().as_str(), Some("dup"));
        assert_eq!(e.get("reason").unwrap().as_str(), Some("dup-also-corrupted"));
    }
}
