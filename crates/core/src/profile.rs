//! Differential per-site overhead profiles.
//!
//! PR 3's attribution ([`crate::attribution::attribute_overhead`]) says
//! *which mechanism* FERRUM's overhead comes from; this module says
//! *where*.  It profiles the same peepholed-baseline / protected pair,
//! but uses the engines' exact per-pc profiles
//! ([`ferrum_cpu::run::Profile::pcs`]) to charge every executed
//! protection instruction to the **source site** it protects: the
//! nearest preceding IR-lowered instruction in the same function.
//!
//! Because every executed protection instruction has exactly one pc,
//! one [`Mechanism`], and one anchoring site, the per-site breakdown is
//! a *partition* of the per-mechanism totals — the exact-sum invariant
//! of PR 3 extended down to pc granularity:
//!
//! > Σ over sites of per-site mechanism counts
//! > = the profile's per-mechanism totals, per mechanism, exactly —
//! > in both executed instructions and cycles.
//!
//! [`DiffProfile::sites_reconcile`] checks that identity; a `false`
//! means the attribution dropped or double-counted a pc.

use std::collections::HashMap;

use ferrum_asm::provenance::{Mechanism, Provenance};
use ferrum_cpu::run::MechCounts;
use ferrum_cpu::{PcCount, PcProfile};
use ferrum_eddi::Technique;
use ferrum_mir::module::Module;

use crate::attribution::OverheadAttribution;
use crate::{Error, Pipeline};

/// Protection overhead charged to one source site.
///
/// A *site* is an IR-lowered anchor instruction in the protected image:
/// every protection instruction is charged to the nearest preceding
/// [`Provenance::FromIr`] pc within its function (protection emitted
/// before any IR instruction — prologue requisition glue, for example —
/// anchors to the function entry, `anchor_pc == None`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteOverhead {
    /// Name of the function containing the site.
    pub func: String,
    /// Flat pc (in the protected image) of the anchoring IR-lowered
    /// instruction, or `None` for a function's pre-IR entry region.
    pub anchor_pc: Option<usize>,
    /// MIR instruction id of the anchor (`None` for the entry region).
    pub ir_index: Option<u32>,
    /// The site's own executed work in the protected run: everything
    /// charged between this anchor and the next that is *not*
    /// protection (IR-lowered, glue, synthetic).
    pub work: PcCount,
    /// Executed protection instructions and cycles charged to this
    /// site, per mechanism.
    pub mech: MechCounts,
}

impl SiteOverhead {
    /// Protection cycles charged to this site (all mechanisms).
    pub fn overhead_cycles(&self) -> u64 {
        self.mech.total_cycles()
    }

    /// Executed protection instructions charged to this site.
    pub fn overhead_insts(&self) -> u64 {
        self.mech.total_insts()
    }

    /// The mechanism contributing the most cycles at this site
    /// (`None` when the site accrued no protection cycles).
    pub fn dominant_mechanism(&self) -> Option<Mechanism> {
        self.mech
            .iter()
            .filter(|(_, c)| c.cycles > 0)
            .max_by_key(|&(_, c)| c.cycles)
            .map(|(m, _)| m)
    }

    /// Stable display label, e.g. `main@ir:17` or `main@entry`.
    pub fn label(&self) -> String {
        match self.ir_index {
            Some(i) => format!("{}@ir:{i}", self.func),
            None => format!("{}@entry", self.func),
        }
    }
}

/// A differential profile: a protected program diffed against its
/// peepholed unprotected baseline, with overhead cycles attributed to
/// individual source sites and mechanisms.
#[derive(Debug, Clone)]
pub struct DiffProfile {
    /// The protection technique that was diffed.
    pub technique: Technique,
    /// PR 3's whole-program per-mechanism attribution for the same
    /// baseline/protected pair (computed from the same two profiling
    /// runs — no re-execution).
    pub attribution: OverheadAttribution,
    /// Exact per-pc profile of the peepholed unprotected baseline.
    pub baseline_pcs: PcProfile,
    /// Exact per-pc profile of the protected program.
    pub protected_pcs: PcProfile,
    /// Per-site overhead, descending by protection cycles (ties broken
    /// by function name then anchor pc, for deterministic output).
    pub sites: Vec<SiteOverhead>,
}

impl DiffProfile {
    /// Per-mechanism totals re-summed from the per-site breakdown.
    pub fn site_mech_totals(&self) -> MechCounts {
        let mut t = MechCounts::default();
        for s in &self.sites {
            for (m, c) in s.mech.iter() {
                t.add_counts(m, c.insts, c.cycles);
            }
        }
        t
    }

    /// The pc-granular exact-sum invariant: summing every site's
    /// per-mechanism counts reproduces the whole-program mechanism
    /// totals exactly — per mechanism, in both instructions and cycles.
    pub fn sites_reconcile(&self) -> bool {
        self.site_mech_totals() == self.attribution.mech
    }

    /// The `n` sites with the most protection cycles.
    pub fn top_sites(&self, n: usize) -> &[SiteOverhead] {
        &self.sites[..n.min(self.sites.len())]
    }
}

/// Profiles `module` unprotected (peepholed, matching the pipeline's
/// FERRUM configuration) and protected with `technique`, and attributes
/// every executed protection instruction to its source site.
///
/// # Errors
///
/// Propagates compilation and protection failures.
pub fn diff_profile(
    pipeline: &Pipeline,
    module: &Module,
    technique: Technique,
) -> Result<DiffProfile, Error> {
    let _span = ferrum_trace::span("diff-profile");
    // Same baseline as `attribute_overhead`: the peepholed unprotected
    // compile at the pipeline's opt level, so overhead deltas measure
    // protection and nothing else.
    let mut baseline = ferrum_backend::compile_opt(module, pipeline.opt_level())?;
    if pipeline.ferrum_config().peephole {
        ferrum_backend::peephole::run(&mut baseline);
    }
    let base_profile = pipeline.load(&baseline)?.profile();

    let protected = pipeline.protect(module, technique)?;
    let cpu = pipeline.load(&protected)?;
    let prot_profile = cpu.profile();
    let image = cpu.image();
    debug_assert_eq!(
        base_profile.result.output, prot_profile.result.output,
        "protection must be output-transparent"
    );

    // Walk each function span in layout order, tracking the last
    // IR-lowered pc seen: that pc anchors every subsequent instruction
    // until the next IR-lowered one.  Executed counts fold into the
    // anchor's site — protection by mechanism, everything else as the
    // site's own work.
    let mut sites: Vec<SiteOverhead> = Vec::new();
    let mut slot_of: HashMap<(usize, Option<usize>), usize> = HashMap::new();
    for (fi, f) in image.funcs.iter().enumerate() {
        let mut anchor: Option<(usize, u32)> = None;
        for pc in f.start..f.end {
            let prov = image.insts[pc].prov;
            if let Provenance::FromIr(i) = prov {
                anchor = Some((pc, i));
            }
            let cnt = prot_profile.pcs.pcs[pc];
            if cnt.insts == 0 {
                continue;
            }
            let key = (fi, anchor.map(|(pc, _)| pc));
            let slot = *slot_of.entry(key).or_insert_with(|| {
                sites.push(SiteOverhead {
                    func: f.name.clone(),
                    anchor_pc: anchor.map(|(pc, _)| pc),
                    ir_index: anchor.map(|(_, i)| i),
                    work: PcCount::default(),
                    mech: MechCounts::default(),
                });
                sites.len() - 1
            });
            let site = &mut sites[slot];
            match prov.mechanism() {
                Some(m) => site.mech.add_counts(m, cnt.insts, cnt.cycles),
                None => {
                    site.work.insts += cnt.insts;
                    site.work.cycles += cnt.cycles;
                }
            }
        }
    }
    sites.sort_by(|a, b| {
        b.overhead_cycles()
            .cmp(&a.overhead_cycles())
            .then_with(|| a.func.cmp(&b.func))
            .then(a.anchor_pc.cmp(&b.anchor_pc))
    });

    Ok(DiffProfile {
        technique,
        attribution: OverheadAttribution {
            baseline_dyn_insts: base_profile.result.dyn_insts,
            baseline_cycles: base_profile.result.cycles,
            protected_dyn_insts: prot_profile.result.dyn_insts,
            protected_cycles: prot_profile.result.cycles,
            mech: prot_profile.mech_counts,
        },
        baseline_pcs: base_profile.pcs,
        protected_pcs: prot_profile.pcs,
        sites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_workloads::{workload, Scale};

    #[test]
    fn per_site_sums_equal_mechanism_totals_exactly() {
        let pipeline = Pipeline::new();
        let module = workload("needle").expect("exists").build(Scale::Test);
        let d = diff_profile(&pipeline, &module, Technique::Ferrum).expect("diffs");
        assert!(!d.sites.is_empty());
        assert!(d.attribution.reconciles(), "{:?}", d.attribution);
        assert!(
            d.sites_reconcile(),
            "site totals {:?} != mechanism totals {:?}",
            d.site_mech_totals(),
            d.attribution.mech
        );
        // Work + overhead over all sites covers the protected run
        // exactly: the site partition loses nothing.
        let work: u64 = d.sites.iter().map(|s| s.work.cycles).sum();
        let prot: u64 = d.sites.iter().map(|s| s.overhead_cycles()).sum();
        assert_eq!(work + prot, d.attribution.protected_cycles);
        let work_i: u64 = d.sites.iter().map(|s| s.work.insts).sum();
        let prot_i: u64 = d.sites.iter().map(|s| s.overhead_insts()).sum();
        assert_eq!(work_i + prot_i, d.attribution.protected_dyn_insts);
    }

    #[test]
    fn sites_reconcile_for_every_technique() {
        let pipeline = Pipeline::new();
        let module = workload("pathfinder").expect("exists").build(Scale::Test);
        for t in [
            Technique::None,
            Technique::IrEddi,
            Technique::HybridAsmEddi,
            Technique::Ferrum,
        ] {
            let d = diff_profile(&pipeline, &module, t).expect("diffs");
            assert!(d.sites_reconcile(), "{t}");
            if t == Technique::None {
                assert_eq!(d.attribution.mech.total_insts(), 0, "{t}");
            } else {
                assert!(d.attribution.mech.total_insts() > 0, "{t}");
            }
        }
    }

    #[test]
    fn sites_are_sorted_by_overhead_and_labelled() {
        let pipeline = Pipeline::new();
        let module = workload("kmeans").expect("exists").build(Scale::Test);
        let d = diff_profile(&pipeline, &module, Technique::Ferrum).expect("diffs");
        for w in d.sites.windows(2) {
            assert!(w[0].overhead_cycles() >= w[1].overhead_cycles());
        }
        let top = d.top_sites(3);
        assert!(top.len() <= 3 && !top.is_empty());
        assert!(top[0].overhead_cycles() > 0);
        assert!(top[0].dominant_mechanism().is_some());
        assert!(top[0].label().contains('@'));
    }
}
