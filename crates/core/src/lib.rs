//! # ferrum — the public API of the FERRUM reproduction
//!
//! One façade over the whole stack built for the DSN 2024 paper *"A Fast
//! Low-Level Error Detection Technique"*:
//!
//! * [`pipeline::Pipeline`] — compile a MIR module and protect it with
//!   any [`Technique`] (none / IR-level EDDI / hybrid assembly EDDI /
//!   FERRUM), then load it for simulation;
//! * [`experiment`] — the paper's evaluation loop: fault-injection
//!   campaigns (SDC coverage, Fig. 10), runtime overhead (Fig. 11), and
//!   root-cause attribution (§IV-B1) over the benchmark suite;
//! * re-exports of the most used types from the underlying crates.
//!
//! ## Quickstart
//!
//! ```
//! use ferrum::pipeline::Pipeline;
//! use ferrum::Technique;
//! use ferrum_workloads::{workload, Scale};
//!
//! # fn main() -> Result<(), ferrum::Error> {
//! let bfs = workload("bfs").expect("in catalog");
//! let module = bfs.build(Scale::Test);
//!
//! let pipeline = Pipeline::new();
//! let raw = pipeline.protect(&module, Technique::None)?;
//! let protected = pipeline.protect(&module, Technique::Ferrum)?;
//!
//! let raw_run = pipeline.load(&raw)?.run(None);
//! let prot_run = pipeline.load(&protected)?.run(None);
//! assert_eq!(raw_run.output, prot_run.output); // protection is transparent
//! assert_eq!(raw_run.output, bfs.oracle(Scale::Test));
//! # Ok(())
//! # }
//! ```

pub mod attribution;
pub mod error;
pub mod experiment;
pub mod flight;
pub mod json;
pub mod pipeline;
pub mod profile;
pub mod report;

pub use attribution::{attribute_overhead, OverheadAttribution};
pub use error::Error;
pub use experiment::{evaluate_workload, EvalConfig, TechniqueReport, WorkloadReport};
pub use pipeline::Pipeline;
pub use profile::{diff_profile, DiffProfile, SiteOverhead};

pub use ferrum_asm::analysis::coverage::{
    CoverageMap, FunctionCoverage, SiteCoverage, StaticVerdict, VerdictCounts,
};
pub use ferrum_asm::analysis::summary::{
    function_hash, EscapeFootprint, EscapeRollup, FunctionSummary, SiteSummary, SummaryMap,
    UnitSummary,
};
pub use ferrum_asm::provenance::Mechanism;
pub use ferrum_backend::{OptLevel, PassStats};
pub use ferrum_cpu::cost::CostModel;
pub use ferrum_cpu::decoded::{DecodedCpu, DecodedMachine};
pub use ferrum_cpu::outcome::{RunResult, StopReason};
pub use ferrum_cpu::run::{MechCount, MechCounts};
pub use ferrum_cpu::{PcCount, PcProfile};
pub use ferrum_eddi::Technique;
pub use ferrum_faultsim::campaign::{
    CampaignConfig, CampaignResult, CampaignStats, DetectionLatency, Outcome, SnapshotPolicy,
    WorkerStats,
};
pub use ferrum_faultsim::compose::{
    compose, run_campaign_incremental, run_campaign_stratified, CampaignCache, ComposedFunction,
    ComposedMap, ComposedSite, FunctionShard, ShardDraw,
};
pub use ferrum_faultsim::engine::{Engine, EngineKind, EngineMachine};
pub use ferrum_faultsim::flight::{
    install as install_flight_recorder, program_signature, resume_campaign_from_journal,
    uninstall as uninstall_flight_recorder, CampaignEvent, CampaignFingerprint, FlightEvent,
    FlightPolicy, FlightRecorder, FlightSink, JournalSnapshot, MemorySink, OutcomeTallies,
    ProgressSnapshot, ShardRecord, Stage, TeeSink,
};
pub use ferrum_faultsim::forensics::{
    explain_unknown_sites, forensic_replay, run_campaign_forensic, CheckerEscape, Divergence,
    EscapeReason, ForensicConfig, ForensicRecord, ForensicsReport, KillWindow, TaintTimeline,
    UnknownSiteExplanation,
};
pub use ferrum_workloads::{all_workloads, workload, Scale, Workload};
