//! The paper's evaluation loop: per-benchmark SDC coverage (Fig. 10),
//! runtime overhead (Fig. 11), and root-cause attribution (§IV-B1).

use ferrum_backend::{OptLevel, PassStats};
use ferrum_eddi::Technique;
use ferrum_faultsim::campaign::{
    run_campaign_snapshot, CampaignConfig, CampaignResult, SnapshotPolicy,
};
use ferrum_faultsim::rootcause::{attribute_sdcs, RootCauseReport};
use ferrum_faultsim::stats::{runtime_overhead, sdc_coverage};
use ferrum_workloads::{Scale, Workload};

use crate::{Error, Pipeline};

/// Evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Faults sampled per configuration (the paper uses 1000).
    pub samples: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Problem-size scale.
    pub scale: Scale,
    /// Backend optimization level.  The config is authoritative:
    /// [`evaluate_workload`] compiles every technique at this level
    /// regardless of the pipeline's own setting, so a single `--opt`
    /// flag steers the whole evaluation.
    pub opt: OptLevel,
}

impl Default for EvalConfig {
    fn default() -> EvalConfig {
        EvalConfig {
            samples: 1000,
            seed: 0xFE44,
            scale: Scale::Paper,
            opt: OptLevel::O0,
        }
    }
}

/// Measurements for one technique on one benchmark.
#[derive(Debug, Clone)]
pub struct TechniqueReport {
    /// The technique.
    pub technique: Technique,
    /// Fault-free simulated cycles.
    pub cycles: u64,
    /// Runtime overhead versus the unprotected build.
    pub overhead: f64,
    /// SDC probability under the campaign.
    pub sdc_prob: f64,
    /// SDC coverage versus the unprotected build (the Fig. 10 metric).
    pub coverage: f64,
    /// Static instruction count of the protected program.
    pub static_insts: usize,
    /// Fault-free dynamic instruction count.
    pub dyn_insts: u64,
    /// Full campaign counts.
    pub campaign: CampaignResult,
    /// SDCs attributed to instruction provenance.
    pub rootcause: RootCauseReport,
    /// Backend pass statistics for this technique's compile
    /// (all-zero at `-O0`).
    pub pass_stats: PassStats,
}

/// Everything measured for one benchmark.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Benchmark name.
    pub name: String,
    /// Unprotected cycles.
    pub raw_cycles: u64,
    /// Unprotected static instruction count.
    pub raw_static_insts: usize,
    /// Unprotected SDC probability.
    pub raw_sdc_prob: f64,
    /// Optimization level every program in this report was compiled at.
    pub opt: OptLevel,
    /// Backend pass statistics for the unprotected compile.
    pub raw_pass_stats: PassStats,
    /// One report per protected technique, in
    /// [`Technique::PROTECTED`] order.
    pub techniques: Vec<TechniqueReport>,
}

impl WorkloadReport {
    /// The report for `t`.
    pub fn technique(&self, t: Technique) -> Option<&TechniqueReport> {
        self.techniques.iter().find(|r| r.technique == t)
    }
}

/// Runs the full evaluation (all techniques) for one benchmark.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn evaluate_workload(
    pipeline: &Pipeline,
    w: &Workload,
    cfg: EvalConfig,
) -> Result<WorkloadReport, Error> {
    let module = w.build(cfg.scale);
    let golden = w.oracle(cfg.scale);
    let pipeline = &pipeline.clone().with_opt_level(cfg.opt);

    let (raw_prog, raw_pass_stats) = pipeline.protect_with_pass_stats(&module, Technique::None)?;
    let raw_cpu = pipeline.load(&raw_prog)?;
    let raw_profile = raw_cpu.profile();
    assert_eq!(
        raw_profile.result.output, golden,
        "{}: simulation diverges from oracle",
        w.name
    );
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Snapshot-accelerated engine: byte-identical outcomes to the
    // serial executor, with prefix sharing and work stealing.
    let raw_campaign = run_campaign_snapshot(
        &raw_cpu,
        &raw_profile,
        CampaignConfig {
            samples: cfg.samples,
            seed: cfg.seed,
        },
        threads,
        SnapshotPolicy::default(),
    );
    let raw_sdc_prob = raw_campaign.sdc_prob();
    let raw_cycles = raw_profile.result.cycles;

    let mut techniques = Vec::new();
    for (k, t) in Technique::PROTECTED.into_iter().enumerate() {
        let (prog, pass_stats) = pipeline.protect_with_pass_stats(&module, t)?;
        let cpu = pipeline.load(&prog)?;
        let profile = cpu.profile();
        assert_eq!(
            profile.result.output, golden,
            "{}/{t}: protected program diverges from oracle",
            w.name
        );
        let campaign = run_campaign_snapshot(
            &cpu,
            &profile,
            CampaignConfig {
                samples: cfg.samples,
                seed: cfg.seed.wrapping_add(k as u64 + 1),
            },
            threads,
            SnapshotPolicy::default(),
        );
        let rootcause = attribute_sdcs(&cpu, &profile, &campaign);
        techniques.push(TechniqueReport {
            technique: t,
            cycles: profile.result.cycles,
            overhead: runtime_overhead(raw_cycles, profile.result.cycles),
            sdc_prob: campaign.sdc_prob(),
            coverage: sdc_coverage(raw_sdc_prob, campaign.sdc_prob()),
            static_insts: prog.static_inst_count(),
            dyn_insts: profile.result.dyn_insts,
            campaign,
            rootcause,
            pass_stats,
        });
    }
    Ok(WorkloadReport {
        name: w.name.to_owned(),
        raw_cycles,
        raw_static_insts: raw_prog.static_inst_count(),
        raw_sdc_prob,
        opt: cfg.opt,
        raw_pass_stats,
        techniques,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_workloads::workload;

    #[test]
    fn evaluation_reproduces_the_papers_shape_on_one_benchmark() {
        let pipeline = Pipeline::new();
        let w = workload("pathfinder").expect("exists");
        let cfg = EvalConfig {
            samples: 400,
            seed: 99,
            scale: Scale::Test,
            ..EvalConfig::default()
        };
        let report = evaluate_workload(&pipeline, &w, cfg).expect("evaluates");

        assert!(report.raw_sdc_prob > 0.0, "raw program must show SDCs");

        let ir = report.technique(Technique::IrEddi).unwrap();
        let hybrid = report.technique(Technique::HybridAsmEddi).unwrap();
        let ferrum = report.technique(Technique::Ferrum).unwrap();

        // Coverage: asm-level techniques are full; IR level is not.
        assert!((hybrid.coverage - 1.0).abs() < f64::EPSILON, "{hybrid:?}");
        assert!((ferrum.coverage - 1.0).abs() < f64::EPSILON, "{ferrum:?}");
        assert!(ir.coverage < 1.0, "IR-EDDI should leak: {ir:?}");

        // Overhead: FERRUM cheapest, hybrid most expensive.
        assert!(
            ferrum.overhead < ir.overhead,
            "{} vs {}",
            ferrum.overhead,
            ir.overhead
        );
        assert!(ferrum.overhead < hybrid.overhead);
        assert!(ir.overhead > 0.0 && hybrid.overhead > 0.0 && ferrum.overhead > 0.0);
    }
}
