//! Minimal JSON value tree, pretty printer, and parser.
//!
//! The hermetic-build policy (see `DESIGN.md`) forbids registry
//! dependencies, so the machine-readable report artifact cannot use
//! `serde_json`.  This module provides the small subset the evaluation
//! needs: building a [`Json`] tree from report types (the [`ToJson`]
//! trait), pretty-printing it, and parsing it back for round-trip
//! verification.  Object member order is preserved.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A floating-point number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup (arrays only).
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(a) => a.get(i),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Serializes on a single line with no whitespace — the NDJSON
    /// form: one value per line, so a stream stays parseable line by
    /// line even when truncated mid-file (see docs/events-schema.md).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(a) => {
                if a.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

pub(crate) fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on a finite f64 always yields a valid JSON number
        // (e.g. "1", "0.5", "1e300").
        let _ = write!(out, "{v}");
    } else {
        // JSON has no NaN/inf; none of our metrics produce them.
        out.push_str("null");
    }
}

pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        // Campaign counters stay far below 2^63.
        Json::Int(*self as i64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by our
                            // emitter; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_print_round_trips() {
        let v = Json::obj(vec![
            ("name", Json::Str("bfs".into())),
            ("count", Json::Int(42)),
            ("prob", Json::Num(0.125)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("k", Json::Int(-7))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = v.to_string_pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let v = parse(r#"[{"name": "bfs", "cycles": 123, "p": 0.5}]"#).unwrap();
        let first = v.idx(0).unwrap();
        assert_eq!(first.get("name").unwrap().as_str(), Some("bfs"));
        assert_eq!(first.get("cycles").unwrap().as_u64(), Some(123));
        assert_eq!(first.get("p").unwrap().as_f64(), Some(0.5));
        assert_eq!(first.get("cycles").unwrap().as_f64(), Some(123.0));
        assert!(v.idx(1).is_none());
        assert!(first.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nulll").is_err());
    }

    #[test]
    fn numbers_parse_into_the_right_variant() {
        assert_eq!(parse("10").unwrap(), Json::Int(10));
        assert_eq!(parse("-3").unwrap(), Json::Int(-3));
        assert_eq!(parse("0.25").unwrap(), Json::Num(0.25));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn compact_is_one_line_and_round_trips() {
        let v = Json::obj(vec![
            ("s", Json::Str("a\"b\n".into())),
            ("n", Json::Num(0.5)),
            ("a", Json::Arr(vec![Json::Int(1), Json::Null, Json::Bool(true)])),
            ("e", Json::Arr(Vec::new())),
            ("o", Json::obj(Vec::new())),
        ]);
        let line = v.to_string_compact();
        assert!(!line.contains('\n'), "NDJSON lines must be newline-free");
        assert!(!line.contains(": "), "no pretty separators");
        assert_eq!(parse(&line).unwrap(), v);
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
    }
}
