//! The unified error type of the façade.

use std::fmt;

/// Anything that can go wrong between MIR and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Backend compilation failed.
    Compile(ferrum_backend::lower::CompileError),
    /// A protection pass failed.
    Pass(ferrum_eddi::PassError),
    /// Loading the program into the simulator failed.
    Load(ferrum_cpu::image::LoadError),
    /// A tool-level failure outside the compile/protect/load pipeline:
    /// event-sink IO, a malformed or mismatched resume journal, ...
    Tool(String),
}

impl Error {
    /// Wraps a tool-level message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error::Tool(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Compile(e) => write!(f, "compile error: {e}"),
            Error::Pass(e) => write!(f, "protection error: {e}"),
            Error::Load(e) => write!(f, "load error: {e}"),
            Error::Tool(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Compile(e) => Some(e),
            Error::Pass(e) => Some(e),
            Error::Load(e) => Some(e),
            Error::Tool(_) => None,
        }
    }
}

impl From<ferrum_backend::lower::CompileError> for Error {
    fn from(e: ferrum_backend::lower::CompileError) -> Error {
        Error::Compile(e)
    }
}

impl From<ferrum_eddi::PassError> for Error {
    fn from(e: ferrum_eddi::PassError) -> Error {
        Error::Pass(e)
    }
}

impl From<ferrum_cpu::image::LoadError> for Error {
    fn from(e: ferrum_cpu::image::LoadError) -> Error {
        Error::Load(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = Error::Pass(ferrum_eddi::PassError::Invalid("x".into()));
        assert!(e.to_string().contains("protection error"));
        assert!(e.source().is_some());
        let e = Error::Load(ferrum_cpu::image::LoadError::Invalid("y".into()));
        assert!(e.to_string().contains("load error"));
    }
}
