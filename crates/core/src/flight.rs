//! NDJSON serialization for the campaign flight recorder.
//!
//! `ferrum_faultsim::flight` defines the event model and keeps it
//! dependency-free; this module is the IO layer on top: every
//! [`FlightEvent`] becomes one compact JSON object on one line
//! (NDJSON), per docs/events-schema.md.  One line per event is what
//! makes the stream a *write-ahead journal*: a campaign killed
//! mid-run leaves a file whose every complete line still parses, and
//! [`parse_events`] simply drops a torn final line — exactly the
//! truncation semantics `JournalSnapshot::from_events` expects.
//!
//! [`NdjsonSink`] is the production sink: it writes and flushes each
//! event as it happens (a journal that sits in a buffer while the
//! process dies protects nothing).  [`event_to_json`] /
//! [`event_from_json`] are the conversion pair; round-tripping an
//! event stream is lossless (`tests/flight_recorder.rs`).

use std::io::Write as _;
use std::sync::Mutex;

use ferrum_faultsim::campaign::Outcome;
use ferrum_faultsim::flight::{
    CampaignEvent, CampaignFingerprint, FlightEvent, FlightSink, JournalSnapshot, OutcomeTallies,
    ProgressSnapshot, ShardRecord, Stage,
};
use ferrum_faultsim::EngineKind;
use ferrum_cpu::fault::FaultSpec;

use crate::json::{Json, ToJson};

fn tallies_to_json(t: &OutcomeTallies) -> Json {
    Json::obj(vec![
        ("sdc", t.sdc.to_json()),
        ("detected", t.detected.to_json()),
        ("crash", t.crash.to_json()),
        ("timeout", t.timeout.to_json()),
        ("benign", t.benign.to_json()),
    ])
}

/// Seeds and content hashes use the full `u64` range; JSON numbers
/// cannot carry that exactly (`i64` in our writer, `f64` in most
/// readers), so identity fields travel as decimal strings.
fn id_to_json(v: u64) -> Json {
    Json::Str(v.to_string())
}

fn get_id(v: &Json, key: &str) -> Option<u64> {
    match v.get(key)? {
        Json::Str(s) => s.parse().ok(),
        other => other.as_u64(),
    }
}

fn fingerprint_to_json(f: &CampaignFingerprint) -> Json {
    Json::obj(vec![
        ("workload", Json::Str(f.workload.clone())),
        ("technique", Json::Str(f.technique.clone())),
        ("executor", Json::Str(f.executor.clone())),
        ("engine", Json::Str(f.engine.label().to_owned())),
        ("samples", f.samples.to_json()),
        ("seed", id_to_json(f.seed)),
        ("sites", f.sites.to_json()),
        ("golden_dyn_insts", f.golden_dyn_insts.to_json()),
        ("program_hash", id_to_json(f.program_hash)),
    ])
}

fn records_to_json(records: &[(FaultSpec, Outcome)]) -> Json {
    Json::Arr(
        records
            .iter()
            .map(|(f, o)| {
                Json::obj(vec![
                    ("dyn_index", f.dyn_index.to_json()),
                    ("raw_bit", Json::Int(i64::from(f.raw_bit))),
                    ("outcome", o.to_json()),
                ])
            })
            .collect(),
    )
}

fn shard_to_json(s: &ShardRecord) -> Json {
    Json::obj(vec![
        ("shard", s.shard.to_json()),
        ("start", s.start.to_json()),
        ("len", s.len.to_json()),
        ("seed", id_to_json(s.seed)),
        ("program_hash", id_to_json(s.program_hash)),
        ("tallies", tallies_to_json(&s.tallies)),
        ("records", records_to_json(&s.records)),
    ])
}

fn snapshot_to_json(p: &ProgressSnapshot) -> Json {
    Json::obj(vec![
        ("done", p.done.to_json()),
        ("total", p.total.to_json()),
        ("tallies", tallies_to_json(&p.tallies)),
        (
            "sdc_ci",
            Json::Arr(vec![p.sdc_ci.0.to_json(), p.sdc_ci.1.to_json()]),
        ),
        ("rate", p.rate.to_json()),
        (
            "worker_rates",
            Json::Arr(p.worker_rates.iter().map(|r| r.to_json()).collect()),
        ),
        (
            "eta_nanos",
            p.eta_nanos.map_or(Json::Null, |e| e.to_json()),
        ),
        ("pruned", p.pruned.to_json()),
        ("reused", p.reused.to_json()),
        ("elapsed_nanos", p.elapsed_nanos.to_json()),
    ])
}

/// One event as one JSON object: `{seq, nanos, type, ...payload}`.
pub fn event_to_json(ev: &FlightEvent) -> Json {
    let mut fields = vec![("seq", ev.seq.to_json()), ("nanos", ev.nanos.to_json())];
    match &ev.event {
        CampaignEvent::Started {
            fingerprint,
            total,
            shard_size,
            shards,
        } => {
            fields.push(("type", Json::Str("started".into())));
            fields.push(("fingerprint", fingerprint_to_json(fingerprint)));
            fields.push(("total", total.to_json()));
            fields.push(("shard_size", shard_size.to_json()));
            fields.push(("shards", shards.to_json()));
        }
        CampaignEvent::ShardScheduled { shard, start, len } => {
            fields.push(("type", Json::Str("shard_scheduled".into())));
            fields.push(("shard", shard.to_json()));
            fields.push(("start", start.to_json()));
            fields.push(("len", len.to_json()));
        }
        CampaignEvent::Heartbeat {
            worker,
            injections,
            steps,
        } => {
            fields.push(("type", Json::Str("heartbeat".into())));
            fields.push(("worker", worker.to_json()));
            fields.push(("injections", injections.to_json()));
            fields.push(("steps", steps.to_json()));
        }
        CampaignEvent::Progress(p) => {
            fields.push(("type", Json::Str("progress".into())));
            fields.push(("progress", snapshot_to_json(p)));
        }
        CampaignEvent::ShardCompleted(s) => {
            fields.push(("type", Json::Str("shard_completed".into())));
            fields.push(("record", shard_to_json(s)));
        }
        CampaignEvent::FunctionShardCompleted {
            name,
            hash,
            sites,
            draws,
            reused,
        } => {
            fields.push(("type", Json::Str("function_shard".into())));
            fields.push(("name", Json::Str(name.clone())));
            fields.push(("hash", id_to_json(*hash)));
            fields.push(("sites", sites.to_json()));
            fields.push(("draws", draws.to_json()));
            fields.push(("reused", Json::Bool(*reused)));
        }
        CampaignEvent::StageTiming {
            worker,
            stage,
            nanos,
            count,
        } => {
            fields.push(("type", Json::Str("stage_timing".into())));
            fields.push(("worker", worker.to_json()));
            fields.push(("stage", Json::Str(stage.label().to_owned())));
            fields.push(("stage_nanos", nanos.to_json()));
            fields.push(("count", count.to_json()));
        }
        CampaignEvent::Finished {
            tallies,
            wall_nanos,
            injections_per_sec,
            pruned,
            reused,
        } => {
            fields.push(("type", Json::Str("finished".into())));
            fields.push(("tallies", tallies_to_json(tallies)));
            fields.push(("wall_nanos", wall_nanos.to_json()));
            fields.push(("injections_per_sec", injections_per_sec.to_json()));
            fields.push(("pruned", pruned.to_json()));
            fields.push(("reused", reused.to_json()));
        }
    }
    Json::obj(fields)
}

fn get_usize(v: &Json, key: &str) -> Option<usize> {
    v.get(key)?.as_u64().map(|u| u as usize)
}

fn get_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn tallies_from_json(v: &Json) -> Option<OutcomeTallies> {
    Some(OutcomeTallies {
        sdc: get_usize(v, "sdc")?,
        detected: get_usize(v, "detected")?,
        crash: get_usize(v, "crash")?,
        timeout: get_usize(v, "timeout")?,
        benign: get_usize(v, "benign")?,
    })
}

fn fingerprint_from_json(v: &Json) -> Option<CampaignFingerprint> {
    Some(CampaignFingerprint {
        workload: v.get("workload")?.as_str()?.to_owned(),
        technique: v.get("technique")?.as_str()?.to_owned(),
        executor: v.get("executor")?.as_str()?.to_owned(),
        engine: EngineKind::parse(v.get("engine")?.as_str()?)?,
        samples: get_usize(v, "samples")?,
        seed: get_id(v, "seed")?,
        sites: get_usize(v, "sites")?,
        golden_dyn_insts: get_u64(v, "golden_dyn_insts")?,
        program_hash: get_id(v, "program_hash")?,
    })
}

fn records_from_json(v: &Json) -> Option<Vec<(FaultSpec, Outcome)>> {
    v.as_array()?
        .iter()
        .map(|r| {
            let fault = FaultSpec::new(
                get_u64(r, "dyn_index")?,
                u16::try_from(get_u64(r, "raw_bit")?).ok()?,
            );
            let outcome = Outcome::parse(r.get("outcome")?.as_str()?)?;
            Some((fault, outcome))
        })
        .collect()
}

fn shard_from_json(v: &Json) -> Option<ShardRecord> {
    Some(ShardRecord {
        shard: get_usize(v, "shard")?,
        start: get_usize(v, "start")?,
        len: get_usize(v, "len")?,
        seed: get_id(v, "seed")?,
        program_hash: get_id(v, "program_hash")?,
        tallies: tallies_from_json(v.get("tallies")?)?,
        records: records_from_json(v.get("records")?)?,
    })
}

fn snapshot_from_json(v: &Json) -> Option<ProgressSnapshot> {
    let ci = v.get("sdc_ci")?;
    Some(ProgressSnapshot {
        done: get_usize(v, "done")?,
        total: get_usize(v, "total")?,
        tallies: tallies_from_json(v.get("tallies")?)?,
        sdc_ci: (ci.idx(0)?.as_f64()?, ci.idx(1)?.as_f64()?),
        rate: v.get("rate")?.as_f64()?,
        worker_rates: v
            .get("worker_rates")?
            .as_array()?
            .iter()
            .map(Json::as_f64)
            .collect::<Option<Vec<f64>>>()?,
        eta_nanos: match v.get("eta_nanos")? {
            Json::Null => None,
            e => Some(e.as_u64()?),
        },
        pruned: get_usize(v, "pruned")?,
        reused: get_usize(v, "reused")?,
        elapsed_nanos: get_u64(v, "elapsed_nanos")?,
    })
}

/// Parses one event object back; `None` when the shape does not match
/// docs/events-schema.md.
pub fn event_from_json(v: &Json) -> Option<FlightEvent> {
    let seq = get_u64(v, "seq")?;
    let nanos = get_u64(v, "nanos")?;
    let event = match v.get("type")?.as_str()? {
        "started" => CampaignEvent::Started {
            fingerprint: fingerprint_from_json(v.get("fingerprint")?)?,
            total: get_usize(v, "total")?,
            shard_size: get_usize(v, "shard_size")?,
            shards: get_usize(v, "shards")?,
        },
        "shard_scheduled" => CampaignEvent::ShardScheduled {
            shard: get_usize(v, "shard")?,
            start: get_usize(v, "start")?,
            len: get_usize(v, "len")?,
        },
        "heartbeat" => CampaignEvent::Heartbeat {
            worker: get_usize(v, "worker")?,
            injections: get_usize(v, "injections")?,
            steps: get_u64(v, "steps")?,
        },
        "progress" => CampaignEvent::Progress(snapshot_from_json(v.get("progress")?)?),
        "shard_completed" => CampaignEvent::ShardCompleted(shard_from_json(v.get("record")?)?),
        "function_shard" => CampaignEvent::FunctionShardCompleted {
            name: v.get("name")?.as_str()?.to_owned(),
            hash: get_id(v, "hash")?,
            sites: get_usize(v, "sites")?,
            draws: get_usize(v, "draws")?,
            reused: matches!(v.get("reused")?, Json::Bool(true)),
        },
        "stage_timing" => CampaignEvent::StageTiming {
            worker: get_usize(v, "worker")?,
            stage: Stage::parse(v.get("stage")?.as_str()?)?,
            nanos: get_u64(v, "stage_nanos")?,
            count: get_u64(v, "count")?,
        },
        "finished" => CampaignEvent::Finished {
            tallies: tallies_from_json(v.get("tallies")?)?,
            wall_nanos: get_u64(v, "wall_nanos")?,
            injections_per_sec: v.get("injections_per_sec")?.as_f64()?,
            pruned: get_usize(v, "pruned")?,
            reused: get_usize(v, "reused")?,
        },
        _ => return None,
    };
    Some(FlightEvent { seq, nanos, event })
}

// ---------------------------------------------------------------------------
// Direct NDJSON writer
// ---------------------------------------------------------------------------
//
// `event_to_json(ev).to_string_compact()` allocates a `String` per
// object key; a shard-completed journal record carries one entry per
// fault, so at paper scale the tree's allocations alone would blow
// the recorder's overhead budget.  The writers below emit the exact
// same bytes straight into one buffer
// (`ndjson_writer_matches_the_json_tree` pins the equivalence).
//
// Numbers follow the tree path precisely: integers print as `i64`
// (matching `ToJson for u64`), floats via `json::write_f64`, and
// 64-bit identity fields as decimal strings (see `id_to_json`).

use std::fmt::Write as _;

fn put_key(out: &mut String, key: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
}

fn put_tallies(out: &mut String, t: &OutcomeTallies) {
    let _ = write!(
        out,
        "{{\"sdc\":{},\"detected\":{},\"crash\":{},\"timeout\":{},\"benign\":{}}}",
        t.sdc, t.detected, t.crash, t.timeout, t.benign
    );
}

fn put_fingerprint(out: &mut String, f: &CampaignFingerprint) {
    out.push_str("{\"workload\":");
    crate::json::write_escaped(out, &f.workload);
    out.push_str(",\"technique\":");
    crate::json::write_escaped(out, &f.technique);
    out.push_str(",\"executor\":");
    crate::json::write_escaped(out, &f.executor);
    let _ = write!(
        out,
        ",\"engine\":\"{}\",\"samples\":{},\"seed\":\"{}\",\"sites\":{},\"golden_dyn_insts\":{},\"program_hash\":\"{}\"}}",
        f.engine.label(),
        f.samples,
        f.seed,
        f.sites,
        f.golden_dyn_insts as i64,
        f.program_hash
    );
}

fn put_snapshot(out: &mut String, p: &ProgressSnapshot) {
    let _ = write!(out, "{{\"done\":{},\"total\":{},\"tallies\":", p.done, p.total);
    put_tallies(out, &p.tallies);
    out.push_str(",\"sdc_ci\":[");
    crate::json::write_f64(out, p.sdc_ci.0);
    out.push(',');
    crate::json::write_f64(out, p.sdc_ci.1);
    out.push_str("],\"rate\":");
    crate::json::write_f64(out, p.rate);
    out.push_str(",\"worker_rates\":[");
    for (i, r) in p.worker_rates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::json::write_f64(out, *r);
    }
    out.push_str("],\"eta_nanos\":");
    match p.eta_nanos {
        Some(e) => {
            let _ = write!(out, "{}", e as i64);
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"pruned\":{},\"reused\":{},\"elapsed_nanos\":{}}}",
        p.pruned, p.reused, p.elapsed_nanos as i64
    );
}

fn put_shard(out: &mut String, s: &ShardRecord) {
    let _ = write!(
        out,
        "{{\"shard\":{},\"start\":{},\"len\":{},\"seed\":\"{}\",\"program_hash\":\"{}\",\"tallies\":",
        s.shard, s.start, s.len, s.seed, s.program_hash
    );
    put_tallies(out, &s.tallies);
    out.push_str(",\"records\":[");
    for (i, (f, o)) in s.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"dyn_index\":{},\"raw_bit\":{},\"outcome\":\"{}\"}}",
            f.dyn_index as i64,
            f.raw_bit,
            o.variant()
        );
    }
    out.push_str("]}");
}

/// Serializes one event as its NDJSON line (no trailing newline).
/// Byte-identical to `event_to_json(ev).to_string_compact()` but
/// writes directly, without building the tree.
pub fn event_to_ndjson(ev: &FlightEvent) -> String {
    let mut out = String::with_capacity(match &ev.event {
        CampaignEvent::ShardCompleted(s) => 160 + 56 * s.records.len(),
        _ => 256,
    });
    let _ = write!(
        out,
        "{{\"seq\":{},\"nanos\":{},\"type\":",
        ev.seq as i64, ev.nanos as i64
    );
    match &ev.event {
        CampaignEvent::Started {
            fingerprint,
            total,
            shard_size,
            shards,
        } => {
            out.push_str("\"started\",\"fingerprint\":");
            put_fingerprint(&mut out, fingerprint);
            let _ = write!(
                out,
                ",\"total\":{total},\"shard_size\":{shard_size},\"shards\":{shards}"
            );
        }
        CampaignEvent::ShardScheduled { shard, start, len } => {
            let _ = write!(
                out,
                "\"shard_scheduled\",\"shard\":{shard},\"start\":{start},\"len\":{len}"
            );
        }
        CampaignEvent::Heartbeat {
            worker,
            injections,
            steps,
        } => {
            let _ = write!(
                out,
                "\"heartbeat\",\"worker\":{worker},\"injections\":{injections},\"steps\":{}",
                *steps as i64
            );
        }
        CampaignEvent::Progress(p) => {
            out.push_str("\"progress\",");
            put_key(&mut out, "progress");
            put_snapshot(&mut out, p);
        }
        CampaignEvent::ShardCompleted(s) => {
            out.push_str("\"shard_completed\",");
            put_key(&mut out, "record");
            put_shard(&mut out, s);
        }
        CampaignEvent::FunctionShardCompleted {
            name,
            hash,
            sites,
            draws,
            reused,
        } => {
            out.push_str("\"function_shard\",\"name\":");
            crate::json::write_escaped(&mut out, name);
            let _ = write!(
                out,
                ",\"hash\":\"{hash}\",\"sites\":{sites},\"draws\":{draws},\"reused\":{reused}"
            );
        }
        CampaignEvent::StageTiming {
            worker,
            stage,
            nanos,
            count,
        } => {
            let _ = write!(
                out,
                "\"stage_timing\",\"worker\":{worker},\"stage\":\"{}\",\"stage_nanos\":{},\"count\":{}",
                stage.label(),
                *nanos as i64,
                *count as i64
            );
        }
        CampaignEvent::Finished {
            tallies,
            wall_nanos,
            injections_per_sec,
            pruned,
            reused,
        } => {
            out.push_str("\"finished\",");
            put_key(&mut out, "tallies");
            put_tallies(&mut out, tallies);
            let _ = write!(out, ",\"wall_nanos\":{}", *wall_nanos as i64);
            out.push_str(",\"injections_per_sec\":");
            crate::json::write_f64(&mut out, *injections_per_sec);
            let _ = write!(out, ",\"pruned\":{pruned},\"reused\":{reused}");
        }
    }
    out.push('}');
    out
}

/// Parses an NDJSON event stream.  Blank lines are skipped; a final
/// line torn by a mid-write kill is dropped (everything before it is
/// kept); any other unparseable line is an error.
///
/// # Errors
///
/// Returns the 1-based line number of the first malformed non-final
/// line.
pub fn parse_events(text: &str) -> Result<Vec<FlightEvent>, String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut events = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match crate::json::parse(line).ok().as_ref().and_then(event_from_json) {
            Some(ev) => events.push(ev),
            None if i + 1 == lines.len() => break,
            None => return Err(format!("malformed event at line {}", i + 1)),
        }
    }
    Ok(events)
}

/// Reconstructs a resume journal from NDJSON text: [`parse_events`]
/// then [`JournalSnapshot::from_events`].
///
/// # Errors
///
/// Propagates [`parse_events`] errors; `"no campaign in journal"` when
/// the stream has no started event.
pub fn journal_from_ndjson(text: &str) -> Result<JournalSnapshot, String> {
    let events = parse_events(text)?;
    JournalSnapshot::from_events(&events).ok_or_else(|| "no campaign in journal".to_owned())
}

/// A [`FlightSink`] that writes each event as one NDJSON line and
/// flushes immediately — the write-ahead property.  IO errors are
/// swallowed (a full disk must not abort the campaign; the journal
/// just ends early, which truncation-tolerant parsing handles).
pub struct NdjsonSink {
    out: Mutex<Box<dyn std::io::Write + Send>>,
}

impl NdjsonSink {
    /// Wraps any writer (a `File` for journals, `io::sink()` for
    /// overhead measurement).
    pub fn new(out: Box<dyn std::io::Write + Send>) -> NdjsonSink {
        NdjsonSink {
            out: Mutex::new(out),
        }
    }

    /// Creates (truncates) `path` and journals into it.
    ///
    /// # Errors
    ///
    /// Propagates file creation errors.
    pub fn create(path: &str) -> std::io::Result<NdjsonSink> {
        Ok(NdjsonSink::new(Box::new(std::fs::File::create(path)?)))
    }
}

impl FlightSink for NdjsonSink {
    fn record_event(&self, ev: &FlightEvent) {
        let line = event_to_ndjson(ev);
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    }
}

/// Per-worker liveness tracking over a flight-event stream.
///
/// Heartbeats arrive at a roughly fixed per-worker cadence
/// (`FlightPolicy::heartbeat_every` injections), so a worker whose
/// heartbeats stop is either finished or wedged on a pathological
/// fault.  The tracker learns each worker's cadence from its observed
/// inter-heartbeat gaps (the maximum gap, so bursty-but-live workers
/// are not flagged) and reports a worker *stalled* once it has been
/// silent for more than twice that cadence.  Workers with fewer than
/// two heartbeats have no cadence yet and are never flagged.
#[derive(Debug, Default)]
pub struct StallTracker {
    workers: Vec<Option<WorkerBeat>>,
}

#[derive(Debug, Clone, Copy)]
struct WorkerBeat {
    /// Stream timestamp of the most recent heartbeat.
    last_nanos: u64,
    /// Largest observed gap between consecutive heartbeats; `None`
    /// until a second heartbeat establishes a cadence.
    cadence_nanos: Option<u64>,
}

impl StallTracker {
    /// An empty tracker (no workers observed yet).
    pub fn new() -> StallTracker {
        StallTracker::default()
    }

    /// Feeds one event from the stream.  Only heartbeats move the
    /// tracker; a campaign start resets it (worker indices are
    /// per-campaign).
    pub fn observe(&mut self, ev: &FlightEvent) {
        match &ev.event {
            CampaignEvent::Started { .. } => self.workers.clear(),
            CampaignEvent::Heartbeat { worker, .. } => {
                if self.workers.len() <= *worker {
                    self.workers.resize(*worker + 1, None);
                }
                let slot = &mut self.workers[*worker];
                *slot = Some(match *slot {
                    None => WorkerBeat {
                        last_nanos: ev.nanos,
                        cadence_nanos: None,
                    },
                    Some(prev) => {
                        let gap = ev.nanos.saturating_sub(prev.last_nanos);
                        WorkerBeat {
                            last_nanos: ev.nanos,
                            cadence_nanos: Some(prev.cadence_nanos.map_or(gap, |c| c.max(gap))),
                        }
                    }
                });
            }
            _ => {}
        }
    }

    /// Workers silent for more than twice their observed cadence as of
    /// stream time `now_nanos`, ascending.
    pub fn stalled(&self, now_nanos: u64) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter_map(|(w, beat)| {
                let beat = (*beat)?;
                let cadence = beat.cadence_nanos?;
                (now_nanos.saturating_sub(beat.last_nanos) > cadence.saturating_mul(2))
                    .then_some(w)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<FlightEvent> {
        let fingerprint = CampaignFingerprint {
            workload: "bfs".into(),
            technique: "ferrum".into(),
            executor: "serial".into(),
            engine: EngineKind::Decoded,
            samples: 4,
            seed: 0xFE44,
            sites: 123,
            golden_dyn_insts: 456,
            // Top bit set: a hash in the i64-negative half must
            // survive the trip (identity fields travel as strings).
            program_hash: 0xDEAD_BEEF_DEAD_BEEF,
        };
        let tallies = OutcomeTallies {
            sdc: 1,
            detected: 1,
            crash: 0,
            timeout: 0,
            benign: 2,
        };
        vec![
            FlightEvent {
                seq: 0,
                nanos: 0,
                event: CampaignEvent::Started {
                    fingerprint,
                    total: 4,
                    shard_size: 2,
                    shards: 2,
                },
            },
            FlightEvent {
                seq: 1,
                nanos: 0,
                event: CampaignEvent::ShardScheduled {
                    shard: 0,
                    start: 0,
                    len: 2,
                },
            },
            FlightEvent {
                seq: 2,
                nanos: 10,
                event: CampaignEvent::Heartbeat {
                    worker: 1,
                    injections: 2,
                    steps: 99,
                },
            },
            FlightEvent {
                seq: 3,
                nanos: 20,
                event: CampaignEvent::ShardCompleted(ShardRecord {
                    shard: 0,
                    start: 0,
                    len: 2,
                    seed: 0xFE44,
                    program_hash: 0xDEAD_BEEF_DEAD_BEEF,
                    tallies: OutcomeTallies {
                        sdc: 1,
                        benign: 1,
                        ..OutcomeTallies::default()
                    },
                    records: vec![
                        (FaultSpec::new(17, 3), Outcome::Sdc),
                        (FaultSpec::new(40, 0), Outcome::Benign),
                    ],
                }),
            },
            FlightEvent {
                seq: 4,
                nanos: 30,
                event: CampaignEvent::Progress(ProgressSnapshot {
                    done: 2,
                    total: 4,
                    tallies: OutcomeTallies {
                        sdc: 1,
                        benign: 1,
                        ..OutcomeTallies::default()
                    },
                    sdc_ci: (0.25, 0.75),
                    rate: 1000.0,
                    worker_rates: vec![500.0, 500.0],
                    eta_nanos: Some(2_000_000),
                    pruned: 0,
                    reused: 1,
                    elapsed_nanos: 30,
                }),
            },
            FlightEvent {
                seq: 5,
                nanos: 35,
                event: CampaignEvent::FunctionShardCompleted {
                    name: "helper".into(),
                    hash: 42,
                    sites: 7,
                    draws: 3,
                    reused: true,
                },
            },
            FlightEvent {
                seq: 6,
                nanos: 38,
                event: CampaignEvent::StageTiming {
                    worker: 1,
                    stage: Stage::Replay,
                    nanos: 1234,
                    count: 2,
                },
            },
            FlightEvent {
                seq: 7,
                nanos: 40,
                event: CampaignEvent::Finished {
                    tallies,
                    wall_nanos: 40,
                    injections_per_sec: 1e5,
                    pruned: 0,
                    reused: 1,
                },
            },
        ]
    }

    #[test]
    fn ndjson_writer_matches_the_json_tree() {
        // The direct writer exists purely for speed; its output must
        // stay byte-identical to the tree path for every event shape,
        // including the degenerate progress forms (no ETA yet, no
        // workers yet).
        let mut events = sample_events();
        events.push(FlightEvent {
            seq: 8,
            nanos: 50,
            event: CampaignEvent::Progress(ProgressSnapshot {
                done: 0,
                total: 4,
                tallies: OutcomeTallies::default(),
                sdc_ci: (0.0, 1.0),
                rate: 0.0,
                worker_rates: vec![],
                eta_nanos: None,
                pruned: 0,
                reused: 0,
                elapsed_nanos: 50,
            }),
        });
        for ev in &events {
            assert_eq!(
                event_to_ndjson(ev),
                event_to_json(ev).to_string_compact(),
                "writer diverged on {ev:?}"
            );
        }
    }

    #[test]
    fn ndjson_round_trip_is_lossless() {
        let events = sample_events();
        let text: String = events
            .iter()
            .map(|e| event_to_ndjson(e) + "\n")
            .collect();
        for line in text.lines() {
            assert!(!line.contains('\n'));
        }
        let parsed = parse_events(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn torn_final_line_is_dropped_not_fatal() {
        let events = sample_events();
        let mut text: String = events
            .iter()
            .map(|e| event_to_ndjson(e) + "\n")
            .collect();
        // Simulate a kill mid-write: keep half of the last line.
        let keep = text.len() - 25;
        text.truncate(keep);
        let parsed = parse_events(&text).unwrap();
        assert_eq!(parsed.len(), events.len() - 1);
        assert_eq!(parsed, events[..events.len() - 1]);
        // A malformed line in the middle IS fatal.
        let bad = format!("{}\ngarbage\n{}\n", event_to_ndjson(&events[0]), event_to_ndjson(&events[1]));
        assert!(parse_events(&bad).is_err());
    }

    #[test]
    fn journal_reconstructs_from_ndjson() {
        let events = sample_events();
        let text: String = events
            .iter()
            .map(|e| event_to_ndjson(e) + "\n")
            .collect();
        let j = journal_from_ndjson(&text).unwrap();
        assert_eq!(j.fingerprint.workload, "bfs");
        assert_eq!(j.total, 4);
        assert_eq!(j.shards.len(), 1);
        assert_eq!(j.completed(), 2);
        assert!(j.finished);
        assert!(journal_from_ndjson("").is_err());
    }

    #[test]
    fn stall_tracker_flags_silent_workers_only_after_a_cadence_exists() {
        let beat = |seq: u64, nanos: u64, worker: usize| FlightEvent {
            seq,
            nanos,
            event: CampaignEvent::Heartbeat {
                worker,
                injections: 1,
                steps: 1,
            },
        };
        let mut t = StallTracker::new();
        // One heartbeat establishes presence but no cadence: a worker
        // that reported once and went quiet is indistinguishable from
        // one that finished its shard.
        t.observe(&beat(0, 100, 0));
        assert_eq!(t.stalled(10_000), Vec::<usize>::new());
        // A second heartbeat fixes worker 0's cadence at 400ns.
        t.observe(&beat(1, 500, 0));
        assert_eq!(t.stalled(1_300), Vec::<usize>::new()); // exactly 2x: not yet
        assert_eq!(t.stalled(1_301), vec![0]); // past 2x: stalled
        // Worker 1 beats at a slower cadence and stays live longer.
        t.observe(&beat(2, 200, 1));
        t.observe(&beat(3, 1_200, 1));
        assert_eq!(t.stalled(1_301), vec![0]);
        assert_eq!(t.stalled(3_300), vec![0, 1]);
        // Cadence is the max observed gap: a fast beat after a slow
        // one must not shrink the allowance.
        t.observe(&beat(4, 1_250, 1));
        assert_eq!(t.stalled(3_250), vec![0]);
        // A beat from worker 0 clears its flag.
        t.observe(&beat(5, 3_000, 0));
        assert_eq!(t.stalled(3_250), Vec::<usize>::new());
        // A new campaign resets everything.
        t.observe(&sample_events()[0]);
        assert_eq!(t.stalled(1 << 40), Vec::<usize>::new());
    }

    #[test]
    fn ndjson_sink_writes_one_line_per_event() {
        use std::sync::{Arc, Mutex};

        // A Vec<u8> writer we can inspect after the sink drops.
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared::default();
        let sink = NdjsonSink::new(Box::new(shared.clone()));
        let events = sample_events();
        for ev in &events {
            sink.record_event(ev);
        }
        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), events.len());
        assert_eq!(parse_events(&text).unwrap(), events);
    }
}
