//! Compile → protect → load.

use ferrum_asm::program::AsmProgram;
use ferrum_backend::{OptLevel, PassStats};
use ferrum_cpu::cost::CostModel;
use ferrum_cpu::run::Cpu;
use ferrum_eddi::ferrum::{Ferrum, FerrumConfig};
use ferrum_eddi::hybrid::HybridAsmEddi;
use ferrum_eddi::ir_eddi::IrEddi;
use ferrum_eddi::Technique;
use ferrum_mir::module::Module;

use crate::Error;

/// The compile-protect-load pipeline with shared simulation settings.
#[derive(Debug, Clone)]
pub struct Pipeline {
    cost: CostModel,
    step_limit: u64,
    ferrum_cfg: FerrumConfig,
    opt: OptLevel,
}

impl Default for Pipeline {
    fn default() -> Pipeline {
        Pipeline::new()
    }
}

impl Pipeline {
    /// Default cost model, 50 M-step limit, full FERRUM configuration.
    pub fn new() -> Pipeline {
        Pipeline {
            cost: CostModel::default(),
            step_limit: 50_000_000,
            ferrum_cfg: FerrumConfig::default(),
            opt: OptLevel::O0,
        }
    }

    /// Selects the backend optimization level used by every
    /// [`Pipeline::protect`] compilation (default [`OptLevel::O0`],
    /// the paper's naive lowering).
    pub fn with_opt_level(mut self, opt: OptLevel) -> Pipeline {
        self.opt = opt;
        self
    }

    /// The backend optimization level this pipeline compiles at.
    pub fn opt_level(&self) -> OptLevel {
        self.opt
    }

    /// Overrides the cycle cost model used by [`Pipeline::load`].
    pub fn with_cost_model(mut self, cost: CostModel) -> Pipeline {
        self.cost = cost;
        self
    }

    /// Overrides the step limit (timeout bound) for simulations.
    pub fn with_step_limit(mut self, limit: u64) -> Pipeline {
        self.step_limit = limit;
        self
    }

    /// Overrides FERRUM's configuration (for ablations).
    pub fn with_ferrum_config(mut self, cfg: FerrumConfig) -> Pipeline {
        self.ferrum_cfg = cfg;
        self
    }

    /// The FERRUM configuration this pipeline protects with.
    pub fn ferrum_config(&self) -> FerrumConfig {
        self.ferrum_cfg
    }

    /// Compiles `module` and applies `technique`.
    ///
    /// # Errors
    ///
    /// Propagates compilation and protection failures.
    pub fn protect(&self, module: &Module, technique: Technique) -> Result<AsmProgram, Error> {
        self.protect_with_pass_stats(module, technique)
            .map(|(p, _)| p)
    }

    /// [`Pipeline::protect`] plus the backend's per-pass statistics
    /// (all-zero at `-O0`).
    ///
    /// # Errors
    ///
    /// Propagates compilation and protection failures.
    pub fn protect_with_pass_stats(
        &self,
        module: &Module,
        technique: Technique,
    ) -> Result<(AsmProgram, PassStats), Error> {
        Ok(match technique {
            Technique::None => ferrum_backend::compile_with_stats(module, self.opt)?,
            Technique::IrEddi => {
                // The paper's root cause 2 in action: IR-level shadows
                // ride through register allocation and forwarding like
                // any other code, and merge with their masters.
                let (protected, shadows) = IrEddi::new().protect_tracked(module);
                let (mut asm, stats) = ferrum_backend::compile_with_stats(&protected, self.opt)?;
                ferrum_eddi::ir_eddi::retag_shadows(
                    &mut asm,
                    &shadows,
                    ferrum_asm::provenance::TechniqueTag::IrEddi,
                );
                (asm, stats)
            }
            Technique::HybridAsmEddi => {
                let (asm, stats) = HybridAsmEddi::new().protect_opt(module, self.opt)?;
                (asm, stats)
            }
            Technique::Ferrum => {
                // Assembly-level protection runs *after* the optimizer,
                // so its coverage is indifferent to the opt level.
                let (asm, stats) = ferrum_backend::compile_with_stats(module, self.opt)?;
                (Ferrum::with_config(self.ferrum_cfg).protect(&asm)?, stats)
            }
        })
    }

    /// Loads a program for simulation with this pipeline's settings.
    ///
    /// # Errors
    ///
    /// Propagates image-construction failures.
    pub fn load(&self, program: &AsmProgram) -> Result<Cpu, Error> {
        Ok(Cpu::load(program)?
            .with_cost_model(self.cost)
            .with_step_limit(self.step_limit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_cpu::outcome::StopReason;
    use ferrum_workloads::{workload, Scale};

    #[test]
    fn all_techniques_preserve_output_on_a_workload() {
        let w = workload("pathfinder").expect("exists");
        let module = w.build(Scale::Test);
        let golden = w.oracle(Scale::Test);
        let pipeline = Pipeline::new();
        for t in [
            Technique::None,
            Technique::IrEddi,
            Technique::HybridAsmEddi,
            Technique::Ferrum,
        ] {
            let p = pipeline
                .protect(&module, t)
                .unwrap_or_else(|e| panic!("{t}: {e}"));
            assert!(p.validate().is_ok(), "{t}");
            let r = pipeline.load(&p).expect("loads").run(None);
            assert_eq!(r.stop, StopReason::MainReturned, "{t}");
            assert_eq!(r.output, golden, "{t}");
        }
    }

    #[test]
    fn protected_programs_are_larger_and_slower() {
        let w = workload("needle").expect("exists");
        let module = w.build(Scale::Test);
        let pipeline = Pipeline::new();
        let raw = pipeline.protect(&module, Technique::None).unwrap();
        let raw_cycles = pipeline.load(&raw).unwrap().run(None).cycles;
        for t in Technique::PROTECTED {
            let p = pipeline.protect(&module, t).unwrap();
            let cycles = pipeline.load(&p).unwrap().run(None).cycles;
            assert!(cycles > raw_cycles, "{t}: {cycles} vs raw {raw_cycles}");
        }
    }

    #[test]
    fn ferrum_config_reaches_the_pass() {
        let w = workload("knn").expect("exists");
        let module = w.build(Scale::Test);
        let cfg = FerrumConfig {
            simd: false,
            ..FerrumConfig::default()
        };
        let pipeline = Pipeline::new().with_ferrum_config(cfg);
        let p = pipeline.protect(&module, Technique::Ferrum).unwrap();
        assert!(!p
            .function("main")
            .unwrap()
            .insts()
            .any(|a| matches!(a.inst, ferrum_asm::inst::Inst::Vptest { .. })));
    }
}
