//! Scalar duplication idioms shared by HYBRID-ASSEMBLY-LEVEL-EDDI and
//! FERRUM's GENERAL-INSTRUCTION path.
//!
//! Three shapes, all ending in a `jne exit_function` checker:
//!
//! * **duplicate-first** (Fig. 4 of the paper): re-execute the
//!   instruction into a spare register *before* the original, then XOR
//!   the two results.  Running the duplicate first means source operands
//!   are still pristine even when the original overwrites one of them
//!   (e.g. `movq (%rax), %rax`).
//! * **pre-copy replay** for read-modify-write instructions (two-operand
//!   ALU, shifts, `neg`/`not`, `imul`): capture the destination into the
//!   spare, replay the operation on the spare, run the original, compare.
//! * **double execution** for `idiv`, which consumes and produces
//!   `%rax`/`%rdx`: stash inputs, divide, stash results, restore inputs,
//!   divide again, compare quotient and remainder.
//!
//! Every inserted instruction is tagged
//! [`Provenance::Protection`], so passes never re-protect their own
//! output and the fault injector can attribute faults hitting checker
//! code.

use ferrum_asm::flags::Cc;
use ferrum_asm::inst::{AluOp, Inst};
use ferrum_asm::operand::{MemRef, Operand};
use ferrum_asm::program::AsmInst;
use ferrum_asm::provenance::{Mechanism, Provenance, TechniqueTag};
use ferrum_asm::reg::{Gpr, Reg, Width};

use crate::PassError;

/// Replaces the written GPR of a non-RMW instruction with `g`, keeping
/// the written width.  Returns `None` when the instruction has no plain
/// GPR destination.
pub fn with_dest_gpr(inst: &Inst, g: Gpr) -> Option<Inst> {
    let mut out = inst.clone();
    match &mut out {
        Inst::Mov {
            w,
            dst: Operand::Reg(r),
            ..
        } => *r = Reg::gpr(g, *w),
        Inst::Movsx { dst, .. } | Inst::Movzx { dst, .. } => *dst = Reg::gpr(g, dst.width),
        Inst::Lea { dst, .. } => *dst = Reg::q(g),
        Inst::Setcc {
            dst: Operand::Reg(r),
            ..
        } => *r = Reg::b(g),
        Inst::MovqFromXmm { dst, .. } | Inst::Pextrq { dst, .. } => *dst = Reg::q(g),
        Inst::Alu {
            dst: Operand::Reg(r),
            ..
        } => *r = Reg::gpr(g, r.width),
        Inst::Imul { dst, .. } => *dst = Reg::gpr(g, dst.width),
        Inst::Unary {
            dst: Operand::Reg(r),
            ..
        } => *r = Reg::gpr(g, r.width),
        Inst::Shift {
            dst: Operand::Reg(r),
            ..
        } => *r = Reg::gpr(g, r.width),
        _ => return None,
    }
    Some(out)
}

/// True when the instruction reads the register it writes (so the
/// duplicate cannot simply be re-executed into a spare).
pub fn is_rmw(inst: &Inst) -> bool {
    inst.dest_gpr().is_some()
        && matches!(
            inst,
            Inst::Alu { .. } | Inst::Unary { .. } | Inst::Shift { .. } | Inst::Imul { .. }
        )
}

fn prot(tag: TechniqueTag, mech: Mechanism, inst: Inst) -> AsmInst {
    AsmInst::new(inst, Provenance::Protection(tag, mech))
}

/// Duplicate-stream scaffolding (pre-copies, replays, stashes).
fn dup(tag: TechniqueTag, inst: Inst) -> AsmInst {
    prot(tag, Mechanism::Dup, inst)
}

fn jne_exit(tag: TechniqueTag) -> AsmInst {
    prot(
        tag,
        Mechanism::Check,
        Inst::Jcc {
            cc: Cc::Ne,
            target: ferrum_asm::EXIT_FUNCTION.into(),
        },
    )
}

fn xor_check(tag: TechniqueTag, w: Width, orig: Gpr, dup: Gpr, out: &mut Vec<AsmInst>) {
    out.push(prot(
        tag,
        Mechanism::Check,
        Inst::Alu {
            op: AluOp::Xor,
            w,
            src: Operand::Reg(Reg::gpr(orig, w)),
            dst: Operand::Reg(Reg::gpr(dup, w)),
        },
    ));
    out.push(jne_exit(tag));
}

fn cmp_check(tag: TechniqueTag, w: Width, a: Gpr, b: Gpr, out: &mut Vec<AsmInst>) {
    out.push(prot(
        tag,
        Mechanism::Check,
        Inst::Cmp {
            w,
            src: Operand::Reg(Reg::gpr(a, w)),
            dst: Operand::Reg(Reg::gpr(b, w)),
        },
    ));
    out.push(jne_exit(tag));
}

/// Emits the *batched* duplication of one GENERAL instruction: the
/// duplicate executes into `scratch`, the original runs, and instead of
/// an immediate `xor`+`jne` the caller captures both results into the
/// SIMD batch (the paper's "shift multiple duplication and original
/// results to SIMD registers, then compare the values at once", §III-B3).
///
/// Returns the `(duplicate, original)` register pair to capture, or
/// `Ok(None)` when the instruction cannot be batch-checked (narrow
/// destinations whose upper register bits are unspecified, `idiv`,
/// `pop`) — the caller falls back to [`protect_general`].
///
/// # Errors
///
/// [`PassError::Unsupported`] for scratch-register aliasing.
pub fn protect_general_batched(
    ai: &AsmInst,
    scratch: Gpr,
    tag: TechniqueTag,
    out: &mut Vec<AsmInst>,
) -> Result<Option<(Gpr, Gpr)>, PassError> {
    let inst = &ai.inst;
    let err = |what: &str| PassError::Unsupported {
        function: String::new(),
        what: what.into(),
    };
    // Only full-register results can be compared through 64-bit lanes:
    // W64 writes replace the register and W32 writes zero-extend, so the
    // duplicate and original agree on all 64 bits when fault-free.
    let dest = match inst.dest_gpr() {
        Some(d) if matches!(d.width, Width::W32 | Width::W64) => d,
        _ => return Ok(None),
    };
    if matches!(inst, Inst::Idiv { .. } | Inst::Pop { .. }) {
        return Ok(None);
    }
    if dest.gpr == scratch {
        return Err(err("destination aliases the scratch register"));
    }
    match inst {
        Inst::Cqo { w } => {
            let (view, shift) = match w {
                Width::W64 => (Reg::q(scratch), 63u8),
                _ => (Reg::l(scratch), 31u8),
            };
            let rax_view = Reg::gpr(Gpr::Rax, view.width);
            out.push(dup(
                tag,
                Inst::Mov {
                    w: view.width,
                    src: Operand::Reg(rax_view),
                    dst: Operand::Reg(view),
                },
            ));
            out.push(dup(
                tag,
                Inst::Shift {
                    op: ferrum_asm::inst::ShiftOp::Sar,
                    w: view.width,
                    amount: ferrum_asm::inst::ShiftAmount::Imm(shift),
                    dst: Operand::Reg(view),
                },
            ));
            out.push(ai.clone());
            Ok(Some((scratch, Gpr::Rdx)))
        }
        _ if is_rmw(inst) => {
            let replay = with_dest_gpr(inst, scratch)
                .ok_or_else(|| err("rmw shape without register destination"))?;
            out.push(dup(
                tag,
                Inst::Mov {
                    w: Width::W64,
                    src: Operand::Reg(Reg::q(dest.gpr)),
                    dst: Operand::Reg(Reg::q(scratch)),
                },
            ));
            out.push(dup(tag, replay));
            out.push(ai.clone());
            Ok(Some((scratch, dest.gpr)))
        }
        _ => {
            if inst.gprs_read().contains(&scratch) {
                return Err(err("instruction aliases the scratch register"));
            }
            let dup_inst = match with_dest_gpr(inst, scratch) {
                Some(d) => d,
                None => return Ok(None),
            };
            out.push(dup(tag, dup_inst));
            out.push(ai.clone());
            Ok(Some((scratch, dest.gpr)))
        }
    }
}

/// Emits the scalar protection of one GENERAL instruction.
///
/// `ai` must be an injectable GPR-destination instruction that is not a
/// `cmp`/`test` (those use deferred detection) and not already
/// protection code.  `scratch`/`scratch2` are spare registers the
/// emitted code may clobber.
///
/// # Errors
///
/// [`PassError::Unsupported`] when the instruction shape cannot be
/// duplicated (e.g. an `idiv` whose divisor lives in `%rax`/`%rdx`).
pub fn protect_general(
    ai: &AsmInst,
    scratch: Gpr,
    scratch2: Gpr,
    tag: TechniqueTag,
    out: &mut Vec<AsmInst>,
) -> Result<(), PassError> {
    let inst = &ai.inst;
    let err = |what: &str| PassError::Unsupported {
        function: String::new(),
        what: what.into(),
    };
    match inst {
        Inst::Idiv { w, src } => {
            // Double execution (see module docs).
            for g in src.as_reg().map(|r| vec![r.gpr]).unwrap_or_else(|| {
                src.as_mem()
                    .map(|m| m.regs_read().collect())
                    .unwrap_or_default()
            }) {
                if g == Gpr::Rax || g == Gpr::Rdx || g == scratch || g == scratch2 {
                    return Err(err("idiv divisor aliases rax/rdx/scratch"));
                }
            }
            let q = |g| Operand::Reg(Reg::q(g));
            out.push(dup(
                tag,
                Inst::Mov {
                    w: Width::W64,
                    src: q(Gpr::Rax),
                    dst: q(scratch),
                },
            ));
            out.push(dup(tag, Inst::Push { src: q(Gpr::Rdx) }));
            out.push(ai.clone()); // original idiv
            out.push(dup(
                tag,
                Inst::Mov {
                    w: Width::W64,
                    src: q(Gpr::Rax),
                    dst: q(scratch2),
                },
            ));
            out.push(dup(tag, Inst::Push { src: q(Gpr::Rdx) }));
            out.push(dup(
                tag,
                Inst::Mov {
                    w: Width::W64,
                    src: q(scratch),
                    dst: q(Gpr::Rax),
                },
            ));
            out.push(dup(
                tag,
                Inst::Mov {
                    w: Width::W64,
                    src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, 8)),
                    dst: q(Gpr::Rdx),
                },
            ));
            out.push(dup(
                tag,
                Inst::Idiv {
                    w: *w,
                    src: src.clone(),
                },
            )); // replay
            cmp_check(tag, Width::W64, scratch2, Gpr::Rax, out);
            out.push(dup(tag, Inst::Pop { dst: q(scratch) }));
            cmp_check(tag, Width::W64, scratch, Gpr::Rdx, out);
            out.push(dup(
                tag,
                Inst::Alu {
                    op: AluOp::Add,
                    w: Width::W64,
                    src: Operand::Imm(8),
                    dst: q(Gpr::Rsp),
                },
            ));
            Ok(())
        }
        Inst::Cqo { w } => {
            // Replay the sign extension manually into the spare.
            let (view, shift) = match w {
                Width::W64 => (Reg::q(scratch), 63u8),
                _ => (Reg::l(scratch), 31u8),
            };
            let rax_view = match w {
                Width::W64 => Reg::q(Gpr::Rax),
                _ => Reg::l(Gpr::Rax),
            };
            out.push(dup(
                tag,
                Inst::Mov {
                    w: view.width,
                    src: Operand::Reg(rax_view),
                    dst: Operand::Reg(view),
                },
            ));
            out.push(dup(
                tag,
                Inst::Shift {
                    op: ferrum_asm::inst::ShiftOp::Sar,
                    w: view.width,
                    amount: ferrum_asm::inst::ShiftAmount::Imm(shift),
                    dst: Operand::Reg(view),
                },
            ));
            out.push(ai.clone());
            xor_check(tag, view.width, Gpr::Rdx, scratch, out);
            Ok(())
        }
        Inst::Pop {
            dst: Operand::Reg(r),
        } => {
            // Red-zone check: the popped word is still addressable just
            // below the (already bumped) stack pointer.
            out.push(ai.clone());
            out.push(prot(
                tag,
                Mechanism::Check,
                Inst::Cmp {
                    w: Width::W64,
                    src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
                    dst: Operand::Reg(Reg::q(r.gpr)),
                },
            ));
            out.push(jne_exit(tag));
            Ok(())
        }
        _ if is_rmw(inst) => {
            let dest = inst.dest_gpr().expect("rmw has gpr dest");
            if dest.gpr == scratch {
                return Err(err("destination aliases the scratch register"));
            }
            let replay = with_dest_gpr(inst, scratch)
                .ok_or_else(|| err("rmw shape without register destination"))?;
            out.push(dup(
                tag,
                Inst::Mov {
                    w: Width::W64,
                    src: Operand::Reg(Reg::q(dest.gpr)),
                    dst: Operand::Reg(Reg::q(scratch)),
                },
            ));
            out.push(dup(tag, replay));
            out.push(ai.clone());
            xor_check(tag, dest.width, dest.gpr, scratch, out);
            Ok(())
        }
        _ => {
            // Duplicate-first (Fig. 4).
            let dest = inst
                .dest_gpr()
                .ok_or_else(|| err("no register destination to protect"))?;
            if dest.gpr == scratch || inst.gprs_read().contains(&scratch) {
                return Err(err("instruction aliases the scratch register"));
            }
            let dup_inst = with_dest_gpr(inst, scratch)
                .ok_or_else(|| err("shape without replaceable destination"))?;
            out.push(dup(tag, dup_inst));
            out.push(ai.clone());
            xor_check(tag, dest.width, dest.gpr, scratch, out);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_asm::printer::print_inst;

    fn texts(out: &[AsmInst]) -> Vec<String> {
        out.iter().map(|ai| print_inst(&ai.inst)).collect()
    }

    #[test]
    fn fig4_shape_for_movslq() {
        // The paper's Fig. 4: movslq %ecx, %r10 / movslq %ecx, %rcx /
        // xorq %rcx, %r10 / jne exit_function — with the duplicate first.
        let orig = AsmInst::synthetic(Inst::Movsx {
            src_w: Width::W32,
            dst_w: Width::W64,
            src: Operand::Reg(Reg::l(Gpr::Rcx)),
            dst: Reg::q(Gpr::Rcx),
        });
        let mut out = Vec::new();
        protect_general(&orig, Gpr::R10, Gpr::R11, TechniqueTag::Ferrum, &mut out).unwrap();
        assert_eq!(
            texts(&out),
            vec![
                "movslq %ecx, %r10",
                "movslq %ecx, %rcx",
                "xorq %rcx, %r10",
                "jne exit_function",
            ]
        );
    }

    #[test]
    fn rmw_uses_pre_copy_replay() {
        let orig = AsmInst::synthetic(Inst::Alu {
            op: AluOp::Add,
            w: Width::W32,
            src: Operand::Reg(Reg::l(Gpr::Rcx)),
            dst: Operand::Reg(Reg::l(Gpr::Rax)),
        });
        let mut out = Vec::new();
        protect_general(
            &orig,
            Gpr::R10,
            Gpr::R11,
            TechniqueTag::HybridAsmEddi,
            &mut out,
        )
        .unwrap();
        assert_eq!(
            texts(&out),
            vec![
                "movq %rax, %r10",
                "addl %ecx, %r10d",
                "addl %ecx, %eax",
                "xorl %eax, %r10d",
                "jne exit_function",
            ]
        );
    }

    #[test]
    fn load_into_own_address_register_is_safe() {
        // movq (%rax), %rax — the duplicate must read (%rax) first.
        let orig = AsmInst::synthetic(Inst::Mov {
            w: Width::W64,
            src: Operand::Mem(MemRef::base_disp(Gpr::Rax, 0)),
            dst: Operand::Reg(Reg::q(Gpr::Rax)),
        });
        let mut out = Vec::new();
        protect_general(&orig, Gpr::R10, Gpr::R11, TechniqueTag::Ferrum, &mut out).unwrap();
        assert_eq!(
            texts(&out),
            vec![
                "movq (%rax), %r10",
                "movq (%rax), %rax",
                "xorq %rax, %r10",
                "jne exit_function",
            ]
        );
    }

    #[test]
    fn idiv_double_execution_shape() {
        let orig = AsmInst::synthetic(Inst::Idiv {
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rcx)),
        });
        let mut out = Vec::new();
        protect_general(&orig, Gpr::R10, Gpr::R11, TechniqueTag::Ferrum, &mut out).unwrap();
        let t = texts(&out);
        assert_eq!(t[0], "movq %rax, %r10");
        assert_eq!(t[1], "pushq %rdx");
        assert_eq!(t[2], "idivq %rcx");
        assert!(t.contains(&"idivq %rcx".to_owned()));
        assert_eq!(t.iter().filter(|s| s.starts_with("idiv")).count(), 2);
        assert_eq!(t.iter().filter(|s| *s == "jne exit_function").count(), 2);
        assert_eq!(t.last().unwrap(), "addq $8, %rsp");
    }

    #[test]
    fn idiv_divisor_aliasing_rejected() {
        let orig = AsmInst::synthetic(Inst::Idiv {
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rdx)),
        });
        let mut out = Vec::new();
        assert!(matches!(
            protect_general(&orig, Gpr::R10, Gpr::R11, TechniqueTag::Ferrum, &mut out),
            Err(PassError::Unsupported { .. })
        ));
    }

    #[test]
    fn cqo_replay() {
        let orig = AsmInst::synthetic(Inst::Cqo { w: Width::W64 });
        let mut out = Vec::new();
        protect_general(&orig, Gpr::R10, Gpr::R11, TechniqueTag::Ferrum, &mut out).unwrap();
        assert_eq!(
            texts(&out),
            vec![
                "movq %rax, %r10",
                "sarq $63, %r10",
                "cqto",
                "xorq %rdx, %r10",
                "jne exit_function",
            ]
        );
    }

    #[test]
    fn pop_uses_red_zone_compare() {
        let orig = AsmInst::synthetic(Inst::Pop {
            dst: Operand::Reg(Reg::q(Gpr::R13)),
        });
        let mut out = Vec::new();
        protect_general(&orig, Gpr::R10, Gpr::R11, TechniqueTag::Ferrum, &mut out).unwrap();
        assert_eq!(
            texts(&out),
            vec!["popq %r13", "cmpq -8(%rsp), %r13", "jne exit_function"]
        );
    }

    #[test]
    fn setcc_duplicate_reads_same_flags() {
        let orig = AsmInst::synthetic(Inst::Setcc {
            cc: Cc::L,
            dst: Operand::Reg(Reg::b(Gpr::Rax)),
        });
        let mut out = Vec::new();
        protect_general(&orig, Gpr::R10, Gpr::R11, TechniqueTag::Ferrum, &mut out).unwrap();
        assert_eq!(
            texts(&out),
            vec![
                "setl %r10b",
                "setl %al",
                "xorb %al, %r10b",
                "jne exit_function"
            ]
        );
    }

    #[test]
    fn scratch_alias_rejected() {
        let orig = AsmInst::synthetic(Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::R10)),
            dst: Operand::Reg(Reg::q(Gpr::Rax)),
        });
        let mut out = Vec::new();
        assert!(
            protect_general(&orig, Gpr::R10, Gpr::R11, TechniqueTag::Ferrum, &mut out).is_err()
        );
    }

    #[test]
    fn all_inserted_instructions_are_protection_tagged() {
        let orig = AsmInst::synthetic(Inst::Lea {
            mem: MemRef::base_disp(Gpr::Rbp, -16),
            dst: Reg::q(Gpr::Rax),
        });
        let mut out = Vec::new();
        protect_general(&orig, Gpr::R10, Gpr::R11, TechniqueTag::Ferrum, &mut out).unwrap();
        let orig_count = out
            .iter()
            .filter(|a| a.prov == Provenance::Synthetic)
            .count();
        assert_eq!(orig_count, 1, "exactly the original keeps its provenance");
        assert!(out
            .iter()
            .filter(|a| a.prov != Provenance::Synthetic)
            .all(|a| matches!(a.prov, Provenance::Protection(TechniqueTag::Ferrum, _))));
        // The duplicate carries Dup, the xor + jne carry Check.
        let mechs: Vec<_> = out.iter().filter_map(|a| a.prov.mechanism()).collect();
        assert_eq!(
            mechs,
            vec![Mechanism::Dup, Mechanism::Check, Mechanism::Check]
        );
    }
}
