//! FERRUM — SIMD-boosted assembly-level EDDI (paper §III).
//!
//! For each function the pass first performs static code analysis
//! (§III-B1): a register-usage scan finds spare general-purpose and XMM
//! registers, and every instruction is annotated as SIMD-ENABLED,
//! GENERAL, or a comparison.  Protection then proceeds block by block:
//!
//! * **SIMD-ENABLED** instructions accumulate into a batch (Fig. 6): the
//!   duplicate executes *first* as a single move into a spare XMM
//!   register, the original result is captured into the paired XMM
//!   register, and once four results (or a flush point — any flags
//!   writer, control transfer, or block end) arrive, two `vinserti128`
//!   widen the accumulators into YMM registers and one `vpxor` +
//!   `vptest` + `jne exit_function` checks all four at once.  Batches of
//!   one or two entries are checked with the 128-bit forms.
//! * **GENERAL** instructions use the scalar idioms of
//!   [`crate::scalar`] (Fig. 4).
//! * **Comparisons** use *deferred detection* (Fig. 5): a `setcc` pair
//!   captures the original and duplicated flag results into the two
//!   reserved comparison registers; the pair is compared (with a
//!   non-flag-destroying `cmpb`) on the branch fall-through and at the
//!   start of every branch target — never between the comparison and
//!   its consumer, where a check would destroy the very flags being
//!   protected.
//! * When spare registers run short (or
//!   [`FerrumConfig::force_requisition`] is set), the pass switches to
//!   **stack-level data redundancy** (Fig. 7): per block, three
//!   registers unused inside that block are pushed on entry and popped
//!   (with a red-zone verification of the popped value) on every exit;
//!   branch-target pair checks move into per-edge stub blocks so the
//!   requisitioned registers are restored on both paths.
//!
//! The backend's peephole pass runs first as the paper's "other
//! compiler-level transformations".

use std::collections::{BTreeMap, BTreeSet};

use ferrum_asm::analysis::lint::ProtectionManifest;
use ferrum_asm::flags::Cc;
use ferrum_asm::inst::{DestClass, Inst};
use ferrum_asm::operand::{MemRef, Operand};
use ferrum_asm::program::{AsmBlock, AsmFunction, AsmInst, AsmProgram, Label};
use ferrum_asm::provenance::{Mechanism, Provenance, TechniqueTag};
use ferrum_asm::reg::{Gpr, Reg, Width, Xmm, Ymm, Zmm};
use ferrum_backend::peephole::{self, PeepholeStats};
use ferrum_mir::module::Module;

use crate::annotate::{annotate, flags_consumer, flags_live_at, Annotation};
use crate::scalar::protect_general;
use crate::PassError;

const TAG: TechniqueTag = TechniqueTag::Ferrum;

/// Reports the protected program's static per-mechanism instruction
/// counts through `ferrum-trace` (inert without a sink installed).
fn emit_static_mechanism_counters(p: &AsmProgram) {
    if !ferrum_trace::enabled() {
        return;
    }
    // Counter names are static, so enumerate rather than format.
    fn name(m: Mechanism) -> &'static str {
        match m {
            Mechanism::Dup => "ferrum.static.dup",
            Mechanism::Check => "ferrum.static.check",
            Mechanism::BatchCapture => "ferrum.static.batch-capture",
            Mechanism::BatchFlush => "ferrum.static.batch-flush",
            Mechanism::FlagDup => "ferrum.static.flag-dup",
            Mechanism::FlagRecheck => "ferrum.static.flag-recheck",
            Mechanism::Requisition => "ferrum.static.requisition",
        }
    }
    let mut counts = [0u64; Mechanism::ALL.len()];
    for f in &p.functions {
        for a in f.insts() {
            if let Some(m) = a.prov.mechanism() {
                counts[m as usize] += 1;
            }
        }
    }
    for m in Mechanism::ALL {
        ferrum_trace::counter(name(m), counts[m as usize]);
    }
}

/// Configuration knobs (all enabled by default; individual mechanisms
/// can be switched off for the ablation benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FerrumConfig {
    /// Batch SIMD-ENABLED duplicates in XMM/YMM registers (Fig. 6).
    pub simd: bool,
    /// Protect `cmp`/`test` with deferred flag detection (Fig. 5).
    /// Disabling this leaves flags faults uncovered (coverage ablation).
    pub deferred_flags: bool,
    /// Run the backend peephole pass first ("compiler-level
    /// transformations").
    pub peephole: bool,
    /// Pretend no function-wide spare GPRs exist, forcing the
    /// stack-requisition path of Fig. 7 everywhere.
    pub force_requisition: bool,
    /// Percentage of protectable sites actually protected (default
    /// 100).  Values below 100 give *selective* protection in the
    /// spirit of the paper's related work (SDCTune \[9\], selective
    /// duplication \[19\]): sites are chosen by deterministic striping,
    /// trading coverage for overhead.  Applies to the normal protection
    /// path; the stack-requisition path always protects fully.  The
    /// `repro_selective` harness sweeps this.
    pub selective_percent: u8,
    /// Use AVX-512 ZMM accumulators: batches of **eight** results
    /// checked by one `vpxorq`/`vptestq` (paper §III-B3: "it is also
    /// viable to leverage ZMM registers in our design, ... only part of
    /// high-performance processors from Intel supports ZMM").  Requires
    /// eight spare XMM registers; off by default to model the common
    /// AVX2-only machine.
    pub zmm: bool,
}

impl Default for FerrumConfig {
    fn default() -> FerrumConfig {
        FerrumConfig {
            simd: true,
            deferred_flags: true,
            peephole: true,
            force_requisition: false,
            selective_percent: 100,
            zmm: false,
        }
    }
}

/// What the pass did (reported by the benches and the execution-time
/// experiment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FerrumStats {
    /// Instructions protected through SIMD batches.
    pub simd_protected: usize,
    /// Instructions protected with scalar duplication and an immediate
    /// scalar check.
    pub general_protected: usize,
    /// GENERAL instructions whose scalar duplicates were checked through
    /// the SIMD batch instead of an immediate `xor`+`jne`.
    pub general_batched: usize,
    /// Comparisons protected with deferred detection.
    pub compares_protected: usize,
    /// Blocks that needed stack-level requisition.
    pub requisitioned_blocks: usize,
    /// What the peephole prepass removed.
    pub peephole: PeepholeStats,
}

/// The FERRUM pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ferrum {
    cfg: FerrumConfig,
}

impl Ferrum {
    /// FERRUM with everything enabled.
    pub fn new() -> Ferrum {
        Ferrum {
            cfg: FerrumConfig::default(),
        }
    }

    /// FERRUM with explicit configuration.
    pub fn with_config(cfg: FerrumConfig) -> Ferrum {
        Ferrum { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> FerrumConfig {
        self.cfg
    }

    /// Protects an assembly program.
    ///
    /// # Errors
    ///
    /// [`PassError`] on unsupported input shapes (pre-existing SIMD or
    /// protection code, non-adjacent flag consumers) or register
    /// exhaustion.
    pub fn protect(&self, p: &AsmProgram) -> Result<AsmProgram, PassError> {
        self.protect_with_stats(p).map(|(p, _)| p)
    }

    /// Protects and reports statistics.
    ///
    /// # Errors
    ///
    /// See [`Ferrum::protect`].
    pub fn protect_with_stats(
        &self,
        p: &AsmProgram,
    ) -> Result<(AsmProgram, FerrumStats), PassError> {
        let _span = ferrum_trace::span("eddi.ferrum.protect");
        let mut out = p.clone();
        let mut stats = FerrumStats::default();
        if self.cfg.peephole {
            stats.peephole = peephole::run(&mut out);
        }
        for f in &mut out.functions {
            protect_function(f, self.cfg, &mut stats)?;
        }
        emit_static_mechanism_counters(&out);
        Ok((out, stats))
    }

    /// Convenience: compile a MIR module and protect it.
    ///
    /// # Errors
    ///
    /// Backend failures surface as [`PassError::Invalid`].
    pub fn protect_module(&self, m: &Module) -> Result<AsmProgram, PassError> {
        self.protect_module_opt(m, ferrum_backend::OptLevel::O0)
    }

    /// [`Ferrum::protect_module`] compiling at the given optimization
    /// level.  FERRUM protects the *optimized* output, so its coverage
    /// is independent of the level.
    ///
    /// # Errors
    ///
    /// Backend failures surface as [`PassError::Invalid`].
    pub fn protect_module_opt(
        &self,
        m: &Module,
        opt: ferrum_backend::OptLevel,
    ) -> Result<AsmProgram, PassError> {
        let asm =
            ferrum_backend::compile_opt(m, opt).map_err(|e| PassError::Invalid(e.to_string()))?;
        self.protect(&asm)
    }

    /// Protects and additionally emits a per-function
    /// [`ProtectionManifest`] — the checker metadata the static lint
    /// (`ferrum_asm::analysis::lint`) verifies the output against:
    /// which GPRs the pass reserved function-wide (empty when the
    /// function fell back to stack requisition) and which XMM registers
    /// serve as batch accumulators.
    ///
    /// # Errors
    ///
    /// See [`Ferrum::protect`].
    pub fn protect_with_manifest(
        &self,
        p: &AsmProgram,
    ) -> Result<(AsmProgram, BTreeMap<String, ProtectionManifest>), PassError> {
        let mut out = p.clone();
        let mut stats = FerrumStats::default();
        if self.cfg.peephole {
            stats.peephole = peephole::run(&mut out);
        }
        let mut manifests = BTreeMap::new();
        for f in &mut out.functions {
            // `pick_regs` is deterministic on the (peepholed) input, so
            // the manifest records exactly what `protect_function` uses.
            let (gprs, xmm) = pick_regs(f, self.cfg);
            manifests.insert(
                f.name.clone(),
                ProtectionManifest {
                    reserved_gprs: gprs.map(|g| g.to_vec()).unwrap_or_default(),
                    accumulators: xmm.iter().map(|x| x.0).collect(),
                },
            );
            protect_function(f, self.cfg, &mut stats)?;
        }
        Ok((out, manifests))
    }
}

/// Spare registers FERRUM reserves in normal (non-requisition) mode:
/// one scalar scratch plus the two comparison-pair registers (§III-B1;
/// our engineering uses three dedicated GPRs — see DESIGN.md).
const NEEDED_GPRS: usize = 3;
/// XMM registers needed for SIMD batching (§III-B1: "4 spare XMM").
const NEEDED_XMM: usize = 4;
/// XMM registers needed for ZMM-mode batching (eight accumulators).
const NEEDED_XMM_ZMM: usize = 8;

struct Regs {
    scratch: Gpr,
    pair: (Gpr, Gpr),
    /// Batch accumulators: empty (SIMD off / too few spares), four
    /// (YMM mode), or eight (ZMM mode).
    xmm: Vec<Xmm>,
}

/// The SIMD duplication batch (Fig. 6, and its §III-B3 ZMM variant).
struct Batch {
    /// Accumulators, alternating duplicate/original; length 0, 4, or 8.
    regs: Vec<Xmm>,
    count: usize,
}

impl Batch {
    fn new(regs: Vec<Xmm>) -> Batch {
        Batch { regs, count: 0 }
    }

    fn enabled(&self) -> bool {
        !self.regs.is_empty()
    }

    fn capacity(&self) -> usize {
        self.regs.len()
    }

    /// Adds one SIMD-ENABLED `mov` to the batch: duplicate first, then
    /// the original, then capture the original's result.
    fn add(&mut self, ai: &AsmInst, out: &mut Vec<AsmInst>) {
        let (src, dst) = match &ai.inst {
            Inst::Mov {
                w: Width::W64,
                src,
                dst: Operand::Reg(r),
            } => (src.clone(), r.gpr),
            other => unreachable!("not SIMD-enabled: {other:?}"),
        };
        let pair = self.count / 2;
        let lane = (self.count % 2) as u8;
        let dup_x = self.regs[pair * 2];
        let orig_x = self.regs[pair * 2 + 1];
        let dup = if lane == 0 {
            Inst::MovqToXmm {
                src: src.clone(),
                dst: dup_x,
            }
        } else {
            Inst::Pinsrq {
                lane,
                src,
                dst: dup_x,
            }
        };
        out.push(AsmInst::new(dup, Provenance::Protection(TAG, Mechanism::Dup)));
        out.push(ai.clone());
        let cap_src = Operand::Reg(Reg::q(dst));
        let cap = if lane == 0 {
            Inst::MovqToXmm {
                src: cap_src,
                dst: orig_x,
            }
        } else {
            Inst::Pinsrq {
                lane,
                src: cap_src,
                dst: orig_x,
            }
        };
        out.push(AsmInst::new(cap, Provenance::Protection(TAG, Mechanism::BatchCapture)));
        self.count += 1;
        if self.count == self.capacity() {
            self.flush(out);
        }
    }

    /// Captures a scalar duplicate/original register pair into the batch
    /// (the GENERAL-instruction variant of Fig. 6: the duplication is
    /// scalar, the comparison is batched).
    fn add_pair(&mut self, dup: Gpr, orig: Gpr, out: &mut Vec<AsmInst>) {
        let pair = self.count / 2;
        let lane = (self.count % 2) as u8;
        let dup_x = self.regs[pair * 2];
        let orig_x = self.regs[pair * 2 + 1];
        for (g, x) in [(dup, dup_x), (orig, orig_x)] {
            let src = Operand::Reg(Reg::q(g));
            let cap = if lane == 0 {
                Inst::MovqToXmm { src, dst: x }
            } else {
                Inst::Pinsrq { lane, src, dst: x }
            };
            out.push(AsmInst::new(cap, Provenance::Protection(TAG, Mechanism::BatchCapture)));
        }
        self.count += 1;
        if self.count == self.capacity() {
            self.flush(out);
        }
    }

    /// Emits the batched check (Fig. 6 / §III-B3) and resets the batch:
    /// 128-bit forms for one or two entries, 256-bit `vinserti128` +
    /// `vpxor`/`vptest` for up to four, and in ZMM mode 512-bit
    /// `vinserti64x4` + `vpxorq`/`vptestq` for up to eight.
    fn flush(&mut self, out: &mut Vec<AsmInst>) {
        if !self.enabled() {
            return;
        }
        let regs = &self.regs;
        let prot = |i: Inst| AsmInst::new(i, Provenance::Protection(TAG, Mechanism::BatchFlush));
        match self.count {
            0 => return,
            1 | 2 => {
                out.push(prot(Inst::Vpxor128 {
                    a: regs[1],
                    b: regs[0],
                    dst: regs[0],
                }));
                out.push(prot(Inst::Vptest128 {
                    a: regs[0],
                    b: regs[0],
                }));
            }
            3 | 4 => {
                let ydup = Ymm::new(regs[0].0);
                let yorig = Ymm::new(regs[1].0);
                out.push(prot(Inst::Vinserti128 {
                    lane: 1,
                    src: regs[2],
                    src2: ydup,
                    dst: ydup,
                }));
                out.push(prot(Inst::Vinserti128 {
                    lane: 1,
                    src: regs[3],
                    src2: yorig,
                    dst: yorig,
                }));
                out.push(prot(Inst::Vpxor {
                    a: yorig,
                    b: ydup,
                    dst: ydup,
                }));
                out.push(prot(Inst::Vptest { a: ydup, b: ydup }));
            }
            _ => {
                // ZMM mode.  Widen each side's four accumulators into a
                // ZMM register.  Accumulators beyond `count` still hold
                // an equal (duplicate, original) pair from an earlier
                // checked batch (or their initial zeroes), so comparing
                // them again is harmless.
                let ydup = Ymm::new(regs[0].0);
                let yorig = Ymm::new(regs[1].0);
                let ydup_hi = Ymm::new(regs[4].0);
                let yorig_hi = Ymm::new(regs[5].0);
                let zdup = Zmm::new(regs[0].0);
                let zorig = Zmm::new(regs[1].0);
                out.push(prot(Inst::Vinserti128 {
                    lane: 1,
                    src: regs[2],
                    src2: ydup,
                    dst: ydup,
                }));
                out.push(prot(Inst::Vinserti128 {
                    lane: 1,
                    src: regs[3],
                    src2: yorig,
                    dst: yorig,
                }));
                out.push(prot(Inst::Vinserti128 {
                    lane: 1,
                    src: regs[6],
                    src2: ydup_hi,
                    dst: ydup_hi,
                }));
                out.push(prot(Inst::Vinserti128 {
                    lane: 1,
                    src: regs[7],
                    src2: yorig_hi,
                    dst: yorig_hi,
                }));
                out.push(prot(Inst::Vinserti64x4 {
                    lane: 1,
                    src: ydup_hi,
                    src2: zdup,
                    dst: zdup,
                }));
                out.push(prot(Inst::Vinserti64x4 {
                    lane: 1,
                    src: yorig_hi,
                    src2: zorig,
                    dst: zorig,
                }));
                out.push(prot(Inst::Vpxor512 {
                    a: zorig,
                    b: zdup,
                    dst: zdup,
                }));
                out.push(prot(Inst::Vptest512 { a: zdup, b: zdup }));
            }
        }
        out.push(prot(Inst::Jcc {
            cc: Cc::Ne,
            target: ferrum_asm::EXIT_FUNCTION.into(),
        }));
        self.count = 0;
    }
}

fn prot(m: Mechanism, i: Inst) -> AsmInst {
    AsmInst::new(i, Provenance::Protection(TAG, m))
}

fn pair_check(pair: (Gpr, Gpr), out: &mut Vec<AsmInst>) {
    out.push(prot(
        Mechanism::FlagRecheck,
        Inst::Cmp {
            w: Width::W8,
            src: Operand::Reg(Reg::b(pair.0)),
            dst: Operand::Reg(Reg::b(pair.1)),
        },
    ));
    out.push(prot(
        Mechanism::FlagRecheck,
        Inst::Jcc {
            cc: Cc::Ne,
            target: ferrum_asm::EXIT_FUNCTION.into(),
        },
    ));
}

fn red_zone_pop(g: Gpr, out: &mut Vec<AsmInst>) {
    out.push(prot(
        Mechanism::Requisition,
        Inst::Pop {
            dst: Operand::Reg(Reg::q(g)),
        },
    ));
    out.push(prot(
        Mechanism::Requisition,
        Inst::Cmp {
            w: Width::W64,
            src: Operand::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
            dst: Operand::Reg(Reg::q(g)),
        },
    ));
    out.push(prot(
        Mechanism::Requisition,
        Inst::Jcc {
            cc: Cc::Ne,
            target: ferrum_asm::EXIT_FUNCTION.into(),
        },
    ));
}

fn pick_regs(f: &AsmFunction, cfg: FerrumConfig) -> (Option<[Gpr; 3]>, Vec<Xmm>) {
    let rep = ferrum_asm::analysis::regscan::SpareReport::scan(f);
    let spare_gprs = rep.function_spare_gprs();
    let spare_simd = rep.function.spare_simd();
    let gprs = if !cfg.force_requisition && spare_gprs.len() >= NEEDED_GPRS {
        // Prefer the registers the paper's listings use.
        let preferred = [Gpr::R10, Gpr::R11, Gpr::R12];
        if preferred.iter().all(|g| spare_gprs.contains(g)) {
            Some(preferred)
        } else {
            Some([spare_gprs[0], spare_gprs[1], spare_gprs[2]])
        }
    } else {
        None
    };
    let want = if cfg.zmm { NEEDED_XMM_ZMM } else { NEEDED_XMM };
    let xmm = if cfg.simd && spare_simd.len() >= want {
        spare_simd[..want].iter().map(|&i| Xmm::new(i)).collect()
    } else if cfg.simd && spare_simd.len() >= NEEDED_XMM {
        // Not enough for ZMM mode; fall back to the YMM batch.
        spare_simd[..NEEDED_XMM]
            .iter()
            .map(|&i| Xmm::new(i))
            .collect()
    } else {
        Vec::new()
    };
    (gprs, xmm)
}

fn check_input(f: &AsmFunction) -> Result<(), PassError> {
    for ai in f.insts() {
        if ai.prov.is_protection() {
            return Err(PassError::Unsupported {
                function: f.name.clone(),
                what: "input already contains protection code".into(),
            });
        }
        if matches!(ai.inst.dest_class(), DestClass::Xmm(_) | DestClass::Ymm(_)) {
            return Err(PassError::Unsupported {
                function: f.name.clone(),
                what: "SIMD instruction in input program".into(),
            });
        }
    }
    Ok(())
}

fn protect_function(
    f: &mut AsmFunction,
    cfg: FerrumConfig,
    stats: &mut FerrumStats,
) -> Result<(), PassError> {
    check_input(f)?;
    let (gprs, xmm) = pick_regs(f, cfg);
    match gprs {
        Some([scratch, p0, p1]) => {
            let regs = Regs {
                scratch,
                pair: (p0, p1),
                xmm,
            };
            protect_normal(f, cfg, &regs, stats)
        }
        None => protect_requisition(f, cfg, xmm, stats),
    }
}

/// Normal mode: dedicated function-wide spare registers.
fn protect_normal(
    f: &mut AsmFunction,
    cfg: FerrumConfig,
    regs: &Regs,
    stats: &mut FerrumStats,
) -> Result<(), PassError> {
    let mut jcc_targets: BTreeSet<Label> = BTreeSet::new();
    let mut site_k = 0u64;
    for b in &mut f.blocks {
        let orig_block = b.clone();
        let mut out = Vec::with_capacity(orig_block.insts.len() * 3);
        let mut batch = Batch::new(regs.xmm.clone());
        let mut i = 0usize;
        while i < orig_block.insts.len() {
            let ai = &orig_block.insts[i];
            if ai.inst.writes_flags() || ai.inst.is_control() {
                batch.flush(&mut out);
            }
            let selected = match annotate(&ai.inst) {
                Annotation::NotASite => true,
                _ => select_site(&mut site_k, cfg.selective_percent),
            };
            if !selected {
                out.push(ai.clone());
                i += 1;
                continue;
            }
            match annotate(&ai.inst) {
                Annotation::NotASite => {
                    out.push(ai.clone());
                    i += 1;
                }
                Annotation::Compare if cfg.deferred_flags => {
                    i = handle_compare(
                        &orig_block,
                        i,
                        regs,
                        &mut out,
                        &mut jcc_targets,
                        CompareMode::Deferred,
                        &f.name,
                    )?;
                    stats.compares_protected += 1;
                }
                Annotation::Compare => {
                    out.push(ai.clone());
                    i += 1;
                }
                Annotation::SimdEnabled if batch.enabled() => {
                    guard_flags(&orig_block, i, &f.name)?;
                    batch.add(ai, &mut out);
                    stats.simd_protected += 1;
                    i += 1;
                }
                Annotation::SimdEnabled | Annotation::General => {
                    guard_flags(&orig_block, i, &f.name)?;
                    protect_scalar_site(ai, regs, &mut batch, &mut out, stats)
                        .map_err(|e| name_err(e, &f.name))?;
                    i += 1;
                }
            }
        }
        batch.flush(&mut out);
        b.insts = out;
    }
    // Initialise the comparison pair so block-start checks pass before
    // the first protected comparison executes.
    let init = [
        prot(
            Mechanism::FlagDup,
            Inst::Mov {
                w: Width::W8,
                src: Operand::Imm(0),
                dst: Operand::Reg(Reg::b(regs.pair.0)),
            },
        ),
        prot(
            Mechanism::FlagDup,
            Inst::Mov {
                w: Width::W8,
                src: Operand::Imm(0),
                dst: Operand::Reg(Reg::b(regs.pair.1)),
            },
        ),
    ];
    f.blocks[0].insts.splice(0..0, init);
    // Deferred pair checks at every protected branch target (Fig. 5's
    // `.LBB7_4` check).
    for b in &mut f.blocks {
        if jcc_targets.contains(&b.label) {
            let mut check = Vec::new();
            pair_check(regs.pair, &mut check);
            b.insts.splice(0..0, check);
        }
    }
    Ok(())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompareMode {
    /// Normal mode: fall-through check inline, target checks at block
    /// starts (collected in `jcc_targets`).
    Deferred,
    /// Requisition mode: the taken edge is routed through a stub that
    /// checks and restores; only the fall-through check is inline.
    Stub(usize),
}

/// Protects the `cmp`/`test` at `orig[i]` with deferred detection.
/// Returns the index of the next unprocessed instruction.
#[allow(clippy::too_many_arguments)]
fn handle_compare(
    orig_block: &AsmBlock,
    i: usize,
    regs: &Regs,
    out: &mut Vec<AsmInst>,
    jcc_targets: &mut BTreeSet<Label>,
    mode: CompareMode,
    fname: &str,
) -> Result<usize, PassError> {
    let ai = &orig_block.insts[i];
    let Some(ci) = flags_consumer(orig_block, i) else {
        // Dead flags: a fault there can never be consumed.
        out.push(ai.clone());
        return Ok(i + 1);
    };
    if ci != i + 1 {
        return Err(PassError::Unsupported {
            function: fname.to_owned(),
            what: "non-adjacent flags consumer".into(),
        });
    }
    let consumer = &orig_block.insts[ci];
    let cc = match &consumer.inst {
        Inst::Setcc { cc, .. } | Inst::Jcc { cc, .. } => *cc,
        other => {
            return Err(PassError::Unsupported {
                function: fname.to_owned(),
                what: format!("unexpected flags consumer {other:?}"),
            })
        }
    };
    let (p0, p1) = regs.pair;
    out.push(ai.clone()); // original cmp/test
    out.push(prot(
        Mechanism::FlagDup,
        Inst::Setcc {
            cc,
            dst: Operand::Reg(Reg::b(p0)),
        },
    ));
    // Duplicate cmp/test.
    out.push(AsmInst::new(
        ai.inst.clone(),
        Provenance::Protection(TAG, Mechanism::FlagDup),
    ));
    out.push(prot(
        Mechanism::FlagDup,
        Inst::Setcc {
            cc,
            dst: Operand::Reg(Reg::b(p1)),
        },
    ));
    match &consumer.inst {
        Inst::Setcc { .. } => {
            // Protect the consumer itself, then check the pair (flags
            // are dead after a setcc in backend-shaped code).
            protect_general(consumer, regs.scratch, regs.pair.0, TAG, out)
                .map_err(|e| name_err(e, fname))?;
            pair_check(regs.pair, out);
        }
        Inst::Jcc { target, .. } => match mode {
            CompareMode::Deferred => {
                out.push(consumer.clone());
                jcc_targets.insert(target.clone());
                pair_check(regs.pair, out); // fall-through check
            }
            CompareMode::Stub(_) => {
                // The caller rewrites the target through a stub; here we
                // only emit the branch and the fall-through check.
                out.push(consumer.clone());
                pair_check(regs.pair, out);
            }
        },
        _ => unreachable!("consumer checked above"),
    }
    Ok(ci + 1)
}

/// Protects one GENERAL (or SIMD-fallback) site: batch-checked scalar
/// duplication when the batch is available, immediate scalar check
/// otherwise.  Restores the comparison-pair invariant after the idiv
/// scheme, which borrows a pair register.
fn protect_scalar_site(
    ai: &AsmInst,
    regs: &Regs,
    batch: &mut Batch,
    out: &mut Vec<AsmInst>,
    stats: &mut FerrumStats,
) -> Result<(), PassError> {
    if batch.enabled() {
        let mut seq = Vec::new();
        if let Some((dup, orig)) =
            crate::scalar::protect_general_batched(ai, regs.scratch, TAG, &mut seq)?
        {
            out.append(&mut seq);
            batch.add_pair(dup, orig, out);
            stats.general_batched += 1;
            return Ok(());
        }
    }
    let is_idiv = matches!(ai.inst, Inst::Idiv { .. });
    protect_general(ai, regs.scratch, regs.pair.0, TAG, out)?;
    if is_idiv {
        // The divider scheme borrowed one comparison-pair register;
        // restore the pair invariant.
        out.push(prot(
            Mechanism::FlagDup,
            Inst::Mov {
                w: Width::W8,
                src: Operand::Reg(Reg::b(regs.pair.1)),
                dst: Operand::Reg(Reg::b(regs.pair.0)),
            },
        ));
    }
    stats.general_protected += 1;
    Ok(())
}

/// Deterministic striping for selective protection: site `k` is
/// protected iff the running sum of `percent` crosses a multiple of 100
/// (Bresenham-style, so any percentage spreads evenly over the stream).
fn select_site(k: &mut u64, percent: u8) -> bool {
    let p = u64::from(percent.min(100));
    let prev = *k * p / 100;
    *k += 1;
    (*k * p / 100) > prev
}

fn guard_flags(block: &AsmBlock, i: usize, fname: &str) -> Result<(), PassError> {
    if flags_live_at(block, i + 1) && !matches!(block.insts[i].inst, Inst::Setcc { .. }) {
        return Err(PassError::Unsupported {
            function: fname.to_owned(),
            what: "checker would clobber live flags".into(),
        });
    }
    Ok(())
}

fn name_err(e: PassError, fname: &str) -> PassError {
    match e {
        PassError::Unsupported { what, .. } => PassError::Unsupported {
            function: fname.to_owned(),
            what,
        },
        other => other,
    }
}

/// Requisition mode (Fig. 7): per-block stack-level data redundancy.
fn protect_requisition(
    f: &mut AsmFunction,
    cfg: FerrumConfig,
    xmm: Vec<Xmm>,
    stats: &mut FerrumStats,
) -> Result<(), PassError> {
    let rep = ferrum_asm::analysis::regscan::SpareReport::scan(f);
    let mut stubs: Vec<AsmBlock> = Vec::new();
    let mut stub_n = 0usize;
    let nblocks = f.blocks.len();
    for bi in 0..nblocks {
        let orig_block = f.blocks[bi].clone();
        let needs = orig_block
            .insts
            .iter()
            .any(|ai| ai.inst.injectable_bits().is_some());
        if !needs {
            continue;
        }
        let cands = rep.block_spare_gprs(bi);
        if cands.len() < NEEDED_GPRS {
            return Err(PassError::NoSpareRegisters {
                function: f.name.clone(),
                block: orig_block.label.clone(),
            });
        }
        let regs = Regs {
            scratch: cands[0],
            pair: (cands[1], cands[2]),
            xmm: xmm.clone(),
        };
        let req = [regs.scratch, regs.pair.0, regs.pair.1];
        stats.requisitioned_blocks += 1;

        let mut out = Vec::with_capacity(orig_block.insts.len() * 3);
        let mut batch = Batch::new(regs.xmm.clone());
        let mut i = 0usize;

        // Copy the prologue prefix (frame setup must precede our pushes).
        let is_frame_setup = |ai: &AsmInst| {
            matches!(
                ai.prov,
                Provenance::Glue(ferrum_asm::provenance::GlueKind::FrameSetup)
            )
        };
        while i < orig_block.insts.len()
            && is_frame_setup(&orig_block.insts[i])
            && !matches!(orig_block.insts[i].inst, Inst::Ret)
        {
            out.push(orig_block.insts[i].clone());
            i += 1;
        }
        for g in req {
            out.push(prot(
                Mechanism::Requisition,
                Inst::Push {
                    src: Operand::Reg(Reg::q(g)),
                },
            ));
        }
        let emit_pops = |out: &mut Vec<AsmInst>| {
            for g in req.iter().rev() {
                red_zone_pop(*g, out);
            }
        };

        let mut done_epilogue = false;
        while i < orig_block.insts.len() {
            let ai = &orig_block.insts[i];
            // Epilogue (starts at the frame-setup mov %rbp, %rsp): pop
            // our requisitions first, then copy the epilogue verbatim.
            if is_frame_setup(ai) {
                batch.flush(&mut out);
                emit_pops(&mut out);
                for rest in &orig_block.insts[i..] {
                    out.push(rest.clone());
                }
                done_epilogue = true;
                break;
            }
            if ai.inst.writes_flags() || ai.inst.is_control() {
                batch.flush(&mut out);
            }
            if matches!(ai.inst, Inst::Jmp { .. }) {
                emit_pops(&mut out);
                out.push(ai.clone());
                i += 1;
                continue;
            }
            match annotate(&ai.inst) {
                Annotation::NotASite => {
                    // A bare conditional jump (possible when deferred
                    // flag detection is disabled) must still restore the
                    // requisitioned registers on its taken edge.
                    if let Inst::Jcc { cc, target } = &ai.inst {
                        if target != ferrum_asm::EXIT_FUNCTION {
                            let stub_label = format!("{}_req_stub{}", f.name, stub_n);
                            stub_n += 1;
                            let mut sb = AsmBlock::new(stub_label.clone());
                            for g in req.iter().rev() {
                                red_zone_pop(*g, &mut sb.insts);
                            }
                            sb.insts.push(prot(
                                Mechanism::Requisition,
                                Inst::Jmp {
                                    target: target.clone(),
                                },
                            ));
                            stubs.push(sb);
                            out.push(AsmInst::new(
                                Inst::Jcc {
                                    cc: *cc,
                                    target: stub_label,
                                },
                                ai.prov,
                            ));
                            i += 1;
                            continue;
                        }
                    }
                    out.push(ai.clone());
                    i += 1;
                }
                Annotation::Compare if cfg.deferred_flags => {
                    // Peek: is the consumer a jcc?  Then route through a
                    // stub that checks the pair and restores registers.
                    let before = out.len();
                    i = handle_compare(
                        &orig_block,
                        i,
                        &regs,
                        &mut out,
                        &mut BTreeSet::new(),
                        CompareMode::Stub(stub_n),
                        &f.name,
                    )?;
                    stats.compares_protected += 1;
                    // Rewrite the just-emitted jcc (if any) to a stub.
                    #[allow(clippy::needless_range_loop)]
                    for ei in before..out.len() {
                        let needs_stub = matches!(
                            (&out[ei].inst, &out[ei].prov),
                            (Inst::Jcc { target, .. }, p)
                                if target != ferrum_asm::EXIT_FUNCTION && !p.is_protection()
                        );
                        if needs_stub {
                            if let Inst::Jcc { cc, target } = out[ei].inst.clone() {
                                let stub_label = format!("{}_req_stub{}", f.name, stub_n);
                                stub_n += 1;
                                let mut sb = AsmBlock::new(stub_label.clone());
                                pair_check(regs.pair, &mut sb.insts);
                                for g in req.iter().rev() {
                                    red_zone_pop(*g, &mut sb.insts);
                                }
                                sb.insts.push(prot(Mechanism::Requisition, Inst::Jmp { target }));
                                stubs.push(sb);
                                out[ei].inst = Inst::Jcc {
                                    cc,
                                    target: stub_label,
                                };
                            }
                        }
                    }
                }
                Annotation::Compare => {
                    out.push(ai.clone());
                    i += 1;
                }
                Annotation::SimdEnabled if batch.enabled() => {
                    guard_flags(&orig_block, i, &f.name)?;
                    batch.add(ai, &mut out);
                    stats.simd_protected += 1;
                    i += 1;
                }
                Annotation::SimdEnabled | Annotation::General => {
                    guard_flags(&orig_block, i, &f.name)?;
                    protect_scalar_site(ai, &regs, &mut batch, &mut out, stats)
                        .map_err(|e| name_err(e, &f.name))?;
                    i += 1;
                }
            }
        }
        if !done_epilogue {
            batch.flush(&mut out);
            // Fall-through or jmp-terminated block already handled jmp;
            // if the block ends without any exit, restore here.
            let ends_with_exit = matches!(
                out.last().map(|a| &a.inst),
                Some(Inst::Jmp { .. }) | Some(Inst::Ret)
            );
            if !ends_with_exit {
                emit_pops(&mut out);
            }
        }
        f.blocks[bi].insts = out;
    }
    f.blocks.extend(stubs);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_cpu::outcome::StopReason;
    use ferrum_cpu::run::Cpu;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::inst::ICmpPred;
    use ferrum_mir::module::{Global, Module};
    use ferrum_mir::types::Ty;

    pub(super) fn kernel_module() -> Module {
        // Branchy weighted sum, exercising loads, ALU, icmp, branches.
        let mut module = Module::new();
        let g = module.add_global(Global::new("tab", vec![4, -2, 9, -7, 3, 8]));
        let mut b = FunctionBuilder::new("main", &[], None);
        let header = b.create_block("header");
        let body = b.create_block("body");
        let neg = b.create_block("neg");
        let join = b.create_block("join");
        let exit = b.create_block("exit");
        let base = b.global(g);
        let pi = b.alloca(Ty::I64);
        let ps = b.alloca(Ty::I64);
        let zero = b.iconst(Ty::I64, 0);
        b.store(Ty::I64, zero, pi);
        b.store(Ty::I64, zero, ps);
        b.jmp(header);
        b.switch_to(header);
        let i = b.load(Ty::I64, pi);
        let n = b.iconst(Ty::I64, 6);
        let c = b.icmp(ICmpPred::Slt, Ty::I64, i, n);
        b.br(c, body, exit);
        b.switch_to(body);
        let i2 = b.load(Ty::I64, pi);
        let p = b.gep(base, i2);
        let v = b.load(Ty::I64, p);
        let isneg = b.icmp(ICmpPred::Slt, Ty::I64, v, zero);
        b.br(isneg, neg, join);
        b.switch_to(neg);
        let tv = b.mul(Ty::I64, v, v);
        let s0 = b.load(Ty::I64, ps);
        let s1 = b.add(Ty::I64, s0, tv);
        b.store(Ty::I64, s1, ps);
        b.jmp(join);
        b.switch_to(join);
        let s2 = b.load(Ty::I64, ps);
        let s3 = b.add(Ty::I64, s2, v);
        b.store(Ty::I64, s3, ps);
        let one = b.iconst(Ty::I64, 1);
        let i3 = b.add(Ty::I64, i2, one);
        b.store(Ty::I64, i3, pi);
        b.jmp(header);
        b.switch_to(exit);
        let r = b.load(Ty::I64, ps);
        b.print(r);
        b.ret(None);
        module.functions.push(b.finish());
        module
    }

    fn golden(m: &Module) -> Vec<i64> {
        ferrum_mir::interp::Interp::new(m).run().unwrap().output
    }

    #[test]
    fn protected_program_preserves_output() {
        let m = kernel_module();
        let prot = Ferrum::new().protect_module(&m).expect("protects");
        assert!(prot.validate().is_ok(), "{:?}", prot.validate());
        let r = Cpu::load(&prot).unwrap().run(None);
        assert_eq!(r.stop, StopReason::MainReturned, "output: {:?}", r.output);
        assert_eq!(r.output, golden(&m));
    }

    #[test]
    fn uses_simd_batching_and_deferred_checks() {
        let m = kernel_module();
        let asm = ferrum_backend::compile(&m).unwrap();
        let (prot, stats) = Ferrum::new().protect_with_stats(&asm).expect("protects");
        assert!(stats.simd_protected > 0, "{stats:?}");
        assert!(stats.compares_protected > 0, "{stats:?}");
        assert!(
            stats.general_protected + stats.general_batched > 0,
            "{stats:?}"
        );
        assert!(
            stats.general_batched > 0,
            "scalar dups should batch: {stats:?}"
        );
        assert_eq!(stats.requisitioned_blocks, 0);
        let main = prot.function("main").unwrap();
        assert!(main
            .insts()
            .any(|a| matches!(a.inst, Inst::Vptest { .. } | Inst::Vptest128 { .. })));
        assert!(main
            .insts()
            .any(|a| matches!(a.inst, Inst::Vinserti128 { .. })));
        assert!(main.insts().any(
            |a| matches!(a.inst, Inst::Setcc { dst: Operand::Reg(r), .. } if r.gpr == Gpr::R11)
        ));
    }

    #[test]
    fn ferrum_is_cheaper_than_scalar_everything() {
        let m = kernel_module();
        let asm = ferrum_backend::compile(&m).unwrap();
        let ferrum = Ferrum::new().protect(&asm).unwrap();
        let hybrid = crate::hybrid::HybridAsmEddi::new().protect(&m).unwrap();
        let fc = Cpu::load(&ferrum).unwrap().run(None).cycles;
        let hc = Cpu::load(&hybrid).unwrap().run(None).cycles;
        assert!(fc < hc, "ferrum {fc} vs hybrid {hc}");
    }

    #[test]
    fn simd_disabled_falls_back_to_scalar() {
        let m = kernel_module();
        let asm = ferrum_backend::compile(&m).unwrap();
        let cfg = FerrumConfig {
            simd: false,
            ..FerrumConfig::default()
        };
        let (prot, stats) = Ferrum::with_config(cfg).protect_with_stats(&asm).unwrap();
        assert_eq!(stats.simd_protected, 0);
        assert!(!prot
            .function("main")
            .unwrap()
            .insts()
            .any(|a| matches!(a.inst, Inst::Vptest { .. } | Inst::MovqToXmm { .. })));
        let r = Cpu::load(&prot).unwrap().run(None);
        assert_eq!(r.output, golden(&m));
    }

    #[test]
    fn forced_requisition_preserves_output() {
        let m = kernel_module();
        let asm = ferrum_backend::compile(&m).unwrap();
        let cfg = FerrumConfig {
            force_requisition: true,
            ..FerrumConfig::default()
        };
        let (prot, stats) = Ferrum::with_config(cfg)
            .protect_with_stats(&asm)
            .expect("protects");
        assert!(stats.requisitioned_blocks > 0, "{stats:?}");
        assert!(prot.validate().is_ok(), "{:?}", prot.validate());
        let r = Cpu::load(&prot).unwrap().run(None);
        assert_eq!(r.stop, StopReason::MainReturned, "output {:?}", r.output);
        assert_eq!(r.output, golden(&m));
        // Fig. 7's push/pop requisition idiom is present.
        let main = prot.function("main").unwrap();
        assert!(main
            .insts()
            .any(|a| matches!(a.inst, Inst::Push { .. }) && a.prov.is_protection()));
        assert!(main
            .insts()
            .any(|a| matches!(a.inst, Inst::Pop { .. }) && a.prov.is_protection()));
    }

    #[test]
    fn peephole_can_be_disabled() {
        let m = kernel_module();
        let asm = ferrum_backend::compile(&m).unwrap();
        let on = Ferrum::new().protect_with_stats(&asm).unwrap();
        let cfg = FerrumConfig {
            peephole: false,
            ..FerrumConfig::default()
        };
        let off = Ferrum::with_config(cfg).protect_with_stats(&asm).unwrap();
        assert!(on.1.peephole.reloads_removed > 0);
        assert_eq!(off.1.peephole, PeepholeStats::default());
        assert!(on.0.static_inst_count() < off.0.static_inst_count());
        // Both still correct.
        for p in [&on.0, &off.0] {
            assert_eq!(Cpu::load(p).unwrap().run(None).output, golden(&m));
        }
    }

    #[test]
    fn rejects_already_protected_input() {
        let m = kernel_module();
        let asm = ferrum_backend::compile(&m).unwrap();
        let once = Ferrum::new().protect(&asm).unwrap();
        assert!(matches!(
            Ferrum::new().protect(&once),
            Err(PassError::Unsupported { .. })
        ));
    }

    #[test]
    fn functions_with_calls_are_protected() {
        let mut callee = FunctionBuilder::new("scale", &[Ty::I64], Some(Ty::I64));
        let k = callee.iconst(Ty::I64, 3);
        let r = callee.mul(Ty::I64, callee.arg(0), k);
        callee.ret(Some(r));
        let mut main = FunctionBuilder::new("main", &[], None);
        let x = main.iconst(Ty::I64, 5);
        let r = main.call("scale", vec![x], Some(Ty::I64)).unwrap();
        main.print(r);
        main.ret(None);
        let m = Module::from_functions(vec![main.finish(), callee.finish()]);
        let prot = Ferrum::new().protect_module(&m).expect("protects");
        let r = Cpu::load(&prot).unwrap().run(None);
        assert_eq!(r.stop, StopReason::MainReturned);
        assert_eq!(r.output, vec![15]);
    }

    #[test]
    fn division_is_protected_and_correct() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let a = b.iconst(Ty::I64, 123456);
        let d = b.iconst(Ty::I64, 789);
        let q = b.sdiv(Ty::I64, a, d);
        let rm = b.srem(Ty::I64, a, d);
        b.print(q);
        b.print(rm);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        let prot = Ferrum::new().protect_module(&m).expect("protects");
        let r = Cpu::load(&prot).unwrap().run(None);
        assert_eq!(r.stop, StopReason::MainReturned);
        assert_eq!(r.output, vec![123456 / 789, 123456 % 789]);
    }

    #[test]
    fn zmm_mode_batches_eight_and_preserves_output() {
        let m = kernel_module();
        let asm = ferrum_backend::compile(&m).unwrap();
        let cfg = FerrumConfig {
            zmm: true,
            ..FerrumConfig::default()
        };
        let (prot, stats) = Ferrum::with_config(cfg)
            .protect_with_stats(&asm)
            .expect("protects");
        assert!(prot.validate().is_ok());
        let main = prot.function("main").unwrap();
        assert!(
            main.insts()
                .any(|a| matches!(a.inst, Inst::Vptest512 { .. })),
            "512-bit checks expected"
        );
        assert!(main
            .insts()
            .any(|a| matches!(a.inst, Inst::Vinserti64x4 { .. })));
        let r = Cpu::load(&prot).unwrap().run(None);
        assert_eq!(r.output, golden(&m));
        // Fewer checker branches than YMM mode: batches of 8 halve the
        // flush count where blocks are long enough.
        let (ymm_prot, _) = Ferrum::new().protect_with_stats(&asm).unwrap();
        let count_checks = |p: &ferrum_asm::program::AsmProgram| {
            p.functions
                .iter()
                .flat_map(|f| f.insts())
                .filter(|a| {
                    matches!(&a.inst, Inst::Jcc { target, .. } if target == ferrum_asm::EXIT_FUNCTION)
                })
                .count()
        };
        assert!(count_checks(&prot) <= count_checks(&ymm_prot), "{stats:?}");
    }

    #[test]
    fn zmm_mode_full_coverage_exhaustive() {
        let m = kernel_module();
        let asm = ferrum_backend::compile(&m).unwrap();
        let cfg = FerrumConfig {
            zmm: true,
            ..FerrumConfig::default()
        };
        let prot = Ferrum::with_config(cfg).protect(&asm).expect("protects");
        let cpu = Cpu::load(&prot).unwrap();
        let profile = cpu.profile();
        let golden_out = profile.result.output.clone();
        for site in &profile.sites {
            for bit in [0u16, 7, 63] {
                let r = cpu.run(Some(ferrum_cpu::fault::FaultSpec::new(site.dyn_index, bit)));
                let silent = r.stop == StopReason::MainReturned && r.output != golden_out;
                assert!(!silent, "SDC at {site:?} bit {bit}");
            }
        }
    }

    #[test]
    fn stats_are_deterministic() {
        let m = kernel_module();
        let asm = ferrum_backend::compile(&m).unwrap();
        let s1 = Ferrum::new().protect_with_stats(&asm).unwrap().1;
        let s2 = Ferrum::new().protect_with_stats(&asm).unwrap().1;
        assert_eq!(s1, s2);
    }
}

#[cfg(test)]
mod selective_tests {
    use super::*;
    use ferrum_cpu::run::Cpu;

    #[test]
    fn striping_is_even() {
        let mut k = 0u64;
        let picked = (0..1000).filter(|_| select_site(&mut k, 30)).count();
        assert_eq!(picked, 300);
        let mut k = 0u64;
        assert_eq!((0..50).filter(|_| select_site(&mut k, 0)).count(), 0);
        let mut k = 0u64;
        assert_eq!((0..50).filter(|_| select_site(&mut k, 100)).count(), 50);
    }

    #[test]
    fn selective_protection_trades_overhead_for_coverage() {
        let m = super::tests::kernel_module();
        let golden = ferrum_mir::interp::Interp::new(&m).run().unwrap().output;
        let asm = ferrum_backend::compile(&m).unwrap();
        let mut prev_cycles = u64::MAX;
        for percent in [100u8, 50, 0] {
            let cfg = FerrumConfig {
                selective_percent: percent,
                ..FerrumConfig::default()
            };
            let prot = Ferrum::with_config(cfg).protect(&asm).expect("protects");
            assert!(prot.validate().is_ok(), "{percent}%");
            let r = Cpu::load(&prot).unwrap().run(None);
            assert_eq!(r.output, golden, "{percent}%: still transparent");
            assert!(
                r.cycles < prev_cycles,
                "{percent}%: cheaper than more protection"
            );
            prev_cycles = r.cycles;
        }
        // 0% selective plus peephole can be *faster* than raw unoptimized.
        let zero = FerrumConfig {
            selective_percent: 0,
            ..FerrumConfig::default()
        };
        let p0 = Ferrum::with_config(zero).protect(&asm).unwrap();
        let raw = Cpu::load(&asm).unwrap().run(None).cycles;
        let c0 = Cpu::load(&p0).unwrap().run(None).cycles;
        assert!(
            c0 <= raw,
            "peephole-only build should not exceed raw: {c0} vs {raw}"
        );
    }
}

#[cfg(test)]
mod requisition_edge_tests {
    use super::*;
    use ferrum_cpu::outcome::StopReason;
    use ferrum_cpu::run::Cpu;

    /// The dangerous combination: requisition mode with deferred flag
    /// detection off leaves bare `jcc`s in the stream; their taken edge
    /// must still restore the requisitioned registers.
    #[test]
    fn forced_requisition_without_deferred_flags_balances_the_stack() {
        let m = {
            use ferrum_mir::builder::FunctionBuilder;
            use ferrum_mir::inst::ICmpPred;
            use ferrum_mir::module::{Global, Module};
            use ferrum_mir::types::Ty;
            let mut module = Module::new();
            let g = module.add_global(Global::new("tab", vec![2, -3, 5, -7]));
            let mut b = FunctionBuilder::new("main", &[], None);
            let header = b.create_block("h");
            let body = b.create_block("b");
            let neg = b.create_block("n");
            let join = b.create_block("j");
            let exit = b.create_block("x");
            let base = b.global(g);
            let pi = b.alloca(Ty::I64);
            let ps = b.alloca(Ty::I64);
            let zero = b.iconst(Ty::I64, 0);
            b.store(Ty::I64, zero, pi);
            b.store(Ty::I64, zero, ps);
            b.jmp(header);
            b.switch_to(header);
            let i = b.load(Ty::I64, pi);
            let n = b.iconst(Ty::I64, 4);
            let c = b.icmp(ICmpPred::Slt, Ty::I64, i, n);
            b.br(c, body, exit);
            b.switch_to(body);
            let i2 = b.load(Ty::I64, pi);
            let p = b.gep(base, i2);
            let v = b.load(Ty::I64, p);
            let isneg = b.icmp(ICmpPred::Slt, Ty::I64, v, zero);
            b.br(isneg, neg, join);
            b.switch_to(neg);
            let nv = b.sub(Ty::I64, zero, v);
            let s = b.load(Ty::I64, ps);
            let s2 = b.add(Ty::I64, s, nv);
            b.store(Ty::I64, s2, ps);
            b.jmp(join);
            b.switch_to(join);
            let one = b.iconst(Ty::I64, 1);
            let i3 = b.add(Ty::I64, i2, one);
            b.store(Ty::I64, i3, pi);
            b.jmp(header);
            b.switch_to(exit);
            let r = b.load(Ty::I64, ps);
            b.print(r);
            b.ret(None);
            module.functions.push(b.finish());
            module
        };
        let golden = ferrum_mir::interp::Interp::new(&m).run().unwrap().output;
        let asm = ferrum_backend::compile(&m).unwrap();
        let cfg = FerrumConfig {
            force_requisition: true,
            deferred_flags: false,
            ..FerrumConfig::default()
        };
        let prot = Ferrum::with_config(cfg).protect(&asm).expect("protects");
        assert!(prot.validate().is_ok(), "{:?}", prot.validate());
        let r = Cpu::load(&prot).unwrap().run(None);
        assert_eq!(r.stop, StopReason::MainReturned, "output {:?}", r.output);
        assert_eq!(r.output, golden);
    }
}
