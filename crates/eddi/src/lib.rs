//! # ferrum-eddi — the three error-detection techniques of the paper
//!
//! This crate implements, end to end, the protection techniques the
//! FERRUM paper (DSN 2024) builds and compares:
//!
//! * [`ir_eddi`] — **IR-LEVEL-EDDI**: classic EDDI on MIR (Fig. 2 of the
//!   paper): duplicate computational IR instructions, check duplicated
//!   values before every synchronisation point (store / branch / call /
//!   return), branch to a detect handler on mismatch.  Its assembly-level
//!   coverage gap is an *emergent* property of backend lowering, not a
//!   hard-coded number.
//! * [`hybrid`] — **HYBRID-ASSEMBLY-LEVEL-EDDI**: the paper's replicated
//!   plain assembly-level EDDI (§IV-A1): every injectable assembly
//!   instruction is immediately duplicated and checked with the scalar
//!   idiom of Fig. 4, while comparison/branch instructions are protected
//!   at IR level via signature-style duplication and per-edge rechecks
//!   (following \[13\] in the paper).
//! * [`ferrum`] — **FERRUM** itself (§III): assembly-level protection for
//!   *every* instruction class, boosted by
//!   - SIMD batching: four duplicated results accumulate in spare XMM
//!     registers, are widened into YMM registers with `vinserti128`, and
//!     checked at once by `vpxor` + `vptest` (Fig. 6),
//!   - deferred flag detection for `cmp`/`test` with `setcc` pairs
//!     checked in the branch successors (Fig. 5),
//!   - stack-level register requisition when spare registers run out
//!     (Fig. 7),
//!   - the backend's peephole pass as its "compiler-level
//!     transformations".
//!
//! [`annotate`] implements §III-B1's instruction annotation
//! (SIMD-ENABLED vs GENERAL) and the flags-liveness scan the passes use
//! to place checkers safely.  [`capability`] encodes Table I.
//!
//! The key soundness invariant, enforced by tests in this crate and by
//! whole-campaign integration tests: **for any single write-back bit
//! flip in any injectable destination, a FERRUM- or hybrid-protected
//! program never silently corrupts its output** — every fault is either
//! masked, detected, or crashes.

pub mod annotate;
pub mod capability;
pub mod ferrum;
pub mod hybrid;
pub mod ir_eddi;
pub mod scalar;
pub mod signature;

use std::fmt;

pub use annotate::Annotation;
pub use ferrum::{Ferrum, FerrumConfig};
pub use hybrid::HybridAsmEddi;
pub use ir_eddi::IrEddi;

/// The protection techniques compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// No protection (the `raw` baseline).
    None,
    /// IR-LEVEL-EDDI.
    IrEddi,
    /// HYBRID-ASSEMBLY-LEVEL-EDDI.
    HybridAsmEddi,
    /// FERRUM.
    Ferrum,
}

impl Technique {
    /// The three protected configurations (everything but `None`).
    pub const PROTECTED: [Technique; 3] = [
        Technique::IrEddi,
        Technique::HybridAsmEddi,
        Technique::Ferrum,
    ];

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Technique::None => "RAW",
            Technique::IrEddi => "IR-LEVEL-EDDI",
            Technique::HybridAsmEddi => "HYBRID-ASSEMBLY-LEVEL-EDDI",
            Technique::Ferrum => "FERRUM",
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Failure of an assembly-level protection pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassError {
    /// The input program contains an instruction the pass cannot protect
    /// (e.g. hand-written SIMD in the input).
    Unsupported { function: String, what: String },
    /// Not enough spare registers and requisition could not free any.
    NoSpareRegisters { function: String, block: String },
    /// The input program failed structural validation.
    Invalid(String),
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::Unsupported { function, what } => {
                write!(f, "unsupported instruction in `{function}`: {what}")
            }
            PassError::NoSpareRegisters { function, block } => {
                write!(
                    f,
                    "no spare or requisitionable registers in `{function}`/`{block}`"
                )
            }
            PassError::Invalid(m) => write!(f, "invalid input program: {m}"),
        }
    }
}

impl std::error::Error for PassError {}
