//! HYBRID-ASSEMBLY-LEVEL-EDDI — the paper's replicated plain
//! assembly-level EDDI baseline (§IV-A1, Table I row 2).
//!
//! Pipeline: the [`crate::signature::SignaturePass`] protects
//! comparisons and branches at IR level, the backend lowers the result,
//! and then *every* injectable GPR-destination assembly instruction is
//! immediately duplicated and checked with the scalar idiom of Fig. 4 —
//! including all the backend glue that IR-level EDDI cannot see.  No
//! SIMD, no deferred flag detection, no peephole: the brute-force
//! baseline whose overhead exceeds even IR-level EDDI (Fig. 11).

use ferrum_asm::inst::{DestClass, Inst};
use ferrum_asm::program::{AsmFunction, AsmProgram};
use ferrum_asm::provenance::TechniqueTag;
use ferrum_asm::reg::Gpr;
use ferrum_mir::module::Module;

use crate::annotate::flags_live_at;
use crate::scalar::protect_general;
use crate::signature::SignaturePass;
use crate::PassError;

/// The hybrid baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct HybridAsmEddi;

impl HybridAsmEddi {
    /// Creates the pass.
    pub fn new() -> HybridAsmEddi {
        HybridAsmEddi
    }

    /// Protects a MIR module end to end: signature prepass → backend →
    /// scalar assembly duplication.
    ///
    /// # Errors
    ///
    /// Propagates backend failures as [`PassError::Invalid`] and
    /// assembly-shape problems as [`PassError::Unsupported`].
    pub fn protect(&self, m: &Module) -> Result<AsmProgram, PassError> {
        self.protect_opt(m, ferrum_backend::OptLevel::O0).map(|(p, _)| p)
    }

    /// [`HybridAsmEddi::protect`] compiling at the given optimization
    /// level; returns the backend's pass statistics alongside.  The
    /// scalar duplication runs on the *optimized* output, so — unlike
    /// pure IR-level EDDI — coverage does not decay with `-O1`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HybridAsmEddi::protect`].
    pub fn protect_opt(
        &self,
        m: &Module,
        opt: ferrum_backend::OptLevel,
    ) -> Result<(AsmProgram, ferrum_backend::PassStats), PassError> {
        let _span = ferrum_trace::span("eddi.hybrid.protect");
        let (sig, shadows) = SignaturePass::new().protect_tracked(m);
        let (mut asm, stats) = ferrum_backend::compile_with_stats(&sig, opt)
            .map_err(|e| PassError::Invalid(e.to_string()))?;
        crate::ir_eddi::retag_shadows(&mut asm, &shadows, TechniqueTag::HybridAsmEddi);
        Ok((self.protect_asm(&asm)?, stats))
    }

    /// Applies only the assembly-level scalar duplication (callers that
    /// already ran the signature prepass and backend).
    ///
    /// # Errors
    ///
    /// [`PassError::Unsupported`] when an instruction cannot be
    /// duplicated with the available scratch registers.
    pub fn protect_asm(&self, p: &AsmProgram) -> Result<AsmProgram, PassError> {
        let mut out = p.clone();
        for f in &mut out.functions {
            protect_function(f)?;
        }
        Ok(out)
    }
}

const SCRATCH: Gpr = Gpr::R10;
const SCRATCH2: Gpr = Gpr::R11;

fn protect_function(f: &mut AsmFunction) -> Result<(), PassError> {
    // The scratch registers must be genuinely spare.
    let usage = ferrum_asm::analysis::regscan::SpareReport::scan(f);
    for s in [SCRATCH, SCRATCH2] {
        if usage.function.uses_gpr(s) {
            return Err(PassError::NoSpareRegisters {
                function: f.name.clone(),
                block: "<function>".into(),
            });
        }
    }
    for b in &mut f.blocks {
        let orig_block = b.clone();
        let mut out = Vec::with_capacity(b.insts.len() * 3);
        for (i, ai) in orig_block.insts.iter().enumerate() {
            let site = ai.inst.injectable_bits().is_some();
            let is_flags = matches!(ai.inst.dest_class(), DestClass::Rflags);
            let is_simd_dest =
                matches!(ai.inst.dest_class(), DestClass::Xmm(_) | DestClass::Ymm(_));
            if is_simd_dest {
                return Err(PassError::Unsupported {
                    function: f.name.clone(),
                    what: "SIMD instruction in input program".into(),
                });
            }
            if !site || is_flags {
                // Flags sites are covered by the IR-level signature
                // prepass (Table I: comparison/branch at IR).
                //
                // Protection-tagged GPR sites are NOT exempt: on
                // optimized input the backend may route master dataflow
                // through a lowered signature shadow (value numbering
                // picks whichever register already holds the value), so
                // "faults in protection code are always caught by its
                // own check" only holds for `-O0` output.  Duplicating
                // those sites too keeps every GPR write checked.
                out.push(ai.clone());
                continue;
            }
            if flags_live_at(&orig_block, i + 1) && !matches!(ai.inst, Inst::Setcc { .. }) {
                return Err(PassError::Unsupported {
                    function: f.name.clone(),
                    what: "checker would clobber live flags".into(),
                });
            }
            protect_general(ai, SCRATCH, SCRATCH2, TechniqueTag::HybridAsmEddi, &mut out).map_err(
                |e| match e {
                    PassError::Unsupported { what, .. } => PassError::Unsupported {
                        function: f.name.clone(),
                        what,
                    },
                    other => other,
                },
            )?;
        }
        b.insts = out;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_asm::provenance::Provenance;
    use ferrum_cpu::outcome::StopReason;
    use ferrum_cpu::run::Cpu;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::inst::ICmpPred;
    use ferrum_mir::module::Global;
    use ferrum_mir::types::Ty;

    fn loop_module() -> Module {
        // Weighted sum over a global array with a branch inside the loop.
        let mut module = Module::new();
        let g = module.add_global(Global::new("tab", vec![5, -3, 7, -1, 9]));
        let mut b = FunctionBuilder::new("main", &[], None);
        let header = b.create_block("header");
        let body = b.create_block("body");
        let neg = b.create_block("neg");
        let join = b.create_block("join");
        let exit = b.create_block("exit");
        let base = b.global(g);
        let pi = b.alloca(Ty::I64);
        let ps = b.alloca(Ty::I64);
        let zero = b.iconst(Ty::I64, 0);
        b.store(Ty::I64, zero, pi);
        b.store(Ty::I64, zero, ps);
        b.jmp(header);
        b.switch_to(header);
        let i = b.load(Ty::I64, pi);
        let n = b.iconst(Ty::I64, 5);
        let c = b.icmp(ICmpPred::Slt, Ty::I64, i, n);
        b.br(c, body, exit);
        b.switch_to(body);
        let i2 = b.load(Ty::I64, pi);
        let p = b.gep(base, i2);
        let v = b.load(Ty::I64, p);
        let isneg = b.icmp(ICmpPred::Slt, Ty::I64, v, zero);
        b.br(isneg, neg, join);
        b.switch_to(neg);
        let nv = b.sub(Ty::I64, zero, v);
        let s = b.load(Ty::I64, ps);
        let s2 = b.add(Ty::I64, s, nv);
        b.store(Ty::I64, s2, ps);
        b.jmp(join);
        b.switch_to(join);
        let s3 = b.load(Ty::I64, ps);
        let v2 = b.load(Ty::I64, p);
        let both = b.add(Ty::I64, s3, v2);
        b.store(Ty::I64, both, ps);
        let one = b.iconst(Ty::I64, 1);
        let i3 = b.add(Ty::I64, i2, one);
        b.store(Ty::I64, i3, pi);
        b.jmp(header);
        b.switch_to(exit);
        let r = b.load(Ty::I64, ps);
        b.print(r);
        b.ret(None);
        module.functions.push(b.finish());
        module
    }

    #[test]
    fn protected_program_preserves_output() {
        let m = loop_module();
        let golden = ferrum_mir::interp::Interp::new(&m).run().unwrap();
        let prot = HybridAsmEddi::new().protect(&m).expect("protects");
        assert!(prot.validate().is_ok());
        let cpu = Cpu::load(&prot).expect("loads");
        let r = cpu.run(None);
        assert_eq!(r.stop, StopReason::MainReturned);
        assert_eq!(r.output, golden.output);
    }

    #[test]
    fn every_gpr_site_is_followed_by_protection() {
        let m = loop_module();
        let prot = HybridAsmEddi::new().protect(&m).expect("protects");
        // Count: every non-protection instruction with a plain GPR
        // destination must be adjacent to protection-tagged code.
        for f in &prot.functions {
            for b in &f.blocks {
                for (i, ai) in b.insts.iter().enumerate() {
                    if ai.prov.is_protection() {
                        continue;
                    }
                    if let DestClass::Gpr(r) = ai.inst.dest_class() {
                        if r.gpr.is_frame() {
                            continue;
                        }
                        let before = i.checked_sub(1).map(|j| b.insts[j].prov.is_protection());
                        let after = b.insts.get(i + 1).map(|a| a.prov.is_protection());
                        assert!(
                            before == Some(true) || after == Some(true),
                            "unprotected site {:?} in {}",
                            ai.inst,
                            b.label
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn protection_overhead_is_substantial() {
        let m = loop_module();
        let raw = ferrum_backend::compile(&m).unwrap();
        let prot = HybridAsmEddi::new().protect(&m).unwrap();
        let raw_cycles = Cpu::load(&raw).unwrap().run(None).cycles;
        let prot_cycles = Cpu::load(&prot).unwrap().run(None).cycles;
        assert!(
            prot_cycles as f64 > raw_cycles as f64 * 1.3,
            "hybrid should cost well over 30% ({raw_cycles} vs {prot_cycles})"
        );
    }

    #[test]
    fn rejects_input_that_uses_the_scratch_registers() {
        use ferrum_asm::operand::Operand;
        use ferrum_asm::reg::{Reg, Width};
        let mut p = ferrum_asm::program::single_block_main(vec![Inst::Mov {
            w: Width::W64,
            src: Operand::Imm(1),
            dst: Operand::Reg(Reg::q(Gpr::R10)),
        }]);
        p.functions[0].blocks[0].insts[0].prov = Provenance::Synthetic;
        assert!(matches!(
            HybridAsmEddi::new().protect_asm(&p),
            Err(PassError::NoSpareRegisters { .. })
        ));
    }

    #[test]
    fn rejects_simd_in_input() {
        let p = ferrum_asm::program::single_block_main(vec![Inst::MovqToXmm {
            src: ferrum_asm::operand::Operand::Reg(ferrum_asm::reg::Reg::q(Gpr::Rax)),
            dst: ferrum_asm::reg::Xmm::new(0),
        }]);
        assert!(matches!(
            HybridAsmEddi::new().protect_asm(&p),
            Err(PassError::Unsupported { .. })
        ));
    }
}
