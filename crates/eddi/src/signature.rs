//! IR-level signature protection of comparisons and branches — the
//! component HYBRID-ASSEMBLY-LEVEL-EDDI keeps at IR level (paper
//! §IV-A1, following the signature scheme of the paper's reference
//! \[13\]).
//!
//! Two mechanisms:
//!
//! 1. every `icmp` is duplicated and immediately checked, so a flags
//!    fault inside a lowered comparison corrupts only one of the two
//!    stored condition bytes and is caught;
//! 2. every conditional branch is routed through per-edge *recheck*
//!    blocks that re-test the duplicated condition: taking the wrong
//!    direction (a fault in the branch-materialisation flags, Fig. 9)
//!    lands in an edge block whose recheck disagrees and detects.

use std::collections::HashMap;

use ferrum_mir::func::Function;
use ferrum_mir::inst::MirInst;
use ferrum_mir::module::Module;
use ferrum_mir::value::Value;

use crate::ir_eddi::{Rewriter, ShadowIds, ShadowMap};

/// The signature-protection prepass.
#[derive(Debug, Clone, Copy, Default)]
pub struct SignaturePass;

impl SignaturePass {
    /// Creates the pass.
    pub fn new() -> SignaturePass {
        SignaturePass
    }

    /// Returns a copy of `m` with comparisons and branches protected.
    pub fn protect(&self, m: &Module) -> Module {
        self.protect_tracked(m).0
    }

    /// As [`SignaturePass::protect`], also returning the shadow-id map
    /// for provenance retagging after lowering.
    pub fn protect_tracked(&self, m: &Module) -> (Module, ShadowMap) {
        let mut out = m.clone();
        let mut shadows = ShadowMap::new();
        for f in &mut out.functions {
            let first_new = f.next_id;
            let checks = protect_function(f);
            let ids = ShadowIds {
                all: (first_new..f.next_id).collect(),
                checks,
            };
            shadows.insert(f.name.clone(), ids);
        }
        (out, shadows)
    }
}

fn protect_function(f: &mut Function) -> std::collections::HashSet<u32> {
    let blocks = std::mem::take(&mut f.blocks);
    let snapshot = Function {
        blocks,
        ..f.clone()
    };
    let mut rw = Rewriter::new(&snapshot);
    let mut dup: HashMap<u32, Value> = HashMap::new();

    for (bi, b) in snapshot.blocks.iter().enumerate() {
        rw.start_block(bi);
        for inst in &b.insts {
            match inst {
                MirInst::ICmp { id, .. } => {
                    rw.emit(inst.clone());
                    let new_id = f.fresh_id();
                    let mut shadow = inst.clone();
                    super::ir_eddi::set_result_pub(&mut shadow, new_id);
                    rw.emit(shadow);
                    dup.insert(id.0, Value::Inst(new_id));
                    // Immediate check of the two condition bytes.
                    rw.split_check(f, Value::Inst(*id), Value::Inst(new_id));
                }
                MirInst::Br {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    match cond.as_inst().and_then(|id| dup.get(&id.0)).copied() {
                        Some(d) => {
                            // Route both edges through recheck blocks.
                            let detect = rw.detect_bb();
                            let then_chk = rw.fresh_block("sig_then_chk");
                            let else_chk = rw.fresh_block("sig_else_chk");
                            rw.emit(MirInst::Br {
                                cond: *cond,
                                then_bb: then_chk,
                                else_bb: else_chk,
                            });
                            rw.emit_into(
                                then_chk,
                                MirInst::Br {
                                    cond: d,
                                    then_bb: *then_bb,
                                    else_bb: detect,
                                },
                            );
                            rw.emit_into(
                                else_chk,
                                MirInst::Br {
                                    cond: d,
                                    then_bb: detect,
                                    else_bb: *else_bb,
                                },
                            );
                        }
                        None => rw.emit(inst.clone()),
                    }
                }
                _ => rw.emit(inst.clone()),
            }
        }
    }
    let checks = std::mem::take(&mut rw.check_ids);
    f.blocks = rw.finish(f.ret);
    checks
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::inst::ICmpPred;
    use ferrum_mir::interp::Interp;
    use ferrum_mir::types::Ty;
    use ferrum_mir::verify::verify_module;

    fn branchy_module() -> Module {
        // print(|a - b|) via a branch.
        let mut b = FunctionBuilder::new("main", &[], None);
        let t = b.create_block("t");
        let e = b.create_block("e");
        let a = b.iconst(Ty::I64, 3);
        let c = b.iconst(Ty::I64, 8);
        let cond = b.icmp(ICmpPred::Sgt, Ty::I64, a, c);
        b.br(cond, t, e);
        b.switch_to(t);
        let d1 = b.sub(Ty::I64, a, c);
        b.print(d1);
        b.ret(None);
        b.switch_to(e);
        let d2 = b.sub(Ty::I64, c, a);
        b.print(d2);
        b.ret(None);
        Module::from_functions(vec![b.finish()])
    }

    #[test]
    fn signature_pass_preserves_semantics() {
        let m = branchy_module();
        let p = SignaturePass::new().protect(&m);
        verify_module(&p).expect("verifies");
        assert_eq!(Interp::new(&p).run().unwrap().output, vec![5]);
    }

    #[test]
    fn icmps_are_duplicated_and_branches_routed() {
        let m = branchy_module();
        let p = SignaturePass::new().protect(&m);
        let icmps = |f: &Function| {
            f.insts()
                .filter(|i| matches!(i, MirInst::ICmp { .. }))
                .count()
        };
        // 1 original + 1 shadow + 1 immediate check.
        assert_eq!(icmps(&p.functions[0]), icmps(&m.functions[0]) + 2);
        let brs = p.functions[0]
            .insts()
            .filter(|i| matches!(i, MirInst::Br { .. }))
            .count();
        // original br (re-routed) + 2 edge rechecks + 1 immediate check br.
        assert_eq!(brs, 4);
    }

    #[test]
    fn compiled_signature_protected_program_runs() {
        let m = branchy_module();
        let p = SignaturePass::new().protect(&m);
        let asm = ferrum_backend::compile(&p).expect("compiles");
        let cpu = ferrum_cpu::run::Cpu::load(&asm).expect("loads");
        let r = cpu.run(None);
        assert_eq!(r.stop, ferrum_cpu::outcome::StopReason::MainReturned);
        assert_eq!(r.output, vec![5]);
    }

    #[test]
    fn loop_backedges_survive() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("x");
        let pi = b.alloca(Ty::I64);
        let zero = b.iconst(Ty::I64, 0);
        b.store(Ty::I64, zero, pi);
        b.jmp(header);
        b.switch_to(header);
        let i = b.load(Ty::I64, pi);
        let five = b.iconst(Ty::I64, 5);
        let c = b.icmp(ICmpPred::Slt, Ty::I64, i, five);
        b.br(c, body, exit);
        b.switch_to(body);
        let i2 = b.load(Ty::I64, pi);
        let one = b.iconst(Ty::I64, 1);
        let i3 = b.add(Ty::I64, i2, one);
        b.store(Ty::I64, i3, pi);
        b.jmp(header);
        b.switch_to(exit);
        let i4 = b.load(Ty::I64, pi);
        b.print(i4);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        let p = SignaturePass::new().protect(&m);
        verify_module(&p).expect("verifies");
        assert_eq!(Interp::new(&p).run().unwrap().output, vec![5]);
    }
}
