//! IR-LEVEL-EDDI: classic EDDI on MIR (paper §II-C, Fig. 2).
//!
//! Every *computational* instruction (load, arithmetic, comparison,
//! address computation, extension) is duplicated immediately after it
//! executes, with duplicated operands where available.  Before every
//! *synchronisation point* (store, branch, call, return) each duplicated
//! value it consumes is compared against its shadow; a mismatch branches
//! to a detect handler (`call eddi_detect`, the paper's `check_flag()`).
//!
//! The pass operates purely at IR level — by design it cannot see the
//! backend's branch materialisation, store staging, or call glue.  The
//! resulting assembly-level coverage gap (~28% in the paper) is measured
//! by the fault campaigns, not assumed.

use std::collections::{HashMap, HashSet};

use ferrum_asm::program::AsmProgram;
use ferrum_asm::provenance::{Mechanism, Provenance, TechniqueTag};

use ferrum_mir::func::{BlockId, Function, MirBlock};
use ferrum_mir::inst::{BinOp, ICmpPred, MirInst};
use ferrum_mir::module::Module;
use ferrum_mir::types::Ty;
use ferrum_mir::value::Value;

/// Where the rewriter is currently emitting.
enum Cursor {
    Orig(usize),
    Extra(usize),
}

/// Streaming block rewriter: original block ids stay stable, the detect
/// handler becomes block `N` (first appended), and check continuations
/// are appended after it.
pub(crate) struct Rewriter {
    orig: Vec<MirBlock>,
    extra: Vec<MirBlock>,
    cur: Cursor,
    base: usize,
    /// Result ids of the `icmp eq` comparisons [`Rewriter::split_check`]
    /// creates, so lowered checker code can be attributed to the
    /// check mechanism rather than the shadow stream.
    pub check_ids: HashSet<u32>,
}

impl Rewriter {
    /// Prepares to rewrite a function with `base` original blocks.  The
    /// detect block id is `BlockId(base)`.
    pub fn new(f: &Function) -> Rewriter {
        let base = f.blocks.len();
        let orig = f
            .blocks
            .iter()
            .map(|b| MirBlock::new(b.name.clone()))
            .collect();
        Rewriter {
            orig,
            extra: vec![MirBlock::new("eddi_detect_bb")],
            cur: Cursor::Orig(0),
            base,
            check_ids: HashSet::new(),
        }
    }

    /// The detect handler's block id.
    pub fn detect_bb(&self) -> BlockId {
        BlockId(self.base as u32)
    }

    /// Starts emitting into original block `i`.
    pub fn start_block(&mut self, i: usize) {
        self.cur = Cursor::Orig(i);
    }

    /// Appends an instruction at the cursor.
    pub fn emit(&mut self, inst: MirInst) {
        match self.cur {
            Cursor::Orig(i) => self.orig[i].insts.push(inst),
            Cursor::Extra(i) => self.extra[i].insts.push(inst),
        }
    }

    /// Appends an instruction into a specific appended block (used for
    /// edge blocks that are filled out of stream order).
    ///
    /// # Panics
    ///
    /// Panics if `bb` is not an appended block.
    pub fn emit_into(&mut self, bb: BlockId, inst: MirInst) {
        let i = bb.index().checked_sub(self.base).expect("appended block");
        self.extra[i].insts.push(inst);
    }

    /// Creates a fresh appended block and returns its id (does not move
    /// the cursor).
    pub fn fresh_block(&mut self, name: &str) -> BlockId {
        let id = BlockId((self.base + self.extra.len()) as u32);
        self.extra.push(MirBlock::new(name.to_owned()));
        id
    }

    /// Emits `c = icmp eq a, b; br c, <cont>, detect` and continues
    /// emission in the new continuation block.
    pub fn split_check(&mut self, f: &mut Function, a: Value, b: Value) {
        let detect = self.detect_bb();
        let id = f.fresh_id();
        self.check_ids.insert(id.0);
        self.emit(MirInst::ICmp {
            id,
            pred: ICmpPred::Eq,
            ty: Ty::I64,
            a,
            b,
        });
        let cont = self.fresh_block("eddi_cont");
        self.emit(MirInst::Br {
            cond: Value::Inst(id),
            then_bb: cont,
            else_bb: detect,
        });
        self.cur = Cursor::Extra(cont.index() - self.base);
    }

    /// Finalises: fills the detect block and returns all blocks.
    pub fn finish(mut self, ret_ty: Option<Ty>) -> Vec<MirBlock> {
        let detect = &mut self.extra[0];
        detect.insts.push(MirInst::Call {
            id: None,
            callee: ferrum_mir::DETECT.into(),
            args: Vec::new(),
        });
        // Unreachable in the compiled program (the detect call lowers to
        // a jump to exit_function) but keeps the IR well-formed.
        detect.insts.push(MirInst::Ret {
            val: ret_ty.map(|t| Value::const_int(t, 0)),
        });
        let mut out = self.orig;
        out.extend(self.extra);
        out
    }
}

/// Result-ids of shadow and check instructions one function gained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShadowIds {
    /// Every id created by the pass (shadows and checks).
    pub all: HashSet<u32>,
    /// The subset created by [`Rewriter::split_check`] — lowered
    /// comparisons guarding the detect branch.
    pub checks: HashSet<u32>,
}

/// Result-ids of shadow/check instructions, per function name.  After
/// backend lowering, [`retag_shadows`] turns `FromIr(id)` provenance for
/// these ids into `Protection`, so the cost model's co-issue discount and
/// the root-cause attribution treat IR-level protection code the same
/// way as assembly-level protection code.  Check ids retag with
/// [`Mechanism::Check`], the rest with [`Mechanism::Dup`].
pub type ShadowMap = HashMap<String, ShadowIds>;

/// The IR-level EDDI pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct IrEddi;

impl IrEddi {
    /// Creates the pass.
    pub fn new() -> IrEddi {
        IrEddi
    }

    /// Returns a protected copy of `m`.
    pub fn protect(&self, m: &Module) -> Module {
        self.protect_tracked(m).0
    }

    /// Returns a protected copy of `m` plus the shadow-id map used to
    /// retag lowered protection code.
    pub fn protect_tracked(&self, m: &Module) -> (Module, ShadowMap) {
        let _span = ferrum_trace::span("eddi.ir.protect");
        let mut out = m.clone();
        let mut shadows = ShadowMap::new();
        for f in &mut out.functions {
            let first_new = f.next_id;
            let checks = protect_function(f, m);
            let ids = ShadowIds {
                all: (first_new..f.next_id).collect(),
                checks,
            };
            shadows.insert(f.name.clone(), ids);
        }
        (out, shadows)
    }
}

/// Rewrites `FromIr(id)` provenance into `Protection(tag, _)` for every
/// id recorded in `shadows` (see [`ShadowMap`]).
pub fn retag_shadows(prog: &mut AsmProgram, shadows: &ShadowMap, tag: TechniqueTag) {
    for f in &mut prog.functions {
        let Some(ids) = shadows.get(&f.name) else {
            continue;
        };
        for b in &mut f.blocks {
            for ai in &mut b.insts {
                if let Provenance::FromIr(id) = ai.prov {
                    if ids.all.contains(&id) {
                        let mech = if ids.checks.contains(&id) {
                            Mechanism::Check
                        } else {
                            Mechanism::Dup
                        };
                        ai.prov = Provenance::Protection(tag, mech);
                    }
                }
            }
        }
    }
}

fn remap(v: &Value, dup: &HashMap<u32, Value>) -> Value {
    match v {
        Value::Inst(id) => dup.get(&id.0).copied().unwrap_or(*v),
        other => *other,
    }
}

fn protect_function(f: &mut Function, m: &Module) -> HashSet<u32> {
    let blocks = std::mem::take(&mut f.blocks);
    let snapshot = Function {
        blocks,
        ..f.clone()
    };
    let mut rw = Rewriter::new(&snapshot);
    let mut dup: HashMap<u32, Value> = HashMap::new();

    for (bi, b) in snapshot.blocks.iter().enumerate() {
        rw.start_block(bi);
        for inst in &b.insts {
            if inst.is_duplicable() {
                rw.emit(inst.clone());
                // Shadow copy with duplicated operands.
                let mut shadow = inst.clone();
                let new_id = f.fresh_id();
                for op in shadow.operands_mut() {
                    *op = remap(op, &dup);
                }
                set_result(&mut shadow, new_id);
                rw.emit(shadow);
                if let Some(orig_id) = inst.result() {
                    dup.insert(orig_id.0, Value::Inst(new_id));
                }
                continue;
            }
            if inst.is_sync_point() {
                // Check every duplicated operand before the sync point.
                let mut checked: Vec<u32> = Vec::new();
                for v in inst.operands() {
                    if let Value::Inst(id) = v {
                        if let Some(d) = dup.get(&id.0).copied() {
                            if !checked.contains(&id.0) {
                                checked.push(id.0);
                                rw.split_check(f, *v, d);
                            }
                        }
                    }
                }
                let is_result_call = matches!(inst, MirInst::Call { id: Some(_), .. });
                rw.emit(inst.clone());
                if is_result_call {
                    // A call result cannot be re-computed; shadow it with
                    // an identity operation (result + 0), as real EDDI
                    // implementations do at call boundaries.
                    if let MirInst::Call { id: Some(rid), .. } = inst {
                        let new_id = f.fresh_id();
                        let ty = callee_ret_ty(m, inst).unwrap_or(Ty::I64);
                        rw.emit(MirInst::Bin {
                            id: new_id,
                            op: BinOp::Add,
                            ty,
                            a: Value::Inst(*rid),
                            b: Value::const_int(ty, 0),
                        });
                        dup.insert(rid.0, Value::Inst(new_id));
                    }
                }
                continue;
            }
            // Alloca, jmp: emitted untouched.
            rw.emit(inst.clone());
        }
    }
    let checks = std::mem::take(&mut rw.check_ids);
    f.blocks = rw.finish(f.ret);
    checks
}

fn callee_ret_ty(m: &Module, inst: &MirInst) -> Option<Ty> {
    match inst {
        MirInst::Call { callee, .. } => m.function(callee).and_then(|f| f.ret),
        _ => None,
    }
}

/// Re-labels the result id of an instruction (shared with the signature
/// pass when it creates shadows).
pub(crate) fn set_result_pub(inst: &mut MirInst, id: ferrum_mir::inst::InstId) {
    set_result(inst, id);
}

fn set_result(inst: &mut MirInst, id: ferrum_mir::inst::InstId) {
    match inst {
        MirInst::Alloca { id: r, .. }
        | MirInst::Load { id: r, .. }
        | MirInst::Bin { id: r, .. }
        | MirInst::ICmp { id: r, .. }
        | MirInst::Gep { id: r, .. }
        | MirInst::Sext { id: r, .. }
        | MirInst::Zext { id: r, .. }
        | MirInst::Trunc { id: r, .. } => *r = id,
        MirInst::Call { id: r, .. } => *r = Some(id),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::builder::FunctionBuilder;
    use ferrum_mir::interp::Interp;
    use ferrum_mir::module::Global;
    use ferrum_mir::verify::verify_module;

    fn sum_module() -> Module {
        let mut module = Module::new();
        let g = module.add_global(Global::new("tab", vec![5, 6, 7]));
        let mut b = FunctionBuilder::new("main", &[], None);
        let base = b.global(g);
        let mut acc = b.iconst(Ty::I64, 0);
        for i in 0..3 {
            let idx = b.iconst(Ty::I64, i);
            let p = b.gep(base, idx);
            let v = b.load(Ty::I64, p);
            acc = b.add(Ty::I64, acc, v);
        }
        b.print(acc);
        b.ret(None);
        module.functions.push(b.finish());
        module
    }

    #[test]
    fn protected_module_verifies_and_preserves_output() {
        let m = sum_module();
        let p = IrEddi::new().protect(&m);
        verify_module(&p).expect("protected module verifies");
        let golden = Interp::new(&m).run().unwrap();
        let out = Interp::new(&p).run().unwrap();
        assert_eq!(out.output, golden.output);
        assert_eq!(out.output, vec![18]);
    }

    #[test]
    fn duplicates_computational_instructions() {
        let m = sum_module();
        let p = IrEddi::new().protect(&m);
        let orig_loads = m.functions[0]
            .insts()
            .filter(|i| matches!(i, MirInst::Load { .. }))
            .count();
        let prot_loads = p.functions[0]
            .insts()
            .filter(|i| matches!(i, MirInst::Load { .. }))
            .count();
        assert_eq!(prot_loads, orig_loads * 2, "each load duplicated");
        // Checks exist: at least one icmp eq + br to the detect block.
        assert!(p.functions[0].inst_count() > 2 * m.functions[0].inst_count());
    }

    #[test]
    fn detect_block_calls_detect_intrinsic() {
        let m = sum_module();
        let p = IrEddi::new().protect(&m);
        let has_detect = p.functions[0]
            .insts()
            .any(|i| matches!(i, MirInst::Call { callee, .. } if callee == ferrum_mir::DETECT));
        assert!(has_detect);
    }

    #[test]
    fn branches_and_loops_survive_protection() {
        // sum 0..n with a loop, n from a global.
        let mut module = Module::new();
        let g = module.add_global(Global::new("n", vec![10]));
        let mut b = FunctionBuilder::new("main", &[], None);
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        let pn = b.global(g);
        let n = b.load(Ty::I64, pn);
        let pi = b.alloca(Ty::I64);
        let ps = b.alloca(Ty::I64);
        let zero = b.iconst(Ty::I64, 0);
        b.store(Ty::I64, zero, pi);
        b.store(Ty::I64, zero, ps);
        b.jmp(header);
        b.switch_to(header);
        let i = b.load(Ty::I64, pi);
        let c = b.icmp(ICmpPred::Slt, Ty::I64, i, n);
        b.br(c, body, exit);
        b.switch_to(body);
        let i2 = b.load(Ty::I64, pi);
        let s = b.load(Ty::I64, ps);
        let s2 = b.add(Ty::I64, s, i2);
        b.store(Ty::I64, s2, ps);
        let one = b.iconst(Ty::I64, 1);
        let i3 = b.add(Ty::I64, i2, one);
        b.store(Ty::I64, i3, pi);
        b.jmp(header);
        b.switch_to(exit);
        let r = b.load(Ty::I64, ps);
        b.print(r);
        b.ret(None);
        module.functions.push(b.finish());

        let p = IrEddi::new().protect(&module);
        verify_module(&p).expect("verifies");
        assert_eq!(Interp::new(&p).run().unwrap().output, vec![45]);
    }

    #[test]
    fn calls_check_arguments_and_shadow_results() {
        let mut callee = FunctionBuilder::new("sq", &[Ty::I64], Some(Ty::I64));
        let r = callee.mul(Ty::I64, callee.arg(0), callee.arg(0));
        callee.ret(Some(r));
        let mut main = FunctionBuilder::new("main", &[], None);
        let x = main.iconst(Ty::I64, 4);
        let one = main.iconst(Ty::I64, 1);
        let x1 = main.add(Ty::I64, x, one); // duplicated value feeding the call
        let r = main.call("sq", vec![x1], Some(Ty::I64)).unwrap();
        let r2 = main.add(Ty::I64, r, one); // uses shadowed call result
        main.print(r2);
        main.ret(None);
        let m = Module::from_functions(vec![main.finish(), callee.finish()]);
        let p = IrEddi::new().protect(&m);
        verify_module(&p).expect("verifies");
        assert_eq!(Interp::new(&p).run().unwrap().output, vec![26]);
    }

    #[test]
    fn compiled_protected_program_matches_unprotected_output() {
        let m = sum_module();
        let p = IrEddi::new().protect(&m);
        let asm = ferrum_backend::compile(&p).expect("compiles");
        let cpu = ferrum_cpu::run::Cpu::load(&asm).expect("loads");
        let r = cpu.run(None);
        assert_eq!(r.stop, ferrum_cpu::outcome::StopReason::MainReturned);
        assert_eq!(r.output, vec![18]);
    }

    #[test]
    fn shadow_tracking_covers_all_new_ids_and_retags_lowered_code() {
        let m = sum_module();
        let (p, shadows) = IrEddi::new().protect_tracked(&m);
        let set = &shadows["main"];
        // Every id at or beyond the original next_id is a shadow/check.
        assert_eq!(
            set.all.len() as u32,
            p.functions[0].next_id - m.functions[0].next_id
        );
        assert!(!set.checks.is_empty(), "sync points emit checks");
        assert!(set.checks.is_subset(&set.all));
        let mut asm = ferrum_backend::compile(&p).unwrap();
        let before = asm
            .function("main")
            .unwrap()
            .insts()
            .filter(|ai| ai.prov.is_protection())
            .count();
        assert_eq!(before, 0);
        retag_shadows(&mut asm, &shadows, TechniqueTag::IrEddi);
        let after = asm
            .function("main")
            .unwrap()
            .insts()
            .filter(|ai| ai.prov.is_protection())
            .count();
        assert!(after > 0, "lowered shadows must be retagged");
        // The program still runs identically.
        let cpu = ferrum_cpu::run::Cpu::load(&asm).unwrap();
        assert_eq!(cpu.run(None).output, vec![18]);
    }

    #[test]
    fn protection_is_idempotent_per_input() {
        let m = sum_module();
        let p1 = IrEddi::new().protect(&m);
        let p2 = IrEddi::new().protect(&m);
        assert_eq!(p1, p2, "deterministic transformation");
    }
}
