//! Instruction annotation (§III-B1 of the paper) and flags liveness.
//!
//! FERRUM classifies every injectable instruction as either
//! SIMD-ENABLED (the duplicate can be produced by a *single* move into
//! an XMM register) or GENERAL (everything else, protected by the scalar
//! idiom of Fig. 4).  The paper's stated rule — an instruction whose
//! source is also its destination cannot use SIMD — falls out of the
//! single-move requirement: a read-modify-write has no one-instruction
//! XMM equivalent.

use ferrum_asm::inst::Inst;
use ferrum_asm::operand::Operand;
use ferrum_asm::program::AsmBlock;
use ferrum_asm::reg::Width;

/// Protection class of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Annotation {
    /// Duplicate with a single `movq`/`pinsrq` into an XMM register and
    /// check in a SIMD batch (Fig. 6).
    SimdEnabled,
    /// Duplicate into a spare GPR and check scalar-ly (Fig. 4).
    General,
    /// A flags-producing comparison protected by deferred detection
    /// (Fig. 5).
    Compare,
    /// Not an injectable fault site: nothing to protect.
    NotASite,
}

/// Classifies `inst` for the FERRUM pass.
pub fn annotate(inst: &Inst) -> Annotation {
    if inst.injectable_bits().is_none() {
        return Annotation::NotASite;
    }
    match inst {
        Inst::Cmp { .. } | Inst::Test { .. } => Annotation::Compare,
        // A 64-bit move whose source is a register or memory location can
        // be re-executed as one `movq`/`pinsrq` into an XMM lane.  An
        // immediate source has no single-instruction XMM form, and a
        // source that aliases the destination is the paper's excluded
        // src==dst case (covered automatically because the duplicate
        // must run *before* the original).
        Inst::Mov {
            w: Width::W64,
            src,
            dst: Operand::Reg(_),
        } => match src {
            Operand::Reg(_) | Operand::Mem(_) => Annotation::SimdEnabled,
            Operand::Imm(_) => Annotation::General,
        },
        _ => Annotation::General,
    }
}

/// True if the RFLAGS value produced before instruction `idx` is
/// consumed at or after `idx` within the block — i.e. a checker that
/// clobbers flags must not be inserted *before* position `idx`.
///
/// Scans forward from `idx`: a flags reader before the next flags writer
/// means live.  Flags never survive a block boundary in backend-emitted
/// code (branch conditions are re-materialised per Fig. 9), so the scan
/// stops at the end of the block.
pub fn flags_live_at(block: &AsmBlock, idx: usize) -> bool {
    for ai in &block.insts[idx..] {
        if ai.inst.reads_flags() {
            return true;
        }
        if ai.inst.writes_flags() {
            return false;
        }
    }
    false
}

/// Finds the flags consumer of the `cmp`/`test` at `idx`: the next
/// `setcc`/`jcc` before any other flags writer.  Returns its index.
pub fn flags_consumer(block: &AsmBlock, idx: usize) -> Option<usize> {
    for (off, ai) in block.insts[idx + 1..].iter().enumerate() {
        if ai.inst.reads_flags() {
            return Some(idx + 1 + off);
        }
        if ai.inst.writes_flags() {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_asm::flags::Cc;
    use ferrum_asm::inst::AluOp;
    use ferrum_asm::operand::MemRef;
    use ferrum_asm::program::AsmInst;
    use ferrum_asm::reg::{Gpr, Reg};

    fn block_of(insts: Vec<Inst>) -> AsmBlock {
        let mut b = AsmBlock::new("b");
        for i in insts {
            b.insts.push(AsmInst::synthetic(i));
        }
        b
    }

    #[test]
    fn wide_loads_and_reg_moves_are_simd_enabled() {
        let load = Inst::Mov {
            w: Width::W64,
            src: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -24)),
            dst: Operand::Reg(Reg::q(Gpr::Rax)),
        };
        assert_eq!(annotate(&load), Annotation::SimdEnabled);
        let mv = Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rcx)),
            dst: Operand::Reg(Reg::q(Gpr::Rax)),
        };
        assert_eq!(annotate(&mv), Annotation::SimdEnabled);
    }

    #[test]
    fn immediates_narrow_moves_and_rmw_are_general() {
        let imm = Inst::Mov {
            w: Width::W64,
            src: Operand::Imm(7),
            dst: Operand::Reg(Reg::q(Gpr::Rax)),
        };
        assert_eq!(annotate(&imm), Annotation::General);
        let narrow = Inst::Mov {
            w: Width::W32,
            src: Operand::Reg(Reg::l(Gpr::Rcx)),
            dst: Operand::Reg(Reg::l(Gpr::Rax)),
        };
        assert_eq!(annotate(&narrow), Annotation::General);
        let add = Inst::Alu {
            op: AluOp::Add,
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rcx)),
            dst: Operand::Reg(Reg::q(Gpr::Rax)),
        };
        assert_eq!(annotate(&add), Annotation::General);
        let movslq = Inst::Movsx {
            src_w: Width::W32,
            dst_w: Width::W64,
            src: Operand::Reg(Reg::l(Gpr::Rcx)),
            dst: Reg::q(Gpr::R10),
        };
        assert_eq!(annotate(&movslq), Annotation::General);
    }

    #[test]
    fn comparisons_and_non_sites_classified() {
        let cmp = Inst::Cmp {
            w: Width::W64,
            src: Operand::Imm(0),
            dst: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -8)),
        };
        assert_eq!(annotate(&cmp), Annotation::Compare);
        let store = Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rax)),
            dst: Operand::Mem(MemRef::base_disp(Gpr::Rbp, -8)),
        };
        assert_eq!(annotate(&store), Annotation::NotASite);
        assert_eq!(annotate(&Inst::Ret), Annotation::NotASite);
        // Frame-register destinations are not sites.
        let to_rsp = Inst::Mov {
            w: Width::W64,
            src: Operand::Reg(Reg::q(Gpr::Rbp)),
            dst: Operand::Reg(Reg::q(Gpr::Rsp)),
        };
        assert_eq!(annotate(&to_rsp), Annotation::NotASite);
    }

    #[test]
    fn flags_liveness_scan() {
        let cmp = Inst::Cmp {
            w: Width::W64,
            src: Operand::Imm(0),
            dst: Operand::Reg(Reg::q(Gpr::Rax)),
        };
        let jcc = Inst::Jcc {
            cc: Cc::Ne,
            target: "t".into(),
        };
        let mov = Inst::Mov {
            w: Width::W64,
            src: Operand::Imm(1),
            dst: Operand::Reg(Reg::q(Gpr::Rcx)),
        };
        let b = block_of(vec![cmp.clone(), mov.clone(), jcc.clone(), mov.clone()]);
        assert!(flags_live_at(&b, 1), "jcc still ahead");
        assert!(!flags_live_at(&b, 3), "flags dead after the jcc");
        assert_eq!(flags_consumer(&b, 0), Some(2));
        // A flags writer in between kills the chain.
        let b2 = block_of(vec![cmp.clone(), cmp.clone(), jcc.clone()]);
        assert_eq!(flags_consumer(&b2, 0), None);
        assert_eq!(flags_consumer(&b2, 1), Some(2));
        // No consumer at all.
        let b3 = block_of(vec![cmp, mov]);
        assert_eq!(flags_consumer(&b3, 0), None);
    }
}
