//! Table I of the paper: which instruction classes each technique
//! covers, and at which layer the protection is implemented.

use crate::Technique;

/// The instruction-class columns of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Ordinary computational instructions ("basic").
    Basic,
    /// Store lowering (value/address staging).
    Store,
    /// Conditional branches (flag materialisation).
    Branch,
    /// Call glue (argument/return marshalling).
    Call,
    /// Width-mapping moves introduced by cross-layer lowering.
    Mapping,
    /// Comparison instructions (RFLAGS producers).
    Comparison,
}

impl InstClass {
    /// All columns in Table I order.
    pub const ALL: [InstClass; 6] = [
        InstClass::Basic,
        InstClass::Store,
        InstClass::Branch,
        InstClass::Call,
        InstClass::Mapping,
        InstClass::Comparison,
    ];

    /// Column header.
    pub fn label(self) -> &'static str {
        match self {
            InstClass::Basic => "basic",
            InstClass::Store => "store",
            InstClass::Branch => "branch",
            InstClass::Call => "call",
            InstClass::Mapping => "mapping",
            InstClass::Comparison => "comparison",
        }
    }
}

/// How (and whether) a technique covers an instruction class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Coverage {
    /// Protected at IR level.
    Ir,
    /// Protected at assembly level without SIMD (`AS_1` in the paper).
    AsmScalar,
    /// Protected at assembly level with SIMD utilisation (`AS_2`).
    AsmSimd,
    /// Not covered ("/" in the paper).
    None,
}

impl Coverage {
    /// The table cell text, matching the paper's notation.
    pub fn cell(self) -> &'static str {
        match self {
            Coverage::Ir => "IR",
            Coverage::AsmScalar => "AS_1",
            Coverage::AsmSimd => "AS_2",
            Coverage::None => "/",
        }
    }
}

/// The cell of Table I for `technique` × `class`.
pub fn coverage(technique: Technique, class: InstClass) -> Coverage {
    match technique {
        Technique::None => Coverage::None,
        Technique::IrEddi => match class {
            InstClass::Basic => Coverage::Ir,
            _ => Coverage::None,
        },
        Technique::HybridAsmEddi => match class {
            InstClass::Branch | InstClass::Comparison => Coverage::Ir,
            _ => Coverage::AsmScalar,
        },
        Technique::Ferrum => Coverage::AsmSimd,
    }
}

/// Renders Table I as aligned text (consumed by `repro_table1`).
pub fn render_table() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<28}", "technique"));
    for c in InstClass::ALL {
        out.push_str(&format!("{:>12}", c.label()));
    }
    out.push('\n');
    for t in Technique::PROTECTED {
        out.push_str(&format!("{:<28}", t.label()));
        for c in InstClass::ALL {
            out.push_str(&format!("{:>12}", coverage(t, c).cell()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table_1() {
        // Row 1: IR-LEVEL-EDDI covers only "basic", at IR.
        assert_eq!(coverage(Technique::IrEddi, InstClass::Basic), Coverage::Ir);
        for c in [
            InstClass::Store,
            InstClass::Branch,
            InstClass::Call,
            InstClass::Mapping,
            InstClass::Comparison,
        ] {
            assert_eq!(coverage(Technique::IrEddi, c), Coverage::None, "{c:?}");
        }
        // Row 2: hybrid covers branch/comparison at IR, the rest at AS_1.
        assert_eq!(
            coverage(Technique::HybridAsmEddi, InstClass::Basic),
            Coverage::AsmScalar
        );
        assert_eq!(
            coverage(Technique::HybridAsmEddi, InstClass::Store),
            Coverage::AsmScalar
        );
        assert_eq!(
            coverage(Technique::HybridAsmEddi, InstClass::Branch),
            Coverage::Ir
        );
        assert_eq!(
            coverage(Technique::HybridAsmEddi, InstClass::Call),
            Coverage::AsmScalar
        );
        assert_eq!(
            coverage(Technique::HybridAsmEddi, InstClass::Mapping),
            Coverage::AsmScalar
        );
        assert_eq!(
            coverage(Technique::HybridAsmEddi, InstClass::Comparison),
            Coverage::Ir
        );
        // Row 3: FERRUM covers everything at AS_2.
        for c in InstClass::ALL {
            assert_eq!(coverage(Technique::Ferrum, c), Coverage::AsmSimd, "{c:?}");
        }
    }

    #[test]
    fn rendered_table_contains_all_rows_and_cells() {
        let t = render_table();
        assert!(t.contains("IR-LEVEL-EDDI"));
        assert!(t.contains("HYBRID-ASSEMBLY-LEVEL-EDDI"));
        assert!(t.contains("FERRUM"));
        assert!(t.contains("AS_1"));
        assert!(t.contains("AS_2"));
        assert!(t.contains("comparison"));
        assert_eq!(t.lines().count(), 4);
    }
}
