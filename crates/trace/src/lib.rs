//! # ferrum-trace — hermetic span/counter observability core
//!
//! A hand-rolled tracing layer in the spirit of `ferrum-rng` and
//! `ferrum::json`: no external dependencies, so the workspace keeps
//! building with `--offline` and an empty registry cache.
//!
//! Two primitives:
//!
//! * **Spans** — [`span`] returns a guard that records a start event
//!   immediately and an end event (carrying the elapsed nanoseconds)
//!   when dropped.  Used around pipeline phases: backend lowering,
//!   protection passes, campaign executors.
//! * **Counters** — [`counter`] records a named `u64` once.  Used for
//!   static per-mechanism emission counts and campaign totals.
//!
//! Events flow into a process-global [`TraceSink`].  Overhead is zero
//! twice over:
//!
//! 1. **Compile time** — without the `trace` cargo feature every probe
//!    is an inlined empty function and the global sink does not exist.
//! 2. **Run time** — with the feature on but no sink installed, probes
//!    take one relaxed atomic load and return (the [`NullSink`]
//!    behaviour without even a virtual call).
//!
//! Tracing is *observational by contract*: sinks receive events but
//! nothing in the process reads them back mid-run, so installing or
//! removing a sink can never perturb campaign outcomes (the
//! cross-engine determinism suite asserts this).
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use ferrum_trace::{counter, span, RingSink};
//!
//! let sink = Arc::new(RingSink::new(1024));
//! ferrum_trace::install(sink.clone());
//! {
//!     let _s = span("phase.demo");
//!     counter("demo.widgets", 3);
//! }
//! ferrum_trace::uninstall();
//! # #[cfg(feature = "trace")]
//! assert_eq!(sink.counter_total("demo.widgets"), 3);
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
#[cfg(feature = "trace")]
use std::time::Instant;

/// What one trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`value` is 0).
    SpanStart,
    /// A span closed (`value` is the elapsed nanoseconds).
    SpanEnd,
    /// A counter fired (`value` is the amount).
    Counter,
}

/// One observation delivered to a [`TraceSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Event class.
    pub kind: EventKind,
    /// Static probe name, e.g. `"campaign.snapshot"`.
    pub name: &'static str,
    /// Counter amount or span duration (see [`EventKind`]).
    pub value: u64,
    /// Monotonic nanoseconds since the first event in the process.
    pub nanos: u64,
}

/// Receiver for trace events.  Implementations must be cheap and
/// side-effect-free with respect to the traced computation: a sink that
/// mutated shared program state could perturb campaign outcomes, which
/// the determinism suite treats as a bug.
pub trait TraceSink: Send + Sync {
    /// Accepts one event.
    fn record(&self, ev: &Event);
}

/// A sink that drops everything — the runtime off-switch when the
/// `trace` feature is compiled in but nobody is collecting.
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _ev: &Event) {}
}

/// Fixed-capacity ring-buffer sink: the newest `capacity` events are
/// kept, older ones are overwritten, and the number of overwritten
/// events is reported by [`RingSink::dropped`].  Bounded memory no
/// matter how long a campaign runs.
#[derive(Debug)]
pub struct RingSink {
    buf: Mutex<Vec<Event>>,
    capacity: usize,
    /// Next write position (monotonic; wraps via modulo).
    head: AtomicUsize,
    dropped: AtomicU64,
}

impl RingSink {
    /// Creates a sink keeping at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            buf: Mutex::new(Vec::with_capacity(capacity)),
            capacity,
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let buf = self.buf.lock().expect("ring lock");
        if buf.len() < self.capacity {
            return buf.clone();
        }
        let head = self.head.load(Ordering::Relaxed) % self.capacity;
        let mut out = Vec::with_capacity(buf.len());
        out.extend_from_slice(&buf[head..]);
        out.extend_from_slice(&buf[..head]);
        out
    }

    /// How many events were overwritten after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Sum of all retained counter events with this name.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events()
            .iter()
            .filter(|e| e.kind == EventKind::Counter && e.name == name)
            .map(|e| e.value)
            .sum()
    }

    /// Total nanoseconds of all retained closed spans with this name.
    pub fn span_nanos(&self, name: &str) -> u64 {
        self.events()
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd && e.name == name)
            .map(|e| e.value)
            .sum()
    }

    /// Number of retained closed spans with this name.  Lets a test
    /// pin that a probe fired exactly once per call (a duration alone
    /// cannot distinguish one slow span from many fast ones).
    pub fn span_count(&self, name: &str) -> u64 {
        self.events()
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd && e.name == name)
            .count() as u64
    }
}

impl TraceSink for RingSink {
    fn record(&self, ev: &Event) {
        let mut buf = self.buf.lock().expect("ring lock");
        if buf.len() < self.capacity {
            buf.push(*ev);
            self.head.store(buf.len(), Ordering::Relaxed);
        } else {
            let slot = self.head.load(Ordering::Relaxed) % self.capacity;
            buf[slot] = *ev;
            self.head.store(slot + 1, Ordering::Relaxed);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(feature = "trace")]
mod active {
    use super::*;
    use std::sync::{OnceLock, RwLock};

    /// Installed sink.  `RwLock` (not `OnceLock`) so tests and the CLI
    /// can swap sinks; `INSTALLED` lets probes skip the lock entirely
    /// when tracing is dormant.
    static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);
    static INSTALLED: AtomicUsize = AtomicUsize::new(0);

    fn epoch() -> &'static Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now)
    }

    pub(super) fn install(sink: Arc<dyn TraceSink>) {
        *SINK.write().expect("sink lock") = Some(sink);
        INSTALLED.store(1, Ordering::Release);
    }

    pub(super) fn uninstall() {
        INSTALLED.store(0, Ordering::Release);
        *SINK.write().expect("sink lock") = None;
    }

    pub(super) fn enabled() -> bool {
        INSTALLED.load(Ordering::Acquire) != 0
    }

    pub(super) fn emit(kind: EventKind, name: &'static str, value: u64) {
        if !enabled() {
            return;
        }
        let nanos = epoch().elapsed().as_nanos() as u64;
        if let Some(sink) = SINK.read().expect("sink lock").as_ref() {
            sink.record(&Event {
                kind,
                name,
                value,
                nanos,
            });
        }
    }
}

/// Installs the process-global sink.  No-op without the `trace` feature.
pub fn install(sink: Arc<dyn TraceSink>) {
    #[cfg(feature = "trace")]
    active::install(sink);
    #[cfg(not(feature = "trace"))]
    let _ = sink;
}

/// Removes the process-global sink (probes go dormant again).
pub fn uninstall() {
    #[cfg(feature = "trace")]
    active::uninstall();
}

/// True when events are currently being recorded (feature compiled in
/// *and* a sink installed).
#[must_use]
pub fn enabled() -> bool {
    #[cfg(feature = "trace")]
    {
        active::enabled()
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Records a named counter increment.
#[inline]
pub fn counter(name: &'static str, value: u64) {
    #[cfg(feature = "trace")]
    active::emit(EventKind::Counter, name, value);
    #[cfg(not(feature = "trace"))]
    {
        let _ = (name, value);
    }
}

/// An open span; records the end event (with elapsed nanoseconds) on
/// drop.  With the `trace` feature off this is a zero-sized no-op.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    #[cfg(feature = "trace")]
    name: &'static str,
    #[cfg(feature = "trace")]
    start: Option<Instant>,
}

/// Opens a span.  Records `SpanStart` now and `SpanEnd` when the
/// returned guard drops.
#[inline]
pub fn span(name: &'static str) -> Span {
    #[cfg(feature = "trace")]
    {
        if active::enabled() {
            active::emit(EventKind::SpanStart, name, 0);
            return Span {
                name,
                start: Some(Instant::now()),
            };
        }
        Span { name, start: None }
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = name;
        Span {}
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "trace")]
        if let Some(start) = self.start {
            active::emit(
                EventKind::SpanEnd,
                self.name,
                start.elapsed().as_nanos() as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_accepts_events() {
        NullSink.record(&Event {
            kind: EventKind::Counter,
            name: "x",
            value: 1,
            nanos: 0,
        });
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let ring = RingSink::new(3);
        for v in 0..5u64 {
            ring.record(&Event {
                kind: EventKind::Counter,
                name: "k",
                value: v,
                nanos: v,
            });
        }
        let vals: Vec<u64> = ring.events().iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![2, 3, 4], "oldest first, newest kept");
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.counter_total("k"), 2 + 3 + 4);
        assert_eq!(ring.counter_total("other"), 0);
    }

    #[test]
    fn ring_below_capacity_preserves_order() {
        let ring = RingSink::new(16);
        for v in 0..4u64 {
            ring.record(&Event {
                kind: EventKind::Counter,
                name: "k",
                value: v,
                nanos: v,
            });
        }
        let vals: Vec<u64> = ring.events().iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![0, 1, 2, 3]);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = RingSink::new(0);
        ring.record(&Event {
            kind: EventKind::Counter,
            name: "k",
            value: 7,
            nanos: 0,
        });
        assert_eq!(ring.events().len(), 1);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn probes_reach_installed_sink_and_stop_after_uninstall() {
        let ring = Arc::new(RingSink::new(64));
        install(ring.clone());
        assert!(enabled());
        counter("t.count", 2);
        counter("t.count", 3);
        {
            let _s = span("t.span");
        }
        uninstall();
        assert!(!enabled());
        counter("t.count", 100); // dropped: no sink
        assert_eq!(ring.counter_total("t.count"), 5);
        assert_eq!(ring.span_count("t.span"), 1);
        assert_eq!(ring.span_count("t.other"), 0);
        let kinds: Vec<EventKind> = ring.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::SpanStart));
        assert!(kinds.contains(&EventKind::SpanEnd));
        // Span durations are measured, timestamps monotonic.
        let ts: Vec<u64> = ring.events().iter().map(|e| e.nanos).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_build_is_inert() {
        let ring = Arc::new(RingSink::new(64));
        install(ring.clone());
        assert!(!enabled());
        counter("t.count", 2);
        let _s = span("t.span");
        drop(_s);
        assert!(ring.events().is_empty());
        uninstall();
    }
}
