//! The `results/bench.json` artifact and its regression gate.
//!
//! `repro_speedup --json-out` serializes all six of its tables into one
//! schema-stable JSON document; `scripts/bench_check.sh` re-runs the
//! same configuration and feeds both documents to [`compare`], which
//! enforces a per-metric policy:
//!
//! * **exact** — metrics fully determined by `(seed, samples, scale)`:
//!   outcome-identity booleans, detection-latency percentiles, snapshot
//!   hit-rates, prune rates, superinstruction and reuse counts.  Any
//!   drift here is a correctness regression, not noise.
//! * **tolerant** — same-machine single-thread work ratios (engine
//!   speedups): compared within a generous band that still catches an
//!   order-of-magnitude regression (e.g. the decode-once engine losing
//!   its step).
//! * **informational** — raw wall-clock rates (`*_ips`, `*_ms`),
//!   thread-scaling ratios, worker balance, and recorder-overhead
//!   percentages: machine- and scheduler-dependent (the gate runs at
//!   test scale, where campaigns last microseconds and a single
//!   scheduler event swings an overhead cell by tens of points — the
//!   observability budget is enforced by the paper-scale sixth
//!   `repro_speedup` table instead), so only their presence and
//!   finiteness are checked.
//!
//! The policy keys off metric *names*, so adding a table or column to
//! the artifact extends the gate without touching the comparator.

use ferrum::json::Json;

/// Artifact format identifier; bump on breaking shape changes.
pub const SCHEMA: &str = "ferrum-bench/v1";

/// Comparison policy for one metric, selected by key name.
enum Policy {
    /// Byte-exact (strings, bools, nulls) or equal within 1e-9
    /// (floats): the metric is deterministic given the config.
    Exact,
    /// `current` must lie within `[baseline / f, baseline * f]`.
    RelBand(f64),
    /// Present and finite; the value itself is machine-dependent.
    Informational,
}

fn policy(key: &str) -> Policy {
    match key {
        // Same-machine work ratios: single-thread engine speedups and
        // their geomean.  A factor-3 band is far wider than run-to-run
        // noise but fails if the optimized path regresses to parity.
        "speedup" | "geomean_speedup" => Policy::RelBand(3.0),
        // Scheduler-dependent metrics: thread-scaling and wall-clock
        // ratios, work-stealing balance, and recorder overhead.  At
        // test scale a campaign lasts microseconds, so an overhead
        // percentage rests on a single scheduler's mood; the paper-
        // scale sixth `repro_speedup` table enforces the <2% budget.
        "speedup_threads" | "speedup_wall" | "balance" => Policy::Informational,
        "overhead_pct" | "geomean_overhead_pct" => Policy::Informational,
        k if k.ends_with("_ips") || k.ends_with("_ms") => Policy::Informational,
        // Everything else is determined by the campaign config.
        _ => Policy::Exact,
    }
}

fn render(v: &Json) -> String {
    v.to_string_compact()
}

/// Compares one leaf value under `key`'s policy, appending a violation
/// to `out` when it fails.  `loosen` scales tolerant bands (the
/// `--quick` mode runs fewer repetitions, so ratios are noisier).
fn compare_value(path: &str, key: &str, base: &Json, cur: &Json, loosen: f64, out: &mut Vec<String>) {
    let pol = policy(key);
    match pol {
        Policy::Informational => {
            let ok = match cur {
                Json::Int(_) => true,
                Json::Num(v) => v.is_finite(),
                _ => false,
            };
            if !ok {
                out.push(format!("{path}: not a finite number: {}", render(cur)));
            }
        }
        Policy::Exact => match (base.as_f64(), cur.as_f64()) {
            (Some(b), Some(c)) => {
                if (b - c).abs() > 1e-9 {
                    out.push(format!("{path}: {c} != baseline {b} (exact metric)"));
                }
            }
            _ => {
                if base != cur {
                    out.push(format!(
                        "{path}: {} != baseline {} (exact metric)",
                        render(cur),
                        render(base)
                    ));
                }
            }
        },
        Policy::RelBand(f) => {
            let f = f * loosen;
            match (base.as_f64(), cur.as_f64()) {
                (Some(b), Some(c)) if b > 0.0 && c > 0.0 => {
                    if c < b / f || c > b * f {
                        out.push(format!(
                            "{path}: {c:.3} outside [{:.3}, {:.3}] (baseline {b:.3}, band x{f})",
                            b / f,
                            b * f
                        ));
                    }
                }
                _ => out.push(format!(
                    "{path}: cannot band-compare {} vs {}",
                    render(cur),
                    render(base)
                )),
            }
        }
    }
}

fn compare_tree(path: &str, base: &Json, cur: &Json, loosen: f64, out: &mut Vec<String>) {
    match (base, cur) {
        (Json::Obj(bm), Json::Obj(_)) => {
            for (k, bv) in bm {
                match cur.get(k) {
                    None => out.push(format!("{path}.{k}: missing from current run")),
                    Some(cv) => match (bv, cv) {
                        (Json::Obj(_), _) | (Json::Arr(_), _) => {
                            compare_tree(&format!("{path}.{k}"), bv, cv, loosen, out);
                        }
                        _ => compare_value(&format!("{path}.{k}"), k, bv, cv, loosen, out),
                    },
                }
            }
            if let Json::Obj(cm) = cur {
                for (k, _) in cm {
                    if base.get(k).is_none() {
                        out.push(format!("{path}.{k}: not in baseline (schema drift)"));
                    }
                }
            }
        }
        (Json::Arr(ba), Json::Arr(ca)) => {
            if ba.len() != ca.len() {
                out.push(format!(
                    "{path}: {} row(s) vs baseline {}",
                    ca.len(),
                    ba.len()
                ));
            }
            for (i, (bv, cv)) in ba.iter().zip(ca).enumerate() {
                compare_tree(&format!("{path}[{i}]"), bv, cv, loosen, out);
            }
        }
        _ => out.push(format!(
            "{path}: shape mismatch: {} vs baseline {}",
            render(cur),
            render(base)
        )),
    }
}

/// Compares a fresh `repro_speedup` artifact against the committed
/// baseline.  Returns the list of violations (empty = gate passes).
/// `quick` doubles the tolerant bands — quick runs use fewer timing
/// repetitions, so ratio metrics carry more noise; exact metrics are
/// never loosened.
pub fn compare(baseline: &Json, current: &Json, quick: bool) -> Vec<String> {
    let mut out = Vec::new();
    let loosen = if quick { 2.0 } else { 1.0 };
    match (
        baseline.get("schema").and_then(Json::as_str),
        current.get("schema").and_then(Json::as_str),
    ) {
        (Some(b), Some(c)) if b == c && b == SCHEMA => {}
        (b, c) => {
            out.push(format!("schema: {c:?} vs baseline {b:?} (expected {SCHEMA:?})"));
            return out;
        }
    }
    // The campaign config pins the deterministic metrics; a config
    // mismatch makes every exact comparison meaningless, so it is
    // reported and the rest skipped.
    for key in ["samples", "seed", "scale"] {
        let b = baseline.get("config").and_then(|c| c.get(key));
        let c = current.get("config").and_then(|c| c.get(key));
        if b != c || b.is_none() {
            out.push(format!(
                "config.{key}: {} vs baseline {} — runs are not comparable",
                c.map_or("<missing>".into(), render),
                b.map_or("<missing>".into(), render)
            ));
        }
    }
    if !out.is_empty() {
        return out;
    }
    match (baseline.get("tables"), current.get("tables")) {
        (Some(b), Some(c)) => compare_tree("tables", b, c, loosen, &mut out),
        _ => out.push("tables: missing".to_owned()),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum::json::parse;

    fn doc() -> Json {
        parse(
            r#"{
              "schema": "ferrum-bench/v1",
              "config": {"samples": 200, "seed": 65092, "scale": "test", "threads": 4, "reps": 2},
              "tables": {
                "decoded": {
                  "rows": [
                    {"workload": "bfs", "interp_ips": 1000.0, "decoded_ips": 19000.0,
                     "speedup": 19.0, "superinstructions": 12, "identical": true}
                  ],
                  "geomean_speedup": 19.0
                },
                "latency": [
                  {"workload": "bfs", "detected": 151, "p50": 9, "p95": 40, "max": 77,
                   "balance": 0.35}
                ],
                "recorder": {
                  "rows": [
                    {"workload": "bfs", "off_ips": 20000.0, "on_ips": 19800.0,
                     "overhead_pct": 1.0, "identical": true}
                  ],
                  "geomean_overhead_pct": 1.0
                }
              }
            }"#,
        )
        .expect("parses")
    }

    fn set(doc: &mut Json, path: &[&str], idx: Option<usize>, leaf: &str, v: Json) {
        let mut cur = doc;
        for p in path {
            cur = match cur {
                Json::Obj(m) => &mut m.iter_mut().find(|(k, _)| k == p).unwrap().1,
                _ => panic!("not an object"),
            };
        }
        if let Some(i) = idx {
            cur = match cur {
                Json::Arr(a) => &mut a[i],
                _ => panic!("not an array"),
            };
        }
        match cur {
            Json::Obj(m) => m.iter_mut().find(|(k, _)| k == leaf).unwrap().1 = v,
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn identical_documents_pass() {
        assert_eq!(compare(&doc(), &doc(), false), Vec::<String>::new());
        assert_eq!(compare(&doc(), &doc(), true), Vec::<String>::new());
    }

    #[test]
    fn machine_dependent_rates_do_not_gate() {
        let mut cur = doc();
        set(&mut cur, &["tables", "decoded", "rows"], Some(0), "interp_ips", Json::Num(13.0));
        set(&mut cur, &["tables", "recorder", "rows"], Some(0), "off_ips", Json::Num(9e9));
        assert_eq!(compare(&doc(), &cur, false), Vec::<String>::new());
        // ...but they must still be numbers.
        set(&mut cur, &["tables", "decoded", "rows"], Some(0), "interp_ips", Json::Str("x".into()));
        assert_eq!(compare(&doc(), &cur, false).len(), 1);
    }

    #[test]
    fn doctored_deterministic_metric_fails() {
        // The negative test the gate exists for: a baseline (or run)
        // with a shifted latency percentile must be caught exactly.
        let mut cur = doc();
        set(&mut cur, &["tables", "latency"], Some(0), "p95", Json::Int(41));
        let v = compare(&doc(), &cur, false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("latency[0].p95"), "{v:?}");
        // Outcome identity flipping to false is likewise fatal.
        let mut cur = doc();
        set(&mut cur, &["tables", "decoded", "rows"], Some(0), "identical", Json::Bool(false));
        assert_eq!(compare(&doc(), &cur, false).len(), 1);
    }

    #[test]
    fn speedup_band_catches_order_of_magnitude_regressions() {
        let mut cur = doc();
        set(&mut cur, &["tables", "decoded", "rows"], Some(0), "speedup", Json::Num(11.0));
        assert_eq!(compare(&doc(), &cur, false), Vec::<String>::new());
        set(&mut cur, &["tables", "decoded", "rows"], Some(0), "speedup", Json::Num(2.0));
        let v = compare(&doc(), &cur, false);
        assert_eq!(v.len(), 1, "{v:?}");
        // Quick mode doubles the band: 19/6 > 2... 19/(3*2) = 3.17, so
        // 2.0 still fails; 4.0 passes only when loosened.
        set(&mut cur, &["tables", "decoded", "rows"], Some(0), "speedup", Json::Num(4.0));
        assert_eq!(compare(&doc(), &cur, false).len(), 1);
        assert_eq!(compare(&doc(), &cur, true), Vec::<String>::new());
    }

    #[test]
    fn scheduler_dependent_metrics_do_not_gate_on_value() {
        // Test-scale campaigns last microseconds: overhead percentages
        // and work-stealing balance swing with the scheduler, so their
        // values never gate — the paper-scale sixth table enforces the
        // recorder budget.
        let mut cur = doc();
        set(&mut cur, &["tables", "recorder"], None, "geomean_overhead_pct", Json::Num(48.5));
        set(&mut cur, &["tables", "recorder", "rows"], Some(0), "overhead_pct", Json::Num(-20.0));
        set(&mut cur, &["tables", "latency"], Some(0), "balance", Json::Num(0.99));
        assert_eq!(compare(&doc(), &cur, false), Vec::<String>::new());
        // ...but they must still be finite numbers.
        set(&mut cur, &["tables", "recorder"], None, "geomean_overhead_pct", Json::Num(f64::NAN));
        assert_eq!(compare(&doc(), &cur, false).len(), 1);
    }

    #[test]
    fn structural_drift_fails_both_directions() {
        // A table missing from the current run.
        let mut cur = doc();
        if let Json::Obj(m) = cur.get("tables").unwrap().clone() {
            let trimmed: Vec<_> = m.into_iter().filter(|(k, _)| k != "latency").collect();
            if let Json::Obj(top) = &mut cur {
                top.iter_mut().find(|(k, _)| k == "tables").unwrap().1 = Json::Obj(trimmed);
            }
        }
        let v = compare(&doc(), &cur, false);
        assert!(v.iter().any(|p| p.contains("latency") && p.contains("missing")), "{v:?}");
        // A row count change.
        let mut cur = doc();
        if let Some(Json::Arr(rows)) = cur.get("tables").and_then(|t| t.get("latency")).cloned() {
            let mut doubled = rows.clone();
            doubled.extend(rows);
            set(&mut cur, &["tables"], None, "latency", Json::Arr(doubled));
        }
        assert!(!compare(&doc(), &cur, false).is_empty());
    }

    #[test]
    fn config_mismatch_short_circuits() {
        let mut cur = doc();
        set(&mut cur, &["config"], None, "samples", Json::Int(100));
        let v = compare(&doc(), &cur, false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("config.samples"), "{v:?}");
        // Thread count and repetitions are allowed to differ.
        let mut cur = doc();
        set(&mut cur, &["config"], None, "threads", Json::Int(32));
        set(&mut cur, &["config"], None, "reps", Json::Int(1));
        assert_eq!(compare(&doc(), &cur, false), Vec::<String>::new());
    }

    #[test]
    fn wrong_schema_is_fatal() {
        let mut cur = doc();
        if let Json::Obj(m) = &mut cur {
            m.iter_mut().find(|(k, _)| k == "schema").unwrap().1 =
                Json::Str("ferrum-bench/v0".into());
        }
        assert_eq!(compare(&doc(), &cur, false).len(), 1);
    }
}
