//! A minimal wall-clock benchmarking harness.
//!
//! The workspace builds with zero registry access (hermetic-build
//! policy, see `DESIGN.md`), so the benches cannot use an external
//! framework.  This module provides the small subset actually needed:
//! named groups, a short warm-up, a fixed measurement window, and a
//! median-of-batches report with optional element throughput.

use std::time::{Duration, Instant};

/// Per-benchmark timing configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Time spent running the closure before measuring.
    pub warm_up: Duration,
    /// Target measurement window.
    pub measure: Duration,
    /// Number of timed batches the window is split into (the reported
    /// figure is the median batch).
    pub batches: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_secs(1),
            batches: 10,
        }
    }
}

/// A named collection of benchmarks sharing one [`Config`].
pub struct Group {
    name: String,
    cfg: Config,
}

impl Group {
    /// Starts a group, printing its header.
    pub fn new(name: &str) -> Group {
        Group::with_config(name, Config::default())
    }

    /// Starts a group with explicit timing parameters.
    pub fn with_config(name: &str, cfg: Config) -> Group {
        println!("{name}");
        println!(
            "{:<44}{:>14}{:>16}",
            "  benchmark", "median", "throughput"
        );
        Group {
            name: name.to_owned(),
            cfg,
        }
    }

    /// Benchmarks `f`, reporting the median time per call.
    pub fn bench(&self, name: &str, f: impl FnMut()) -> Duration {
        self.bench_inner(name, None, f)
    }

    /// Benchmarks `f`, additionally reporting `elements / time`
    /// throughput (e.g. simulated instructions per second).
    pub fn bench_throughput(&self, name: &str, elements: u64, f: impl FnMut()) -> Duration {
        self.bench_inner(name, Some(elements), f)
    }

    fn bench_inner(&self, name: &str, elements: Option<u64>, mut f: impl FnMut()) -> Duration {
        // Warm-up: run until the window elapses (at least once).
        let t0 = Instant::now();
        let mut warm_iters: u32 = 0;
        loop {
            f();
            warm_iters += 1;
            if t0.elapsed() >= self.cfg.warm_up {
                break;
            }
        }
        // Choose a per-batch iteration count from the warm-up rate so
        // each batch lasts roughly `measure / batches`.
        let per_call = t0.elapsed() / warm_iters;
        let batch_target = self.cfg.measure / self.cfg.batches.max(1) as u32;
        let iters = (batch_target.as_nanos() / per_call.as_nanos().max(1)).max(1) as u32;

        let mut medians: Vec<Duration> = Vec::with_capacity(self.cfg.batches);
        for _ in 0..self.cfg.batches.max(1) {
            let b0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            medians.push(b0.elapsed() / iters);
        }
        medians.sort();
        let median = medians[medians.len() / 2];

        let rate = elements.map_or(String::new(), |n| {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("{:>13.2}M/s", per_sec / 1e6)
        });
        println!(
            "  {:<42}{:>14}{:>16}",
            format!("{}/{}", self.name, name),
            format_duration(median),
            rate
        );
        median
    }
}

/// Formats a duration with a unit suited to its magnitude.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_a_positive_median() {
        let g = Group::with_config(
            "test",
            Config {
                warm_up: Duration::from_millis(5),
                measure: Duration::from_millis(20),
                batches: 4,
            },
        );
        let mut x = 0u64;
        let median = g.bench("spin", || {
            for i in 0..100 {
                x = x.wrapping_add(i).rotate_left(7);
            }
        });
        assert!(median > Duration::ZERO);
        std::hint::black_box(x); // keep the accumulator alive
    }

    #[test]
    fn durations_format_with_sane_units() {
        assert_eq!(format_duration(Duration::from_nanos(750)), "750 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
    }
}
