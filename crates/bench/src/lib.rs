//! # ferrum-bench — regenerating the paper's tables and figures
//!
//! One binary per artifact of the evaluation section:
//!
//! | Binary            | Artifact |
//! |-------------------|----------|
//! | `repro_fig10`     | Fig. 10 — SDC coverage per benchmark × technique |
//! | `repro_fig11`     | Fig. 11 — runtime performance overhead |
//! | `repro_table1`    | Table I — technique capability matrix |
//! | `repro_table2`    | Table II — benchmark details |
//! | `repro_exectime`  | §IV-B3 — FERRUM pass execution time vs static size |
//! | `repro_rootcause` | §IV-B1 — provenance attribution of IR-EDDI's SDCs |
//! | `repro_ablation`  | design-choice ablations (SIMD / deferred flags / peephole / requisition) |
//!
//! | `repro_speedup`   | snapshot campaign engine vs serial executor throughput |
//!
//! Each prints an aligned text table; `--samples N`, `--seed S`, and
//! `--scale test|paper` tune campaign size where applicable.
//! The benches (`cargo bench`) measure the infrastructure itself —
//! pass throughput, simulator speed, and checker costs — using the
//! self-contained [`harness`] module (hermetic-build policy: no
//! external benchmarking framework).

use ferrum::{EvalConfig, Scale};

pub mod benchjson;
pub mod harness;

/// Parses the common `--samples`, `--seed`, `--scale`, `--opt` flags.
pub fn parse_eval_config(args: &[String]) -> EvalConfig {
    let mut cfg = EvalConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--samples" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    cfg.samples = v;
                }
            }
            "--seed" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    cfg.seed = v;
                }
            }
            "--scale" => {
                if let Some(v) = it.next() {
                    cfg.scale = match v.as_str() {
                        "test" => Scale::Test,
                        _ => Scale::Paper,
                    };
                }
            }
            "--opt" => {
                if let Some(v) = it.next().and_then(|s| ferrum::OptLevel::parse(s)) {
                    cfg.opt = v;
                }
            }
            _ => {}
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--samples", "250", "--seed", "7", "--scale", "test"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = parse_eval_config(&args);
        assert_eq!(cfg.samples, 250);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.scale, Scale::Test);
        assert_eq!(cfg.opt, ferrum::OptLevel::O0);
        let cfg = parse_eval_config(&[]);
        assert_eq!(cfg.samples, 1000);
        assert_eq!(cfg.scale, Scale::Paper);

        let args: Vec<String> = ["--opt", "1"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_eval_config(&args).opt, ferrum::OptLevel::O1);
    }
}
