//! Ablation study over FERRUM's design choices (DESIGN.md §4):
//!
//! * SIMD batching off → every site falls back to scalar Fig.-4 checks,
//! * deferred flag detection off → `cmp`/`test` faults go unprotected
//!   (coverage drops below 100%),
//! * peephole off → no compiler-level transformations,
//! * forced requisition → the Fig.-7 stack path everywhere,
//! * ZMM mode → AVX-512 batches of eight (paper §III-B3's "also viable"),
//! * serial machine (no co-issue discount) → protection at full price.
//!
//! Reports runtime overhead and SDC coverage per variant, averaged over
//! the benchmark suite.

use ferrum::{CostModel, Pipeline, Technique};
use ferrum_eddi::ferrum::FerrumConfig;
use ferrum_faultsim::campaign::{run_campaign, CampaignConfig};
use ferrum_faultsim::stats::{runtime_overhead, sdc_coverage};
use ferrum_workloads::all_workloads;

struct Variant {
    name: &'static str,
    cfg: FerrumConfig,
    cost: CostModel,
}

fn variants() -> Vec<Variant> {
    let full = FerrumConfig::default();
    let base_cost = CostModel::default();
    let serial = CostModel {
        protection_percent: 100,
        ..base_cost
    };
    vec![
        Variant {
            name: "full FERRUM",
            cfg: full,
            cost: base_cost,
        },
        Variant {
            name: "no SIMD",
            cfg: FerrumConfig {
                simd: false,
                ..full
            },
            cost: base_cost,
        },
        Variant {
            name: "no deferred flags",
            cfg: FerrumConfig {
                deferred_flags: false,
                ..full
            },
            cost: base_cost,
        },
        Variant {
            name: "no peephole",
            cfg: FerrumConfig {
                peephole: false,
                ..full
            },
            cost: base_cost,
        },
        Variant {
            name: "forced requisition",
            cfg: FerrumConfig {
                force_requisition: true,
                ..full
            },
            cost: base_cost,
        },
        Variant {
            name: "ZMM (AVX-512) batches",
            cfg: FerrumConfig { zmm: true, ..full },
            cost: base_cost,
        },
        Variant {
            name: "serial machine",
            cfg: full,
            cost: serial,
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ferrum_bench::parse_eval_config(&args);
    println!(
        "FERRUM ablations — {} faults/config, {:?} scale",
        cfg.samples, cfg.scale
    );
    println!("{:<22}{:>14}{:>14}", "variant", "overhead", "coverage");
    for v in variants() {
        let pipeline = Pipeline::new()
            .with_ferrum_config(v.cfg)
            .with_cost_model(v.cost);
        let mut overhead_sum = 0.0;
        let mut coverage_sum = 0.0;
        let mut n = 0usize;
        for w in all_workloads() {
            let module = w.build(cfg.scale);
            let raw = pipeline
                .protect(&module, Technique::None)
                .expect("compiles");
            let raw_cpu = pipeline.load(&raw).expect("loads");
            let raw_profile = raw_cpu.profile();
            let raw_campaign = run_campaign(
                &raw_cpu,
                &raw_profile,
                CampaignConfig {
                    samples: cfg.samples,
                    seed: cfg.seed,
                },
            );
            let prot = pipeline
                .protect(&module, Technique::Ferrum)
                .expect("protects");
            let cpu = pipeline.load(&prot).expect("loads");
            let profile = cpu.profile();
            let campaign = run_campaign(
                &cpu,
                &profile,
                CampaignConfig {
                    samples: cfg.samples,
                    seed: cfg.seed + 1,
                },
            );
            overhead_sum += runtime_overhead(raw_profile.result.cycles, profile.result.cycles);
            coverage_sum += sdc_coverage(raw_campaign.sdc_prob(), campaign.sdc_prob());
            n += 1;
        }
        println!(
            "{:<22}{:>13.1}%{:>13.1}%",
            v.name,
            overhead_sum / n as f64 * 100.0,
            coverage_sum / n as f64 * 100.0
        );
    }
}
