//! Regenerates Table I: which instruction classes each technique
//! protects, and at which layer (`IR`, `AS_1` scalar assembly, `AS_2`
//! SIMD assembly).

fn main() {
    println!("Table I — technique capability matrix");
    print!("{}", ferrum_eddi::capability::render_table());
    println!();
    println!("legend: IR = protected at IR level, AS_1 = assembly without SIMD,");
    println!("        AS_2 = assembly with SIMD, / = not covered");
}
