//! Differential-replay forensics across the benchmark suite: for every
//! workload and protected technique, replay each residual SDC and
//! tabulate *why* it escaped.
//!
//! This is the per-incident companion to the §IV-B1 root-cause table:
//! root-cause attributes the faulted instruction's provenance, while
//! forensics explains the downstream escape — whether the duplicate was
//! corrupted consistently, the corruption was masked before any check,
//! a checker ran blind, or no checker executed at all.

use ferrum::{run_campaign_forensic, CampaignConfig, EscapeReason, ForensicConfig, Pipeline, Technique};
use ferrum_workloads::all_workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ferrum_bench::parse_eval_config(&args);
    let pipeline = Pipeline::new();
    let fcfg = ForensicConfig {
        max_records: usize::MAX,
        ..ForensicConfig::default()
    };
    println!("escape-reason forensics of residual SDCs (per technique)");
    println!(
        "{:<40}{:>6}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "benchmark/technique", "SDCs", "dup-corr", "masked", "blind", "no-check", "escaped", "ctl-div"
    );
    let mut totals = [0usize; 7];
    for w in all_workloads() {
        let module = w.build(cfg.scale);
        for technique in Technique::PROTECTED {
            let (prog, cpu) = match pipeline
                .protect(&module, technique)
                .and_then(|p| pipeline.load(&p).map(|c| (p, c)))
            {
                Ok(r) => r,
                Err(e) => panic!("{}/{technique}: {e}", w.name),
            };
            let _ = prog;
            let profile = cpu.profile();
            let (campaign, report) = run_campaign_forensic(
                &cpu,
                &profile,
                CampaignConfig {
                    samples: cfg.samples,
                    seed: cfg.seed,
                },
                &fcfg,
            );
            let count = |r: EscapeReason| {
                report
                    .reason_histogram
                    .iter()
                    .find(|&&(reason, _)| reason == r)
                    .map_or(0, |&(_, n)| n)
            };
            let row = [
                campaign.sdc,
                count(EscapeReason::DupAlsoCorrupted),
                count(EscapeReason::MaskedBeforeCheck),
                count(EscapeReason::CheckerBlind)
                    + count(EscapeReason::BatchFlushedEarly)
                    + count(EscapeReason::DeferredFlagOverwritten),
                count(EscapeReason::CheckerNotReached),
                count(EscapeReason::StoreEscapedWindow),
                count(EscapeReason::ControlFlowDiverged),
            ];
            println!(
                "{:<40}{:>6}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}",
                format!("{}/{technique}", w.name),
                row[0],
                row[1],
                row[2],
                row[3],
                row[4],
                row[5],
                row[6],
            );
            for (t, v) in totals.iter_mut().zip(row) {
                *t += v;
            }
            assert_eq!(
                report.analyzed(),
                report.matching_total,
                "{}/{technique}: every SDC must be analyzed",
                w.name
            );
            assert_eq!(
                report.classified(),
                report.analyzed(),
                "{}/{technique}: every analyzed SDC must be classified",
                w.name
            );
        }
    }
    println!(
        "{:<40}{:>6}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "total", totals[0], totals[1], totals[2], totals[3], totals[4], totals[5], totals[6]
    );
    println!();
    println!(
        "classified escapes: {} of {} residual SDCs",
        totals[1..].iter().sum::<usize>(),
        totals[0]
    );
}
