//! Extension: the AArch64/NEON port (paper §III-B5 future work).
//! Runs the two A64 kernels raw and FERRUM-NEON-protected, with an
//! exhaustive single-bit fault sweep over every dynamic site.

use ferrum_arm::exec::{profile, run, ArmFault, ArmOutcome};
use ferrum_arm::kernels::{scale_add, sum_gt};
use ferrum_arm::neon::protect_neon;
use ferrum_arm::program::ArmProgram;

const BITS: [u16; 8] = [0, 1, 3, 7, 15, 31, 47, 63];

fn sweep(p: &ArmProgram) -> (usize, usize, usize, usize) {
    let (prof, clean) = profile(p);
    let (mut sdc, mut detected, mut crash, mut benign) = (0, 0, 0, 0);
    for &site in &prof.sites {
        for bit in BITS {
            let r = run(
                p,
                Some(ArmFault {
                    dyn_index: site,
                    raw_bit: bit,
                }),
            );
            match r.outcome {
                ArmOutcome::Detected => detected += 1,
                ArmOutcome::Crash | ArmOutcome::Timeout => crash += 1,
                ArmOutcome::Completed => {
                    if r.x0 != clean.x0 || r.data != clean.data {
                        sdc += 1;
                    } else {
                        benign += 1;
                    }
                }
            }
        }
    }
    (sdc, detected, crash, benign)
}

fn main() {
    println!(
        "AArch64/NEON port — exhaustive single-bit sweep ({} bits/site)",
        BITS.len()
    );
    println!(
        "{:<22}{:>8}{:>10}{:>8}{:>8}{:>12}{:>12}",
        "kernel", "SDC", "detected", "crash", "benign", "raw cycles", "prot cycles"
    );
    let data = vec![12, -5, 33, 7, -19, 4, 28, 1];
    for (name, p) in [
        ("sum_gt", sum_gt(data.clone(), 5)),
        ("scale_add", scale_add(data.clone(), 3)),
    ] {
        let raw_cycles = run(&p, None).cycles;
        let (sdc_raw, _, _, _) = sweep(&p);
        let prot = protect_neon(&p).expect("protects");
        let prot_cycles = run(&prot, None).cycles;
        let (sdc, detected, crash, benign) = sweep(&prot);
        println!(
            "{:<22}{:>8}{:>10}{:>8}{:>8}{:>12}{:>12}",
            format!("{name} (raw SDC {sdc_raw})"),
            sdc,
            detected,
            crash,
            benign,
            raw_cycles,
            prot_cycles
        );
        assert_eq!(sdc, 0, "{name}: the NEON port must keep full coverage");
    }
    println!();
    println!("A64 notes: three-operand data processing removes every pre-copy replay;");
    println!("flag-free checkers (eor+cbnz) make deferred detection unnecessary;");
    println!("two-lane NEON batches tie with scalar checks (wider vectors are the win).");
}
