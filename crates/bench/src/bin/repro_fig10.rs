//! Regenerates Fig. 10: SDC coverage per benchmark for IR-LEVEL-EDDI,
//! HYBRID-ASSEMBLY-LEVEL-EDDI, and FERRUM, measured with assembly-level
//! fault injection (1000 sampled single-bit faults per configuration by
//! default).
//!
//! Paper reference points: FERRUM and the hybrid baseline reach 100%
//! everywhere; IR-level EDDI averages 72%, bottoming out around 50–54%
//! on kNN and Needle.

use ferrum::{evaluate_workload, Pipeline};
use ferrum_workloads::all_workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let cfg = ferrum_bench::parse_eval_config(&args);
    let pipeline = Pipeline::new();
    eprintln!(
        "# Fig. 10 reproduction — {} faults/config, seed {}, {:?} scale, {}",
        cfg.samples,
        cfg.seed,
        cfg.scale,
        cfg.opt.label()
    );
    let mut reports = Vec::new();
    for w in all_workloads() {
        eprintln!("  running {} ...", w.name);
        let r = evaluate_workload(&pipeline, &w, cfg).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        reports.push(r);
    }
    if json {
        // Machine-readable artifact: full per-benchmark reports.
        let mut slim = reports.clone();
        for r in &mut slim {
            for t in &mut r.techniques {
                t.campaign.records.clear();
            }
        }
        println!("{}", ferrum::report::to_json(&slim));
        return;
    }
    println!("Fig. 10 — SDC coverage (higher is better)");
    print!("{}", ferrum::report::render_coverage_table(&reports));
    println!();
    print!(
        "{}",
        ferrum::report::render_bars("SDC coverage per benchmark:", &reports, |t| t.coverage, 1.0)
    );
    println!();
    println!("raw SDC probability per benchmark (context):");
    for r in &reports {
        println!("  {:<16}{:>6.1}%", r.name, r.raw_sdc_prob * 100.0);
    }
    println!();
    println!("campaign-engine throughput (snapshot engine, see repro_speedup):");
    print!("{}", ferrum::report::render_throughput_table(&reports));
}
