//! `bench_check` — gates a fresh `bench.json` against the committed
//! baseline.
//!
//! ```text
//! usage: bench_check <baseline.json> <current.json> [--quick]
//! ```
//!
//! Thin IO wrapper over [`ferrum_bench::benchjson::compare`]: loads
//! both documents, prints one line per violation, and exits 0 when the
//! gate passes, 1 on violations, 2 when a document cannot be read or
//! parsed.  `--quick` widens the tolerant (timing-ratio) bands for
//! low-repetition runs; exact metrics are never loosened.  Normally
//! invoked through `scripts/bench_check.sh`, which regenerates the
//! current document with the baseline's configuration.

use std::process::ExitCode;

use ferrum::json::{parse, Json};
use ferrum_bench::benchjson::compare;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("usage: bench_check <baseline.json> <current.json> [--quick]");
        return ExitCode::from(2);
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_check: {err}");
            }
            return ExitCode::from(2);
        }
    };
    let violations = compare(&baseline, &current, quick);
    if violations.is_empty() {
        println!(
            "bench_check: OK — current run within tolerance of {baseline_path}{}",
            if quick { " (quick bands)" } else { "" }
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("bench_check: FAIL {v}");
        }
        println!("bench_check: {} violation(s)", violations.len());
        ExitCode::from(1)
    }
}
