//! Regenerates Fig. 11: runtime performance overhead per benchmark for
//! the three techniques, from fault-free simulated cycles.
//!
//! Paper reference points (averages): IR-LEVEL-EDDI 62.27%,
//! HYBRID-ASSEMBLY-LEVEL-EDDI 83.39%, FERRUM 29.83% — i.e. FERRUM is
//! the cheapest and the hybrid baseline the most expensive, with an
//! ~52% speed-up of FERRUM over IR-level EDDI.

use ferrum::{Pipeline, Technique};
use ferrum_faultsim::stats::runtime_overhead;
use ferrum_workloads::all_workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ferrum_bench::parse_eval_config(&args);
    let pipeline = Pipeline::new();
    println!("Fig. 11 — runtime performance overhead (lower is better)");
    println!(
        "{:<16}{:>12}{:>14}{:>14}{:>14}",
        "benchmark", "raw cycles", "IR-EDDI", "HYBRID-ASM", "FERRUM"
    );
    let mut sums = [0.0f64; 3];
    let mut count = 0usize;
    for w in all_workloads() {
        let module = w.build(cfg.scale);
        let raw = pipeline
            .protect(&module, Technique::None)
            .expect("compiles");
        let raw_cycles = pipeline.load(&raw).expect("loads").run(None).cycles;
        print!("{:<16}{:>12}", w.name, raw_cycles);
        for (i, t) in Technique::PROTECTED.into_iter().enumerate() {
            let p = pipeline.protect(&module, t).expect("protects");
            let cycles = pipeline.load(&p).expect("loads").run(None).cycles;
            let o = runtime_overhead(raw_cycles, cycles);
            sums[i] += o;
            print!("{:>13.1}%", o * 100.0);
        }
        println!();
        count += 1;
    }
    print!("{:<16}{:>12}", "average", "");
    for s in sums {
        print!("{:>13.1}%", s / count as f64 * 100.0);
    }
    println!();
}
