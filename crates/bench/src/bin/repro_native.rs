//! Fig. 11 on real silicon: assembles each benchmark × technique with
//! `gcc` via the timing harness (`emit_gnu_timing`), runs the binaries
//! natively, and reports wall-clock overheads — the empirical check on
//! the simulator's cost model.  Requires x86-64 Linux with gcc and
//! AVX2; exits quietly otherwise.

use std::process::Command;
use std::time::Instant;

use ferrum::{Pipeline, Technique};
use ferrum_eddi::ferrum::FerrumConfig;
use ferrum_workloads::all_workloads;

const ITERS: u32 = 3000;
const REPS: usize = 7;

fn native_available() -> bool {
    cfg!(all(target_arch = "x86_64", target_os = "linux"))
        && Command::new("gcc").arg("--version").output().is_ok()
        && std::fs::read_to_string("/proc/cpuinfo")
            .unwrap_or_default()
            .contains("avx2")
}

fn build(asm_text: &str, path: &std::path::Path) {
    let s_path = path.with_extension("s");
    std::fs::write(&s_path, asm_text).expect("write .s");
    let out = Command::new("gcc")
        .arg("-no-pie")
        .arg("-o")
        .arg(path)
        .arg(&s_path)
        .output()
        .expect("gcc");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

fn time_binary(path: &std::path::Path) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = Command::new(path).output().expect("run");
        assert!(out.status.success());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    if !native_available() {
        eprintln!("native timing unavailable (needs x86-64 linux, gcc, AVX2)");
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ferrum_bench::parse_eval_config(&args);
    let dir = std::env::temp_dir().join(format!("ferrum_timing_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("dir");
    let pipeline = Pipeline::new();
    println!(
        "Fig. 11 on real hardware — {} kernel iterations, best of {} runs, {:?} scale",
        ITERS, REPS, cfg.scale
    );
    println!(
        "{:<16}{:>12}{:>14}{:>14}{:>14}{:>14}",
        "benchmark", "raw (ms)", "IR-EDDI", "HYBRID-ASM", "FERRUM", "FERRUM-noSIMD"
    );
    let mut sums = [0.0f64; 4];
    let mut count = 0usize;
    for w in all_workloads() {
        let module = w.build(cfg.scale);
        let raw = pipeline.protect(&module, Technique::None).expect("compiles");
        let raw_bin = dir.join(format!("{}_raw", w.name));
        build(&ferrum_asm::gnu::emit_gnu_timing(&raw, ITERS), &raw_bin);
        let raw_t = time_binary(&raw_bin);
        print!("{:<16}{:>12.2}", w.name, raw_t * 1e3);
        for (i, t) in Technique::PROTECTED.into_iter().enumerate() {
            let prog = pipeline.protect(&module, t).expect("protects");
            let bin = dir.join(format!("{}_{i}", w.name));
            build(&ferrum_asm::gnu::emit_gnu_timing(&prog, ITERS), &bin);
            let t_prot = time_binary(&bin);
            let overhead = t_prot / raw_t - 1.0;
            sums[i] += overhead;
            print!("{:>13.1}%", overhead * 100.0);
        }
        // FERRUM with SIMD batching disabled: isolates the cost of the
        // GPR→vector capture traffic.
        let noswim = Pipeline::new().with_ferrum_config(FerrumConfig {
            simd: false,
            ..FerrumConfig::default()
        });
        let prog = noswim.protect(&module, Technique::Ferrum).expect("protects");
        let bin = dir.join(format!("{}_nosimd", w.name));
        build(&ferrum_asm::gnu::emit_gnu_timing(&prog, ITERS), &bin);
        let overhead = time_binary(&bin) / raw_t - 1.0;
        sums[3] += overhead;
        print!("{:>13.1}%", overhead * 100.0);
        println!();
        count += 1;
    }
    print!("{:<16}{:>12}", "average", "");
    for s in sums {
        print!("{:>13.1}%", s / count as f64 * 100.0);
    }
    println!();
    let _ = std::fs::remove_dir_all(&dir);
    println!();
    println!("(simulated averages for comparison: IR 73%, HYBRID 104%, FERRUM 36%)");
}
