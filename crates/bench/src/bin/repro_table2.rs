//! Regenerates Table II: the benchmark inventory, extended with the
//! measured static/dynamic sizes of this reproduction.

use ferrum::{Pipeline, Technique};
use ferrum_workloads::all_workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ferrum_bench::parse_eval_config(&args);
    let pipeline = Pipeline::new();
    println!("Table II — benchmark details ({:?} scale)", cfg.scale);
    println!(
        "{:<16}{:<10}{:<22}{:>14}{:>14}",
        "Benchmark", "Suite", "Domain", "static insts", "dyn insts"
    );
    for w in all_workloads() {
        let module = w.build(cfg.scale);
        let prog = pipeline
            .protect(&module, Technique::None)
            .expect("compiles");
        let run = pipeline.load(&prog).expect("loads").run(None);
        println!(
            "{:<16}{:<10}{:<22}{:>14}{:>14}",
            w.name,
            w.suite,
            w.domain,
            prog.static_inst_count(),
            run.dyn_insts
        );
    }
}
