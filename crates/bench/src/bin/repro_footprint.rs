//! Quantifies the paper's §IV-B2 explanation for the hybrid baseline's
//! overhead: "there are more assembly instructions generated when
//! compiled from IR to assembly.  The additional assembly instructions
//! ... are also duplicated by HYBRID-ASSEMBLY-LEVEL-EDDI (but they do
//! not appear at IR level protection)".
//!
//! Prints, per benchmark: the raw program's dynamic glue share (the
//! cross-layer footprint), and each technique's dynamic expansion
//! factor.

use ferrum::{Pipeline, Technique};
use ferrum_workloads::all_workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ferrum_bench::parse_eval_config(&args);
    let pipeline = Pipeline::new();
    println!(
        "§IV-B2 — cross-layer footprint and dynamic expansion ({:?} scale)",
        cfg.scale
    );
    println!(
        "{:<16}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "benchmark", "raw dyn", "glue share", "IR-EDDI x", "HYBRID x", "FERRUM x"
    );
    for w in all_workloads() {
        let module = w.build(cfg.scale);
        let raw = pipeline
            .protect(&module, Technique::None)
            .expect("compiles");
        let raw_prof = pipeline.load(&raw).expect("loads").profile();
        let raw_dyn = raw_prof.result.dyn_insts;
        let glue_share = raw_prof.prov_counts.glue as f64 / raw_dyn as f64;
        print!("{:<16}{:>12}{:>11.1}%", w.name, raw_dyn, glue_share * 100.0);
        for t in Technique::PROTECTED {
            let p = pipeline.protect(&module, t).expect("protects");
            let d = pipeline.load(&p).expect("loads").run(None).dyn_insts;
            print!("{:>11.2}x", d as f64 / raw_dyn as f64);
        }
        println!();
    }
    println!();
    println!("HYBRID duplicates the glue share too (scalar, per-instruction checks);");
    println!("IR-EDDI cannot see it; FERRUM covers it with batched SIMD checks.");
}
