//! Extension experiment (the paper's stated future work, §II-A):
//! **double-fault campaigns**.  Two independent single-bit faults are
//! injected per execution.  Duplication-based detection is built for
//! single faults; with two, a value and its duplicate can in principle
//! be corrupted consistently, so coverage may drop below 100% — this
//! harness measures by how much.

use ferrum::{Pipeline, Technique};
use ferrum_faultsim::campaign::{run_campaign, run_double_campaign, CampaignConfig};
use ferrum_faultsim::stats::sdc_coverage;
use ferrum_workloads::all_workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ferrum_bench::parse_eval_config(&args);
    let pipeline = Pipeline::new();
    println!(
        "double-fault extension — {} fault pairs/config, {:?} scale",
        cfg.samples, cfg.scale
    );
    println!(
        "{:<16}{:>12}{:>14}{:>14}{:>16}",
        "benchmark", "raw 2-SDC", "FERRUM cov.", "single cov.", "FERRUM 2-SDCs"
    );
    let mut cov2_sum = 0.0;
    let mut n = 0usize;
    for w in all_workloads() {
        let module = w.build(cfg.scale);
        let raw = pipeline
            .protect(&module, Technique::None)
            .expect("compiles");
        let raw_cpu = pipeline.load(&raw).expect("loads");
        let raw_profile = raw_cpu.profile();
        let c = CampaignConfig {
            samples: cfg.samples,
            seed: cfg.seed,
        };
        let raw2 = run_double_campaign(&raw_cpu, &raw_profile, c);
        let prog = pipeline
            .protect(&module, Technique::Ferrum)
            .expect("protects");
        let cpu = pipeline.load(&prog).expect("loads");
        let profile = cpu.profile();
        let prot2 = run_double_campaign(&cpu, &profile, c);
        let raw1 = run_campaign(&raw_cpu, &raw_profile, c);
        let prot1 = run_campaign(&cpu, &profile, c);
        let cov2 = sdc_coverage(raw2.sdc_prob(), prot2.sdc_prob());
        let cov1 = sdc_coverage(raw1.sdc_prob(), prot1.sdc_prob());
        cov2_sum += cov2;
        n += 1;
        println!(
            "{:<16}{:>11.1}%{:>13.1}%{:>13.1}%{:>16}",
            w.name,
            raw2.sdc_prob() * 100.0,
            cov2 * 100.0,
            cov1 * 100.0,
            prot2.sdc
        );
    }
    println!();
    println!(
        "average FERRUM double-fault coverage: {:.2}% (single-fault: 100%)",
        cov2_sum / n as f64 * 100.0
    );
    println!("a drop below 100% here is expected and motivates the paper's future work");
}
