//! Regenerates the paper's §IV-B1 root-cause analysis: under IR-LEVEL-EDDI,
//! which cross-layer instruction class did each residual SDC's fault hit?
//!
//! The paper identifies branch materialisation (Figs. 8–9), store
//! staging, and call glue as the backend-generated fault sites invisible
//! to IR-level protection; provenance tags let us attribute every SDC
//! directly.

use ferrum::{evaluate_workload, Pipeline, Technique};
use ferrum_workloads::all_workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ferrum_bench::parse_eval_config(&args);
    let pipeline = Pipeline::new();
    println!(
        "§IV-B1 — provenance of residual SDCs under IR-LEVEL-EDDI ({})",
        cfg.opt.label()
    );
    println!(
        "{:<16}{:>8}{:>10}{:>14}{:>12}{:>10}{:>12}{:>12}",
        "benchmark", "SDCs", "from-IR", "branch-mat.", "store-stg", "call", "other-glue", "protection"
    );
    let mut totals = [0usize; 7];
    for w in all_workloads() {
        let report =
            evaluate_workload(&pipeline, &w, cfg).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let ir = report.technique(Technique::IrEddi).expect("ir report");
        let rc = &ir.rootcause;
        let g = |k: &str| rc.glue.get(k).copied().unwrap_or(0);
        let branch = g("branch-materialize");
        let store = g("store-staging");
        let call = g("call-glue") + g("ret-glue");
        let other = rc.glue_total() - branch - store - call;
        println!(
            "{:<16}{:>8}{:>10}{:>14}{:>12}{:>10}{:>12}{:>12}",
            w.name, rc.total_sdc, rc.from_ir, branch, store, call, other, rc.protection
        );
        for (i, v) in [
            rc.total_sdc,
            rc.from_ir,
            branch,
            store,
            call,
            other,
            rc.protection,
        ]
        .into_iter()
        .enumerate()
        {
            totals[i] += v;
        }
        // At -O0 the shadow chain is genuinely redundant, so a fault in
        // protection code is always caught by its own check (or
        // masked).  At -O1 value numbering may route *master* dataflow
        // through a lowered shadow instruction — whichever register
        // already holds the value — so a fault there can corrupt real
        // output after the guarding check already ran: the
        // protection/computation boundary itself dissolves under
        // optimization (root cause 2 again, seen from the other side).
        if cfg.opt == ferrum::OptLevel::O0 {
            assert_eq!(
                rc.protection, 0,
                "{}: at -O0 protection code must never cause SDC",
                w.name
            );
        }
    }
    println!(
        "{:<16}{:>8}{:>10}{:>14}{:>12}{:>10}{:>12}{:>12}",
        "total", totals[0], totals[1], totals[2], totals[3], totals[4], totals[5], totals[6]
    );
    println!();
    println!(
        "backend-glue share of residual SDCs: {:.1}%",
        100.0 * (totals[0] - totals[1]) as f64 / totals[0].max(1) as f64
    );
}
