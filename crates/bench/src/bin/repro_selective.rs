//! Extension: selective protection sweep — the coverage/overhead
//! trade-off curve of the EDDI literature (the paper's related work:
//! SDCTune \[9\], selective duplication evaluation \[19\]).  FERRUM's
//! `selective_percent` stripes protection evenly over the site stream.

use ferrum::{Pipeline, Technique};
use ferrum_eddi::ferrum::FerrumConfig;
use ferrum_faultsim::campaign::{run_campaign, CampaignConfig};
use ferrum_faultsim::stats::{runtime_overhead, sdc_coverage};
use ferrum_workloads::all_workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ferrum_bench::parse_eval_config(&args);
    println!(
        "selective FERRUM sweep — {} faults/config, {:?} scale (suite averages)",
        cfg.samples, cfg.scale
    );
    println!("{:>10}{:>14}{:>14}", "percent", "overhead", "coverage");
    for percent in [0u8, 25, 50, 75, 100] {
        let fcfg = FerrumConfig {
            selective_percent: percent,
            ..FerrumConfig::default()
        };
        let pipeline = Pipeline::new().with_ferrum_config(fcfg);
        let mut o_sum = 0.0;
        let mut c_sum = 0.0;
        let mut n = 0usize;
        for w in all_workloads() {
            let module = w.build(cfg.scale);
            let raw = pipeline
                .protect(&module, Technique::None)
                .expect("compiles");
            let raw_cpu = pipeline.load(&raw).expect("loads");
            let raw_prof = raw_cpu.profile();
            let raw_res = run_campaign(
                &raw_cpu,
                &raw_prof,
                CampaignConfig {
                    samples: cfg.samples,
                    seed: cfg.seed,
                },
            );
            let prog = pipeline
                .protect(&module, Technique::Ferrum)
                .expect("protects");
            let cpu = pipeline.load(&prog).expect("loads");
            let prof = cpu.profile();
            let res = run_campaign(
                &cpu,
                &prof,
                CampaignConfig {
                    samples: cfg.samples,
                    seed: cfg.seed + 1,
                },
            );
            o_sum += runtime_overhead(raw_prof.result.cycles, prof.result.cycles);
            c_sum += sdc_coverage(raw_res.sdc_prob(), res.sdc_prob());
            n += 1;
        }
        println!(
            "{:>9}%{:>13.1}%{:>13.1}%",
            percent,
            o_sum / n as f64 * 100.0,
            c_sum / n as f64 * 100.0
        );
    }
}
