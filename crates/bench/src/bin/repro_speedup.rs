//! Measures the snapshot-accelerated campaign engine against the
//! serial executor: same seed, same sampled faults, byte-identical
//! outcome records — but with golden-prefix sharing and work-stealing
//! parallelism.  Prints injections/sec for each engine and the
//! campaign telemetry from [`ferrum::CampaignStats`]: snapshot
//! hit-rate, share of dynamic instructions skipped, and worker-load
//! balance.  A second table runs the FERRUM-protected build and
//! reports the detection-latency distribution (injection→detection
//! instruction distance), which must be identical across engines.
//!
//! A third table runs the coverage-pruned executor
//! (`run_campaign_pruned`) on the FERRUM build: faults landing on
//! statically-decided sites (`ferrum::CoverageMap`) are booked without
//! simulation, and the outcome records must still be identical to the
//! serial engine.
//!
//! A fourth table swaps the execution engine itself: the decode-once
//! flattened engine (`ferrum::DecodedCpu`) under the single-thread
//! snapshot executor against the same executor on the reference
//! interpreter.  Outcome records must again be byte-identical; the
//! speedup column is the paper-scale throughput claim for
//! `ferrum_cpu::decoded` (≥10× single-thread).
//!
//! A fifth table measures the incremental campaign mode
//! (`ferrum::run_campaign_incremental`) after a single-function edit:
//! a multi-function FERRUM-protected program is campaigned once to
//! fill the per-function shard cache, one function is edited (a
//! synthetic `nop` changes its content hash), and the stale cache
//! then seeds an incremental run that re-injects only the edited
//! function while replaying every untouched function's shard.  The
//! incremental result must be record-identical to a full stratified
//! re-run on the edited program; the speedup column is wall-clock
//! full/incremental.
//!
//! A sixth table prices the campaign flight recorder
//! (`ferrum::FlightRecorder`): the fastest configuration (decode-once
//! engine, single-thread snapshot executor) runs with no recorder and
//! again with the full NDJSON event stream serialized to a null sink,
//! so the column measures probe + serialization cost with disk IO
//! excluded.  Outcome records must be identical (the recorder is
//! observation-only) and the overhead column backs the <2%
//! telemetry-cost claim in EXPERIMENTS.md.
//!
//! `--samples N --seed S --scale test|paper --threads T` as usual;
//! defaults to 1000 samples and all available cores.  `--json-out
//! <path>` additionally serializes every table into the schema-stable
//! `bench.json` artifact (`ferrum_bench::benchjson`) that
//! `scripts/bench_check.sh` gates against the committed baseline in
//! `results/bench.json`; `--reps N` sets the best-of repetition count
//! for the timing-sensitive recorder table (default 5).

use std::sync::Arc;
use std::time::Instant;

use ferrum::flight::NdjsonSink;
use ferrum::json::{Json, ToJson};
use ferrum::{
    install_flight_recorder, program_signature, run_campaign_incremental, run_campaign_stratified,
    uninstall_flight_recorder, CampaignConfig, CoverageMap, DecodedCpu, Engine, FlightRecorder,
    Pipeline, SnapshotPolicy, Technique,
};
use ferrum_asm::inst::Inst;
use ferrum_asm::program::AsmInst;
use ferrum_eddi::ferrum::Ferrum;
use ferrum_faultsim::campaign::{
    run_campaign, run_campaign_parallel, run_campaign_pruned, run_campaign_snapshot,
    run_campaign_snapshot_on,
};
use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;
use ferrum_mir::value::Value;
use ferrum_workloads::all_workloads;

/// A multi-function program for the incremental table: `main` sums
/// six helpers over a global table.  The catalog workloads compile to
/// a single function, so an edit there invalidates the whole cache;
/// this shape gives the incremental executor untouched shards to
/// reuse, which is the FastFlip scenario (edit one section, re-inject
/// only that section).
fn multi_function_module(helpers: usize, chain: usize) -> Module {
    let mut module = Module::new();
    let g = module.add_global(Global::new("tab", vec![3, 1, 4, 1, 5, 9, 2, 6]));
    for h in 0..helpers {
        let mut f = FunctionBuilder::new(format!("helper{h}"), &[Ty::I64], Some(Ty::I64));
        let mut x = Value::Arg(0);
        for i in 0..chain {
            let k = f.iconst(Ty::I64, (h * chain + i) as i64 % 7 + 1);
            let m = f.mul(Ty::I64, x, Value::const_int(Ty::I64, 3));
            x = f.add(Ty::I64, m, k);
        }
        f.ret(Some(x));
        module.functions.push(f.finish());
    }
    let mut b = FunctionBuilder::new("main", &[], None);
    let base = b.global(g);
    let mut acc = b.iconst(Ty::I64, 0);
    for i in 0..8 {
        let idx = b.iconst(Ty::I64, i);
        let p = b.gep(base, idx);
        let v = b.load(Ty::I64, p);
        for h in 0..helpers {
            let d = b
                .call(format!("helper{h}"), vec![v], Some(Ty::I64))
                .unwrap();
            acc = b.add(Ty::I64, acc, d);
        }
    }
    b.print(acc);
    b.ret(None);
    module.functions.push(b.finish());
    module
}

/// `--flag <value>` lookup for the tool-specific options.
fn arg_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ferrum_bench::parse_eval_config(&args);
    let threads = arg_value(&args, "--threads")
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let json_out: Option<String> = arg_value(&args, "--json-out");
    let reps: usize = arg_value(&args, "--reps").unwrap_or(5).max(1);
    let pipeline = Pipeline::new();
    let mut tables: Vec<(&str, Json)> = Vec::new();

    eprintln!(
        "# campaign-engine speedup — {} faults, seed {}, {:?} scale, {} threads",
        cfg.samples, cfg.seed, cfg.scale, threads
    );
    println!("snapshot campaign engine vs serial executor");
    println!(
        "{:<14}{:>12}{:>12}{:>12}{:>9}{:>10}{:>12}{:>9}{:>9}",
        "benchmark", "serial i/s", "steal i/s", "snap i/s", "speedup", "hit-rate", "steps-saved", "balance", "match"
    );

    let mut snapshot_rows = Vec::new();
    for w in all_workloads() {
        let module = w.build(cfg.scale);
        let prog = pipeline
            .protect(&module, Technique::None)
            .expect("protects");
        let cpu = pipeline.load(&prog).expect("loads");
        let profile = cpu.profile();
        let campaign_cfg = CampaignConfig {
            samples: cfg.samples,
            seed: cfg.seed,
        };

        let serial = run_campaign(&cpu, &profile, campaign_cfg);
        let stealing = run_campaign_parallel(&cpu, &profile, campaign_cfg, threads);
        let snap = run_campaign_snapshot(
            &cpu,
            &profile,
            campaign_cfg,
            threads,
            SnapshotPolicy::default(),
        );

        // Hard determinism check: all three engines must agree on the
        // outcome of every sampled fault (in sampling order) *and* on
        // the detection-latency distribution.
        let identical = serial == stealing
            && serial == snap
            && serial.stats.latency == stealing.stats.latency
            && serial.stats.latency == snap.stats.latency;
        let speedup = snap.stats.injections_per_sec / serial.stats.injections_per_sec;
        println!(
            "{:<14}{:>12.0}{:>12.0}{:>12.0}{:>8.2}x{:>9.0}%{:>11.0}%{:>9.2}{:>9}",
            w.name,
            serial.stats.injections_per_sec,
            stealing.stats.injections_per_sec,
            snap.stats.injections_per_sec,
            speedup,
            snap.stats.snapshot_hit_rate() * 100.0,
            snap.stats.steps_saved_ratio() * 100.0,
            snap.stats.worker_balance(),
            if identical { "yes" } else { "NO" }
        );
        assert!(identical, "{}: engines diverge", w.name);
        snapshot_rows.push(Json::obj(vec![
            ("workload", w.name.to_json()),
            ("serial_ips", serial.stats.injections_per_sec.to_json()),
            ("steal_ips", stealing.stats.injections_per_sec.to_json()),
            ("snap_ips", snap.stats.injections_per_sec.to_json()),
            ("speedup_threads", speedup.to_json()),
            ("hit_rate", snap.stats.snapshot_hit_rate().to_json()),
            ("steps_saved", snap.stats.steps_saved_ratio().to_json()),
            ("balance", snap.stats.worker_balance().to_json()),
            ("identical", Json::Bool(identical)),
        ]));
    }
    tables.push(("snapshot", Json::Arr(snapshot_rows)));

    println!();
    println!("detection latency (FERRUM-protected, snapshot engine)");
    println!(
        "{:<14}{:>10}{:>8}{:>8}{:>8}{:>9}",
        "benchmark", "detected", "p50", "p95", "max", "balance"
    );
    let mut latency_rows = Vec::new();
    for w in all_workloads() {
        let module = w.build(cfg.scale);
        let prog = pipeline
            .protect(&module, Technique::Ferrum)
            .expect("protects");
        let cpu = pipeline.load(&prog).expect("loads");
        let profile = cpu.profile();
        let snap = run_campaign_snapshot(
            &cpu,
            &profile,
            CampaignConfig {
                samples: cfg.samples,
                seed: cfg.seed,
            },
            threads,
            SnapshotPolicy::default(),
        );
        let lat = &snap.stats.latency;
        println!(
            "{:<14}{:>10}{:>8}{:>8}{:>8}{:>9.2}",
            w.name,
            lat.count(),
            lat.p50().map_or_else(|| "-".into(), |v| v.to_string()),
            lat.p95().map_or_else(|| "-".into(), |v| v.to_string()),
            lat.max().map_or_else(|| "-".into(), |v| v.to_string()),
            snap.stats.worker_balance(),
        );
        let opt_count = |v: Option<u64>| v.map_or(Json::Null, |n| n.to_json());
        latency_rows.push(Json::obj(vec![
            ("workload", w.name.to_json()),
            ("detected", lat.count().to_json()),
            ("p50", opt_count(lat.p50())),
            ("p95", opt_count(lat.p95())),
            ("max", opt_count(lat.max())),
            ("balance", snap.stats.worker_balance().to_json()),
        ]));
    }
    tables.push(("latency", Json::Arr(latency_rows)));

    println!();
    println!("coverage-pruned executor vs serial (FERRUM-protected)");
    println!(
        "{:<14}{:>12}{:>12}{:>9}{:>12}{:>13}{:>9}",
        "benchmark", "serial i/s", "pruned i/s", "speedup", "prune-rate", "steps-saved", "match"
    );
    let mut pruned_rows = Vec::new();
    for w in all_workloads() {
        let module = w.build(cfg.scale);
        let prog = pipeline
            .protect(&module, Technique::Ferrum)
            .expect("protects");
        let map = CoverageMap::analyze(&prog);
        let cpu = pipeline.load(&prog).expect("loads");
        let profile = cpu.profile();
        let campaign_cfg = CampaignConfig {
            samples: cfg.samples,
            seed: cfg.seed,
        };
        let serial = run_campaign(&cpu, &profile, campaign_cfg);
        let pruned = run_campaign_pruned(&cpu, &profile, campaign_cfg, &map);
        let identical = serial == pruned;
        let steps_saved = 1.0
            - pruned.stats.steps_executed as f64 / serial.stats.steps_executed.max(1) as f64;
        println!(
            "{:<14}{:>12.0}{:>12.0}{:>8.2}x{:>11.0}%{:>12.0}%{:>9}",
            w.name,
            serial.stats.injections_per_sec,
            pruned.stats.injections_per_sec,
            pruned.stats.injections_per_sec / serial.stats.injections_per_sec,
            pruned.stats.prune_rate() * 100.0,
            steps_saved * 100.0,
            if identical { "yes" } else { "NO" }
        );
        assert!(identical, "{}: pruned engine diverges", w.name);
        pruned_rows.push(Json::obj(vec![
            ("workload", w.name.to_json()),
            ("serial_ips", serial.stats.injections_per_sec.to_json()),
            ("pruned_ips", pruned.stats.injections_per_sec.to_json()),
            (
                "speedup",
                (pruned.stats.injections_per_sec / serial.stats.injections_per_sec).to_json(),
            ),
            ("prune_rate", pruned.stats.prune_rate().to_json()),
            ("steps_saved", steps_saved.to_json()),
            ("identical", Json::Bool(identical)),
        ]));
    }
    tables.push(("pruned", Json::Arr(pruned_rows)));

    println!();
    println!("decode-once flattened engine vs interpreter (FERRUM-protected, snapshot executor, 1 thread)");
    println!(
        "{:<14}{:>14}{:>14}{:>9}{:>12}{:>9}",
        "benchmark", "interp i/s", "decoded i/s", "speedup", "superinstr", "match"
    );
    let mut log_speedup_sum = 0.0;
    let mut n = 0usize;
    let mut decoded_rows = Vec::new();
    for w in all_workloads() {
        let module = w.build(cfg.scale);
        let prog = pipeline
            .protect(&module, Technique::Ferrum)
            .expect("protects");
        let cpu = pipeline.load(&prog).expect("loads");
        let decoded = DecodedCpu::new(&cpu);
        let profile = cpu.profile();
        let campaign_cfg = CampaignConfig {
            samples: cfg.samples,
            seed: cfg.seed,
        };
        let interp = run_campaign_snapshot_on(
            Engine::Interpreter(&cpu),
            &profile,
            campaign_cfg,
            1,
            SnapshotPolicy::default(),
        );
        let fast = run_campaign_snapshot_on(
            Engine::Decoded(&decoded),
            &profile,
            campaign_cfg,
            1,
            SnapshotPolicy::default(),
        );
        let identical = interp == fast && interp.stats.latency == fast.stats.latency;
        let speedup = fast.stats.injections_per_sec / interp.stats.injections_per_sec;
        log_speedup_sum += speedup.ln();
        n += 1;
        println!(
            "{:<14}{:>14.0}{:>14.0}{:>8.2}x{:>12}{:>9}",
            w.name,
            interp.stats.injections_per_sec,
            fast.stats.injections_per_sec,
            speedup,
            decoded.superinstructions(),
            if identical { "yes" } else { "NO" }
        );
        assert!(identical, "{}: decoded engine diverges", w.name);
        decoded_rows.push(Json::obj(vec![
            ("workload", w.name.to_json()),
            ("interp_ips", interp.stats.injections_per_sec.to_json()),
            ("decoded_ips", fast.stats.injections_per_sec.to_json()),
            ("speedup", speedup.to_json()),
            ("superinstructions", decoded.superinstructions().to_json()),
            ("identical", Json::Bool(identical)),
        ]));
    }
    let geomean_speedup = (log_speedup_sum / n.max(1) as f64).exp();
    println!("geomean speedup: {geomean_speedup:.2}x");
    tables.push((
        "decoded",
        Json::obj(vec![
            ("rows", Json::Arr(decoded_rows)),
            ("geomean_speedup", geomean_speedup.to_json()),
        ]),
    ));

    println!();
    println!("flight-recorder overhead (FERRUM-protected, decoded engine, snapshot executor, 1 thread, NDJSON to null sink)");
    println!(
        "{:<14}{:>14}{:>14}{:>10}{:>9}",
        "benchmark", "off i/s", "on i/s", "overhead", "match"
    );
    let mut log_ratio_sum = 0.0;
    let mut n_overhead = 0usize;
    let mut recorder_rows = Vec::new();
    for w in all_workloads() {
        let module = w.build(cfg.scale);
        let prog = pipeline
            .protect(&module, Technique::Ferrum)
            .expect("protects");
        let hash = program_signature(&prog);
        let cpu = pipeline.load(&prog).expect("loads");
        let decoded = DecodedCpu::new(&cpu);
        let profile = cpu.profile();
        let campaign_cfg = CampaignConfig {
            samples: cfg.samples,
            seed: cfg.seed,
        };
        let run = |recorded: bool| {
            if recorded {
                install_flight_recorder(Arc::new(
                    FlightRecorder::new(Arc::new(NdjsonSink::new(Box::new(std::io::sink()))))
                        .with_labels(w.name, "ferrum")
                        .with_program_hash(hash),
                ));
            }
            let r = run_campaign_snapshot_on(
                Engine::Decoded(&decoded),
                &profile,
                campaign_cfg,
                1,
                SnapshotPolicy::default(),
            );
            if recorded {
                uninstall_flight_recorder();
            }
            r
        };
        // Interleaved best-of-`reps` per configuration: each timed
        // campaign lasts only tens of milliseconds at paper scale, so
        // a single scheduler interrupt shows up as whole percentage
        // points and would swamp the percent-level effect being
        // priced.
        let off = run(false);
        let on = run(true);
        let mut off_ips = off.stats.injections_per_sec;
        let mut on_ips = on.stats.injections_per_sec;
        for _ in 1..reps {
            off_ips = off_ips.max(run(false).stats.injections_per_sec);
            on_ips = on_ips.max(run(true).stats.injections_per_sec);
        }
        let identical = off == on;
        let ratio = on_ips / off_ips;
        log_ratio_sum += ratio.ln();
        n_overhead += 1;
        println!(
            "{:<14}{:>14.0}{:>14.0}{:>9.2}%{:>9}",
            w.name,
            off_ips,
            on_ips,
            (1.0 - ratio) * 100.0,
            if identical { "yes" } else { "NO" }
        );
        assert!(identical, "{}: recording changed outcomes", w.name);
        recorder_rows.push(Json::obj(vec![
            ("workload", w.name.to_json()),
            ("off_ips", off_ips.to_json()),
            ("on_ips", on_ips.to_json()),
            ("overhead_pct", ((1.0 - ratio) * 100.0).to_json()),
            ("identical", Json::Bool(identical)),
        ]));
    }
    let geomean_overhead = (1.0 - (log_ratio_sum / n_overhead.max(1) as f64).exp()) * 100.0;
    println!("geomean overhead: {geomean_overhead:.2}%");
    tables.push((
        "recorder",
        Json::obj(vec![
            ("rows", Json::Arr(recorder_rows)),
            ("geomean_overhead_pct", geomean_overhead.to_json()),
        ]),
    ));

    println!();
    println!("incremental campaign after a single-function edit (FERRUM-protected, multi-function program)");
    println!(
        "{:<14}{:>12}{:>12}{:>12}{:>12}{:>9}{:>9}",
        "edited fn", "full ms", "incr ms", "reinjected", "reused", "speedup", "match"
    );
    let module = multi_function_module(6, 24);
    let base = Ferrum::new().protect_module(&module).expect("protects");
    let base_cpu = ferrum_cpu::run::Cpu::load(&base).expect("loads");
    let base_profile = base_cpu.profile();
    let campaign_cfg = CampaignConfig {
        samples: cfg.samples,
        seed: cfg.seed,
    };
    let (_, cache) = run_campaign_stratified(&base_cpu, &base_profile, campaign_cfg, &base);
    let names: Vec<String> = base.functions.iter().map(|f| f.name.clone()).collect();
    let mut incremental_rows = Vec::new();
    for name in &names {
        let mut edited = base.clone();
        edited
            .functions
            .iter_mut()
            .find(|f| &f.name == name)
            .expect("function exists")
            .blocks[0]
            .insts
            .insert(0, AsmInst::synthetic(Inst::Nop));
        let cpu = ferrum_cpu::run::Cpu::load(&edited).expect("loads");
        let profile = cpu.profile();
        let t0 = Instant::now();
        let (full, _) = run_campaign_stratified(&cpu, &profile, campaign_cfg, &edited);
        let t_full = t0.elapsed();
        let t1 = Instant::now();
        let (inc, _) = run_campaign_incremental(&cpu, &profile, campaign_cfg, &edited, &cache);
        let t_inc = t1.elapsed();
        let identical = full == inc;
        println!(
            "{:<14}{:>12.1}{:>12.1}{:>12}{:>12}{:>8.2}x{:>9}",
            name,
            t_full.as_secs_f64() * 1e3,
            t_inc.as_secs_f64() * 1e3,
            inc.total() - inc.stats.reused_sites,
            inc.stats.reused_sites,
            t_full.as_secs_f64() / t_inc.as_secs_f64().max(1e-9),
            if identical { "yes" } else { "NO" }
        );
        assert!(identical, "{name}: incremental run diverges from full re-run");
        incremental_rows.push(Json::obj(vec![
            ("edited", name.to_json()),
            ("full_ms", (t_full.as_secs_f64() * 1e3).to_json()),
            ("incr_ms", (t_inc.as_secs_f64() * 1e3).to_json()),
            ("reinjected", (inc.total() - inc.stats.reused_sites).to_json()),
            ("reused", inc.stats.reused_sites.to_json()),
            (
                "speedup_wall",
                (t_full.as_secs_f64() / t_inc.as_secs_f64().max(1e-9)).to_json(),
            ),
            ("identical", Json::Bool(identical)),
        ]));
    }
    tables.push(("incremental", Json::Arr(incremental_rows)));

    if let Some(path) = json_out {
        let doc = Json::obj(vec![
            ("schema", Json::Str(ferrum_bench::benchjson::SCHEMA.into())),
            (
                "config",
                Json::obj(vec![
                    ("samples", cfg.samples.to_json()),
                    ("seed", cfg.seed.to_json()),
                    (
                        "scale",
                        match cfg.scale {
                            ferrum::Scale::Test => "test",
                            ferrum::Scale::Paper => "paper",
                        }
                        .to_json(),
                    ),
                    ("threads", threads.to_json()),
                    ("reps", reps.to_json()),
                ]),
            ),
            ("tables", Json::obj(tables.clone())),
        ]);
        std::fs::write(&path, doc.to_string_pretty() + "\n")
            .unwrap_or_else(|e| panic!("--json-out {path}: {e}"));
        eprintln!("# wrote {path}");
    }
}
