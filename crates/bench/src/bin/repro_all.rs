//! Convenience driver: regenerates every artifact into `results/`.
//!
//! ```sh
//! cargo run --release -p ferrum-bench --bin repro_all [--samples N]
//! ```

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::fs::create_dir_all("results").expect("create results/");
    let bins = [
        ("repro_fig10", "fig10.txt"),
        ("repro_fig11", "fig11.txt"),
        ("repro_table1", "table1.txt"),
        ("repro_table2", "table2.txt"),
        ("repro_exectime", "exectime.txt"),
        ("repro_rootcause", "rootcause.txt"),
        ("repro_ablation", "ablation.txt"),
        ("repro_multibit", "multibit.txt"),
    ];
    for (bin, out) in bins {
        eprintln!("== {bin} -> results/{out}");
        let exe = std::env::current_exe().expect("self path");
        let sibling = exe.with_file_name(bin);
        let output = Command::new(&sibling)
            .args(&args)
            .output()
            .unwrap_or_else(|e| panic!("run {bin}: {e} (build with --release first)"));
        assert!(output.status.success(), "{bin} failed: {output:?}");
        std::fs::write(format!("results/{out}"), &output.stdout).expect("write");
    }
    eprintln!("all artifacts regenerated under results/");
}
