//! Regenerates §IV-B3: the time to execute the FERRUM transformation
//! itself, against the static instruction count of each benchmark.
//!
//! Paper reference points: 0.117 s on average, maximum on
//! Particlefilter (2230 static instructions), minimum on BFS (406);
//! time grows linearly with static size because FERRUM scans the code
//! once and emits transformations.

use std::time::Instant;

use ferrum_eddi::ferrum::Ferrum;
use ferrum_workloads::all_workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ferrum_bench::parse_eval_config(&args);
    println!(
        "§IV-B3 — FERRUM transformation time ({:?} scale)",
        cfg.scale
    );
    println!(
        "{:<16}{:>14}{:>16}{:>14}",
        "benchmark", "static insts", "pass time (µs)", "µs / inst"
    );
    let mut total_us = 0f64;
    let mut rows = Vec::new();
    for w in all_workloads() {
        let module = w.build(cfg.scale);
        let asm = ferrum_backend::compile(&module).expect("compiles");
        let statics = asm.static_inst_count();
        // Median of several runs to suppress allocator noise.
        let mut times: Vec<f64> = (0..9)
            .map(|_| {
                let t0 = Instant::now();
                let _ = Ferrum::new().protect(&asm).expect("protects");
                t0.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        let us = times[times.len() / 2];
        total_us += us;
        rows.push((w.name, statics, us));
        println!(
            "{:<16}{:>14}{:>16.1}{:>14.3}",
            w.name,
            statics,
            us,
            us / statics as f64
        );
    }
    println!(
        "{:<16}{:>14}{:>16.1}",
        "average",
        "",
        total_us / rows.len() as f64
    );
    let max = rows
        .iter()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .expect("rows");
    let min = rows
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("rows");
    println!();
    println!("slowest: {} ({} static insts)", max.0, max.1);
    println!("fastest: {} ({} static insts)", min.0, min.1);
    // Linearity check: correlation between static size and time.
    let n = rows.len() as f64;
    let (mx, my) = (
        rows.iter().map(|r| r.1 as f64).sum::<f64>() / n,
        rows.iter().map(|r| r.2).sum::<f64>() / n,
    );
    let cov: f64 = rows
        .iter()
        .map(|r| (r.1 as f64 - mx) * (r.2 - my))
        .sum::<f64>();
    let vx: f64 = rows.iter().map(|r| (r.1 as f64 - mx).powi(2)).sum::<f64>();
    let vy: f64 = rows.iter().map(|r| (r.2 - my).powi(2)).sum::<f64>();
    println!(
        "pearson r (static insts vs time) = {:.3}",
        cov / (vx * vy).sqrt()
    );
}
