//! Micro-benchmarks for the protection passes: how fast each technique
//! transforms the benchmark programs (the paper's §IV-B3 measures
//! exactly this for FERRUM).

use std::time::Duration;

use ferrum_bench::harness::{Config, Group};
use ferrum_eddi::ferrum::Ferrum;
use ferrum_eddi::hybrid::HybridAsmEddi;
use ferrum_eddi::ir_eddi::IrEddi;
use ferrum_workloads::{all_workloads, Scale};

fn main() {
    let group = Group::with_config(
        "passes",
        Config {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_secs(1),
            batches: 10,
        },
    );
    for w in all_workloads() {
        let module = w.build(Scale::Paper);
        let asm = ferrum_backend::compile(&module).expect("compiles");
        group.bench(&format!("ferrum/{}", w.name), || {
            Ferrum::new().protect(&asm).expect("protects");
        });
        group.bench(&format!("ir_eddi/{}", w.name), || {
            IrEddi::new().protect(&module);
        });
        group.bench(&format!("hybrid/{}", w.name), || {
            HybridAsmEddi::new().protect(&module).expect("protects");
        });
        group.bench(&format!("backend/{}", w.name), || {
            ferrum_backend::compile(&module).expect("compiles");
        });
    }
}
