//! Criterion micro-benchmarks for the protection passes: how fast each
//! technique transforms the benchmark programs (the paper's §IV-B3
//! measures exactly this for FERRUM).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ferrum_eddi::ferrum::Ferrum;
use ferrum_eddi::hybrid::HybridAsmEddi;
use ferrum_eddi::ir_eddi::IrEddi;
use ferrum_workloads::{all_workloads, Scale};

fn bench_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("passes");
    for w in all_workloads() {
        let module = w.build(Scale::Paper);
        let asm = ferrum_backend::compile(&module).expect("compiles");
        group.bench_with_input(BenchmarkId::new("ferrum", w.name), &asm, |b, asm| {
            b.iter(|| Ferrum::new().protect(asm).expect("protects"))
        });
        group.bench_with_input(BenchmarkId::new("ir_eddi", w.name), &module, |b, m| {
            b.iter(|| IrEddi::new().protect(m))
        });
        group.bench_with_input(BenchmarkId::new("hybrid", w.name), &module, |b, m| {
            b.iter(|| HybridAsmEddi::new().protect(m).expect("protects"))
        });
        group.bench_with_input(BenchmarkId::new("backend", w.name), &module, |b, m| {
            b.iter(|| ferrum_backend::compile(m).expect("compiles"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(1));
    targets = bench_passes
}
criterion_main!(benches);
