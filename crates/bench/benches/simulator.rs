//! Criterion micro-benchmarks for the simulator: fault-free execution
//! throughput and fault-campaign cost — the quantities that make
//! 1000-fault campaigns per benchmark affordable.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ferrum_cpu::fault::FaultSpec;
use ferrum_cpu::run::Cpu;
use ferrum_workloads::{workload, Scale};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    for name in ["bfs", "needle", "kmeans"] {
        let w = workload(name).expect("in catalog");
        let module = w.build(Scale::Paper);
        let asm = ferrum_backend::compile(&module).expect("compiles");
        let cpu = Cpu::load(&asm).expect("loads");
        let dyn_insts = cpu.run(None).dyn_insts;
        group.throughput(Throughput::Elements(dyn_insts));
        group.bench_with_input(BenchmarkId::new("run", name), &cpu, |b, cpu| {
            b.iter(|| cpu.run(None))
        });
        group.bench_with_input(BenchmarkId::new("profile", name), &cpu, |b, cpu| {
            b.iter(|| cpu.profile())
        });
        group.bench_with_input(BenchmarkId::new("faulted_run", name), &cpu, |b, cpu| {
            b.iter(|| cpu.run(Some(FaultSpec::new(dyn_insts / 2, 3))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(1));
    targets = bench_simulator
}
criterion_main!(benches);
