//! Micro-benchmarks for the simulator: fault-free execution throughput
//! and fault-campaign cost — the quantities that make 1000-fault
//! campaigns per benchmark affordable.

use std::time::Duration;

use ferrum_bench::harness::{Config, Group};
use ferrum_cpu::fault::FaultSpec;
use ferrum_cpu::run::Cpu;
use ferrum_workloads::{workload, Scale};

fn main() {
    let group = Group::with_config(
        "simulator",
        Config {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_secs(1),
            batches: 10,
        },
    );
    for name in ["bfs", "needle", "kmeans"] {
        let w = workload(name).expect("in catalog");
        let module = w.build(Scale::Paper);
        let asm = ferrum_backend::compile(&module).expect("compiles");
        let cpu = Cpu::load(&asm).expect("loads");
        let dyn_insts = cpu.run(None).dyn_insts;
        group.bench_throughput(&format!("run/{name}"), dyn_insts, || {
            cpu.run(None);
        });
        group.bench_throughput(&format!("profile/{name}"), dyn_insts, || {
            cpu.profile();
        });
        group.bench_throughput(&format!("faulted_run/{name}"), dyn_insts, || {
            cpu.run(Some(FaultSpec::new(dyn_insts / 2, 3)));
        });
    }
}
