//! Micro-benchmarks comparing checker idioms: the scalar Fig.-4
//! sequence versus the batched Fig.-6 SIMD sequence, in simulated
//! cycles per protected instruction (the quantity behind FERRUM's
//! Fig.-11 advantage).

use std::time::Duration;

use ferrum::{Pipeline, Technique};
use ferrum_bench::harness::{Config, Group};
use ferrum_eddi::ferrum::FerrumConfig;
use ferrum_workloads::{workload, Scale};

fn main() {
    let w = workload("pathfinder").expect("in catalog");
    let module = w.build(Scale::Test);
    let group = Group::with_config(
        "checkers",
        Config {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_secs(1),
            batches: 10,
        },
    );
    {
        let pipeline = Pipeline::new().with_ferrum_config(FerrumConfig {
            simd: false,
            ..FerrumConfig::default()
        });
        let prog = pipeline
            .protect(&module, Technique::Ferrum)
            .expect("protects");
        let cpu = pipeline.load(&prog).expect("loads");
        group.bench("protect+run scalar (no simd)", || {
            cpu.run(None);
        });
    }
    {
        let pipeline = Pipeline::new();
        let prog = pipeline
            .protect(&module, Technique::Ferrum)
            .expect("protects");
        let cpu = pipeline.load(&prog).expect("loads");
        group.bench("protect+run simd batched", || {
            cpu.run(None);
        });
    }
    {
        let pipeline = Pipeline::new();
        let prog = pipeline
            .protect(&module, Technique::HybridAsmEddi)
            .expect("protects");
        let cpu = pipeline.load(&prog).expect("loads");
        group.bench("protect+run hybrid", || {
            cpu.run(None);
        });
    }
}
