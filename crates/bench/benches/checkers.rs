//! Criterion micro-benchmarks comparing checker idioms: the scalar
//! Fig.-4 sequence versus the batched Fig.-6 SIMD sequence, in simulated
//! cycles per protected instruction (the quantity behind FERRUM's
//! Fig.-11 advantage).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use ferrum::{Pipeline, Technique};
use ferrum_eddi::ferrum::FerrumConfig;
use ferrum_workloads::{workload, Scale};

fn bench_checkers(c: &mut Criterion) {
    let w = workload("pathfinder").expect("in catalog");
    let module = w.build(Scale::Test);
    let mut group = c.benchmark_group("checkers");
    group.bench_function("protect+run scalar (no simd)", |b| {
        let pipeline = Pipeline::new().with_ferrum_config(FerrumConfig {
            simd: false,
            ..FerrumConfig::default()
        });
        let prog = pipeline
            .protect(&module, Technique::Ferrum)
            .expect("protects");
        let cpu = pipeline.load(&prog).expect("loads");
        b.iter(|| cpu.run(None))
    });
    group.bench_function("protect+run simd batched", |b| {
        let pipeline = Pipeline::new();
        let prog = pipeline
            .protect(&module, Technique::Ferrum)
            .expect("protects");
        let cpu = pipeline.load(&prog).expect("loads");
        b.iter(|| cpu.run(None))
    });
    group.bench_function("protect+run hybrid", |b| {
        let pipeline = Pipeline::new();
        let prog = pipeline
            .protect(&module, Technique::HybridAsmEddi)
            .expect("protects");
        let cpu = pipeline.load(&prog).expect("loads");
        b.iter(|| cpu.run(None))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(1));
    targets = bench_checkers
}
criterion_main!(benches);
