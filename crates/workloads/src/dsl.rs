//! Small helpers that make the MIR kernels read like their C sources:
//! mutable stack variables, counted loops, and fixed-point arithmetic.

use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::inst::ICmpPred;
use ferrum_mir::types::Ty;
use ferrum_mir::value::Value;

/// Fixed-point fractional bits (Q8).
pub const FX_SHIFT: i64 = 8;
/// Fixed-point scale factor.
pub const FX_ONE: i64 = 1 << FX_SHIFT;

/// A mutable stack variable (an alloca slot).
#[derive(Debug, Clone, Copy)]
pub struct Var {
    ptr: Value,
    ty: Ty,
}

impl Var {
    /// Declares a variable initialised to `init`.
    pub fn new(b: &mut FunctionBuilder, ty: Ty, init: Value) -> Var {
        let ptr = b.alloca(ty);
        b.store(ty, init, ptr);
        Var { ptr, ty }
    }

    /// Declares a zero-initialised variable.
    pub fn zero(b: &mut FunctionBuilder, ty: Ty) -> Var {
        let z = b.iconst(ty, 0);
        Var::new(b, ty, z)
    }

    /// Current value.
    pub fn get(self, b: &mut FunctionBuilder) -> Value {
        b.load(self.ty, self.ptr)
    }

    /// Overwrites the value.
    pub fn set(self, b: &mut FunctionBuilder, v: Value) {
        b.store(self.ty, v, self.ptr);
    }

    /// `var += v`.
    pub fn add_assign(self, b: &mut FunctionBuilder, v: Value) {
        let cur = self.get(b);
        let next = b.add(self.ty, cur, v);
        self.set(b, next);
    }
}

/// Emits `for i in lo..hi { body(i) }`; on return the builder sits in
/// the loop's exit block.
pub fn for_loop(
    b: &mut FunctionBuilder,
    lo: Value,
    hi: Value,
    body: impl FnOnce(&mut FunctionBuilder, Value),
) {
    let header = b.create_block("for_header");
    let body_bb = b.create_block("for_body");
    let exit = b.create_block("for_exit");
    let i = Var::new(b, Ty::I64, lo);
    b.jmp(header);

    b.switch_to(header);
    let iv = i.get(b);
    let c = b.icmp(ICmpPred::Slt, Ty::I64, iv, hi);
    b.br(c, body_bb, exit);

    b.switch_to(body_bb);
    let iv = i.get(b);
    body(b, iv);
    let one = b.iconst(Ty::I64, 1);
    let iv2 = i.get(b);
    let next = b.add(Ty::I64, iv2, one);
    i.set(b, next);
    b.jmp(header);

    b.switch_to(exit);
}

/// Emits `if cond { then_body }`; the builder ends in the join block.
pub fn if_then(b: &mut FunctionBuilder, cond: Value, then_body: impl FnOnce(&mut FunctionBuilder)) {
    let then_bb = b.create_block("if_then");
    let join = b.create_block("if_join");
    b.br(cond, then_bb, join);
    b.switch_to(then_bb);
    then_body(b);
    b.jmp(join);
    b.switch_to(join);
}

/// Emits `if cond { then_body } else { else_body }`.
pub fn if_else(
    b: &mut FunctionBuilder,
    cond: Value,
    then_body: impl FnOnce(&mut FunctionBuilder),
    else_body: impl FnOnce(&mut FunctionBuilder),
) {
    let then_bb = b.create_block("ie_then");
    let else_bb = b.create_block("ie_else");
    let join = b.create_block("ie_join");
    b.br(cond, then_bb, else_bb);
    b.switch_to(then_bb);
    then_body(b);
    b.jmp(join);
    b.switch_to(else_bb);
    else_body(b);
    b.jmp(join);
    b.switch_to(join);
}

/// `min(a, b)` via a branch (Rodinia kernels branch rather than cmov).
pub fn min_branch(b: &mut FunctionBuilder, a: Value, v: Value) -> Value {
    let out = Var::new(b, Ty::I64, a);
    let c = b.icmp(ICmpPred::Slt, Ty::I64, v, a);
    if_then(b, c, |b| out.set(b, v));
    out.get(b)
}

/// `max(a, b)` via a branch.
pub fn max_branch(b: &mut FunctionBuilder, a: Value, v: Value) -> Value {
    let out = Var::new(b, Ty::I64, a);
    let c = b.icmp(ICmpPred::Sgt, Ty::I64, v, a);
    if_then(b, c, |b| out.set(b, v));
    out.get(b)
}

/// `|v|` via a branch.
pub fn abs_branch(b: &mut FunctionBuilder, v: Value) -> Value {
    let out = Var::new(b, Ty::I64, v);
    let zero = b.iconst(Ty::I64, 0);
    let c = b.icmp(ICmpPred::Slt, Ty::I64, v, zero);
    if_then(b, c, |b| {
        let zero = b.iconst(Ty::I64, 0);
        let n = b.sub(Ty::I64, zero, v);
        out.set(b, n);
    });
    out.get(b)
}

/// Fixed-point multiply: `(a * b) >> FX_SHIFT`.
pub fn fx_mul(b: &mut FunctionBuilder, a: Value, v: Value) -> Value {
    let p = b.mul(Ty::I64, a, v);
    let sh = b.iconst(Ty::I64, FX_SHIFT);
    b.ashr(Ty::I64, p, sh)
}

/// Fixed-point divide: `(a << FX_SHIFT) / b`.
pub fn fx_div(b: &mut FunctionBuilder, a: Value, v: Value) -> Value {
    let sh = b.iconst(Ty::I64, FX_SHIFT);
    let num = b.shl(Ty::I64, a, sh);
    b.sdiv(Ty::I64, num, v)
}

/// Loads `base[idx]` (64-bit word elements).
pub fn load_elem(b: &mut FunctionBuilder, base: Value, idx: Value) -> Value {
    let p = b.gep(base, idx);
    b.load(Ty::I64, p)
}

/// Stores `v` to `base[idx]`.
pub fn store_elem(b: &mut FunctionBuilder, base: Value, idx: Value, v: Value) {
    let p = b.gep(base, idx);
    b.store(Ty::I64, v, p);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::interp::Interp;
    use ferrum_mir::module::Module;

    fn run_main(build: impl FnOnce(&mut FunctionBuilder)) -> Vec<i64> {
        let mut b = FunctionBuilder::new("main", &[], None);
        build(&mut b);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        ferrum_mir::verify::verify_module(&m).expect("verifies");
        Interp::new(&m).run().expect("runs").output
    }

    #[test]
    fn for_loop_counts() {
        let out = run_main(|b| {
            let acc = Var::zero(b, Ty::I64);
            let lo = b.iconst(Ty::I64, 2);
            let hi = b.iconst(Ty::I64, 7);
            for_loop(b, lo, hi, |b, i| acc.add_assign(b, i));
            let v = acc.get(b);
            b.print(v);
        });
        assert_eq!(out, vec![2 + 3 + 4 + 5 + 6]);
    }

    #[test]
    fn nested_loops() {
        let out = run_main(|b| {
            let acc = Var::zero(b, Ty::I64);
            let lo = b.iconst(Ty::I64, 0);
            let hi = b.iconst(Ty::I64, 4);
            for_loop(b, lo, hi, |b, i| {
                let lo2 = b.iconst(Ty::I64, 0);
                let hi2 = b.iconst(Ty::I64, 3);
                for_loop(b, lo2, hi2, |b, j| {
                    let p = b.mul(Ty::I64, i, j);
                    acc.add_assign(b, p);
                });
            });
            let v = acc.get(b);
            b.print(v);
        });
        assert_eq!(out, vec![(1 + 2 + 3) * (1 + 2)]);
    }

    #[test]
    fn branches_and_minmax_abs() {
        let out = run_main(|b| {
            let three = b.iconst(Ty::I64, 3);
            let neg5 = b.iconst(Ty::I64, -5);
            let m = min_branch(b, three, neg5);
            b.print(m);
            let m = max_branch(b, three, neg5);
            b.print(m);
            let a = abs_branch(b, neg5);
            b.print(a);
            let a = abs_branch(b, three);
            b.print(a);
        });
        assert_eq!(out, vec![-5, 3, 5, 3]);
    }

    #[test]
    fn if_else_paths() {
        let out = run_main(|b| {
            let r = Var::zero(b, Ty::I64);
            let one = b.iconst(Ty::I1, 1);
            if_else(
                b,
                one,
                |b| {
                    let v = b.iconst(Ty::I64, 10);
                    r.set(b, v);
                },
                |b| {
                    let v = b.iconst(Ty::I64, 20);
                    r.set(b, v);
                },
            );
            let v = r.get(b);
            b.print(v);
        });
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn fixed_point_arithmetic() {
        let out = run_main(|b| {
            let a = b.iconst(Ty::I64, 3 * FX_ONE / 2); // 1.5
            let c = b.iconst(Ty::I64, FX_ONE / 2); // 0.5
            let p = fx_mul(b, a, c); // 0.75
            b.print(p);
            let q = fx_div(b, a, c); // 3.0
            b.print(q);
        });
        assert_eq!(out, vec![3 * FX_ONE / 4, 3 * FX_ONE]);
    }

    #[test]
    fn var_accumulation() {
        let out = run_main(|b| {
            let v = Var::zero(b, Ty::I64);
            let seven = b.iconst(Ty::I64, 7);
            v.add_assign(b, seven);
            v.add_assign(b, seven);
            let got = v.get(b);
            b.print(got);
        });
        assert_eq!(out, vec![14]);
    }
}
