//! `particlefilter` — 2-D particle filter with LCG noise and systematic
//! resampling (Rodinia's ParticleFilter, Table II: Noise estimator).
//!
//! Tracks an object moving diagonally across a plane from noisy
//! measurements: per step, particles propagate with pseudo-random noise
//! in both coordinates, weights follow an inverse-Manhattan-distance
//! likelihood (fixed point), and resampling scans the cumulative weight
//! array.  The largest and most instruction-diverse kernel — in the
//! paper, ParticleFilter has the most static instructions and the
//! longest FERRUM transformation time (§IV-B3).

use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::inst::ICmpPred;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;
use ferrum_mir::value::Value;

use crate::catalog::Scale;
use crate::dsl::{abs_branch, for_loop, if_then, load_elem, store_elem, Var, FX_ONE};
use crate::kernels::rng_for;


/// Problem size.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Particle count.
    pub particles: usize,
    /// Time steps.
    pub steps: usize,
}

/// Sizes per scale.
pub fn params(scale: Scale) -> Params {
    match scale {
        Scale::Test => Params {
            particles: 8,
            steps: 3,
        },
        Scale::Paper => Params {
            particles: 20,
            steps: 5,
        },
    }
}

/// LCG constants (Numerical Recipes flavour, wrapping 64-bit).
const LCG_A: i64 = 6364136223846793005;
const LCG_C: i64 = 1442695040888963407;

fn lcg_next(state: i64) -> i64 {
    state.wrapping_mul(LCG_A).wrapping_add(LCG_C)
}

/// Extracts a small noise value in `[-4, 3]` from an LCG state.
fn lcg_noise(state: i64) -> i64 {
    ((state >> 33) & 7) - 4
}

/// True per-step object motion.
const VEL_X: i64 = 3;
const VEL_Y: i64 = 2;

struct Inputs {
    init_x: Vec<i64>,
    init_y: Vec<i64>,
    meas_x: Vec<i64>,
    meas_y: Vec<i64>,
    seed0: i64,
}

fn inputs(p: Params) -> Inputs {
    let mut rng = rng_for("particlefilter");
    let (mut x, mut y) = (10i64, 20i64);
    let mut meas_x = Vec::with_capacity(p.steps);
    let mut meas_y = Vec::with_capacity(p.steps);
    for _ in 0..p.steps {
        x += VEL_X;
        y += VEL_Y;
        meas_x.push(x + rng.gen_range(-2i64..3));
        meas_y.push(y + rng.gen_range(-2i64..3));
    }
    Inputs {
        init_x: (0..p.particles).map(|i| 8 + (i as i64 % 5)).collect(),
        init_y: (0..p.particles).map(|i| 18 + (i as i64 % 4)).collect(),
        meas_x,
        meas_y,
        seed0: rng.gen_range(1..i64::MAX / 2),
    }
}

/// Builds the benchmark module.
pub fn build(scale: Scale) -> Module {
    let p = params(scale);
    let inp = inputs(p);
    let n = p.particles;
    let mut m = Module::new();
    let g_px = m.add_global(Global::new("pf_px", inp.init_x));
    let g_py = m.add_global(Global::new("pf_py", inp.init_y));
    let g_mx = m.add_global(Global::new("pf_mx", inp.meas_x));
    let g_my = m.add_global(Global::new("pf_my", inp.meas_y));
    let g_cum = m.add_global(Global::zeroed("pf_cum", n));
    let g_nx = m.add_global(Global::zeroed("pf_nx", n));
    let g_ny = m.add_global(Global::zeroed("pf_ny", n));

    let mut b = FunctionBuilder::new("main", &[], None);
    let px = b.global(g_px);
    let py = b.global(g_py);
    let mx = b.global(g_mx);
    let my = b.global(g_my);
    let cum = b.global(g_cum);
    let nx = b.global(g_nx);
    let ny = b.global(g_ny);
    let nv = b.iconst(Ty::I64, n as i64);
    let zero = b.iconst(Ty::I64, 0);
    let steps = b.iconst(Ty::I64, p.steps as i64);
    let seed0 = b.iconst(Ty::I64, inp.seed0);
    let lcg_state = Var::new(&mut b, Ty::I64, seed0);

    let lcg_step = |b: &mut FunctionBuilder, st: Var| -> Value {
        let cur = st.get(b);
        let a = b.iconst(Ty::I64, LCG_A);
        let c = b.iconst(Ty::I64, LCG_C);
        let mul = b.mul(Ty::I64, cur, a);
        let next = b.add(Ty::I64, mul, c);
        st.set(b, next);
        // Noise in [-4, 3].
        let sh = b.iconst(Ty::I64, 33);
        let hi = b.ashr(Ty::I64, next, sh);
        let seven = b.iconst(Ty::I64, 7);
        let masked = b.and(Ty::I64, hi, seven);
        let four = b.iconst(Ty::I64, 4);
        b.sub(Ty::I64, masked, four)
    };

    for_loop(&mut b, zero, steps, |b, t| {
        // Propagate both coordinates with independent noise.
        let zero = b.iconst(Ty::I64, 0);
        for_loop(b, zero, nv, |b, i| {
            let noise_x = lcg_step(b, lcg_state);
            let cur = load_elem(b, px, i);
            let vx = b.iconst(Ty::I64, VEL_X);
            let moved = b.add(Ty::I64, cur, vx);
            let next = b.add(Ty::I64, moved, noise_x);
            store_elem(b, px, i, next);
            let noise_y = lcg_step(b, lcg_state);
            let cur = load_elem(b, py, i);
            let vy = b.iconst(Ty::I64, VEL_Y);
            let moved = b.add(Ty::I64, cur, vy);
            let next = b.add(Ty::I64, moved, noise_y);
            store_elem(b, py, i, next);
        });
        // Weights: w[i] = FX_ONE / (1 + |zx-px| + |zy-py|), cumulative.
        let zx = load_elem(b, mx, t);
        let zy = load_elem(b, my, t);
        let total = Var::zero(b, Ty::I64);
        let zero = b.iconst(Ty::I64, 0);
        for_loop(b, zero, nv, |b, i| {
            let pxi = load_elem(b, px, i);
            let dx = b.sub(Ty::I64, zx, pxi);
            let ax = abs_branch(b, dx);
            let pyi = load_elem(b, py, i);
            let dy = b.sub(Ty::I64, zy, pyi);
            let ay = abs_branch(b, dy);
            let dist = b.add(Ty::I64, ax, ay);
            let one = b.iconst(Ty::I64, 1);
            let denom = b.add(Ty::I64, dist, one);
            let fx = b.iconst(Ty::I64, FX_ONE);
            let wi = b.sdiv(Ty::I64, fx, denom);
            total.add_assign(b, wi);
            let tv = total.get(b);
            store_elem(b, cum, i, tv);
        });
        // Systematic resampling over both coordinate arrays.
        let tv = total.get(b);
        let zero = b.iconst(Ty::I64, 0);
        for_loop(b, zero, nv, |b, j| {
            // u_j = (j * total + total/2) / n  — evenly spaced.
            let jt = b.mul(Ty::I64, j, tv);
            let two = b.iconst(Ty::I64, 2);
            let half = b.sdiv(Ty::I64, tv, two);
            let num = b.add(Ty::I64, jt, half);
            let u = b.sdiv(Ty::I64, num, nv);
            let m1 = b.iconst(Ty::I64, -1);
            let picked = Var::new(b, Ty::I64, m1);
            let zero = b.iconst(Ty::I64, 0);
            for_loop(b, zero, nv, |b, i| {
                let not_yet = picked.get(b);
                let zero = b.iconst(Ty::I64, 0);
                let none = b.icmp(ICmpPred::Slt, Ty::I64, not_yet, zero);
                if_then(b, none, |b| {
                    let ci = load_elem(b, cum, i);
                    let reached = b.icmp(ICmpPred::Sge, Ty::I64, ci, u);
                    if_then(b, reached, |b| picked.set(b, i));
                });
            });
            // Fall back to the last particle on rounding shortfall.
            let pk = picked.get(b);
            let zero = b.iconst(Ty::I64, 0);
            let none = b.icmp(ICmpPred::Slt, Ty::I64, pk, zero);
            if_then(b, none, |b| {
                let last = b.iconst(Ty::I64, (n - 1) as i64);
                picked.set(b, last);
            });
            let pk = picked.get(b);
            let vx = load_elem(b, px, pk);
            store_elem(b, nx, j, vx);
            let vy = load_elem(b, py, pk);
            store_elem(b, ny, j, vy);
        });
        for_loop(b, zero, nv, |b, i| {
            let vx = load_elem(b, nx, i);
            store_elem(b, px, i, vx);
            let vy = load_elem(b, ny, i);
            store_elem(b, py, i, vy);
        });
        // Estimates: mean particle position per coordinate.
        let est_x = Var::zero(b, Ty::I64);
        let est_y = Var::zero(b, Ty::I64);
        for_loop(b, zero, nv, |b, i| {
            let vx = load_elem(b, px, i);
            est_x.add_assign(b, vx);
            let vy = load_elem(b, py, i);
            est_y.add_assign(b, vy);
        });
        let sx = est_x.get(b);
        let mean_x = b.sdiv(Ty::I64, sx, nv);
        b.print(mean_x);
        let sy = est_y.get(b);
        let mean_y = b.sdiv(Ty::I64, sy, nv);
        b.print(mean_y);
    });
    b.ret(None);
    m.functions.push(b.finish());
    m
}

/// Native oracle.
pub fn oracle(scale: Scale) -> Vec<i64> {
    let p = params(scale);
    let inp = inputs(p);
    let n = p.particles;
    let mut px = inp.init_x.clone();
    let mut py = inp.init_y.clone();
    let mut state = inp.seed0;
    let mut out = Vec::new();
    for t in 0..p.steps {
        for i in 0..n {
            state = lcg_next(state);
            px[i] += VEL_X + lcg_noise(state);
            state = lcg_next(state);
            py[i] += VEL_Y + lcg_noise(state);
        }
        let (zx, zy) = (inp.meas_x[t], inp.meas_y[t]);
        let mut cum = vec![0i64; n];
        let mut total = 0i64;
        for i in 0..n {
            let wi = FX_ONE / (1 + (zx - px[i]).abs() + (zy - py[i]).abs());
            total += wi;
            cum[i] = total;
        }
        let mut nx = vec![0i64; n];
        let mut ny = vec![0i64; n];
        for j in 0..n {
            let u = (j as i64 * total + total / 2) / n as i64;
            let mut picked = -1i64;
            for (i, &c) in cum.iter().enumerate() {
                if picked < 0 && c >= u {
                    picked = i as i64;
                }
            }
            if picked < 0 {
                picked = n as i64 - 1;
            }
            nx[j] = px[picked as usize];
            ny[j] = py[picked as usize];
        }
        px = nx;
        py = ny;
        out.push(px.iter().sum::<i64>() / n as i64);
        out.push(py.iter().sum::<i64>() / n as i64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::interp::Interp;

    #[test]
    fn interpreter_matches_oracle() {
        for scale in [Scale::Test, Scale::Paper] {
            let m = build(scale);
            ferrum_mir::verify::verify_module(&m).expect("verifies");
            let out = Interp::new(&m).run().expect("runs").output;
            assert_eq!(out, oracle(scale), "{scale:?}");
        }
    }

    #[test]
    fn estimate_tracks_the_object_in_both_axes() {
        let p = params(Scale::Paper);
        let out = oracle(Scale::Paper);
        let expect_x = 10 + VEL_X * p.steps as i64;
        let expect_y = 20 + VEL_Y * p.steps as i64;
        let got_x = out[out.len() - 2];
        let got_y = out[out.len() - 1];
        assert!(
            (got_x - expect_x).abs() < 12,
            "x estimate {got_x} vs {expect_x}"
        );
        assert!(
            (got_y - expect_y).abs() < 12,
            "y estimate {got_y} vs {expect_y}"
        );
    }

    #[test]
    fn is_the_static_largest_benchmark() {
        // Matches the paper's §IV-B3 observation: ParticleFilter has the
        // most static instructions of the suite.
        let sizes: Vec<(String, usize)> = crate::all_workloads()
            .iter()
            .map(|w| {
                let asm = ferrum_backend::compile(&w.build(Scale::Paper)).expect("compiles");
                (w.name.to_owned(), asm.static_inst_count())
            })
            .collect();
        let pf = sizes
            .iter()
            .find(|(n, _)| n == "particlefilter")
            .expect("exists")
            .1;
        for (name, size) in &sizes {
            assert!(
                pf >= *size,
                "particlefilter ({pf}) should be >= {name} ({size})"
            );
        }
    }
}
