//! `pathfinder` — row-wise minimum-cost path dynamic programming
//! (Rodinia's PathFinder, Table II: Dynamic Programming).
//!
//! A cost grid is swept row by row; each cell extends the cheapest of
//! its three upper neighbours.  This is the benchmark whose protected
//! code appears in the paper's Fig. 6 SIMD example.

use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::inst::ICmpPred;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;

use crate::catalog::Scale;
use crate::dsl::{for_loop, if_then, load_elem, min_branch, store_elem, Var};
use crate::kernels::{rand_vec, rng_for};

/// Problem size.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
}

/// Sizes per scale.
pub fn params(scale: Scale) -> Params {
    match scale {
        Scale::Test => Params { rows: 6, cols: 8 },
        Scale::Paper => Params { rows: 14, cols: 20 },
    }
}

fn grid(p: Params) -> Vec<i64> {
    rand_vec(&mut rng_for("pathfinder"), p.rows * p.cols, 0, 10)
}

/// Builds the benchmark module.
pub fn build(scale: Scale) -> Module {
    let p = params(scale);
    let data = grid(p);
    let mut m = Module::new();
    let g_data = m.add_global(Global::new("pf_data", data));
    let g_dp = m.add_global(Global::zeroed("pf_dp", p.cols));
    let g_ndp = m.add_global(Global::zeroed("pf_ndp", p.cols));

    let mut b = FunctionBuilder::new("main", &[], None);
    let data = b.global(g_data);
    let dp = b.global(g_dp);
    let ndp = b.global(g_ndp);
    let zero = b.iconst(Ty::I64, 0);
    let one = b.iconst(Ty::I64, 1);
    let rows = b.iconst(Ty::I64, p.rows as i64);
    let cols = b.iconst(Ty::I64, p.cols as i64);

    // dp = row 0.
    for_loop(&mut b, zero, cols, |b, j| {
        let v = load_elem(b, data, j);
        store_elem(b, dp, j, v);
    });

    for_loop(&mut b, one, rows, |b, i| {
        let zero = b.iconst(Ty::I64, 0);
        let cols_v = cols;
        for_loop(b, zero, cols_v, |b, j| {
            let best = Var::zero(b, Ty::I64);
            let here = load_elem(b, dp, j);
            best.set(b, here);
            let zero = b.iconst(Ty::I64, 0);
            let has_left = b.icmp(ICmpPred::Sgt, Ty::I64, j, zero);
            if_then(b, has_left, |b| {
                let one = b.iconst(Ty::I64, 1);
                let jm = b.sub(Ty::I64, j, one);
                let l = load_elem(b, dp, jm);
                let cur = best.get(b);
                let mn = min_branch(b, cur, l);
                best.set(b, mn);
            });
            let last = b.iconst(Ty::I64, (p.cols - 1) as i64);
            let has_right = b.icmp(ICmpPred::Slt, Ty::I64, j, last);
            if_then(b, has_right, |b| {
                let one = b.iconst(Ty::I64, 1);
                let jp = b.add(Ty::I64, j, one);
                let r = load_elem(b, dp, jp);
                let cur = best.get(b);
                let mn = min_branch(b, cur, r);
                best.set(b, mn);
            });
            let row_base = b.mul(Ty::I64, i, cols_v);
            let idx = b.add(Ty::I64, row_base, j);
            let cost = load_elem(b, data, idx);
            let bv = best.get(b);
            let total = b.add(Ty::I64, cost, bv);
            store_elem(b, ndp, j, total);
        });
        // dp = ndp.
        let zero = b.iconst(Ty::I64, 0);
        for_loop(b, zero, cols_v, |b, j| {
            let v = load_elem(b, ndp, j);
            store_elem(b, dp, j, v);
        });
    });

    // Output: min of the final row and a weighted checksum.
    let first = load_elem(&mut b, dp, zero);
    let best = Var::new(&mut b, Ty::I64, first);
    let check = Var::zero(&mut b, Ty::I64);
    for_loop(&mut b, zero, cols, |b, j| {
        let v = load_elem(b, dp, j);
        let cur = best.get(b);
        let mn = min_branch(b, cur, v);
        best.set(b, mn);
        let one = b.iconst(Ty::I64, 1);
        let j1 = b.add(Ty::I64, j, one);
        let t = b.mul(Ty::I64, v, j1);
        check.add_assign(b, t);
    });
    let bv = best.get(&mut b);
    b.print(bv);
    let cv = check.get(&mut b);
    b.print(cv);
    b.ret(None);
    m.functions.push(b.finish());
    m
}

/// Native oracle.
pub fn oracle(scale: Scale) -> Vec<i64> {
    let p = params(scale);
    let data = grid(p);
    let mut dp: Vec<i64> = data[..p.cols].to_vec();
    for i in 1..p.rows {
        let mut ndp = vec![0i64; p.cols];
        for j in 0..p.cols {
            let mut best = dp[j];
            if j > 0 {
                best = best.min(dp[j - 1]);
            }
            if j < p.cols - 1 {
                best = best.min(dp[j + 1]);
            }
            ndp[j] = data[i * p.cols + j] + best;
        }
        dp = ndp;
    }
    let min = *dp.iter().min().expect("non-empty");
    let check: i64 = dp
        .iter()
        .enumerate()
        .map(|(j, &v)| v * (j as i64 + 1))
        .sum();
    vec![min, check]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::interp::Interp;

    #[test]
    fn interpreter_matches_oracle() {
        for scale in [Scale::Test, Scale::Paper] {
            let m = build(scale);
            ferrum_mir::verify::verify_module(&m).expect("verifies");
            let out = Interp::new(&m).run().expect("runs").output;
            assert_eq!(out, oracle(scale), "{scale:?}");
        }
    }

    #[test]
    fn min_cost_is_bounded_by_grid_values() {
        let p = params(Scale::Test);
        let out = oracle(Scale::Test);
        assert!(out[0] >= 0 && out[0] <= 10 * p.rows as i64);
    }
}
