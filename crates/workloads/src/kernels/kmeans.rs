//! `kmeans` — Lloyd's algorithm with integer centroids (Rodinia's
//! k-means, Table II: Data Mining).
//!
//! Assignment (nearest-centroid search with branches) and update
//! (per-cluster sums with integer division) over a fixed number of
//! iterations; prints the final centroids and the total inertia.

use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::inst::ICmpPred;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;

use crate::catalog::Scale;
use crate::dsl::{for_loop, if_then, load_elem, store_elem, Var};
use crate::kernels::{rand_vec, rng_for};

/// Problem size.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of points.
    pub n: usize,
    /// Number of clusters.
    pub k: usize,
    /// Lloyd iterations.
    pub iters: usize,
}

/// Sizes per scale.
pub fn params(scale: Scale) -> Params {
    match scale {
        Scale::Test => Params {
            n: 18,
            k: 3,
            iters: 2,
        },
        Scale::Paper => Params {
            n: 56,
            k: 4,
            iters: 3,
        },
    }
}

struct Inputs {
    xs: Vec<i64>,
    ys: Vec<i64>,
}

fn inputs(p: Params) -> Inputs {
    let mut rng = rng_for("kmeans");
    Inputs {
        xs: rand_vec(&mut rng, p.n, 0, 200),
        ys: rand_vec(&mut rng, p.n, 0, 200),
    }
}

/// Builds the benchmark module.
pub fn build(scale: Scale) -> Module {
    let p = params(scale);
    let inp = inputs(p);
    let (cx0, cy0): (Vec<i64>, Vec<i64>) = ((inp.xs[..p.k]).to_vec(), (inp.ys[..p.k]).to_vec());
    let mut m = Module::new();
    let g_xs = m.add_global(Global::new("km_xs", inp.xs));
    let g_ys = m.add_global(Global::new("km_ys", inp.ys));
    let g_cx = m.add_global(Global::new("km_cx", cx0));
    let g_cy = m.add_global(Global::new("km_cy", cy0));
    let g_sx = m.add_global(Global::zeroed("km_sx", p.k));
    let g_sy = m.add_global(Global::zeroed("km_sy", p.k));
    let g_cnt = m.add_global(Global::zeroed("km_cnt", p.k));

    let mut b = FunctionBuilder::new("main", &[], None);
    let xs = b.global(g_xs);
    let ys = b.global(g_ys);
    let cx = b.global(g_cx);
    let cy = b.global(g_cy);
    let sx = b.global(g_sx);
    let sy = b.global(g_sy);
    let cnt = b.global(g_cnt);
    let n = b.iconst(Ty::I64, p.n as i64);
    let kv = b.iconst(Ty::I64, p.k as i64);
    let zero = b.iconst(Ty::I64, 0);
    let iters = b.iconst(Ty::I64, p.iters as i64);

    for_loop(&mut b, zero, iters, |b, _it| {
        // Reset accumulators.
        let zero = b.iconst(Ty::I64, 0);
        for_loop(b, zero, kv, |b, c| {
            let zero = b.iconst(Ty::I64, 0);
            store_elem(b, sx, c, zero);
            store_elem(b, sy, c, zero);
            store_elem(b, cnt, c, zero);
        });
        // Assignment.
        let zero = b.iconst(Ty::I64, 0);
        for_loop(b, zero, n, |b, i| {
            let x = load_elem(b, xs, i);
            let y = load_elem(b, ys, i);
            let big = b.iconst(Ty::I64, i64::MAX / 4);
            let best = Var::new(b, Ty::I64, big);
            let zero = b.iconst(Ty::I64, 0);
            let best_c = Var::new(b, Ty::I64, zero);
            for_loop(b, zero, kv, |b, c| {
                let cxv = load_elem(b, cx, c);
                let cyv = load_elem(b, cy, c);
                let dx = b.sub(Ty::I64, x, cxv);
                let dy = b.sub(Ty::I64, y, cyv);
                let dx2 = b.mul(Ty::I64, dx, dx);
                let dy2 = b.mul(Ty::I64, dy, dy);
                let d = b.add(Ty::I64, dx2, dy2);
                let cur = best.get(b);
                let better = b.icmp(ICmpPred::Slt, Ty::I64, d, cur);
                if_then(b, better, |b| {
                    best.set(b, d);
                    best_c.set(b, c);
                });
            });
            let c = best_c.get(b);
            let psx = b.gep(sx, c);
            let old = b.load(Ty::I64, psx);
            let nx = b.add(Ty::I64, old, x);
            b.store(Ty::I64, nx, psx);
            let psy = b.gep(sy, c);
            let old = b.load(Ty::I64, psy);
            let ny = b.add(Ty::I64, old, y);
            b.store(Ty::I64, ny, psy);
            let pc = b.gep(cnt, c);
            let old = b.load(Ty::I64, pc);
            let one = b.iconst(Ty::I64, 1);
            let nc = b.add(Ty::I64, old, one);
            b.store(Ty::I64, nc, pc);
        });
        // Update (integer mean).
        let zero = b.iconst(Ty::I64, 0);
        for_loop(b, zero, kv, |b, c| {
            let count = load_elem(b, cnt, c);
            let zero = b.iconst(Ty::I64, 0);
            let nonempty = b.icmp(ICmpPred::Sgt, Ty::I64, count, zero);
            if_then(b, nonempty, |b| {
                let count = load_elem(b, cnt, c);
                let sxv = load_elem(b, sx, c);
                let mx = b.sdiv(Ty::I64, sxv, count);
                store_elem(b, cx, c, mx);
                let syv = load_elem(b, sy, c);
                let my = b.sdiv(Ty::I64, syv, count);
                store_elem(b, cy, c, my);
            });
        });
    });

    // Output: centroids and inertia.
    for_loop(&mut b, zero, kv, |b, c| {
        let x = load_elem(b, cx, c);
        b.print(x);
        let y = load_elem(b, cy, c);
        b.print(y);
    });
    let inertia = Var::zero(&mut b, Ty::I64);
    for_loop(&mut b, zero, n, |b, i| {
        let x = load_elem(b, xs, i);
        let y = load_elem(b, ys, i);
        let big = b.iconst(Ty::I64, i64::MAX / 4);
        let best = Var::new(b, Ty::I64, big);
        let zero = b.iconst(Ty::I64, 0);
        for_loop(b, zero, kv, |b, c| {
            let cxv = load_elem(b, cx, c);
            let cyv = load_elem(b, cy, c);
            let dx = b.sub(Ty::I64, x, cxv);
            let dy = b.sub(Ty::I64, y, cyv);
            let dx2 = b.mul(Ty::I64, dx, dx);
            let dy2 = b.mul(Ty::I64, dy, dy);
            let d = b.add(Ty::I64, dx2, dy2);
            let cur = best.get(b);
            let better = b.icmp(ICmpPred::Slt, Ty::I64, d, cur);
            if_then(b, better, |b| best.set(b, d));
        });
        let bv = best.get(b);
        inertia.add_assign(b, bv);
    });
    let iv = inertia.get(&mut b);
    b.print(iv);
    b.ret(None);
    m.functions.push(b.finish());
    m
}

/// Native oracle.
pub fn oracle(scale: Scale) -> Vec<i64> {
    let p = params(scale);
    let inp = inputs(p);
    let mut cx: Vec<i64> = inp.xs[..p.k].to_vec();
    let mut cy: Vec<i64> = inp.ys[..p.k].to_vec();
    for _ in 0..p.iters {
        let mut sx = vec![0i64; p.k];
        let mut sy = vec![0i64; p.k];
        let mut cnt = vec![0i64; p.k];
        for i in 0..p.n {
            let mut best = i64::MAX / 4;
            let mut best_c = 0usize;
            for c in 0..p.k {
                let dx = inp.xs[i] - cx[c];
                let dy = inp.ys[i] - cy[c];
                let d = dx * dx + dy * dy;
                if d < best {
                    best = d;
                    best_c = c;
                }
            }
            sx[best_c] += inp.xs[i];
            sy[best_c] += inp.ys[i];
            cnt[best_c] += 1;
        }
        for c in 0..p.k {
            if cnt[c] > 0 {
                cx[c] = sx[c] / cnt[c];
                cy[c] = sy[c] / cnt[c];
            }
        }
    }
    let mut out = Vec::new();
    for c in 0..p.k {
        out.push(cx[c]);
        out.push(cy[c]);
    }
    let inertia: i64 = (0..p.n)
        .map(|i| {
            (0..p.k)
                .map(|c| {
                    let dx = inp.xs[i] - cx[c];
                    let dy = inp.ys[i] - cy[c];
                    dx * dx + dy * dy
                })
                .min()
                .expect("k > 0")
        })
        .sum();
    out.push(inertia);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::interp::Interp;

    #[test]
    fn interpreter_matches_oracle() {
        for scale in [Scale::Test, Scale::Paper] {
            let m = build(scale);
            ferrum_mir::verify::verify_module(&m).expect("verifies");
            let out = Interp::new(&m).run().expect("runs").output;
            assert_eq!(out, oracle(scale), "{scale:?}");
        }
    }

    #[test]
    fn centroids_within_data_range() {
        let p = params(Scale::Paper);
        let out = oracle(Scale::Paper);
        for &c in &out[..2 * p.k] {
            assert!((0..200).contains(&c), "centroid {c}");
        }
    }
}
