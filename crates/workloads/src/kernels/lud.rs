//! `lud` — fixed-point Doolittle LU decomposition (Rodinia's LUD,
//! Table II: Linear Algebra).
//!
//! In-place decomposition of a diagonally dominant Q8 matrix; the
//! elimination step exercises integer division heavily, the class of
//! instruction with the most elaborate duplication scheme.

use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;

use crate::catalog::Scale;
use crate::dsl::{for_loop, fx_div, fx_mul, load_elem, store_elem, Var, FX_ONE};
use crate::kernels::{rand_vec, rng_for};

/// Problem size.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Matrix dimension.
    pub n: usize,
}

/// Sizes per scale.
pub fn params(scale: Scale) -> Params {
    match scale {
        Scale::Test => Params { n: 5 },
        Scale::Paper => Params { n: 9 },
    }
}

fn matrix(p: Params) -> Vec<i64> {
    let mut a = rand_vec(&mut rng_for("lud"), p.n * p.n, -FX_ONE / 4, FX_ONE / 4);
    for i in 0..p.n {
        // Diagonal dominance keeps pivots large and quotients tame.
        a[i * p.n + i] = 4 * FX_ONE + a[i * p.n + i].abs();
    }
    a
}

/// Builds the benchmark module.
pub fn build(scale: Scale) -> Module {
    let p = params(scale);
    let n = p.n;
    let mut m = Module::new();
    let g_a = m.add_global(Global::new("lud_a", matrix(p)));

    let mut b = FunctionBuilder::new("main", &[], None);
    let a = b.global(g_a);
    let nv = b.iconst(Ty::I64, n as i64);
    let zero = b.iconst(Ty::I64, 0);

    let at = |b: &mut FunctionBuilder, i: ferrum_mir::value::Value, j: ferrum_mir::value::Value| {
        let row = b.mul(Ty::I64, i, nv);
        b.add(Ty::I64, row, j)
    };

    for_loop(&mut b, zero, nv, |b, k| {
        // U row: A[k][j] -= Σ_{t<k} A[k][t] · A[t][j]  (j ≥ k)
        for_loop(b, k, nv, |b, j| {
            let acc = Var::zero(b, Ty::I64);
            let zero = b.iconst(Ty::I64, 0);
            for_loop(b, zero, k, |b, t| {
                let ikt = at(b, k, t);
                let lkt = load_elem(b, a, ikt);
                let itj = at(b, t, j);
                let utj = load_elem(b, a, itj);
                let prod = fx_mul(b, lkt, utj);
                acc.add_assign(b, prod);
            });
            let ikj = at(b, k, j);
            let cur = load_elem(b, a, ikj);
            let s = acc.get(b);
            let upd = b.sub(Ty::I64, cur, s);
            store_elem(b, a, ikj, upd);
        });
        // L column: A[i][k] = (A[i][k] − Σ_{t<k} A[i][t] · A[t][k]) / A[k][k]
        let one = b.iconst(Ty::I64, 1);
        let k1 = b.add(Ty::I64, k, one);
        for_loop(b, k1, nv, |b, i| {
            let acc = Var::zero(b, Ty::I64);
            let zero = b.iconst(Ty::I64, 0);
            for_loop(b, zero, k, |b, t| {
                let iit = at(b, i, t);
                let lit = load_elem(b, a, iit);
                let itk = at(b, t, k);
                let utk = load_elem(b, a, itk);
                let prod = fx_mul(b, lit, utk);
                acc.add_assign(b, prod);
            });
            let iik = at(b, i, k);
            let cur = load_elem(b, a, iik);
            let s = acc.get(b);
            let num = b.sub(Ty::I64, cur, s);
            let ikk = at(b, k, k);
            let piv = load_elem(b, a, ikk);
            let q = fx_div(b, num, piv);
            store_elem(b, a, iik, q);
        });
    });

    // Checksum over the combined LU factors.
    let check = Var::zero(&mut b, Ty::I64);
    let total = b.iconst(Ty::I64, (n * n) as i64);
    for_loop(&mut b, zero, total, |b, k| {
        let v = load_elem(b, a, k);
        let five = b.iconst(Ty::I64, 5);
        let r = b.srem(Ty::I64, k, five);
        let one = b.iconst(Ty::I64, 1);
        let f = b.add(Ty::I64, r, one);
        let t = b.mul(Ty::I64, v, f);
        check.add_assign(b, t);
    });
    let c = check.get(&mut b);
    b.print(c);
    // Also print the diagonal (the pivots).
    for_loop(&mut b, zero, nv, |b, i| {
        let ii = at(b, i, i);
        let v = load_elem(b, a, ii);
        b.print(v);
    });
    b.ret(None);
    m.functions.push(b.finish());
    m
}

/// Native oracle.
pub fn oracle(scale: Scale) -> Vec<i64> {
    let p = params(scale);
    let n = p.n;
    let mut a = matrix(p);
    let fx = |x: i64, y: i64| (x * y) >> 8;
    let fxd = |x: i64, y: i64| (x << 8) / y;
    for k in 0..n {
        for j in k..n {
            let mut acc = 0i64;
            for t in 0..k {
                acc += fx(a[k * n + t], a[t * n + j]);
            }
            a[k * n + j] -= acc;
        }
        for i in k + 1..n {
            let mut acc = 0i64;
            for t in 0..k {
                acc += fx(a[i * n + t], a[t * n + k]);
            }
            let num = a[i * n + k] - acc;
            a[i * n + k] = fxd(num, a[k * n + k]);
        }
    }
    let mut out = Vec::new();
    let check: i64 = a
        .iter()
        .enumerate()
        .map(|(k, &v)| v * (k as i64 % 5 + 1))
        .sum();
    out.push(check);
    for i in 0..n {
        out.push(a[i * n + i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::interp::Interp;

    #[test]
    fn interpreter_matches_oracle() {
        for scale in [Scale::Test, Scale::Paper] {
            let m = build(scale);
            ferrum_mir::verify::verify_module(&m).expect("verifies");
            let out = Interp::new(&m).run().expect("runs").output;
            assert_eq!(out, oracle(scale), "{scale:?}");
        }
    }

    #[test]
    fn pivots_stay_positive() {
        let p = params(Scale::Paper);
        let out = oracle(Scale::Paper);
        for &piv in &out[1..=p.n] {
            assert!(piv > FX_ONE, "pivot {piv} too small");
        }
    }
}
