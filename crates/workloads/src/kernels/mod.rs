//! The eight benchmark kernels.
//!
//! Every kernel module exposes `build(Scale) -> Module` and
//! `oracle(Scale) -> Vec<i64>`, plus a `params` helper describing its
//! problem size.  Input data is generated with a fixed-seed
//! [`ferrum_rng`] generator so MIR, simulator, and oracle all see
//! identical inputs.

pub mod backprop;
pub mod bfs;
pub mod kmeans;
pub mod knn;
pub mod lud;
pub mod needle;
pub mod particlefilter;
pub mod pathfinder;

use ferrum_rng::Rng64;

/// Deterministic input generator for a kernel (one stream per kernel).
pub(crate) fn rng_for(kernel: &str) -> Rng64 {
    let mut seed = [0u8; 32];
    for (i, byte) in kernel.bytes().enumerate() {
        seed[i % 32] ^= byte;
    }
    seed[31] = 0x5a;
    Rng64::from_seed(seed)
}

/// `count` integers in `lo..hi`.
pub(crate) fn rand_vec(rng: &mut Rng64, count: usize, lo: i64, hi: i64) -> Vec<i64> {
    (0..count).map(|_| rng.gen_range(lo..hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_kernel_specific() {
        let a: Vec<i64> = rand_vec(&mut rng_for("bfs"), 8, 0, 100);
        let b: Vec<i64> = rand_vec(&mut rng_for("bfs"), 8, 0, 100);
        let c: Vec<i64> = rand_vec(&mut rng_for("lud"), 8, 0, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&v| (0..100).contains(&v)));
    }
}
