//! `backprop` — a fixed-point multilayer-perceptron training step
//! (Rodinia's backpropagation kernel, Table II: Machine Learning).
//!
//! Forward pass through one hidden layer with a clamped activation
//! (factored into a real `activate` helper function, so the benchmark
//! exercises call/return protection — Table I's "call" column),
//! output-error computation, and weight updates for both layers over a
//! few epochs.  Prints the network output per epoch and a final weight
//! checksum.

use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;

use crate::catalog::Scale;
use crate::dsl::{for_loop, fx_mul, load_elem, max_branch, min_branch, store_elem, Var, FX_ONE};
use crate::kernels::{rand_vec, rng_for};

/// Problem size.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Input-layer width.
    pub input: usize,
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
}

/// Sizes per scale.
pub fn params(scale: Scale) -> Params {
    match scale {
        Scale::Test => Params {
            input: 4,
            hidden: 4,
            epochs: 2,
        },
        Scale::Paper => Params {
            input: 12,
            hidden: 8,
            epochs: 3,
        },
    }
}

struct Inputs {
    x: Vec<i64>,
    w1: Vec<i64>,
    w2: Vec<i64>,
    target: i64,
}

fn inputs(p: Params) -> Inputs {
    let mut rng = rng_for("backprop");
    Inputs {
        x: rand_vec(&mut rng, p.input, -2 * FX_ONE, 2 * FX_ONE),
        w1: rand_vec(&mut rng, p.input * p.hidden, -FX_ONE, FX_ONE),
        w2: rand_vec(&mut rng, p.hidden, -FX_ONE, FX_ONE),
        target: rand_vec(&mut rng, 1, FX_ONE, 2 * FX_ONE)[0],
    }
}

const LR: i64 = FX_ONE / 4;

/// Builds the clamped-activation helper: `activate(x) = clamp(x, ±1.0)`.
fn build_activate() -> ferrum_mir::func::Function {
    let mut f = FunctionBuilder::new("activate", &[Ty::I64], Some(Ty::I64));
    let one_fx = f.iconst(Ty::I64, FX_ONE);
    let neg_one_fx = f.iconst(Ty::I64, -FX_ONE);
    let a0 = f.arg(0);
    let a1 = min_branch(&mut f, a0, one_fx);
    let a2 = max_branch(&mut f, a1, neg_one_fx);
    f.ret(Some(a2));
    f.finish()
}

/// Builds the benchmark module.
pub fn build(scale: Scale) -> Module {
    let p = params(scale);
    let inp = inputs(p);
    let mut m = Module::new();
    let gx = m.add_global(Global::new("bp_x", inp.x));
    let gw1 = m.add_global(Global::new("bp_w1", inp.w1));
    let gw2 = m.add_global(Global::new("bp_w2", inp.w2));
    let ghid = m.add_global(Global::zeroed("bp_hid", p.hidden));
    m.functions.push(build_activate());

    let mut b = FunctionBuilder::new("main", &[], None);
    let x = b.global(gx);
    let w1 = b.global(gw1);
    let w2 = b.global(gw2);
    let hid = b.global(ghid);
    let h = b.iconst(Ty::I64, p.hidden as i64);
    let n_in = b.iconst(Ty::I64, p.input as i64);
    let zero = b.iconst(Ty::I64, 0);
    let epochs = b.iconst(Ty::I64, p.epochs as i64);
    let target = b.iconst(Ty::I64, inp.target);
    let lr = b.iconst(Ty::I64, LR);

    for_loop(&mut b, zero, epochs, |b, _e| {
        // Forward: hidden activations.
        let zero = b.iconst(Ty::I64, 0);
        for_loop(b, zero, h, |b, j| {
            let acc = Var::zero(b, Ty::I64);
            let zero = b.iconst(Ty::I64, 0);
            for_loop(b, zero, n_in, |b, i| {
                let xi = load_elem(b, x, i);
                let row = b.mul(Ty::I64, i, h);
                let idx = b.add(Ty::I64, row, j);
                let wij = load_elem(b, w1, idx);
                let prod = fx_mul(b, xi, wij);
                acc.add_assign(b, prod);
            });
            // Clamped activation via the helper function.
            let a0 = acc.get(b);
            let act = b
                .call("activate", vec![a0], Some(Ty::I64))
                .expect("returns");
            store_elem(b, hid, j, act);
        });
        // Output neuron.
        let out = Var::zero(b, Ty::I64);
        let zero = b.iconst(Ty::I64, 0);
        for_loop(b, zero, h, |b, j| {
            let hj = load_elem(b, hid, j);
            let wj = load_elem(b, w2, j);
            let prod = fx_mul(b, hj, wj);
            out.add_assign(b, prod);
        });
        let outv = out.get(b);
        b.print(outv);
        // Backward: weight updates.
        let err = b.sub(Ty::I64, target, outv);
        let delta = fx_mul(b, err, lr);
        let zero = b.iconst(Ty::I64, 0);
        for_loop(b, zero, h, |b, j| {
            let hj = load_elem(b, hid, j);
            let upd = fx_mul(b, delta, hj);
            let wj = load_elem(b, w2, j);
            let nw = b.add(Ty::I64, wj, upd);
            store_elem(b, w2, j, nw);
        });
        let zero = b.iconst(Ty::I64, 0);
        for_loop(b, zero, h, |b, j| {
            let wj = load_elem(b, w2, j);
            let dj = fx_mul(b, delta, wj);
            let zero = b.iconst(Ty::I64, 0);
            for_loop(b, zero, n_in, |b, i| {
                let xi = load_elem(b, x, i);
                let g = fx_mul(b, dj, xi);
                let two = b.iconst(Ty::I64, 2);
                let g2 = b.ashr(Ty::I64, g, two);
                let row = b.mul(Ty::I64, i, h);
                let idx = b.add(Ty::I64, row, j);
                let w = load_elem(b, w1, idx);
                let nw = b.add(Ty::I64, w, g2);
                store_elem(b, w1, idx, nw);
            });
        });
    });
    // Weight checksum.
    let check = Var::zero(&mut b, Ty::I64);
    let zero2 = b.iconst(Ty::I64, 0);
    for_loop(&mut b, zero2, h, |b, j| {
        let wj = load_elem(b, w2, j);
        let one = b.iconst(Ty::I64, 1);
        let j1 = b.add(Ty::I64, j, one);
        let t = b.mul(Ty::I64, wj, j1);
        check.add_assign(b, t);
    });
    let zero2 = b.iconst(Ty::I64, 0);
    let total = b.iconst(Ty::I64, (p.input * p.hidden) as i64);
    for_loop(&mut b, zero2, total, |b, k| {
        let w = load_elem(b, w1, k);
        let seven = b.iconst(Ty::I64, 7);
        let r = b.srem(Ty::I64, k, seven);
        let one = b.iconst(Ty::I64, 1);
        let f = b.add(Ty::I64, r, one);
        let t = b.mul(Ty::I64, w, f);
        check.add_assign(b, t);
    });
    let c = check.get(&mut b);
    b.print(c);
    b.ret(None);
    m.functions.push(b.finish());
    m
}

/// Native oracle: the exact same computation in Rust.
pub fn oracle(scale: Scale) -> Vec<i64> {
    let p = params(scale);
    let inp = inputs(p);
    let (mut w1, mut w2) = (inp.w1.clone(), inp.w2.clone());
    let mut hid = vec![0i64; p.hidden];
    let mut out_stream = Vec::new();
    let fx = |a: i64, b: i64| (a * b) >> 8;
    for _ in 0..p.epochs {
        for (j, hj) in hid.iter_mut().enumerate() {
            let mut acc = 0i64;
            for i in 0..p.input {
                acc += fx(inp.x[i], w1[i * p.hidden + j]);
            }
            *hj = acc.clamp(-FX_ONE, FX_ONE);
        }
        let out: i64 = (0..p.hidden).map(|j| fx(hid[j], w2[j])).sum();
        out_stream.push(out);
        let err = inp.target - out;
        let delta = fx(err, LR);
        for j in 0..p.hidden {
            w2[j] += fx(delta, hid[j]);
        }
        for j in 0..p.hidden {
            let dj = fx(delta, w2[j]);
            for i in 0..p.input {
                w1[i * p.hidden + j] += fx(dj, inp.x[i]) >> 2;
            }
        }
    }
    let mut check = 0i64;
    for (j, w) in w2.iter().enumerate() {
        check += w * (j as i64 + 1);
    }
    for (k, w) in w1.iter().enumerate() {
        check += w * (k as i64 % 7 + 1);
    }
    out_stream.push(check);
    out_stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::interp::Interp;

    #[test]
    fn interpreter_matches_oracle() {
        for scale in [Scale::Test, Scale::Paper] {
            let m = build(scale);
            ferrum_mir::verify::verify_module(&m).expect("verifies");
            let out = Interp::new(&m).run().expect("runs").output;
            assert_eq!(out, oracle(scale), "{scale:?}");
        }
    }

    #[test]
    fn output_shape() {
        let p = params(Scale::Test);
        let out = oracle(Scale::Test);
        assert_eq!(out.len(), p.epochs + 1);
    }
}
