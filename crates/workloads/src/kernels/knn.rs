//! `knn` — k-nearest-neighbour selection (Rodinia's kNN/NN, Table II:
//! Machine Learning).
//!
//! Squared Euclidean distances from a query point to a point cloud,
//! followed by k rounds of minimum selection with a used-mark array —
//! heavy on data-dependent branches and indexed stores.

use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::inst::ICmpPred;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;

use crate::catalog::Scale;
use crate::dsl::{for_loop, if_then, load_elem, store_elem, Var};
use crate::kernels::{rand_vec, rng_for};

/// Problem size.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of reference points.
    pub n: usize,
    /// Neighbours to select.
    pub k: usize,
}

/// Sizes per scale.
pub fn params(scale: Scale) -> Params {
    match scale {
        Scale::Test => Params { n: 16, k: 3 },
        Scale::Paper => Params { n: 64, k: 5 },
    }
}

struct Inputs {
    xs: Vec<i64>,
    ys: Vec<i64>,
    qx: i64,
    qy: i64,
}

fn inputs(p: Params) -> Inputs {
    let mut rng = rng_for("knn");
    Inputs {
        xs: rand_vec(&mut rng, p.n, 0, 100),
        ys: rand_vec(&mut rng, p.n, 0, 100),
        qx: rand_vec(&mut rng, 1, 0, 100)[0],
        qy: rand_vec(&mut rng, 1, 0, 100)[0],
    }
}

const BIG: i64 = i64::MAX / 4;

/// Builds the benchmark module.
pub fn build(scale: Scale) -> Module {
    let p = params(scale);
    let inp = inputs(p);
    let mut m = Module::new();
    let g_xs = m.add_global(Global::new("knn_xs", inp.xs));
    let g_ys = m.add_global(Global::new("knn_ys", inp.ys));
    let g_d2 = m.add_global(Global::zeroed("knn_d2", p.n));
    let g_used = m.add_global(Global::zeroed("knn_used", p.n));

    let mut b = FunctionBuilder::new("main", &[], None);
    let xs = b.global(g_xs);
    let ys = b.global(g_ys);
    let d2 = b.global(g_d2);
    let used = b.global(g_used);
    let n = b.iconst(Ty::I64, p.n as i64);
    let k = b.iconst(Ty::I64, p.k as i64);
    let zero = b.iconst(Ty::I64, 0);
    let qx = b.iconst(Ty::I64, inp.qx);
    let qy = b.iconst(Ty::I64, inp.qy);

    // Distance computation.
    for_loop(&mut b, zero, n, |b, i| {
        let x = load_elem(b, xs, i);
        let y = load_elem(b, ys, i);
        let dx = b.sub(Ty::I64, x, qx);
        let dy = b.sub(Ty::I64, y, qy);
        let dx2 = b.mul(Ty::I64, dx, dx);
        let dy2 = b.mul(Ty::I64, dy, dy);
        let d = b.add(Ty::I64, dx2, dy2);
        store_elem(b, d2, i, d);
    });

    // k selection rounds.
    for_loop(&mut b, zero, k, |b, _round| {
        let big = b.iconst(Ty::I64, BIG);
        let best = Var::new(b, Ty::I64, big);
        let m1 = b.iconst(Ty::I64, -1);
        let best_idx = Var::new(b, Ty::I64, m1);
        let zero = b.iconst(Ty::I64, 0);
        for_loop(b, zero, n, |b, i| {
            let u = load_elem(b, used, i);
            let zero = b.iconst(Ty::I64, 0);
            let free = b.icmp(ICmpPred::Eq, Ty::I64, u, zero);
            if_then(b, free, |b| {
                let d = load_elem(b, d2, i);
                let cur = best.get(b);
                let better = b.icmp(ICmpPred::Slt, Ty::I64, d, cur);
                if_then(b, better, |b| {
                    let d = load_elem(b, d2, i);
                    best.set(b, d);
                    best_idx.set(b, i);
                });
            });
        });
        let bi = best_idx.get(b);
        let one = b.iconst(Ty::I64, 1);
        store_elem(b, used, bi, one);
        b.print(bi);
        let bv = best.get(b);
        b.print(bv);
    });
    b.ret(None);
    m.functions.push(b.finish());
    m
}

/// Native oracle.
pub fn oracle(scale: Scale) -> Vec<i64> {
    let p = params(scale);
    let inp = inputs(p);
    let d2: Vec<i64> = (0..p.n)
        .map(|i| {
            let dx = inp.xs[i] - inp.qx;
            let dy = inp.ys[i] - inp.qy;
            dx * dx + dy * dy
        })
        .collect();
    let mut used = vec![false; p.n];
    let mut out = Vec::new();
    for _ in 0..p.k {
        let mut best = BIG;
        let mut best_idx = -1i64;
        for i in 0..p.n {
            if !used[i] && d2[i] < best {
                best = d2[i];
                best_idx = i as i64;
            }
        }
        used[best_idx as usize] = true;
        out.push(best_idx);
        out.push(best);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::interp::Interp;

    #[test]
    fn interpreter_matches_oracle() {
        for scale in [Scale::Test, Scale::Paper] {
            let m = build(scale);
            ferrum_mir::verify::verify_module(&m).expect("verifies");
            let out = Interp::new(&m).run().expect("runs").output;
            assert_eq!(out, oracle(scale), "{scale:?}");
        }
    }

    #[test]
    fn distances_are_nondecreasing() {
        let out = oracle(Scale::Paper);
        let dists: Vec<i64> = out.chunks(2).map(|c| c[1]).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "{dists:?}");
    }
}
