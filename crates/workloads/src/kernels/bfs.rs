//! `bfs` — level-synchronous breadth-first search over a CSR graph
//! (Rodinia's BFS, Table II: Graph Algorithm).
//!
//! Levels are expanded one frontier at a time for a fixed number of
//! rounds (the graph's diameter bound), exactly like Rodinia's
//! iteration-to-fixpoint structure.  Prints a weighted level checksum
//! and the number of unreached nodes.

use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::inst::ICmpPred;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;

use crate::catalog::Scale;
use crate::dsl::{for_loop, if_then, load_elem, store_elem, Var};
use crate::kernels::rng_for;


/// Problem size.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Node count.
    pub nodes: usize,
    /// Frontier rounds (diameter bound).
    pub rounds: usize,
}

/// Sizes per scale.
pub fn params(scale: Scale) -> Params {
    match scale {
        Scale::Test => Params {
            nodes: 16,
            rounds: 6,
        },
        Scale::Paper => Params {
            nodes: 72,
            rounds: 10,
        },
    }
}

struct Graph {
    row_off: Vec<i64>,
    col: Vec<i64>,
}

fn graph(p: Params) -> Graph {
    let mut rng = rng_for("bfs");
    let mut row_off = Vec::with_capacity(p.nodes + 1);
    let mut col = Vec::new();
    row_off.push(0);
    for u in 0..p.nodes {
        // Binary-tree backbone keeps the whole graph reachable from node
        // 0 within a logarithmic number of rounds...
        for child in [2 * u + 1, 2 * u + 2] {
            if child < p.nodes {
                col.push(child as i64);
            }
        }
        // ...plus random cross/back edges for irregular frontiers.
        let extra = rng.gen_range(0..3usize);
        for _ in 0..extra {
            col.push(rng.gen_range(0..p.nodes) as i64);
        }
        row_off.push(col.len() as i64);
    }
    Graph { row_off, col }
}

/// Builds the benchmark module.
pub fn build(scale: Scale) -> Module {
    let p = params(scale);
    let g = graph(p);
    let mut m = Module::new();
    let g_row = m.add_global(Global::new("bfs_row", g.row_off));
    let g_col = m.add_global(Global::new("bfs_col", g.col));
    let g_lvl = m.add_global(Global::new("bfs_level", vec![-1; p.nodes]));

    let mut b = FunctionBuilder::new("main", &[], None);
    let row = b.global(g_row);
    let col = b.global(g_col);
    let lvl = b.global(g_lvl);
    let n = b.iconst(Ty::I64, p.nodes as i64);
    let zero = b.iconst(Ty::I64, 0);
    let rounds = b.iconst(Ty::I64, p.rounds as i64);

    // level[0] = 0 (the source).
    store_elem(&mut b, lvl, zero, zero);

    for_loop(&mut b, zero, rounds, |b, cur| {
        let zero = b.iconst(Ty::I64, 0);
        for_loop(b, zero, n, |b, u| {
            let lu = load_elem(b, lvl, u);
            let on_frontier = b.icmp(ICmpPred::Eq, Ty::I64, lu, cur);
            if_then(b, on_frontier, |b| {
                let start = load_elem(b, row, u);
                let one = b.iconst(Ty::I64, 1);
                let u1 = b.add(Ty::I64, u, one);
                let end = load_elem(b, row, u1);
                for_loop(b, start, end, |b, e| {
                    let v = load_elem(b, col, e);
                    let lv = load_elem(b, lvl, v);
                    let zero = b.iconst(Ty::I64, 0);
                    let unseen = b.icmp(ICmpPred::Slt, Ty::I64, lv, zero);
                    if_then(b, unseen, |b| {
                        let one = b.iconst(Ty::I64, 1);
                        let nl = b.add(Ty::I64, cur, one);
                        store_elem(b, lvl, v, nl);
                    });
                });
            });
        });
    });

    // Weighted checksum + unreached count.
    let check = Var::zero(&mut b, Ty::I64);
    let unreached = Var::zero(&mut b, Ty::I64);
    let zero2 = b.iconst(Ty::I64, 0);
    for_loop(&mut b, zero2, n, |b, i| {
        let li = load_elem(b, lvl, i);
        let one = b.iconst(Ty::I64, 1);
        let i1 = b.add(Ty::I64, i, one);
        let t = b.mul(Ty::I64, li, i1);
        check.add_assign(b, t);
        let zero = b.iconst(Ty::I64, 0);
        let miss = b.icmp(ICmpPred::Slt, Ty::I64, li, zero);
        if_then(b, miss, |b| {
            let one = b.iconst(Ty::I64, 1);
            unreached.add_assign(b, one);
        });
    });
    let c = check.get(&mut b);
    b.print(c);
    let u = unreached.get(&mut b);
    b.print(u);
    b.ret(None);
    m.functions.push(b.finish());
    m
}

/// Native oracle.
pub fn oracle(scale: Scale) -> Vec<i64> {
    let p = params(scale);
    let g = graph(p);
    let mut level = vec![-1i64; p.nodes];
    level[0] = 0;
    for cur in 0..p.rounds as i64 {
        for u in 0..p.nodes {
            if level[u] == cur {
                let (s, e) = (g.row_off[u] as usize, g.row_off[u + 1] as usize);
                for &v in &g.col[s..e] {
                    let v = v as usize;
                    if level[v] < 0 {
                        level[v] = cur + 1;
                    }
                }
            }
        }
    }
    let check: i64 = level
        .iter()
        .enumerate()
        .map(|(i, &l)| l * (i as i64 + 1))
        .sum();
    let unreached = level.iter().filter(|&&l| l < 0).count() as i64;
    vec![check, unreached]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::interp::Interp;

    #[test]
    fn interpreter_matches_oracle() {
        for scale in [Scale::Test, Scale::Paper] {
            let m = build(scale);
            ferrum_mir::verify::verify_module(&m).expect("verifies");
            let out = Interp::new(&m).run().expect("runs").output;
            assert_eq!(out, oracle(scale), "{scale:?}");
        }
    }

    #[test]
    fn most_nodes_reached() {
        let out = oracle(Scale::Paper);
        let p = params(Scale::Paper);
        assert!(out[1] < p.nodes as i64 / 4, "unreached = {}", out[1]);
    }
}
