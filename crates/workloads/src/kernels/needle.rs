//! `needle` — Needleman-Wunsch sequence alignment (Rodinia's NW,
//! Table II: Dynamic Programming).
//!
//! Fills the full alignment score matrix with match/mismatch/gap
//! scoring; the three-way maximum makes this one of the branchiest
//! kernels — the paper measures its lowest IR-level-EDDI coverage here.

use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::inst::ICmpPred;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;

use crate::catalog::Scale;
use crate::dsl::{for_loop, if_else, load_elem, max_branch, store_elem, Var};
use crate::kernels::{rand_vec, rng_for};

/// Problem size.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Length of both sequences.
    pub len: usize,
}

/// Sizes per scale.
pub fn params(scale: Scale) -> Params {
    match scale {
        Scale::Test => Params { len: 7 },
        Scale::Paper => Params { len: 16 },
    }
}

const MATCH: i64 = 3;
const MISMATCH: i64 = -1;
const GAP: i64 = -2;

fn sequences(p: Params) -> (Vec<i64>, Vec<i64>) {
    let mut rng = rng_for("needle");
    (
        rand_vec(&mut rng, p.len, 0, 4),
        rand_vec(&mut rng, p.len, 0, 4),
    )
}

/// Builds the benchmark module.
pub fn build(scale: Scale) -> Module {
    let p = params(scale);
    let (s1, s2) = sequences(p);
    let dim = p.len + 1;
    let mut m = Module::new();
    let g_s1 = m.add_global(Global::new("nw_s1", s1));
    let g_s2 = m.add_global(Global::new("nw_s2", s2));
    let g_mat = m.add_global(Global::zeroed("nw_mat", dim * dim));

    let mut b = FunctionBuilder::new("main", &[], None);
    let s1 = b.global(g_s1);
    let s2 = b.global(g_s2);
    let mat = b.global(g_mat);
    let zero = b.iconst(Ty::I64, 0);
    let one = b.iconst(Ty::I64, 1);
    let dim_v = b.iconst(Ty::I64, dim as i64);
    let gap = b.iconst(Ty::I64, GAP);

    let at = |b: &mut FunctionBuilder, i: ferrum_mir::value::Value, j: ferrum_mir::value::Value| {
        let row = b.mul(Ty::I64, i, dim_v);
        b.add(Ty::I64, row, j)
    };

    // Boundary rows/columns: gap penalties.
    for_loop(&mut b, zero, dim_v, |b, i| {
        let pen = b.mul(Ty::I64, i, gap);
        let i0 = at(b, i, zero);
        store_elem(b, mat, i0, pen);
        let zi = at(b, zero, i);
        store_elem(b, mat, zi, pen);
    });

    for_loop(&mut b, one, dim_v, |b, i| {
        let one = b.iconst(Ty::I64, 1);
        for_loop(b, one, dim_v, |b, j| {
            let one = b.iconst(Ty::I64, 1);
            let im = b.sub(Ty::I64, i, one);
            let jm = b.sub(Ty::I64, j, one);
            let c1 = load_elem(b, s1, im);
            let c2 = load_elem(b, s2, jm);
            let eq = b.icmp(ICmpPred::Eq, Ty::I64, c1, c2);
            let sub_score = Var::zero(b, Ty::I64);
            if_else(
                b,
                eq,
                |b| {
                    let v = b.iconst(Ty::I64, MATCH);
                    sub_score.set(b, v);
                },
                |b| {
                    let v = b.iconst(Ty::I64, MISMATCH);
                    sub_score.set(b, v);
                },
            );
            let idiag = at(b, im, jm);
            let dscore = load_elem(b, mat, idiag);
            let sv = sub_score.get(b);
            let diag = b.add(Ty::I64, dscore, sv);
            let iup = at(b, im, j);
            let uscore = load_elem(b, mat, iup);
            let gap = b.iconst(Ty::I64, GAP);
            let up = b.add(Ty::I64, uscore, gap);
            let ileft = at(b, i, jm);
            let lscore = load_elem(b, mat, ileft);
            let left = b.add(Ty::I64, lscore, gap);
            let m1 = max_branch(b, diag, up);
            let m2 = max_branch(b, m1, left);
            let iij = at(b, i, j);
            store_elem(b, mat, iij, m2);
        });
    });

    // Final score plus last-row checksum.
    let last = b.iconst(Ty::I64, p.len as i64);
    let icorner = at(&mut b, last, last);
    let score = load_elem(&mut b, mat, icorner);
    b.print(score);
    let check = Var::zero(&mut b, Ty::I64);
    for_loop(&mut b, zero, dim_v, |b, j| {
        let idx = at(b, last, j);
        let v = load_elem(b, mat, idx);
        let one = b.iconst(Ty::I64, 1);
        let j1 = b.add(Ty::I64, j, one);
        let t = b.mul(Ty::I64, v, j1);
        check.add_assign(b, t);
    });
    let c = check.get(&mut b);
    b.print(c);
    b.ret(None);
    m.functions.push(b.finish());
    m
}

/// Native oracle.
pub fn oracle(scale: Scale) -> Vec<i64> {
    let p = params(scale);
    let (s1, s2) = sequences(p);
    let dim = p.len + 1;
    let mut mat = vec![0i64; dim * dim];
    for i in 0..dim {
        mat[i * dim] = i as i64 * GAP;
        mat[i] = i as i64 * GAP;
    }
    for i in 1..dim {
        for j in 1..dim {
            let sub = if s1[i - 1] == s2[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let diag = mat[(i - 1) * dim + (j - 1)] + sub;
            let up = mat[(i - 1) * dim + j] + GAP;
            let left = mat[i * dim + (j - 1)] + GAP;
            mat[i * dim + j] = diag.max(up).max(left);
        }
    }
    let score = mat[p.len * dim + p.len];
    let check: i64 = (0..dim)
        .map(|j| mat[p.len * dim + j] * (j as i64 + 1))
        .sum();
    vec![score, check]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ferrum_mir::interp::Interp;

    #[test]
    fn interpreter_matches_oracle() {
        for scale in [Scale::Test, Scale::Paper] {
            let m = build(scale);
            ferrum_mir::verify::verify_module(&m).expect("verifies");
            let out = Interp::new(&m).run().expect("runs").output;
            assert_eq!(out, oracle(scale), "{scale:?}");
        }
    }

    #[test]
    fn score_bounded_by_perfect_match() {
        let p = params(Scale::Paper);
        let out = oracle(Scale::Paper);
        assert!(out[0] <= MATCH * p.len as i64);
        assert!(out[0] >= GAP * 2 * p.len as i64);
    }
}
