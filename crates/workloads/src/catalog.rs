//! The benchmark catalog (paper Table II).

use ferrum_mir::module::Module;

use crate::kernels;

/// Problem-size scale: `Test` keeps unit tests and exhaustive campaigns
/// fast; `Paper` is used by the figure-regeneration harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Small sizes for debug-build tests.
    Test,
    /// Evaluation sizes for the campaign harnesses.
    Paper,
}

/// One benchmark: metadata plus its MIR builder and native oracle.
#[derive(Clone)]
pub struct Workload {
    /// Benchmark name (lower-case, as used on the paper's x-axes).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: &'static str,
    /// Application domain (Table II).
    pub domain: &'static str,
    build: fn(Scale) -> Module,
    oracle: fn(Scale) -> Vec<i64>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("domain", &self.domain)
            .finish()
    }
}

impl Workload {
    /// Builds the benchmark as a MIR module.
    pub fn build(&self, scale: Scale) -> Module {
        (self.build)(scale)
    }

    /// The expected program output, computed natively in Rust.
    pub fn oracle(&self, scale: Scale) -> Vec<i64> {
        (self.oracle)(scale)
    }
}

/// All eight benchmarks, in the paper's order.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "backprop",
            suite: "Rodinia",
            domain: "Machine Learning",
            build: kernels::backprop::build,
            oracle: kernels::backprop::oracle,
        },
        Workload {
            name: "bfs",
            suite: "Rodinia",
            domain: "Graph Algorithm",
            build: kernels::bfs::build,
            oracle: kernels::bfs::oracle,
        },
        Workload {
            name: "pathfinder",
            suite: "Rodinia",
            domain: "Dynamic Programming",
            build: kernels::pathfinder::build,
            oracle: kernels::pathfinder::oracle,
        },
        Workload {
            name: "lud",
            suite: "Rodinia",
            domain: "Linear Algebra",
            build: kernels::lud::build,
            oracle: kernels::lud::oracle,
        },
        Workload {
            name: "needle",
            suite: "Rodinia",
            domain: "Dynamic Programming",
            build: kernels::needle::build,
            oracle: kernels::needle::oracle,
        },
        Workload {
            name: "knn",
            suite: "Rodinia",
            domain: "Machine Learning",
            build: kernels::knn::build,
            oracle: kernels::knn::oracle,
        },
        Workload {
            name: "kmeans",
            suite: "Rodinia",
            domain: "Data Mining",
            build: kernels::kmeans::build,
            oracle: kernels::kmeans::oracle,
        },
        Workload {
            name: "particlefilter",
            suite: "Rodinia",
            domain: "Noise estimator",
            build: kernels::particlefilter::build,
            oracle: kernels::particlefilter::oracle,
        },
    ]
}

/// Looks up a benchmark by name.
pub fn workload(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_2() {
        let all = all_workloads();
        assert_eq!(all.len(), 8);
        let names: Vec<&str> = all.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "backprop",
                "bfs",
                "pathfinder",
                "lud",
                "needle",
                "knn",
                "kmeans",
                "particlefilter"
            ]
        );
        assert!(all.iter().all(|w| w.suite == "Rodinia"));
        assert_eq!(workload("kmeans").unwrap().domain, "Data Mining");
        assert!(workload("nonesuch").is_none());
    }
}
