//! # ferrum-workloads — the benchmark suite (paper Table II)
//!
//! MIR re-implementations of the eight Rodinia kernels the paper
//! evaluates, each with a deterministic input generator and a native
//! Rust *oracle* that computes the expected output independently of the
//! MIR interpreter and the CPU simulator — the differential tests compare
//! all three.
//!
//! | Benchmark      | Domain              | Kernel reproduced |
//! |----------------|---------------------|-------------------|
//! | backprop       | Machine Learning    | MLP forward + weight update, fixed point |
//! | bfs            | Graph Algorithm     | level-synchronous BFS over CSR |
//! | pathfinder     | Dynamic Programming | row-wise min-path DP |
//! | lud            | Linear Algebra      | Doolittle LU, fixed point |
//! | needle         | Dynamic Programming | Needleman-Wunsch alignment |
//! | knn            | Machine Learning    | k-nearest-neighbour selection |
//! | kmeans         | Data Mining         | Lloyd iterations with integer centroids |
//! | particlefilter | Noise estimator     | particle filter with LCG noise and resampling |
//!
//! Floating point is replaced by fixed-point arithmetic (see DESIGN.md):
//! the fault model targets integer registers, and the kernels' control
//! and data-flow structure — what determines instruction mix, and hence
//! coverage and overhead — is preserved.

pub mod catalog;
pub mod dsl;
pub mod kernels;

pub use catalog::{all_workloads, workload, Scale, Workload};
