//! Block-level backward liveness of MIR values.
//!
//! The mirror of `ferrum_asm::analysis::liveness::Liveness`, one layer
//! up: where the assembly analysis tracks register bytes, this one
//! tracks SSA-ish [`InstId`] values across the MIR control-flow graph.
//! The optimizing backend's linear-scan register allocator is driven by
//! these facts, and the fuzzer's generator consults them to emit
//! programs whose values are genuinely live across interesting control
//! flow (loops, diamonds) instead of dying in their defining block.
//!
//! Allocas are deliberately *not* tracked: an alloca's "value" is a
//! frame address, it is materialised by `lea` at each use, and its
//! storage is communicated through loads and stores, not through the
//! value graph.

use std::collections::BTreeSet;

use crate::func::{BlockId, Function};
use crate::inst::{InstId, MirInst};
use crate::value::Value;

/// Per-block live-in/live-out sets of instruction results.
#[derive(Debug, Clone)]
pub struct MirLiveness {
    live_in: Vec<BTreeSet<u32>>,
    live_out: Vec<BTreeSet<u32>>,
}

fn uses_of(inst: &MirInst, f: &mut impl FnMut(InstId)) {
    for v in inst.operands() {
        if let Value::Inst(id) = v {
            f(*id);
        }
    }
}

impl MirLiveness {
    /// Computes liveness for `f` by backward fixpoint over the block
    /// graph.
    pub fn compute(f: &Function) -> MirLiveness {
        let n = f.blocks.len();
        let allocas: BTreeSet<u32> = f
            .insts()
            .filter_map(|i| match i {
                MirInst::Alloca { id, .. } => Some(id.0),
                _ => None,
            })
            .collect();
        let mut gen_use: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
        let mut def: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
        for (bi, b) in f.blocks.iter().enumerate() {
            for inst in &b.insts {
                uses_of(inst, &mut |id| {
                    if !allocas.contains(&id.0) && !def[bi].contains(&id.0) {
                        gen_use[bi].insert(id.0);
                    }
                });
                if let Some(id) = inst.result() {
                    def[bi].insert(id.0);
                }
            }
        }
        let succs: Vec<Vec<usize>> = (0..n)
            .map(|bi| {
                f.successors(BlockId(bi as u32))
                    .into_iter()
                    .map(BlockId::index)
                    .collect()
            })
            .collect();
        let mut live_in = vec![BTreeSet::new(); n];
        let mut live_out = vec![BTreeSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..n).rev() {
                let mut out = BTreeSet::new();
                for &s in &succs[bi] {
                    out.extend(live_in[s].iter().copied());
                }
                let mut inn = out.clone();
                inn.retain(|id| !def[bi].contains(id));
                inn.extend(gen_use[bi].iter().copied());
                if out != live_out[bi] || inn != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        MirLiveness { live_in, live_out }
    }

    /// Values live on entry to block `bi`.
    pub fn live_in(&self, bi: usize) -> &BTreeSet<u32> {
        &self.live_in[bi]
    }

    /// Values live on exit from block `bi`.
    pub fn live_out(&self, bi: usize) -> &BTreeSet<u32> {
        &self.live_out[bi]
    }

    /// True when `id` is live across at least one block boundary.
    pub fn crosses_blocks(&self, id: InstId) -> bool {
        self.live_in.iter().any(|s| s.contains(&id.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Ty;

    #[test]
    fn straight_line_values_die_in_their_block() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let x = b.iconst(Ty::I64, 1);
        let y = b.iconst(Ty::I64, 2);
        let s = b.add(Ty::I64, x, y);
        b.print(s);
        b.ret(None);
        let f = b.finish();
        let lv = MirLiveness::compute(&f);
        assert!(lv.live_in(0).is_empty());
        assert!(lv.live_out(0).is_empty());
        if let Some(id) = s.as_inst() {
            assert!(!lv.crosses_blocks(id));
        }
    }

    #[test]
    fn value_used_across_a_diamond_is_live_through_both_arms() {
        let mut b = FunctionBuilder::new("f", &[Ty::I64], Some(Ty::I64));
        let t = b.create_block("t");
        let e = b.create_block("e");
        let j = b.create_block("j");
        let x = b.add(Ty::I64, b.arg(0), b.arg(0));
        let zero = b.iconst(Ty::I64, 0);
        let c = b.icmp(crate::inst::ICmpPred::Sgt, Ty::I64, x, zero);
        b.br(c, t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        // `x` is consumed only at the join: it must be live through
        // both arms.
        b.ret(Some(x));
        let f = b.finish();
        let lv = MirLiveness::compute(&f);
        let xid = x.as_inst().unwrap();
        for bi in 1..=3 {
            assert!(lv.live_in(bi).contains(&xid.0), "block {bi}");
        }
        assert!(lv.crosses_blocks(xid));
        assert!(lv.live_out(3).is_empty());
    }

    #[test]
    fn loop_carried_alloca_traffic_is_not_value_liveness() {
        // Loop state flows through an alloca slot; the per-iteration
        // load result must be live only inside the body.
        let mut b = FunctionBuilder::new("f", &[], None);
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        let pi = b.alloca(Ty::I64);
        let zero = b.iconst(Ty::I64, 0);
        b.store(Ty::I64, zero, pi);
        b.jmp(header);
        b.switch_to(header);
        let i = b.load(Ty::I64, pi);
        let bound = b.iconst(Ty::I64, 4);
        let c = b.icmp(crate::inst::ICmpPred::Slt, Ty::I64, i, bound);
        b.br(c, body, exit);
        b.switch_to(body);
        let one = b.iconst(Ty::I64, 1);
        let next = b.add(Ty::I64, i, one);
        b.store(Ty::I64, next, pi);
        b.jmp(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let lv = MirLiveness::compute(&f);
        let iid = i.as_inst().unwrap();
        // `i` is defined in the header and consumed in the body.
        assert!(lv.live_out(1).contains(&iid.0));
        assert!(lv.live_in(2).contains(&iid.0));
        assert!(!lv.live_in(1).contains(&iid.0), "not loop-carried");
        // The alloca address is not tracked as a live value.
        if let Some(pid) = pi.as_inst() {
            assert!(!lv.live_in(2).contains(&pid.0));
        }
    }
}
