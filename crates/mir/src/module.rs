//! Modules: functions plus global data.

use crate::func::Function;

/// A mutable global array of 64-bit words in the simulated data segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Initial contents.
    pub words: Vec<i64>,
}

impl Global {
    /// Creates a global from its initial words.
    pub fn new(name: impl Into<String>, words: Vec<i64>) -> Global {
        Global {
            name: name.into(),
            words,
        }
    }

    /// Creates a zero-initialised global of `len` words.
    pub fn zeroed(name: impl Into<String>, len: usize) -> Global {
        Global {
            name: name.into(),
            words: vec![0; len],
        }
    }
}

/// A whole MIR program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Module {
    /// Functions; the entry point is the one named `main`.
    pub functions: Vec<Function>,
    /// Global data, laid out in declaration order.
    pub globals: Vec<Global>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Creates a module from functions only.
    pub fn from_functions(functions: Vec<Function>) -> Module {
        Module {
            functions,
            globals: Vec::new(),
        }
    }

    /// Adds a global, returning `self` for chaining.
    pub fn with_global(mut self, g: Global) -> Module {
        self.globals.push(g);
        self
    }

    /// Adds a global and returns its id for use with
    /// [`crate::value::Value::Global`].
    pub fn add_global(&mut self, g: Global) -> crate::value::GlobalId {
        let id = crate::value::GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Total static MIR instruction count.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(Function::inst_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Ty;

    #[test]
    fn lookup_and_counts() {
        let m = Module::from_functions(vec![Function::new("main", &[], None)])
            .with_global(Global::new("a", vec![1, 2]))
            .with_global(Global::zeroed("b", 3));
        assert!(m.function("main").is_some());
        assert!(m.function("nope").is_none());
        assert_eq!(m.global("a").unwrap().words, vec![1, 2]);
        assert_eq!(m.global("b").unwrap().words, vec![0, 0, 0]);
        assert_eq!(m.inst_count(), 0);
        let _ = Ty::I64;
    }
}
