//! Reference interpreter — the fault-free golden oracle.
//!
//! The interpreter executes a [`Module`] with the same word-addressed
//! memory model the backend and CPU simulator use, so a fault-free
//! compiled run must print exactly what the interpreter prints.  The
//! differential tests in the workspace root enforce this for every
//! workload.

use std::collections::HashMap;
use std::fmt;

use crate::func::Function;
use crate::inst::{BinOp, MirInst};
use crate::module::Module;
use crate::types::Ty;
use crate::value::Value;

/// Base address of the global data segment (matches the CPU simulator).
pub const GLOBALS_BASE: u64 = 0x0001_0000;
/// Base address of the interpreter's alloca region.
pub const ALLOCA_BASE: u64 = 0x0100_0000;

/// Why interpretation stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Integer division by zero or `i32::MIN / -1`-style overflow.
    DivideError,
    /// Access to an unmapped or freed address.
    OutOfBounds(u64),
    /// Access not aligned to the 8-byte word size.
    Misaligned(u64),
    /// The step budget was exhausted (likely an infinite loop).
    StepLimit,
    /// Call to an unknown function.
    UnknownFunction(String),
    /// Host call-depth limit exceeded.
    CallDepth,
    /// An IR-level error detector fired (only possible under fault
    /// injection or a buggy protection pass).
    DetectorFired,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::DivideError => write!(f, "integer divide error"),
            Trap::OutOfBounds(a) => write!(f, "out-of-bounds access at {a:#x}"),
            Trap::Misaligned(a) => write!(f, "misaligned access at {a:#x}"),
            Trap::StepLimit => write!(f, "step limit exhausted"),
            Trap::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            Trap::CallDepth => write!(f, "call depth limit exceeded"),
            Trap::DetectorFired => write!(f, "IR-level error detector fired"),
        }
    }
}

impl std::error::Error for Trap {}

/// Result of a successful interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpResult {
    /// Values printed through `print_i64`, in order.
    pub output: Vec<i64>,
    /// `main`'s return value, if it returns one.
    pub ret: Option<i64>,
    /// Dynamic MIR instructions executed.
    pub steps: u64,
}

struct Memory {
    words: HashMap<u64, i64>,
    globals_end: u64,
    alloca_top: u64,
    global_bases: Vec<u64>,
}

impl Memory {
    fn new(m: &Module) -> Memory {
        let mut words = HashMap::new();
        let mut global_bases = Vec::new();
        let mut addr = GLOBALS_BASE;
        for g in &m.globals {
            global_bases.push(addr);
            for (i, w) in g.words.iter().enumerate() {
                words.insert(addr + i as u64 * 8, *w);
            }
            addr += g.words.len() as u64 * 8;
        }
        Memory {
            words,
            globals_end: addr,
            alloca_top: ALLOCA_BASE,
            global_bases,
        }
    }

    fn check(&self, addr: u64) -> Result<(), Trap> {
        if !addr.is_multiple_of(8) {
            return Err(Trap::Misaligned(addr));
        }
        let in_globals = (GLOBALS_BASE..self.globals_end).contains(&addr);
        let in_allocas = (ALLOCA_BASE..self.alloca_top).contains(&addr);
        if in_globals || in_allocas {
            Ok(())
        } else {
            Err(Trap::OutOfBounds(addr))
        }
    }

    fn load(&self, addr: u64) -> Result<i64, Trap> {
        self.check(addr)?;
        Ok(self.words.get(&addr).copied().unwrap_or(0))
    }

    fn store(&mut self, addr: u64, v: i64) -> Result<(), Trap> {
        self.check(addr)?;
        self.words.insert(addr, v);
        Ok(())
    }

    fn alloca(&mut self, count: u32) -> u64 {
        let base = self.alloca_top;
        self.alloca_top += u64::from(count) * 8;
        base
    }
}

/// The interpreter.  Construct with [`Interp::new`], configure limits,
/// then [`Interp::run`].
pub struct Interp<'m> {
    m: &'m Module,
    step_limit: u64,
    max_depth: usize,
}

impl<'m> Interp<'m> {
    /// Creates an interpreter for `m` with default limits (100 M steps,
    /// depth 128).
    pub fn new(m: &'m Module) -> Interp<'m> {
        Interp {
            m,
            step_limit: 100_000_000,
            max_depth: 128,
        }
    }

    /// Overrides the dynamic step limit.
    pub fn with_step_limit(mut self, limit: u64) -> Interp<'m> {
        self.step_limit = limit;
        self
    }

    /// Runs `main`.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on memory violations, divide errors, unknown
    /// callees, or exhausted limits.
    pub fn run(&self) -> Result<InterpResult, Trap> {
        let main = self
            .m
            .function("main")
            .ok_or_else(|| Trap::UnknownFunction("main".into()))?;
        let mut st = State {
            m: self.m,
            mem: Memory::new(self.m),
            output: Vec::new(),
            steps: 0,
            step_limit: self.step_limit,
            max_depth: self.max_depth,
        };
        let ret = st.call(main, &[], 0)?;
        Ok(InterpResult {
            output: st.output,
            ret,
            steps: st.steps,
        })
    }
}

struct State<'m> {
    m: &'m Module,
    mem: Memory,
    output: Vec<i64>,
    steps: u64,
    step_limit: u64,
    max_depth: usize,
}

impl<'m> State<'m> {
    fn resolve(&self, v: &Value, args: &[i64], locals: &HashMap<u32, i64>) -> Result<i64, Trap> {
        match v {
            Value::Inst(id) => Ok(*locals.get(&id.0).expect("verified value")),
            Value::Arg(i) => Ok(args[*i as usize]),
            Value::Const(_, c) => Ok(*c),
            Value::Global(g) => Ok(self.mem.global_bases[g.index()] as i64),
        }
    }

    fn call(&mut self, f: &Function, args: &[i64], depth: usize) -> Result<Option<i64>, Trap> {
        if depth >= self.max_depth {
            return Err(Trap::CallDepth);
        }
        let alloca_mark = self.mem.alloca_top;
        let mut locals: HashMap<u32, i64> = HashMap::new();
        let mut bb = 0usize;
        let mut idx = 0usize;
        loop {
            let inst = &f.blocks[bb].insts[idx];
            self.steps += 1;
            if self.steps > self.step_limit {
                return Err(Trap::StepLimit);
            }
            macro_rules! resolve {
                ($v:expr, $locals:expr) => {
                    self.resolve($v, args, $locals)
                };
            }
            match inst {
                MirInst::Alloca { id, count, .. } => {
                    let addr = self.mem.alloca(*count);
                    locals.insert(id.0, addr as i64);
                }
                MirInst::Load { id, ty, ptr } => {
                    let addr = resolve!(ptr, &locals)? as u64;
                    let w = self.mem.load(addr)?;
                    locals.insert(id.0, ty.wrap(w));
                }
                MirInst::Store { ty, val, ptr } => {
                    let v = ty.wrap(resolve!(val, &locals)?);
                    let addr = resolve!(ptr, &locals)? as u64;
                    self.mem.store(addr, v)?;
                }
                MirInst::Bin { id, op, ty, a, b } => {
                    let va = resolve!(a, &locals)?;
                    let vb = resolve!(b, &locals)?;
                    let r = eval_bin(*op, *ty, va, vb)?;
                    locals.insert(id.0, r);
                }
                MirInst::ICmp { id, pred, ty, a, b } => {
                    let va = resolve!(a, &locals)?;
                    let vb = resolve!(b, &locals)?;
                    locals.insert(id.0, i64::from(pred.eval(*ty, va, vb)));
                }
                MirInst::Gep { id, base, index } => {
                    let b0 = resolve!(base, &locals)?;
                    let i0 = resolve!(index, &locals)?;
                    locals.insert(id.0, b0.wrapping_add(i0.wrapping_mul(8)));
                }
                MirInst::Sext { id, to, v, .. } => {
                    // Values are already stored sign-extended; re-wrap to
                    // the destination type.
                    let x = resolve!(v, &locals)?;
                    locals.insert(id.0, to.wrap(x));
                }
                MirInst::Zext { id, from, v, .. } => {
                    let x = resolve!(v, &locals)?;
                    let masked = (x as u64)
                        & match from.bits() {
                            64 => u64::MAX,
                            b => (1u64 << b) - 1,
                        };
                    locals.insert(id.0, masked as i64);
                }
                MirInst::Trunc { id, to, v, .. } => {
                    let x = resolve!(v, &locals)?;
                    locals.insert(id.0, to.wrap(x));
                }
                MirInst::Call {
                    id,
                    callee,
                    args: call_args,
                } => {
                    let mut vals = Vec::with_capacity(call_args.len());
                    for a in call_args {
                        vals.push(resolve!(a, &locals)?);
                    }
                    if callee == crate::PRINT_I64 {
                        self.output.push(vals[0]);
                    } else if callee == crate::DETECT {
                        return Err(Trap::DetectorFired);
                    } else {
                        let g = self
                            .m
                            .function(callee)
                            .ok_or_else(|| Trap::UnknownFunction(callee.clone()))?;
                        let r = self.call(g, &vals, depth + 1)?;
                        if let (Some(id), Some(r)) = (id, r) {
                            locals.insert(id.0, r);
                        }
                    }
                }
                MirInst::Br {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = resolve!(cond, &locals)?;
                    bb = if c & 1 == 1 {
                        then_bb.index()
                    } else {
                        else_bb.index()
                    };
                    idx = 0;
                    continue;
                }
                MirInst::Jmp { target } => {
                    bb = target.index();
                    idx = 0;
                    continue;
                }
                MirInst::Ret { val } => {
                    let r = match val {
                        Some(v) => Some(resolve!(v, &locals)?),
                        None => None,
                    };
                    self.mem.alloca_top = alloca_mark;
                    return Ok(r);
                }
            }
            idx += 1;
        }
    }
}

fn eval_bin(op: BinOp, ty: Ty, a: i64, b: i64) -> Result<i64, Trap> {
    let r = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::SDiv | BinOp::SRem => {
            if b == 0 {
                return Err(Trap::DivideError);
            }
            // Overflow (MIN / -1) traps on x86; mirror that.
            let (min, a_w, b_w) = (
                match ty {
                    Ty::I32 => i64::from(i32::MIN),
                    _ => i64::MIN,
                },
                ty.wrap(a),
                ty.wrap(b),
            );
            if a_w == min && b_w == -1 {
                return Err(Trap::DivideError);
            }
            if op == BinOp::SDiv {
                a_w.wrapping_div(b_w)
            } else {
                a_w.wrapping_rem(b_w)
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            let amt = (b as u32) & (ty.bits().max(8) - 1);
            ty.wrap(a).wrapping_shl(amt)
        }
        BinOp::AShr => {
            let amt = (b as u32) & (ty.bits().max(8) - 1);
            ty.wrap(a).wrapping_shr(amt)
        }
        BinOp::LShr => {
            let amt = (b as u32) & (ty.bits().max(8) - 1);
            let mask = match ty.bits() {
                64 => u64::MAX,
                bits => (1u64 << bits) - 1,
            };
            (((a as u64) & mask) >> amt) as i64
        }
    };
    Ok(ty.wrap(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::ICmpPred;
    use crate::module::Global;

    fn run(m: &Module) -> InterpResult {
        Interp::new(m).run().expect("runs")
    }

    #[test]
    fn arithmetic_and_print() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let x = b.iconst(Ty::I64, 6);
        let y = b.iconst(Ty::I64, 7);
        let p = b.mul(Ty::I64, x, y);
        b.print(p);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        assert_eq!(run(&m).output, vec![42]);
    }

    #[test]
    fn alloca_store_load_round_trip() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let p = b.alloca(Ty::I32);
        let c = b.iconst(Ty::I32, -3);
        b.store(Ty::I32, c, p);
        let v = b.load(Ty::I32, p);
        b.print(v);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        assert_eq!(run(&m).output, vec![-3]);
    }

    #[test]
    fn loop_sums_global_array() {
        // for i in 0..5 { sum += tab[i] } ; print sum
        let mut b = FunctionBuilder::new("main", &[], None);
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        let pi = b.alloca(Ty::I64);
        let psum = b.alloca(Ty::I64);
        let zero = b.iconst(Ty::I64, 0);
        b.store(Ty::I64, zero, pi);
        b.store(Ty::I64, zero, psum);
        b.jmp(header);

        b.switch_to(header);
        let i = b.load(Ty::I64, pi);
        let five = b.iconst(Ty::I64, 5);
        let c = b.icmp(ICmpPred::Slt, Ty::I64, i, five);
        b.br(c, body, exit);

        b.switch_to(body);
        let i2 = b.load(Ty::I64, pi);
        let base = b.global(crate::value::GlobalId(0));
        let elem = b.gep(base, i2);
        let v = b.load(Ty::I64, elem);
        let s = b.load(Ty::I64, psum);
        let s2 = b.add(Ty::I64, s, v);
        b.store(Ty::I64, s2, psum);
        let one = b.iconst(Ty::I64, 1);
        let i3 = b.add(Ty::I64, i2, one);
        b.store(Ty::I64, i3, pi);
        b.jmp(header);

        b.switch_to(exit);
        let r = b.load(Ty::I64, psum);
        b.print(r);
        b.ret(None);

        let m = Module::from_functions(vec![b.finish()])
            .with_global(Global::new("tab", vec![1, 2, 3, 4, 5]));
        assert_eq!(run(&m).output, vec![15]);
    }

    #[test]
    fn function_call_with_result() {
        let mut callee = FunctionBuilder::new("square", &[Ty::I64], Some(Ty::I64));
        let a = callee.arg(0);
        let sq = callee.mul(Ty::I64, a, a);
        callee.ret(Some(sq));

        let mut main = FunctionBuilder::new("main", &[], None);
        let nine = main.iconst(Ty::I64, 9);
        let r = main.call("square", vec![nine], Some(Ty::I64)).unwrap();
        main.print(r);
        main.ret(None);
        let m = Module::from_functions(vec![main.finish(), callee.finish()]);
        assert_eq!(run(&m).output, vec![81]);
    }

    #[test]
    fn i32_arithmetic_wraps() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let max = b.iconst(Ty::I32, i64::from(i32::MAX));
        let one = b.iconst(Ty::I32, 1);
        let s = b.add(Ty::I32, max, one);
        b.print(s);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        assert_eq!(run(&m).output, vec![i64::from(i32::MIN)]);
    }

    #[test]
    fn divide_by_zero_traps() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let one = b.iconst(Ty::I64, 1);
        let zero = b.iconst(Ty::I64, 0);
        let q = b.sdiv(Ty::I64, one, zero);
        b.print(q);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        assert_eq!(Interp::new(&m).run().unwrap_err(), Trap::DivideError);
    }

    #[test]
    fn signed_division_overflow_traps() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let min = b.iconst(Ty::I32, i64::from(i32::MIN));
        let neg1 = b.iconst(Ty::I32, -1);
        let q = b.sdiv(Ty::I32, min, neg1);
        b.print(q);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        assert_eq!(Interp::new(&m).run().unwrap_err(), Trap::DivideError);
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let base = b.global(crate::value::GlobalId(0));
        let idx = b.iconst(Ty::I64, 100);
        let p = b.gep(base, idx);
        let v = b.load(Ty::I64, p);
        b.print(v);
        b.ret(None);
        let m =
            Module::from_functions(vec![b.finish()]).with_global(Global::new("tab", vec![0; 4]));
        assert!(matches!(
            Interp::new(&m).run().unwrap_err(),
            Trap::OutOfBounds(_)
        ));
    }

    #[test]
    fn step_limit_catches_infinite_loop() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let lp = b.create_block("loop");
        b.jmp(lp);
        b.switch_to(lp);
        b.jmp(lp);
        let m = Module::from_functions(vec![b.finish()]);
        assert_eq!(
            Interp::new(&m).with_step_limit(1000).run().unwrap_err(),
            Trap::StepLimit
        );
    }

    #[test]
    fn allocas_freed_on_return() {
        // Callee allocates, returns the pointer; dereferencing it in the
        // caller traps because the frame is gone.
        let mut callee = FunctionBuilder::new("leak", &[], Some(Ty::Ptr));
        let p = callee.alloca(Ty::I64);
        callee.ret(Some(p));
        let mut main = FunctionBuilder::new("main", &[], None);
        let p = main.call("leak", vec![], Some(Ty::Ptr)).unwrap();
        let v = main.load(Ty::I64, p);
        main.print(v);
        main.ret(None);
        let m = Module::from_functions(vec![main.finish(), callee.finish()]);
        assert!(matches!(
            Interp::new(&m).run().unwrap_err(),
            Trap::OutOfBounds(_)
        ));
    }

    #[test]
    fn shifts_and_logic() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let x = b.iconst(Ty::I64, -16);
        let two = b.iconst(Ty::I64, 2);
        let sh = b.ashr(Ty::I64, x, two);
        b.print(sh); // -4
        let y = b.iconst(Ty::I64, 0b1100);
        let z = b.iconst(Ty::I64, 0b1010);
        let a = b.and(Ty::I64, y, z);
        b.print(a); // 0b1000
        let o = b.or(Ty::I64, y, z);
        b.print(o); // 0b1110
        let e = b.xor(Ty::I64, y, z);
        b.print(e); // 0b0110
        let one = b.iconst(Ty::I64, 1);
        let six = b.iconst(Ty::I64, 6);
        let sl = b.shl(Ty::I64, one, six);
        b.print(sl); // 64
        let l = b.bin(BinOp::LShr, Ty::I64, x, two);
        b.print(l); // logical shift of -16
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        assert_eq!(
            run(&m).output,
            vec![
                -4,
                0b1000,
                0b1110,
                0b0110,
                64,
                ((-16i64 as u64) >> 2) as i64
            ]
        );
    }

    #[test]
    fn srem_matches_rust_semantics() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let a = b.iconst(Ty::I64, -7);
        let three = b.iconst(Ty::I64, 3);
        let r = b.srem(Ty::I64, a, three);
        b.print(r);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        assert_eq!(run(&m).output, vec![-1]);
    }

    #[test]
    fn steps_are_counted() {
        let mut b = FunctionBuilder::new("main", &[], None);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        assert_eq!(run(&m).steps, 1);
    }
}
