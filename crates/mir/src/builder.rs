//! Ergonomic construction of MIR functions.
//!
//! The builder keeps a current insertion block and hands out [`Value`]s,
//! letting the workload kernels read like the pseudo-code of the original
//! Rodinia sources.

use crate::func::{BlockId, Function, MirBlock};
use crate::inst::{BinOp, ICmpPred, InstId, MirInst};
use crate::types::Ty;
use crate::value::Value;

/// Builds one [`Function`] incrementally.
#[derive(Debug)]
pub struct FunctionBuilder {
    f: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Starts a function with an `entry` block selected for insertion.
    pub fn new(name: impl Into<String>, params: &[Ty], ret: Option<Ty>) -> FunctionBuilder {
        let mut f = Function::new(name, params, ret);
        f.blocks.push(MirBlock::new("entry"));
        FunctionBuilder { f, cur: BlockId(0) }
    }

    /// The `i`-th parameter as a value.
    pub fn arg(&self, i: u32) -> Value {
        Value::Arg(i)
    }

    /// An integer constant.
    pub fn iconst(&self, ty: Ty, v: i64) -> Value {
        Value::const_int(ty, v)
    }

    /// The address of a module global.
    pub fn global(&self, id: crate::value::GlobalId) -> Value {
        Value::Global(id)
    }

    /// Creates (but does not select) a new block.
    pub fn create_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.f.blocks.len() as u32);
        self.f.blocks.push(MirBlock::new(name));
        id
    }

    /// Selects the insertion block.
    ///
    /// # Panics
    ///
    /// Panics if `bb` does not exist.
    pub fn switch_to(&mut self, bb: BlockId) {
        assert!(bb.index() < self.f.blocks.len(), "no such block {bb}");
        self.cur = bb;
    }

    /// The currently selected block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    fn push(&mut self, inst: MirInst) {
        self.f.blocks[self.cur.index()].insts.push(inst);
    }

    fn push_with_id(&mut self, make: impl FnOnce(InstId) -> MirInst) -> Value {
        let id = self.f.fresh_id();
        self.push(make(id));
        Value::Inst(id)
    }

    /// `alloca` of a single word.
    pub fn alloca(&mut self, ty: Ty) -> Value {
        self.push_with_id(|id| MirInst::Alloca { id, ty, count: 1 })
    }

    /// `alloca` of `count` words (a local array).
    pub fn alloca_array(&mut self, ty: Ty, count: u32) -> Value {
        self.push_with_id(|id| MirInst::Alloca { id, ty, count })
    }

    /// Loads a `ty` from `ptr`.
    pub fn load(&mut self, ty: Ty, ptr: Value) -> Value {
        self.push_with_id(|id| MirInst::Load { id, ty, ptr })
    }

    /// Stores `val` to `ptr`.
    pub fn store(&mut self, ty: Ty, val: Value, ptr: Value) {
        self.push(MirInst::Store { ty, val, ptr });
    }

    /// Generic binary operation.
    pub fn bin(&mut self, op: BinOp, ty: Ty, a: Value, b: Value) -> Value {
        self.push_with_id(|id| MirInst::Bin { id, op, ty, a, b })
    }

    /// `a + b`.
    pub fn add(&mut self, ty: Ty, a: Value, b: Value) -> Value {
        self.bin(BinOp::Add, ty, a, b)
    }

    /// `a - b`.
    pub fn sub(&mut self, ty: Ty, a: Value, b: Value) -> Value {
        self.bin(BinOp::Sub, ty, a, b)
    }

    /// `a * b`.
    pub fn mul(&mut self, ty: Ty, a: Value, b: Value) -> Value {
        self.bin(BinOp::Mul, ty, a, b)
    }

    /// Signed `a / b`.
    pub fn sdiv(&mut self, ty: Ty, a: Value, b: Value) -> Value {
        self.bin(BinOp::SDiv, ty, a, b)
    }

    /// Signed `a % b`.
    pub fn srem(&mut self, ty: Ty, a: Value, b: Value) -> Value {
        self.bin(BinOp::SRem, ty, a, b)
    }

    /// Bitwise and/or/xor and shifts.
    pub fn and(&mut self, ty: Ty, a: Value, b: Value) -> Value {
        self.bin(BinOp::And, ty, a, b)
    }

    /// `a | b`.
    pub fn or(&mut self, ty: Ty, a: Value, b: Value) -> Value {
        self.bin(BinOp::Or, ty, a, b)
    }

    /// `a ^ b`.
    pub fn xor(&mut self, ty: Ty, a: Value, b: Value) -> Value {
        self.bin(BinOp::Xor, ty, a, b)
    }

    /// `a << b`.
    pub fn shl(&mut self, ty: Ty, a: Value, b: Value) -> Value {
        self.bin(BinOp::Shl, ty, a, b)
    }

    /// Arithmetic `a >> b`.
    pub fn ashr(&mut self, ty: Ty, a: Value, b: Value) -> Value {
        self.bin(BinOp::AShr, ty, a, b)
    }

    /// Comparison producing an `i1`.
    pub fn icmp(&mut self, pred: ICmpPred, ty: Ty, a: Value, b: Value) -> Value {
        self.push_with_id(|id| MirInst::ICmp { id, pred, ty, a, b })
    }

    /// Pointer arithmetic: `base + index * 8`.
    pub fn gep(&mut self, base: Value, index: Value) -> Value {
        self.push_with_id(|id| MirInst::Gep { id, base, index })
    }

    /// Sign extension.
    pub fn sext(&mut self, from: Ty, to: Ty, v: Value) -> Value {
        self.push_with_id(|id| MirInst::Sext { id, from, to, v })
    }

    /// Zero extension.
    pub fn zext(&mut self, from: Ty, to: Ty, v: Value) -> Value {
        self.push_with_id(|id| MirInst::Zext { id, from, to, v })
    }

    /// Truncation.
    pub fn trunc(&mut self, from: Ty, to: Ty, v: Value) -> Value {
        self.push_with_id(|id| MirInst::Trunc { id, from, to, v })
    }

    /// Calls `callee`; returns the result value when `ret_ty` is given.
    pub fn call(
        &mut self,
        callee: impl Into<String>,
        args: Vec<Value>,
        ret_ty: Option<Ty>,
    ) -> Option<Value> {
        if ret_ty.is_some() {
            let id = self.f.fresh_id();
            self.push(MirInst::Call {
                id: Some(id),
                callee: callee.into(),
                args,
            });
            Some(Value::Inst(id))
        } else {
            self.push(MirInst::Call {
                id: None,
                callee: callee.into(),
                args,
            });
            None
        }
    }

    /// Prints a value via the `print_i64` intrinsic.
    pub fn print(&mut self, v: Value) {
        self.push(MirInst::Call {
            id: None,
            callee: crate::PRINT_I64.into(),
            args: vec![v],
        });
    }

    /// Conditional branch terminator.
    pub fn br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) {
        self.push(MirInst::Br {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Unconditional branch terminator.
    pub fn jmp(&mut self, target: BlockId) {
        self.push(MirInst::Jmp { target });
    }

    /// Return terminator.
    pub fn ret(&mut self, val: Option<Value>) {
        self.push(MirInst::Ret { val });
    }

    /// Finishes the function.
    pub fn finish(self) -> Function {
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_structure() {
        let mut b = FunctionBuilder::new("f", &[Ty::I64], Some(Ty::I64));
        let p = b.alloca(Ty::I64);
        b.store(Ty::I64, b.arg(0), p);
        let v = b.load(Ty::I64, p);
        let one = b.iconst(Ty::I64, 1);
        let sum = b.add(Ty::I64, v, one);
        b.ret(Some(sum));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.inst_count(), 5);
        assert_eq!(f.next_id, 3); // alloca, load, add have results
    }

    #[test]
    fn blocks_and_branches() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let then_bb = b.create_block("then");
        let else_bb = b.create_block("else");
        let c = b.iconst(Ty::I1, 1);
        b.br(c, then_bb, else_bb);
        b.switch_to(then_bb);
        b.ret(None);
        b.switch_to(else_bb);
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.successors(BlockId(0)), vec![then_bb, else_bb]);
    }

    #[test]
    fn call_with_and_without_result() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let r = b.call("g", vec![], Some(Ty::I64));
        assert!(r.is_some());
        let none = b.call("h", vec![], None);
        assert!(none.is_none());
        b.print(r.unwrap());
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.inst_count(), 4);
    }

    #[test]
    #[should_panic(expected = "no such block")]
    fn switching_to_missing_block_panics() {
        let mut b = FunctionBuilder::new("f", &[], None);
        b.switch_to(BlockId(5));
    }
}
