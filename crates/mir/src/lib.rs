//! # ferrum-mir — a mini intermediate representation
//!
//! A small, typed, LLVM-flavoured IR in the `-O0` alloca/load/store style
//! that the FERRUM paper's code listings use (Fig. 2).  It exists so the
//! reproduction can implement *IR-level* EDDI exactly as the literature
//! describes — duplicate computational IR instructions, insert checks
//! before synchronisation points — and then lower the protected IR through
//! `ferrum-backend` to observe the cross-layer coverage loss the paper
//! measures.
//!
//! The crate provides:
//!
//! * the IR itself ([`inst::MirInst`], [`func::Function`],
//!   [`module::Module`]) with explicit basic blocks and terminators,
//! * an ergonomic [`builder::FunctionBuilder`] used by the workload crate
//!   to express the Rodinia-style kernels,
//! * a structural [`verify`] pass,
//! * a textual [`printer`],
//! * a reference [`interp`] interpreter that serves as the golden oracle
//!   for differential testing against the compiled simulation.
//!
//! ## Value and memory model
//!
//! All integers are two's complement.  Memory is word-addressed in
//! 8-byte units: every array element and every `alloca` slot occupies a
//! full 64-bit word, and narrower values are stored sign-extended.  This
//! mirrors the backend's 8-byte frame slots and keeps IR-level and
//! assembly-level executions bit-identical, which the differential tests
//! rely on.
//!
//! ## Example
//!
//! ```
//! use ferrum_mir::builder::FunctionBuilder;
//! use ferrum_mir::module::Module;
//! use ferrum_mir::types::Ty;
//! use ferrum_mir::interp::Interp;
//!
//! // int add(a, b) { return a + b; } — the paper's Fig. 2 example.
//! let mut b = FunctionBuilder::new("add", &[Ty::I32, Ty::I32], Some(Ty::I32));
//! let pa = b.alloca(Ty::I32);
//! let pb = b.alloca(Ty::I32);
//! b.store(Ty::I32, b.arg(0), pa);
//! b.store(Ty::I32, b.arg(1), pb);
//! let va = b.load(Ty::I32, pa);
//! let vb = b.load(Ty::I32, pb);
//! let sum = b.add(Ty::I32, va, vb);
//! b.ret(Some(sum));
//! let add = b.finish();
//!
//! let mut main = FunctionBuilder::new("main", &[], None);
//! let two = main.iconst(Ty::I32, 2);
//! let forty = main.iconst(Ty::I32, 40);
//! let r = main.call("add", vec![two, forty], Some(Ty::I32));
//! main.print(r.unwrap());
//! main.ret(None);
//!
//! let module = Module::from_functions(vec![main.finish(), add]);
//! let out = Interp::new(&module).run().unwrap();
//! assert_eq!(out.output, vec![42]);
//! ```

pub mod builder;
pub mod func;
pub mod inst;
pub mod interp;
pub mod liveness;
pub mod module;
pub mod printer;
pub mod types;
pub mod value;
pub mod verify;

pub use func::{BlockId, Function, MirBlock};
pub use inst::{BinOp, ICmpPred, InstId, MirInst};
pub use liveness::MirLiveness;
pub use module::{Global, Module};
pub use types::Ty;
pub use value::Value;

/// Name of the printing intrinsic understood by the interpreter, the
/// backend, and the CPU simulator alike.
pub const PRINT_I64: &str = "print_i64";

/// Name of the error-detection intrinsic inserted by IR-level protection
/// passes (the paper's `check_flag()` in Fig. 2).  The backend lowers a
/// call to it as a jump to `exit_function`; the interpreter reports
/// [`interp::Trap::DetectorFired`].
pub const DETECT: &str = "eddi_detect";
