//! Textual MIR output (for debugging and documentation; there is no MIR
//! parser — programs are constructed with the builder).

use std::fmt::Write as _;

use crate::func::Function;
use crate::inst::MirInst;
use crate::module::Module;

/// Renders one instruction.
pub fn print_inst(inst: &MirInst) -> String {
    match inst {
        MirInst::Alloca { id, ty, count } => format!("{id} = alloca {ty} x {count}"),
        MirInst::Load { id, ty, ptr } => format!("{id} = load {ty}, {ptr}"),
        MirInst::Store { ty, val, ptr } => format!("store {ty} {val}, {ptr}"),
        MirInst::Bin { id, op, ty, a, b } => {
            format!("{id} = {} {ty} {a}, {b}", op.mnemonic())
        }
        MirInst::ICmp { id, pred, ty, a, b } => {
            format!("{id} = icmp {} {ty} {a}, {b}", pred.mnemonic())
        }
        MirInst::Gep { id, base, index } => format!("{id} = gep {base}, {index}"),
        MirInst::Sext { id, from, to, v } => format!("{id} = sext {from} {v} to {to}"),
        MirInst::Zext { id, from, to, v } => format!("{id} = zext {from} {v} to {to}"),
        MirInst::Trunc { id, from, to, v } => format!("{id} = trunc {from} {v} to {to}"),
        MirInst::Call { id, callee, args } => {
            let args: Vec<String> = args.iter().map(ToString::to_string).collect();
            match id {
                Some(id) => format!("{id} = call @{callee}({})", args.join(", ")),
                None => format!("call @{callee}({})", args.join(", ")),
            }
        }
        MirInst::Br {
            cond,
            then_bb,
            else_bb,
        } => {
            format!("br {cond}, {then_bb}, {else_bb}")
        }
        MirInst::Jmp { target } => format!("jmp {target}"),
        MirInst::Ret { val } => match val {
            Some(v) => format!("ret {v}"),
            None => "ret void".to_owned(),
        },
    }
}

/// Renders a function.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f.params.iter().map(ToString::to_string).collect();
    let ret = f.ret.map_or("void".to_owned(), |t| t.to_string());
    let _ = writeln!(out, "define {ret} @{}({}) {{", f.name, params.join(", "));
    for (i, b) in f.blocks.iter().enumerate() {
        let _ = writeln!(out, "bb{i}:  ; {}", b.name);
        for inst in &b.insts {
            let _ = writeln!(out, "  {}", print_inst(inst));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for (i, g) in m.globals.iter().enumerate() {
        let _ = writeln!(out, "@g{i} = global [{} x i64] ; {}", g.words.len(), g.name);
    }
    for f in &m.functions {
        out.push_str(&print_function(f));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::Global;
    use crate::types::Ty;

    #[test]
    fn listing_mentions_key_constructs() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let p = b.alloca(Ty::I32);
        let c = b.iconst(Ty::I32, 7);
        b.store(Ty::I32, c, p);
        let v = b.load(Ty::I32, p);
        let s = b.add(Ty::I32, v, v);
        b.print(s);
        b.ret(None);
        let m =
            Module::from_functions(vec![b.finish()]).with_global(Global::new("tab", vec![0; 4]));
        let text = print_module(&m);
        assert!(text.contains("@g0 = global [4 x i64] ; tab"));
        assert!(text.contains("define void @main()"));
        assert!(text.contains("alloca i32"));
        assert!(text.contains("store i32"));
        assert!(text.contains("load i32"));
        assert!(text.contains("add i32"));
        assert!(text.contains("call @print_i64"));
        assert!(text.contains("ret void"));
    }

    #[test]
    fn branch_and_cmp_forms() {
        use crate::inst::ICmpPred;
        let mut b = FunctionBuilder::new("main", &[], None);
        let t = b.create_block("t");
        let e = b.create_block("e");
        let zero = b.iconst(Ty::I64, 0);
        let one = b.iconst(Ty::I64, 1);
        let c = b.icmp(ICmpPred::Slt, Ty::I64, zero, one);
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let text = print_function(&b.finish());
        assert!(text.contains("icmp slt i64"));
        assert!(text.contains("br %0, bb1, bb2"));
    }
}
