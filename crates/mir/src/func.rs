//! Functions and basic blocks.

use std::fmt;

use crate::inst::{InstId, MirInst};
use crate::types::Ty;

/// Identifier of a basic block within a function (index into
/// [`Function::blocks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A basic block: a label and its instructions, the last of which must be
/// a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirBlock {
    /// Human-readable name (unique within the function).
    pub name: String,
    /// Instructions; the final one is the terminator.
    pub insts: Vec<MirInst>,
}

impl MirBlock {
    /// Creates an empty block.
    pub fn new(name: impl Into<String>) -> MirBlock {
        MirBlock {
            name: name.into(),
            insts: Vec::new(),
        }
    }

    /// The terminator, if the block is complete.
    pub fn terminator(&self) -> Option<&MirInst> {
        self.insts.last().filter(|i| i.is_terminator())
    }
}

/// A MIR function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// The function name (`main` is the entry point).
    pub name: String,
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type (`None` = void).
    pub ret: Option<Ty>,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<MirBlock>,
    /// The next unallocated instruction id (ids are function-scoped).
    pub next_id: u32,
}

impl Function {
    /// Creates an empty function (no blocks yet).
    pub fn new(name: impl Into<String>, params: &[Ty], ret: Option<Ty>) -> Function {
        Function {
            name: name.into(),
            params: params.to_vec(),
            ret,
            blocks: Vec::new(),
            next_id: 0,
        }
    }

    /// Allocates a fresh instruction id.
    pub fn fresh_id(&mut self) -> InstId {
        let id = InstId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Total number of instructions.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Iterates over all instructions in block order.
    pub fn insts(&self) -> impl Iterator<Item = &MirInst> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }

    /// Looks up the instruction producing `id`.
    pub fn inst_by_id(&self, id: InstId) -> Option<&MirInst> {
        self.insts().find(|i| i.result() == Some(id))
    }

    /// Block ids of all successors of `bb`.
    pub fn successors(&self, bb: BlockId) -> Vec<BlockId> {
        match self.blocks[bb.index()].terminator() {
            Some(MirInst::Br {
                then_bb, else_bb, ..
            }) => vec![*then_bb, *else_bb],
            Some(MirInst::Jmp { target }) => vec![*target],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn ret_block() -> MirBlock {
        let mut b = MirBlock::new("entry");
        b.insts.push(MirInst::Ret { val: None });
        b
    }

    #[test]
    fn fresh_ids_are_sequential() {
        let mut f = Function::new("f", &[], None);
        assert_eq!(f.fresh_id(), InstId(0));
        assert_eq!(f.fresh_id(), InstId(1));
        assert_eq!(f.next_id, 2);
    }

    #[test]
    fn terminator_detection() {
        let b = ret_block();
        assert!(b.terminator().is_some());
        let empty = MirBlock::new("x");
        assert!(empty.terminator().is_none());
        let mut unterminated = MirBlock::new("y");
        unterminated.insts.push(MirInst::Store {
            ty: Ty::I64,
            val: Value::Arg(0),
            ptr: Value::Arg(1),
        });
        assert!(unterminated.terminator().is_none());
    }

    #[test]
    fn successors() {
        let mut f = Function::new("f", &[], None);
        let mut b0 = MirBlock::new("b0");
        b0.insts.push(MirInst::Br {
            cond: Value::Arg(0),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        });
        let mut b1 = MirBlock::new("b1");
        b1.insts.push(MirInst::Jmp { target: BlockId(2) });
        f.blocks.push(b0);
        f.blocks.push(b1);
        f.blocks.push(ret_block());
        assert_eq!(f.successors(BlockId(0)), vec![BlockId(1), BlockId(2)]);
        assert_eq!(f.successors(BlockId(1)), vec![BlockId(2)]);
        assert!(f.successors(BlockId(2)).is_empty());
    }

    #[test]
    fn inst_lookup() {
        let mut f = Function::new("f", &[], Some(Ty::I64));
        let id = f.fresh_id();
        let mut b = MirBlock::new("entry");
        b.insts.push(MirInst::Alloca {
            id,
            ty: Ty::I64,
            count: 1,
        });
        b.insts.push(MirInst::Ret {
            val: Some(Value::Inst(id)),
        });
        f.blocks.push(b);
        assert!(matches!(f.inst_by_id(id), Some(MirInst::Alloca { .. })));
        assert!(f.inst_by_id(InstId(99)).is_none());
        assert_eq!(f.inst_count(), 2);
    }
}
