//! SSA-ish values: instruction results, arguments, constants, globals.

use std::fmt;

use crate::inst::InstId;
use crate::types::Ty;

/// Identifier of a module global (index into
/// [`crate::module::Module::globals`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

impl GlobalId {
    /// The global's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@g{}", self.0)
    }
}

/// An operand of a MIR instruction.
///
/// `Value` is `Copy`, so kernels can reuse handles freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// The result of the instruction with this id.
    Inst(InstId),
    /// The `i`-th function argument.
    Arg(u32),
    /// An integer constant of the given type.
    Const(Ty, i64),
    /// The address of a module global.
    Global(GlobalId),
}

impl Value {
    /// Shorthand for an integer constant.
    pub fn const_int(ty: Ty, v: i64) -> Value {
        Value::Const(ty, ty.wrap(v))
    }

    /// Returns the instruction id if this value is an instruction result.
    pub fn as_inst(&self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(*id),
            _ => None,
        }
    }

    /// True if this value is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Value::Const(..))
    }
}

impl From<InstId> for Value {
    fn from(id: InstId) -> Value {
        Value::Inst(id)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Inst(id) => write!(f, "%{}", id.0),
            Value::Arg(i) => write!(f, "%arg{i}"),
            Value::Const(ty, v) => write!(f, "{ty} {v}"),
            Value::Global(g) => write!(f, "{g}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_int_wraps_to_type() {
        assert_eq!(Value::const_int(Ty::I8, 300), Value::Const(Ty::I8, 44));
        assert_eq!(Value::const_int(Ty::I32, -1), Value::Const(Ty::I32, -1));
    }

    #[test]
    fn accessors() {
        let v = Value::Inst(InstId(4));
        assert_eq!(v.as_inst(), Some(InstId(4)));
        assert!(!v.is_const());
        assert!(Value::const_int(Ty::I64, 0).is_const());
        assert_eq!(Value::Arg(0).as_inst(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Inst(InstId(3)).to_string(), "%3");
        assert_eq!(Value::Arg(1).to_string(), "%arg1");
        assert_eq!(Value::Const(Ty::I32, -5).to_string(), "i32 -5");
        assert_eq!(Value::Global(GlobalId(2)).to_string(), "@g2");
    }

    #[test]
    fn value_is_copy() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<Value>();
    }
}
