//! The MIR type system.

use std::fmt;

/// Primitive MIR types.
///
/// `I1` is the boolean result of `icmp`; `Ptr` is a 64-bit address.
/// Floating point is intentionally absent: the workload kernels use
/// fixed-point arithmetic (see DESIGN.md), which keeps the fault model —
/// single bit flips in integer registers — uniform across benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 1-bit boolean.
    I1,
    /// 8-bit integer.
    I8,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 64-bit pointer.
    Ptr,
}

impl Ty {
    /// Width in bits as materialised in a register.
    pub fn bits(self) -> u32 {
        match self {
            Ty::I1 => 1,
            Ty::I8 => 8,
            Ty::I32 => 32,
            Ty::I64 | Ty::Ptr => 64,
        }
    }

    /// True for `I64`/`Ptr`, which occupy a full register.
    pub fn is_wide(self) -> bool {
        matches!(self, Ty::I64 | Ty::Ptr)
    }

    /// Wraps an `i64` to this type's range (sign-extended two's
    /// complement), i.e. the canonical in-memory representation.
    pub fn wrap(self, v: i64) -> i64 {
        match self {
            Ty::I1 => v & 1,
            Ty::I8 => v as i8 as i64,
            Ty::I32 => v as i32 as i64,
            Ty::I64 | Ty::Ptr => v,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Ty::I1 => "i1",
            Ty::I8 => "i8",
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::Ptr => "ptr",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Ty::I1.bits(), 1);
        assert_eq!(Ty::I8.bits(), 8);
        assert_eq!(Ty::I32.bits(), 32);
        assert_eq!(Ty::I64.bits(), 64);
        assert_eq!(Ty::Ptr.bits(), 64);
        assert!(Ty::Ptr.is_wide() && Ty::I64.is_wide() && !Ty::I32.is_wide());
    }

    #[test]
    fn wrapping_is_sign_extended() {
        assert_eq!(Ty::I32.wrap(i64::from(i32::MAX) + 1), i64::from(i32::MIN));
        assert_eq!(Ty::I8.wrap(255), -1);
        assert_eq!(Ty::I1.wrap(3), 1);
        assert_eq!(Ty::I1.wrap(2), 0);
        assert_eq!(Ty::I64.wrap(i64::MIN), i64::MIN);
    }

    #[test]
    fn display() {
        assert_eq!(Ty::I32.to_string(), "i32");
        assert_eq!(Ty::Ptr.to_string(), "ptr");
    }
}
