//! Structural verification of MIR modules.

use std::collections::HashSet;
use std::fmt;

use crate::func::Function;
use crate::inst::MirInst;
use crate::module::Module;
use crate::value::Value;

/// A structural defect found by [`verify_module`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A block is empty or does not end in a terminator.
    BadTerminator { function: String, block: String },
    /// A terminator appears before the end of a block.
    EarlyTerminator { function: String, block: String },
    /// A branch targets a nonexistent block.
    BadBlockTarget { function: String, block: String },
    /// Two instructions share a result id.
    DuplicateId { function: String, id: u32 },
    /// An operand references an id never defined.
    UndefinedValue { function: String, id: u32 },
    /// An operand references an argument index out of range.
    BadArgIndex { function: String, index: u32 },
    /// A call names a function that does not exist.
    UnknownCallee { function: String, callee: String },
    /// A value names a global index that does not exist.
    UnknownGlobal { function: String, global: u32 },
    /// The module has no `main`.
    NoMain,
    /// `main` must take no parameters.
    MainHasParams,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadTerminator { function, block } => {
                write!(f, "block `{block}` in `{function}` lacks a terminator")
            }
            VerifyError::EarlyTerminator { function, block } => {
                write!(
                    f,
                    "terminator before end of block `{block}` in `{function}`"
                )
            }
            VerifyError::BadBlockTarget { function, block } => {
                write!(
                    f,
                    "branch to nonexistent block from `{block}` in `{function}`"
                )
            }
            VerifyError::DuplicateId { function, id } => {
                write!(f, "duplicate result id %{id} in `{function}`")
            }
            VerifyError::UndefinedValue { function, id } => {
                write!(f, "use of undefined value %{id} in `{function}`")
            }
            VerifyError::BadArgIndex { function, index } => {
                write!(f, "argument index {index} out of range in `{function}`")
            }
            VerifyError::UnknownCallee { function, callee } => {
                write!(f, "call to unknown function `{callee}` in `{function}`")
            }
            VerifyError::UnknownGlobal { function, global } => {
                write!(f, "reference to unknown global `{global}` in `{function}`")
            }
            VerifyError::NoMain => write!(f, "module has no `main` function"),
            VerifyError::MainHasParams => write!(f, "`main` must take no parameters"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole module.
///
/// # Errors
///
/// Returns every defect found.
pub fn verify_module(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    match m.function("main") {
        None => errors.push(VerifyError::NoMain),
        Some(f) if !f.params.is_empty() => errors.push(VerifyError::MainHasParams),
        _ => {}
    }
    for f in &m.functions {
        verify_function(m, f, &mut errors);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn verify_function(m: &Module, f: &Function, errors: &mut Vec<VerifyError>) {
    let mut defined: HashSet<u32> = HashSet::new();
    for inst in f.insts() {
        if let Some(id) = inst.result() {
            if !defined.insert(id.0) {
                errors.push(VerifyError::DuplicateId {
                    function: f.name.clone(),
                    id: id.0,
                });
            }
        }
    }
    for b in &f.blocks {
        match b.insts.last() {
            Some(t) if t.is_terminator() => {}
            _ => errors.push(VerifyError::BadTerminator {
                function: f.name.clone(),
                block: b.name.clone(),
            }),
        }
        for (i, inst) in b.insts.iter().enumerate() {
            if inst.is_terminator() && i + 1 != b.insts.len() {
                errors.push(VerifyError::EarlyTerminator {
                    function: f.name.clone(),
                    block: b.name.clone(),
                });
            }
            match inst {
                MirInst::Br {
                    then_bb, else_bb, ..
                } => {
                    for t in [then_bb, else_bb] {
                        if t.index() >= f.blocks.len() {
                            errors.push(VerifyError::BadBlockTarget {
                                function: f.name.clone(),
                                block: b.name.clone(),
                            });
                        }
                    }
                }
                MirInst::Jmp { target } if target.index() >= f.blocks.len() => {
                    errors.push(VerifyError::BadBlockTarget {
                        function: f.name.clone(),
                        block: b.name.clone(),
                    });
                }
                MirInst::Call { callee, .. }
                    if callee != crate::PRINT_I64
                        && callee != crate::DETECT
                        && m.function(callee).is_none() =>
                {
                    errors.push(VerifyError::UnknownCallee {
                        function: f.name.clone(),
                        callee: callee.clone(),
                    });
                }
                _ => {}
            }
            for v in inst.operands() {
                match v {
                    Value::Inst(id) => {
                        if !defined.contains(&id.0) {
                            errors.push(VerifyError::UndefinedValue {
                                function: f.name.clone(),
                                id: id.0,
                            });
                        }
                    }
                    Value::Arg(i) => {
                        if *i as usize >= f.params.len() {
                            errors.push(VerifyError::BadArgIndex {
                                function: f.name.clone(),
                                index: *i,
                            });
                        }
                    }
                    Value::Global(g) => {
                        if g.index() >= m.globals.len() {
                            errors.push(VerifyError::UnknownGlobal {
                                function: f.name.clone(),
                                global: g.0,
                            });
                        }
                    }
                    Value::Const(..) => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::func::BlockId;
    use crate::module::Global;
    use crate::types::Ty;

    fn trivial_main() -> Function {
        let mut b = FunctionBuilder::new("main", &[], None);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn valid_module_passes() {
        let m = Module::from_functions(vec![trivial_main()]);
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn missing_main_rejected() {
        let mut b = FunctionBuilder::new("f", &[], None);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        assert!(verify_module(&m)
            .unwrap_err()
            .contains(&VerifyError::NoMain));
    }

    #[test]
    fn main_with_params_rejected() {
        let mut b = FunctionBuilder::new("main", &[Ty::I64], None);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        assert!(verify_module(&m)
            .unwrap_err()
            .contains(&VerifyError::MainHasParams));
    }

    #[test]
    fn unterminated_block_rejected() {
        let b = FunctionBuilder::new("main", &[], None);
        let m = Module::from_functions(vec![b.finish()]);
        let errs = verify_module(&m).unwrap_err();
        assert!(matches!(errs[0], VerifyError::BadTerminator { .. }));
    }

    #[test]
    fn bad_block_target_rejected() {
        let mut b = FunctionBuilder::new("main", &[], None);
        b.jmp(BlockId(7));
        let m = Module::from_functions(vec![b.finish()]);
        let errs = verify_module(&m).unwrap_err();
        assert!(matches!(errs[0], VerifyError::BadBlockTarget { .. }));
    }

    #[test]
    fn undefined_value_rejected() {
        let mut b = FunctionBuilder::new("main", &[], None);
        b.print(Value::Inst(crate::inst::InstId(42)));
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::UndefinedValue { id: 42, .. })));
    }

    #[test]
    fn unknown_callee_and_global_rejected() {
        let mut b = FunctionBuilder::new("main", &[], None);
        b.call("ghost", vec![], None);
        let g = b.global(crate::value::GlobalId(9));
        b.print(g);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::UnknownCallee { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::UnknownGlobal { .. })));
    }

    #[test]
    fn known_global_accepted() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let g = b.global(crate::value::GlobalId(0));
        let v = b.load(Ty::I64, g);
        b.print(v);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]).with_global(Global::new("tab", vec![9]));
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn bad_arg_index_rejected() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let a = b.arg(0);
        b.print(a);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::BadArgIndex { index: 0, .. })));
    }

    #[test]
    fn early_terminator_rejected() {
        let mut b = FunctionBuilder::new("main", &[], None);
        b.ret(None);
        b.ret(None);
        let m = Module::from_functions(vec![b.finish()]);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::EarlyTerminator { .. })));
    }
}
