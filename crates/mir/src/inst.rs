//! MIR instructions.

use std::fmt;

use crate::func::BlockId;
use crate::types::Ty;
use crate::value::Value;

/// Identifier of an instruction result within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(pub u32);

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Binary integer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division (traps on divide-by-zero and overflow).
    SDiv,
    /// Signed remainder.
    SRem,
    And,
    Or,
    Xor,
    /// Shift left (amount masked to the type width).
    Shl,
    /// Arithmetic shift right.
    AShr,
    /// Logical shift right.
    LShr,
}

impl BinOp {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::SRem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::AShr => "ashr",
            BinOp::LShr => "lshr",
        }
    }
}

/// Integer comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ICmpPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl ICmpPred {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ICmpPred::Eq => "eq",
            ICmpPred::Ne => "ne",
            ICmpPred::Slt => "slt",
            ICmpPred::Sle => "sle",
            ICmpPred::Sgt => "sgt",
            ICmpPred::Sge => "sge",
            ICmpPred::Ult => "ult",
            ICmpPred::Ule => "ule",
            ICmpPred::Ugt => "ugt",
            ICmpPred::Uge => "uge",
        }
    }

    /// Evaluates the predicate on canonical (sign-extended) operands of
    /// type `ty`.
    pub fn eval(self, ty: Ty, a: i64, b: i64) -> bool {
        let (ua, ub) = (a as u64 & mask(ty), b as u64 & mask(ty));
        match self {
            ICmpPred::Eq => a == b,
            ICmpPred::Ne => a != b,
            ICmpPred::Slt => a < b,
            ICmpPred::Sle => a <= b,
            ICmpPred::Sgt => a > b,
            ICmpPred::Sge => a >= b,
            ICmpPred::Ult => ua < ub,
            ICmpPred::Ule => ua <= ub,
            ICmpPred::Ugt => ua > ub,
            ICmpPred::Uge => ua >= ub,
        }
    }
}

fn mask(ty: Ty) -> u64 {
    match ty.bits() {
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// A MIR instruction.
///
/// Instructions with results carry their [`InstId`]; terminators
/// (`br`, `jmp`, `ret`) must appear only as the final instruction of a
/// block (enforced by [`crate::verify`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MirInst {
    /// Reserve `count` 8-byte stack words; the result is their address.
    Alloca { id: InstId, ty: Ty, count: u32 },
    /// Load a `ty` value from the word at `ptr`.
    Load { id: InstId, ty: Ty, ptr: Value },
    /// Store `val` (of type `ty`) to the word at `ptr`.
    Store { ty: Ty, val: Value, ptr: Value },
    /// Binary arithmetic.
    Bin {
        id: InstId,
        op: BinOp,
        ty: Ty,
        a: Value,
        b: Value,
    },
    /// Integer comparison producing an `i1`.
    ICmp {
        id: InstId,
        pred: ICmpPred,
        ty: Ty,
        a: Value,
        b: Value,
    },
    /// Pointer arithmetic: `base + index * 8` (word-sized elements).
    Gep {
        id: InstId,
        base: Value,
        index: Value,
    },
    /// Sign-extension between integer types.
    Sext {
        id: InstId,
        from: Ty,
        to: Ty,
        v: Value,
    },
    /// Zero-extension between integer types.
    Zext {
        id: InstId,
        from: Ty,
        to: Ty,
        v: Value,
    },
    /// Truncation between integer types.
    Trunc {
        id: InstId,
        from: Ty,
        to: Ty,
        v: Value,
    },
    /// Call a function (or the print intrinsic).  `id` is the result if
    /// the callee returns a value.
    Call {
        id: Option<InstId>,
        callee: String,
        args: Vec<Value>,
    },
    /// Conditional branch on an `i1`.
    Br {
        cond: Value,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Unconditional branch.
    Jmp { target: BlockId },
    /// Return, with a value for non-void functions.
    Ret { val: Option<Value> },
}

impl MirInst {
    /// The result id, if the instruction produces a value.
    pub fn result(&self) -> Option<InstId> {
        match self {
            MirInst::Alloca { id, .. }
            | MirInst::Load { id, .. }
            | MirInst::Bin { id, .. }
            | MirInst::ICmp { id, .. }
            | MirInst::Gep { id, .. }
            | MirInst::Sext { id, .. }
            | MirInst::Zext { id, .. }
            | MirInst::Trunc { id, .. } => Some(*id),
            MirInst::Call { id, .. } => *id,
            _ => None,
        }
    }

    /// True for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            MirInst::Br { .. } | MirInst::Jmp { .. } | MirInst::Ret { .. }
        )
    }

    /// True for the synchronisation points EDDI checks before: stores,
    /// branches, calls, and returns (§II-C of the paper).
    pub fn is_sync_point(&self) -> bool {
        matches!(
            self,
            MirInst::Store { .. } | MirInst::Br { .. } | MirInst::Call { .. } | MirInst::Ret { .. }
        )
    }

    /// True for the computational instructions IR-level EDDI duplicates.
    pub fn is_duplicable(&self) -> bool {
        matches!(
            self,
            MirInst::Load { .. }
                | MirInst::Bin { .. }
                | MirInst::ICmp { .. }
                | MirInst::Gep { .. }
                | MirInst::Sext { .. }
                | MirInst::Zext { .. }
                | MirInst::Trunc { .. }
        )
    }

    /// The operand values read by the instruction.
    pub fn operands(&self) -> Vec<&Value> {
        match self {
            MirInst::Alloca { .. } => Vec::new(),
            MirInst::Load { ptr, .. } => vec![ptr],
            MirInst::Store { val, ptr, .. } => vec![val, ptr],
            MirInst::Bin { a, b, .. } | MirInst::ICmp { a, b, .. } => vec![a, b],
            MirInst::Gep { base, index, .. } => vec![base, index],
            MirInst::Sext { v, .. } | MirInst::Zext { v, .. } | MirInst::Trunc { v, .. } => {
                vec![v]
            }
            MirInst::Call { args, .. } => args.iter().collect(),
            MirInst::Br { cond, .. } => vec![cond],
            MirInst::Jmp { .. } => Vec::new(),
            MirInst::Ret { val } => val.iter().collect(),
        }
    }

    /// Mutable references to the operand values (used by the IR-level
    /// EDDI pass when it redirects duplicated operands).
    pub fn operands_mut(&mut self) -> Vec<&mut Value> {
        match self {
            MirInst::Alloca { .. } => Vec::new(),
            MirInst::Load { ptr, .. } => vec![ptr],
            MirInst::Store { val, ptr, .. } => vec![val, ptr],
            MirInst::Bin { a, b, .. } | MirInst::ICmp { a, b, .. } => vec![a, b],
            MirInst::Sext { v, .. } | MirInst::Zext { v, .. } | MirInst::Trunc { v, .. } => {
                vec![v]
            }
            MirInst::Gep { base, index, .. } => vec![base, index],
            MirInst::Call { args, .. } => args.iter_mut().collect(),
            MirInst::Br { cond, .. } => vec![cond],
            MirInst::Jmp { .. } => Vec::new(),
            MirInst::Ret { val } => val.iter_mut().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_ids() {
        let load = MirInst::Load {
            id: InstId(1),
            ty: Ty::I64,
            ptr: Value::Arg(0),
        };
        assert_eq!(load.result(), Some(InstId(1)));
        let store = MirInst::Store {
            ty: Ty::I64,
            val: Value::Arg(0),
            ptr: Value::Arg(1),
        };
        assert_eq!(store.result(), None);
        let call = MirInst::Call {
            id: None,
            callee: "print_i64".into(),
            args: vec![],
        };
        assert_eq!(call.result(), None);
    }

    #[test]
    fn classification() {
        let store = MirInst::Store {
            ty: Ty::I64,
            val: Value::Arg(0),
            ptr: Value::Arg(1),
        };
        assert!(store.is_sync_point() && !store.is_duplicable() && !store.is_terminator());
        let br = MirInst::Br {
            cond: Value::Arg(0),
            then_bb: BlockId(0),
            else_bb: BlockId(1),
        };
        assert!(br.is_sync_point() && br.is_terminator());
        let load = MirInst::Load {
            id: InstId(0),
            ty: Ty::I64,
            ptr: Value::Arg(0),
        };
        assert!(load.is_duplicable() && !load.is_sync_point());
        let ret = MirInst::Ret { val: None };
        assert!(ret.is_terminator() && ret.is_sync_point());
    }

    #[test]
    fn operands_cover_all_reads() {
        let bin = MirInst::Bin {
            id: InstId(2),
            op: BinOp::Add,
            ty: Ty::I32,
            a: Value::Arg(0),
            b: Value::Const(Ty::I32, 1),
        };
        assert_eq!(bin.operands().len(), 2);
        let mut bin = bin;
        for op in bin.operands_mut() {
            *op = Value::Arg(9);
        }
        assert_eq!(bin.operands(), vec![&Value::Arg(9), &Value::Arg(9)]);
    }

    #[test]
    fn icmp_eval_signed_vs_unsigned() {
        assert!(ICmpPred::Slt.eval(Ty::I32, -1, 0));
        assert!(!ICmpPred::Ult.eval(Ty::I32, -1, 0)); // -1 is 0xffffffff unsigned
        assert!(ICmpPred::Ugt.eval(Ty::I32, -1, 0));
        assert!(ICmpPred::Eq.eval(Ty::I64, 5, 5));
        assert!(ICmpPred::Ne.eval(Ty::I8, 1, 2));
        assert!(ICmpPred::Sge.eval(Ty::I64, i64::MAX, i64::MIN));
        assert!(ICmpPred::Ule.eval(Ty::I64, 3, 3));
    }

    #[test]
    fn mnemonics_unique() {
        let ops = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::SDiv,
            BinOp::SRem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::AShr,
            BinOp::LShr,
        ];
        let mut names: Vec<_> = ops.iter().map(|o| o.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ops.len());
    }
}
