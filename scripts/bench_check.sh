#!/usr/bin/env sh
# Regression gate for the committed bench.json baseline.
#
# Re-runs `repro_speedup` with the exact configuration recorded in
# results/bench.json (test scale, fixed seed and samples, so every
# deterministic metric must reproduce bit-for-bit), then compares the
# fresh artifact against the baseline with `bench_check`'s per-metric
# tolerances: outcome identity, latency percentiles, hit/prune rates
# and reuse counts exactly; engine speedups within generous bands;
# raw wall-clock rates, worker balance, and recorder overhead
# informational only (scheduler noise at test scale).
#
#   scripts/bench_check.sh           full gate (baseline repetitions)
#   scripts/bench_check.sh --quick   single repetition, widened bands
#                                    (the tier-1 configuration)
#
# Regenerating the baseline after an intentional performance change:
#   cargo run --release -p ferrum-bench --bin repro_speedup -- \
#     --scale test --samples 200 --seed 65092 --threads 4 --reps 2 \
#     --json-out results/bench.json
set -eu

cd "$(dirname "$0")/.."

BASELINE=results/bench.json
[ -f "$BASELINE" ] || { echo "bench_check.sh: missing $BASELINE" >&2; exit 2; }

REPS=2
QUICK=""
if [ "${1:-}" = "--quick" ]; then
    REPS=1
    QUICK="--quick"
fi

CURRENT=$(mktemp /tmp/bench.XXXXXX.json)
trap 'rm -f "$CURRENT"' EXIT

cargo run --release --offline -q -p ferrum-bench --bin repro_speedup -- \
    --scale test --samples 200 --seed 65092 --threads 4 --reps "$REPS" \
    --json-out "$CURRENT" > /dev/null 2>&1

cargo run --release --offline -q -p ferrum-bench --bin bench_check -- \
    "$BASELINE" "$CURRENT" $QUICK
