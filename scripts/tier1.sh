#!/usr/bin/env sh
# Tier-1 verification gate (CI-runnable, fully offline).
#
# The workspace follows a hermetic-build policy: every dependency is an
# in-tree path crate, so a clean checkout with an empty registry cache
# must build and test with --offline.  Run from anywhere.
set -eu

cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release --offline"
cargo build --release --offline --workspace

echo "== tier1: cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== tier1: cargo test -q --offline"
cargo test -q --offline --workspace

echo "== tier1: cargo build --offline --features trace (probes compiled in)"
cargo build --offline -p ferrum-cli --features trace

echo "== tier1: cargo test -q --offline --features trace (trace transparency)"
cargo test -q --offline --features trace --test trace_transparency

echo "== tier1: ferrum-cpu --selfcheck (decoded-engine identity across the catalog)"
cargo run --release --offline -q -p ferrum-cli --bin ferrum-cpu -- --selfcheck

echo "== tier1: ferrum-lint --catalog (static soundness self-check)"
cargo run --release --offline -q -p ferrum-cli --bin ferrum-lint -- --catalog

echo "== tier1: ferrum-trace --catalog (attribution + telemetry self-check)"
cargo run --release --offline -q -p ferrum-cli --bin ferrum-trace -- --catalog --samples 200

echo "== tier1: ferrum-coverage --catalog (verdict soundness + pruned==serial self-check)"
cargo run --release --offline -q -p ferrum-cli --bin ferrum-coverage -- --catalog --samples 200

echo "== tier1: ferrum-forensics --catalog (replay==serial + every SDC explained self-check)"
cargo run --release --offline -q -p ferrum-cli --bin ferrum-forensics -- --catalog --samples 200

echo "== tier1: ferrum-compose --catalog (composed verdicts sound + incremental==stratified self-check)"
cargo run --release --offline -q -p ferrum-cli --bin ferrum-compose -- --catalog --samples 200

echo "== tier1: ferrum-campaign --catalog (event-stream consistency + recorder purity + resume identity self-check)"
cargo run --release --offline -q -p ferrum-cli --bin ferrum-campaign -- --catalog --samples 200

echo "== tier1: ferrum-profile --catalog (cross-engine profile identity + per-site overhead reconciliation)"
cargo run --release --offline -q -p ferrum-cli --bin ferrum-profile -- --catalog

echo "== tier1: ferrum-fuzz (200-program differential sweep over the pinned seed window)"
cargo run --release --offline -q -p ferrum-cli --bin ferrum-fuzz -- --programs 200 --seed 42

echo "== tier1: bench_check.sh --quick (bench.json regression gate vs committed baseline)"
sh scripts/bench_check.sh --quick

echo "== tier1: OK"
