//! Quickstart: protect a program with FERRUM and watch a fault get
//! caught.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ferrum::{Pipeline, StopReason, Technique};
use ferrum_cpu::fault::FaultSpec;
use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a small program against the MIR builder API:
    //    print(tab[0]*tab[1] + tab[2]).
    let mut module = Module::new();
    let g = module.add_global(Global::new("tab", vec![6, 7, 0]));
    let mut b = FunctionBuilder::new("main", &[], None);
    let base = b.global(g);
    let i0 = b.iconst(Ty::I64, 0);
    let i1 = b.iconst(Ty::I64, 1);
    let i2 = b.iconst(Ty::I64, 2);
    let p0 = b.gep(base, i0);
    let p1 = b.gep(base, i1);
    let p2 = b.gep(base, i2);
    let a = b.load(Ty::I64, p0);
    let c = b.load(Ty::I64, p1);
    let d = b.load(Ty::I64, p2);
    let prod = b.mul(Ty::I64, a, c);
    let sum = b.add(Ty::I64, prod, d);
    b.print(sum);
    b.ret(None);
    module.functions.push(b.finish());

    // 2. Compile raw and with FERRUM protection.
    let pipeline = Pipeline::new();
    let raw = pipeline.protect(&module, Technique::None)?;
    let protected = pipeline.protect(&module, Technique::Ferrum)?;
    println!(
        "raw: {} instructions, FERRUM-protected: {} instructions",
        raw.static_inst_count(),
        protected.static_inst_count()
    );

    // 3. Fault-free runs agree.
    let raw_cpu = pipeline.load(&raw)?;
    let prot_cpu = pipeline.load(&protected)?;
    let golden = raw_cpu.run(None);
    assert_eq!(prot_cpu.run(None).output, golden.output);
    println!(
        "fault-free output: {:?} ({} cycles raw)",
        golden.output, golden.cycles
    );

    // 4. Inject the same fault into both: flip bit 4 of the destination
    //    of every 10th dynamic instruction and compare outcomes.
    let mut raw_sdc = 0;
    let mut prot_sdc = 0;
    let mut prot_detected = 0;
    for dyn_index in (0..golden.dyn_insts).step_by(10) {
        let fault = Some(FaultSpec::new(dyn_index, 4));
        let r = raw_cpu.run(fault);
        if r.stop == StopReason::MainReturned && r.output != golden.output {
            raw_sdc += 1;
        }
        let p = prot_cpu.run(fault);
        match p.stop {
            StopReason::Detected => prot_detected += 1,
            StopReason::MainReturned if p.output != golden.output => prot_sdc += 1,
            _ => {}
        }
    }
    println!("raw program:      {raw_sdc} silent corruptions");
    println!("FERRUM-protected: {prot_sdc} silent corruptions, {prot_detected} detections");
    assert_eq!(prot_sdc, 0, "FERRUM must catch every corruption");
    Ok(())
}
