//! Run a full fault-injection campaign on one benchmark and print the
//! outcome distribution per technique — a single-benchmark slice of the
//! paper's Fig. 10 methodology.
//!
//! ```sh
//! cargo run --release --example fault_campaign [benchmark] [samples]
//! ```

use ferrum::{Pipeline, Technique};
use ferrum_faultsim::campaign::{run_campaign, CampaignConfig};
use ferrum_faultsim::stats::{sdc_coverage, wilson_interval};
use ferrum_workloads::{workload, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("needle");
    let samples: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(500);
    let w = workload(name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    let module = w.build(Scale::Test);
    let pipeline = Pipeline::new();

    println!("fault campaign on `{name}` — {samples} single-bit faults per config");
    println!(
        "{:<28}{:>8}{:>10}{:>8}{:>9}{:>8}{:>11}",
        "configuration", "SDC", "detected", "crash", "timeout", "benign", "coverage"
    );

    let raw = pipeline.protect(&module, Technique::None)?;
    let raw_cpu = pipeline.load(&raw)?;
    let raw_profile = raw_cpu.profile();
    let raw_res = run_campaign(&raw_cpu, &raw_profile, CampaignConfig { samples, seed: 7 });
    println!(
        "{:<28}{:>8}{:>10}{:>8}{:>9}{:>8}{:>11}",
        "RAW", raw_res.sdc, raw_res.detected, raw_res.crash, raw_res.timeout, raw_res.benign, "-"
    );

    for t in Technique::PROTECTED {
        let prog = pipeline.protect(&module, t)?;
        let cpu = pipeline.load(&prog)?;
        let profile = cpu.profile();
        let res = run_campaign(&cpu, &profile, CampaignConfig { samples, seed: 8 });
        let cov = sdc_coverage(raw_res.sdc_prob(), res.sdc_prob());
        println!(
            "{:<28}{:>8}{:>10}{:>8}{:>9}{:>8}{:>10.1}%",
            t.label(),
            res.sdc,
            res.detected,
            res.crash,
            res.timeout,
            res.benign,
            cov * 100.0
        );
    }

    let (lo, hi) = wilson_interval(raw_res.sdc, samples);
    println!();
    println!(
        "raw SDC probability: {:.1}% (95% CI {:.1}%–{:.1}%) over {} injectable sites",
        raw_res.sdc_prob() * 100.0,
        lo * 100.0,
        hi * 100.0,
        raw_profile.sites.len()
    );
    Ok(())
}
