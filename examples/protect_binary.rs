//! Inspect what each protection technique does to real code: compile
//! the `pathfinder` benchmark (the kernel behind the paper's Fig. 6
//! example) and print annotated assembly excerpts for every technique.
//!
//! ```sh
//! cargo run --example protect_binary
//! ```

use ferrum::{Pipeline, Technique};
use ferrum_asm::printer::print_program;
use ferrum_workloads::{workload, Scale};

fn excerpt(listing: &str, around: &str, lines: usize) -> String {
    let all: Vec<&str> = listing.lines().collect();
    let pos = all.iter().position(|l| l.contains(around)).unwrap_or(0);
    let start = pos.saturating_sub(2);
    all[start..(start + lines).min(all.len())].join("\n")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workload("pathfinder").expect("in catalog");
    let module = w.build(Scale::Test);
    let pipeline = Pipeline::new();

    for t in [
        Technique::None,
        Technique::IrEddi,
        Technique::HybridAsmEddi,
        Technique::Ferrum,
    ] {
        let prog = pipeline.protect(&module, t)?;
        let listing = print_program(&prog);
        println!("==================================================================");
        println!("{t}: {} static instructions", prog.static_inst_count());
        println!("==================================================================");
        let marker = match t {
            // Show the flavour of each technique's checker code.
            Technique::None => "main_bb",
            Technique::IrEddi => "main_bb1:",
            Technique::HybridAsmEddi => "xorq",
            Technique::Ferrum => "vinserti128",
        };
        println!("{}", excerpt(&listing, marker, 18));
        println!();
    }
    println!("every `# prot:...` comment marks protection-inserted code;");
    println!("`# glue:...` marks backend footprint invisible at IR level.");
    Ok(())
}
