//! Watch a checker fire, instruction by instruction: inject a fault
//! into a FERRUM-protected program and render the execution trace up to
//! the detection.
//!
//! ```sh
//! cargo run --example trace_detection
//! ```

use ferrum::{Pipeline, StopReason, Technique};
use ferrum_cpu::fault::FaultSpec;
use ferrum_cpu::trace::WroteValue;
use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // print(tab[0] + tab[1])
    let mut module = Module::new();
    let g = module.add_global(Global::new("tab", vec![40, 2]));
    let mut b = FunctionBuilder::new("main", &[], None);
    let base = b.global(g);
    let zero = b.iconst(Ty::I64, 0);
    let one = b.iconst(Ty::I64, 1);
    let p0 = b.gep(base, zero);
    let p1 = b.gep(base, one);
    let a = b.load(Ty::I64, p0);
    let c = b.load(Ty::I64, p1);
    let s = b.add(Ty::I64, a, c);
    b.print(s);
    b.ret(None);
    module.functions.push(b.finish());

    let pipeline = Pipeline::new();
    let prog = pipeline.protect(&module, Technique::Ferrum)?;
    let cpu = pipeline.load(&prog)?;

    // Find a fault that gets detected, then show the trace.
    let profile = cpu.profile();
    let fault = profile
        .sites
        .iter()
        .find_map(|site| {
            let f = FaultSpec::new(site.dyn_index, 2);
            (cpu.run(Some(f)).stop == StopReason::Detected).then_some(f)
        })
        .expect("some fault is detected");

    println!(
        "injecting bit 2 at dynamic instruction {}:\n",
        fault.dyn_index
    );
    let trace = cpu.run_traced(Some(fault), 200);
    // Print a window around the injection point.
    let from = fault.dyn_index.saturating_sub(4);
    for e in &trace.entries {
        if e.dyn_index < from {
            continue;
        }
        let marker = if e.dyn_index == fault.dyn_index {
            "  <-- FAULT"
        } else {
            ""
        };
        let wrote = match e.wrote {
            WroteValue::None => String::new(),
            w => format!(" -> {w}"),
        };
        println!(
            "{:>5}  {:<42} # {}{}{}",
            e.dyn_index, e.text, e.prov, wrote, marker
        );
    }
    println!(
        "\nstop: {}   (output so far: {:?})",
        trace.result.stop, trace.result.output
    );
    assert_eq!(trace.result.stop, StopReason::Detected);
    Ok(())
}
