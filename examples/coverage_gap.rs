//! Demonstrate the paper's central observation (§IV-B1): IR-level EDDI
//! looks fully protective at IR level, yet assembly-level fault
//! injection finds silent corruptions — all of them in code the backend
//! generated behind the IR's back.
//!
//! ```sh
//! cargo run --release --example coverage_gap
//! ```

use ferrum::{Pipeline, Technique};
use ferrum_faultsim::campaign::{run_campaign, CampaignConfig};
use ferrum_faultsim::rootcause::{attribute_sdcs, render};
use ferrum_workloads::{workload, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workload("kmeans").expect("in catalog");
    let module = w.build(Scale::Test);
    let pipeline = Pipeline::new();

    let prog = pipeline.protect(&module, Technique::IrEddi)?;

    // Static view: how much of the program is glue the IR never saw?
    let total = prog.static_inst_count();
    let glue: usize = prog
        .functions
        .iter()
        .flat_map(|f| f.insts())
        .filter(|ai| ai.prov.is_glue())
        .count();
    println!("IR-EDDI-protected kmeans: {total} instructions, {glue} backend glue");
    println!("(store staging, branch materialisation, call glue, frame setup)");
    println!();

    // Dynamic view: inject faults and attribute every silent corruption.
    let cpu = pipeline.load(&prog)?;
    let profile = cpu.profile();
    let res = run_campaign(
        &cpu,
        &profile,
        CampaignConfig {
            samples: 2000,
            seed: 13,
        },
    );
    println!(
        "2000 faults into the protected program: {} SDC, {} detected, {} crash, {} benign",
        res.sdc, res.detected, res.crash, res.benign
    );
    println!();
    let report = attribute_sdcs(&cpu, &profile, &res);
    println!("{}", render(&report));
    println!("every residual SDC hit backend-generated or sync-point code —");
    println!("exactly the cross-layer gap FERRUM closes (coverage table: Fig. 10).");

    // Contrast: FERRUM on the same program.
    let ferrum_prog = pipeline.protect(&module, Technique::Ferrum)?;
    let fcpu = pipeline.load(&ferrum_prog)?;
    let fprofile = fcpu.profile();
    let fres = run_campaign(
        &fcpu,
        &fprofile,
        CampaignConfig {
            samples: 2000,
            seed: 13,
        },
    );
    println!();
    println!(
        "FERRUM, same campaign: {} SDC, {} detected, {} crash, {} benign",
        fres.sdc, fres.detected, fres.crash, fres.benign
    );
    assert_eq!(fres.sdc, 0);
    Ok(())
}
