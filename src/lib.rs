//! Workspace-root crate: hosts the integration tests in `tests/` and
//! the runnable examples in `examples/`.  All functionality lives in the
//! `crates/*` members; see the [`ferrum`] facade crate.
pub use ferrum as api;
