//! Pass-pipeline invariants for the `-O1` backend: `-O0` byte-identity,
//! semantic equivalence on every workload, idempotence, pass-stat
//! exactness, and register-pool discipline against protection
//! manifests.

use ferrum::{Pipeline, StopReason};
use ferrum_backend::{compile, compile_opt, compile_with_stats, OptLevel, ProgramMeta};
use ferrum_workloads::{all_workloads, Scale};

#[test]
fn o0_is_byte_identical_to_the_plain_compiler() {
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let plain = compile(&module).expect("compiles");
        let o0 = compile_opt(&module, OptLevel::O0).expect("compiles");
        assert_eq!(plain, o0, "{}: -O0 must not perturb output", w.name);
    }
}

#[test]
fn o1_preserves_semantics_on_every_workload() {
    let pipeline = Pipeline::new();
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let oracle = w.oracle(Scale::Test);
        let prog = compile_opt(&module, OptLevel::O1)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        prog.validate()
            .unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
        let run = pipeline.load(&prog).expect("loads").run(None);
        assert_eq!(run.stop, StopReason::MainReturned, "{}", w.name);
        assert_eq!(run.output, oracle, "{}: -O1 output vs oracle", w.name);
    }
}

#[test]
fn o1_shrinks_every_workload() {
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let o0 = compile(&module).expect("compiles");
        let (o1, stats) = compile_with_stats(&module, OptLevel::O1).expect("compiles");
        assert!(
            o1.static_inst_count() < o0.static_inst_count(),
            "{}: -O1 ({}) not smaller than -O0 ({})",
            w.name,
            o1.static_inst_count(),
            o0.static_inst_count()
        );
        assert!(stats.regalloc_allocated > 0, "{}: nothing allocated", w.name);
        assert!(
            stats.loads_forwarded + stats.loads_removed > 0,
            "{}: forwarding never fired",
            w.name
        );
    }
}

#[test]
fn the_pass_bundle_is_idempotent() {
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let meta = ProgramMeta::from_module(&module);
        let mut prog = compile_opt(&module, OptLevel::O1).expect("compiles");
        let before = prog.clone();
        let stats = ferrum_backend::opt::optimize(&mut prog, &meta);
        assert!(
            stats.bundle_is_noop(),
            "{}: second bundle run still changed code: {stats:?}",
            w.name
        );
        assert_eq!(before, prog, "{}: O1(O1(p)) != O1(p)", w.name);
    }
}

#[test]
fn pass_stats_account_for_the_exact_size_delta() {
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let meta = ProgramMeta::from_module(&module);
        // Run the bundle on plain -O0 output so both endpoints are
        // observable from outside.
        let mut prog = compile(&module).expect("compiles");
        let before = prog.static_inst_count() as u64;
        let stats = ferrum_backend::opt::optimize(&mut prog, &meta);
        let after = prog.static_inst_count() as u64;
        assert_eq!(
            before - after,
            stats.insts_removed(),
            "{}: stats {stats:?} disagree with size delta {before} -> {after}",
            w.name
        );
    }
}

#[test]
fn optimized_output_still_runs_after_bundling_o0_code() {
    let pipeline = Pipeline::new();
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let oracle = w.oracle(Scale::Test);
        let meta = ProgramMeta::from_module(&module);
        let mut prog = compile(&module).expect("compiles");
        ferrum_backend::opt::optimize(&mut prog, &meta);
        prog.validate()
            .unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
        let run = pipeline.load(&prog).expect("loads").run(None);
        assert_eq!(run.stop, StopReason::MainReturned, "{}", w.name);
        assert_eq!(run.output, oracle, "{}: bundled -O0 output vs oracle", w.name);
    }
}

#[test]
fn regalloc_pool_never_touches_manifest_reserved_registers() {
    // FERRUM declares its requisitioned spares in a ProtectionManifest;
    // the -O1 pool must be disjoint so protection always finds them.
    let ferrum_pass = ferrum_eddi::Ferrum::new();
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let prog = compile_opt(&module, OptLevel::O1).expect("compiles");
        let (_, manifests) = ferrum_pass
            .protect_with_manifest(&prog)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        for (fname, man) in &manifests {
            for g in &man.reserved_gprs {
                assert!(
                    !ferrum_backend::regalloc::POOL.contains(g),
                    "{}/{fname}: pool register {g} reserved by protection",
                    w.name
                );
            }
        }
    }
}

#[test]
fn asm_level_protection_keeps_full_coverage_on_optimized_programs() {
    // Regression for the hybrid pass's -O0-only assumption: it used to
    // skip asm-duplication of protection-tagged GPR sites on the theory
    // that protection code is always guarded by its own check.  After
    // -O1 value numbering that is false — master dataflow can be routed
    // through a lowered signature shadow, so a fault there corrupts
    // real output after the guarding check already ran.  Both asm-level
    // techniques must stay SDC-free on optimized input.
    use ferrum::{CampaignConfig, Technique};
    use ferrum_faultsim::campaign::run_campaign;
    for name in ["needle", "kmeans", "pathfinder"] {
        let w = ferrum_workloads::workload(name).expect("in catalog");
        let module = w.build(Scale::Test);
        let pipeline = Pipeline::new().with_opt_level(OptLevel::O1);
        for technique in [Technique::HybridAsmEddi, Technique::Ferrum] {
            let prog = pipeline.protect(&module, technique).expect("protects");
            let cpu = pipeline.load(&prog).expect("loads");
            let profile = cpu.profile();
            let cfg = CampaignConfig {
                samples: 400,
                seed: 0xFE44,
            };
            let result = run_campaign(&cpu, &profile, cfg);
            assert_eq!(
                result.sdc, 0,
                "{name}/{technique}@O1: {} SDCs escaped asm-level protection",
                result.sdc
            );
        }
    }
}
