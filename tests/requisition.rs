//! Stack-level register requisition (paper §III-B4, Fig. 7) under
//! stress: the forced-requisition configuration must stay transparent
//! and fully protective across the entire benchmark suite, and must
//! actually emit the push/pop idiom.

use ferrum::{Pipeline, StopReason, Technique};
use ferrum_asm::inst::Inst;
use ferrum_eddi::ferrum::{Ferrum, FerrumConfig};
use ferrum_faultsim::campaign::{run_campaign, CampaignConfig};
use ferrum_workloads::{all_workloads, Scale};

fn requisition_pipeline() -> Pipeline {
    Pipeline::new().with_ferrum_config(FerrumConfig {
        force_requisition: true,
        ..FerrumConfig::default()
    })
}

#[test]
fn forced_requisition_is_transparent_on_every_workload() {
    let pipeline = requisition_pipeline();
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let prog = pipeline
            .protect(&module, Technique::Ferrum)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        prog.validate()
            .unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
        let run = pipeline.load(&prog).expect("loads").run(None);
        assert_eq!(run.stop, StopReason::MainReturned, "{}", w.name);
        assert_eq!(run.output, w.oracle(Scale::Test), "{}", w.name);
    }
}

#[test]
fn forced_requisition_keeps_full_coverage() {
    let pipeline = requisition_pipeline();
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let prog = pipeline
            .protect(&module, Technique::Ferrum)
            .expect("protects");
        let cpu = pipeline.load(&prog).expect("loads");
        let profile = cpu.profile();
        let res = run_campaign(
            &cpu,
            &profile,
            CampaignConfig {
                samples: 150,
                seed: 31,
            },
        );
        assert_eq!(res.sdc, 0, "{}: requisition mode must stay at 100%", w.name);
    }
}

#[test]
fn requisition_emits_fig7_idiom_with_red_zone_checks() {
    let w = ferrum_workloads::workload("pathfinder").expect("exists");
    let module = w.build(Scale::Test);
    let asm = ferrum_backend::compile(&module).expect("compiles");
    let cfg = FerrumConfig {
        force_requisition: true,
        ..FerrumConfig::default()
    };
    let (prog, stats) = Ferrum::with_config(cfg)
        .protect_with_stats(&asm)
        .expect("protects");
    assert!(stats.requisitioned_blocks > 0);
    let main = prog.function("main").expect("main");
    let pushes = main
        .insts()
        .filter(|a| a.prov.is_protection() && matches!(a.inst, Inst::Push { .. }))
        .count();
    let pops = main
        .insts()
        .filter(|a| a.prov.is_protection() && matches!(a.inst, Inst::Pop { .. }))
        .count();
    assert!(pushes > 0, "requisition pushes expected");
    // Every exit path pops what the entry pushed; stubs add more exits,
    // so pops ≥ pushes.
    assert!(pops >= pushes, "pushes {pushes} pops {pops}");
    // Each protection pop is followed by its red-zone verification.
    for b in &main.blocks {
        for (i, ai) in b.insts.iter().enumerate() {
            if ai.prov.is_protection() && matches!(ai.inst, Inst::Pop { .. }) {
                let next = &b.insts[i + 1].inst;
                assert!(
                    matches!(next, Inst::Cmp { .. }),
                    "pop without red-zone check in {}",
                    b.label
                );
            }
        }
    }
}

#[test]
fn requisition_mode_costs_more_than_normal_mode() {
    // The paper: requisition trades performance for registers
    // ("with some extra performance overheads", §III-B4).
    let w = ferrum_workloads::workload("needle").expect("exists");
    let module = w.build(Scale::Test);
    let normal = Pipeline::new();
    let forced = requisition_pipeline();
    let pn = normal.protect(&module, Technique::Ferrum).unwrap();
    let pf = forced.protect(&module, Technique::Ferrum).unwrap();
    let cn = normal.load(&pn).unwrap().run(None).cycles;
    let cf = forced.load(&pf).unwrap().run(None).cycles;
    assert!(
        cf > cn,
        "requisition {cf} should cost more than normal {cn}"
    );
}
