//! Property-based tests over the whole stack:
//!
//! * printer/parser round-trips on randomly generated instructions,
//! * random straight-line + branching MIR programs execute identically
//!   in the interpreter and the simulator, protected or not,
//! * random single-bit faults never silently corrupt a FERRUM- or
//!   hybrid-protected program.
//!
//! Compiled only with `--features proptest` after manually restoring
//! the external `proptest` dev-dependency (hermetic-build policy: the
//! default workspace must resolve with zero registry access).
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use ferrum::{CampaignConfig, CoverageMap, Pipeline, StaticVerdict, StopReason, Technique};
use ferrum_asm::flags::Cc;
use ferrum_asm::inst::{AluOp, Inst, ShiftAmount, ShiftOp, UnaryOp};
use ferrum_asm::operand::{MemRef, Operand, Scale as MScale};
use ferrum_asm::reg::{Gpr, Reg, Width, Xmm, Ymm, ALL_GPRS};
use ferrum_cpu::fault::FaultSpec;
use ferrum_faultsim::campaign::{classify, run_campaign, run_campaign_pruned, Outcome};
use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::inst::{BinOp, ICmpPred};
use ferrum_mir::interp::Interp;
use ferrum_mir::module::Module;
use ferrum_mir::types::Ty;
use ferrum_mir::value::Value;

// ---------------------------------------------------------------------
// Printer / parser round trips
// ---------------------------------------------------------------------

fn gpr_strategy() -> impl Strategy<Value = Gpr> {
    (0usize..16).prop_map(|i| ALL_GPRS[i])
}

fn width_strategy() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::W8),
        Just(Width::W16),
        Just(Width::W32),
        Just(Width::W64)
    ]
}

fn memref_strategy() -> impl Strategy<Value = MemRef> {
    (
        -512i64..512,
        proptest::option::of(gpr_strategy()),
        proptest::option::of((
            gpr_strategy(),
            prop_oneof![
                Just(MScale::S1),
                Just(MScale::S2),
                Just(MScale::S4),
                Just(MScale::S8)
            ],
        )),
    )
        .prop_map(|(disp, base, index)| {
            if base.is_none() && index.is_none() {
                MemRef::global("gsym", disp.abs())
            } else {
                MemRef {
                    disp,
                    base,
                    index,
                    symbol: None,
                }
            }
        })
}

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (gpr_strategy(), width_strategy()).prop_map(|(g, w)| Operand::Reg(Reg::gpr(g, w))),
        any::<i32>().prop_map(|v| Operand::Imm(i64::from(v))),
        memref_strategy().prop_map(Operand::Mem),
    ]
}

fn cc_strategy() -> impl Strategy<Value = Cc> {
    (0usize..12).prop_map(|i| Cc::ALL[i])
}

fn reg_op_strategy() -> impl Strategy<Value = Operand> {
    (gpr_strategy(), width_strategy()).prop_map(|(g, w)| Operand::Reg(Reg::gpr(g, w)))
}

fn inst_strategy() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (width_strategy(), operand_strategy(), reg_op_strategy())
            .prop_map(|(w, src, dst)| Inst::Mov { w, src, dst }),
        (operand_strategy(), gpr_strategy()).prop_map(|(src, dst)| Inst::Movsx {
            src_w: Width::W32,
            dst_w: Width::W64,
            src,
            dst: Reg::q(dst),
        }),
        (memref_strategy(), gpr_strategy()).prop_map(|(mem, dst)| Inst::Lea {
            mem,
            dst: Reg::q(dst)
        }),
        (
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Sub),
                Just(AluOp::And),
                Just(AluOp::Or),
                Just(AluOp::Xor)
            ],
            width_strategy(),
            operand_strategy(),
            reg_op_strategy(),
        )
            .prop_map(|(op, w, src, dst)| Inst::Alu { op, w, src, dst }),
        (
            prop_oneof![Just(ShiftOp::Shl), Just(ShiftOp::Shr), Just(ShiftOp::Sar)],
            width_strategy(),
            prop_oneof![(0u8..64).prop_map(ShiftAmount::Imm), Just(ShiftAmount::Cl)],
            reg_op_strategy(),
        )
            .prop_map(|(op, w, amount, dst)| Inst::Shift { op, w, amount, dst }),
        (
            prop_oneof![Just(UnaryOp::Neg), Just(UnaryOp::Not)],
            width_strategy(),
            reg_op_strategy()
        )
            .prop_map(|(op, w, dst)| Inst::Unary { op, w, dst }),
        (width_strategy(), operand_strategy(), reg_op_strategy())
            .prop_map(|(w, src, dst)| Inst::Cmp { w, src, dst }),
        (cc_strategy(), reg_op_strategy()).prop_map(|(cc, dst)| {
            let dst = match dst {
                Operand::Reg(r) => Operand::Reg(Reg::b(r.gpr)),
                other => other,
            };
            Inst::Setcc { cc, dst }
        }),
        cc_strategy().prop_map(|cc| Inst::Jcc {
            cc,
            target: "label_x".into()
        }),
        (0u8..2, operand_strategy(), (0u8..16)).prop_map(|(lane, src, x)| Inst::Pinsrq {
            lane,
            src,
            dst: Xmm::new(x)
        }),
        (0u8..2, (0u8..16), (0u8..16), (0u8..16)).prop_map(|(lane, a, b, c)| {
            Inst::Vinserti128 {
                lane,
                src: Xmm::new(a),
                src2: Ymm::new(b),
                dst: Ymm::new(c),
            }
        }),
        ((0u8..16), (0u8..16), (0u8..16)).prop_map(|(a, b, c)| Inst::Vpxor {
            a: Ymm::new(a),
            b: Ymm::new(b),
            dst: Ymm::new(c)
        }),
        Just(Inst::Ret),
        Just(Inst::Nop),
        gpr_strategy().prop_map(|g| Inst::Push {
            src: Operand::Reg(Reg::q(g))
        }),
        gpr_strategy().prop_map(|g| Inst::Pop {
            dst: Operand::Reg(Reg::q(g))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn printer_parser_round_trip(inst in inst_strategy()) {
        let text = ferrum_asm::printer::print_inst(&inst);
        let back = ferrum_asm::parser::parse_inst(&text)
            .unwrap_or_else(|e| panic!("parse `{text}`: {e}"));
        prop_assert_eq!(back, inst);
    }
}

// ---------------------------------------------------------------------
// Random MIR programs: differential execution + protection transparency
// ---------------------------------------------------------------------

/// A recipe for one random arithmetic program: op codes and operand
/// picks, interpreted deterministically by `build_program`.
#[derive(Debug, Clone)]
struct Recipe {
    seeds: Vec<i64>,
    steps: Vec<(u8, u8, u8)>,
    branch_on: u8,
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (
        proptest::collection::vec(-1000i64..1000, 2..5),
        proptest::collection::vec((0u8..8, any::<u8>(), any::<u8>()), 1..24),
        any::<u8>(),
    )
        .prop_map(|(seeds, steps, branch_on)| Recipe {
            seeds,
            steps,
            branch_on,
        })
}

fn build_program(r: &Recipe) -> Module {
    let mut b = FunctionBuilder::new("main", &[], None);
    let mut vals: Vec<Value> = r.seeds.iter().map(|&v| b.iconst(Ty::I64, v)).collect();
    for &(op, x, y) in &r.steps {
        let a = vals[x as usize % vals.len()];
        let c = vals[y as usize % vals.len()];
        let v = match op {
            0 => b.add(Ty::I64, a, c),
            1 => b.sub(Ty::I64, a, c),
            2 => b.mul(Ty::I64, a, c),
            3 => b.and(Ty::I64, a, c),
            4 => b.or(Ty::I64, a, c),
            5 => b.xor(Ty::I64, a, c),
            6 => {
                let amt = b.iconst(Ty::I64, i64::from(y % 63));
                b.shl(Ty::I64, a, amt)
            }
            _ => {
                // Division by a guaranteed non-zero constant.
                let d = b.iconst(Ty::I64, i64::from(x % 17) + 1);
                b.sdiv(Ty::I64, a, d)
            }
        };
        vals.push(v);
    }
    // One branch: print a different summary per side.
    let last = *vals.last().expect("non-empty");
    let pivot = vals[r.branch_on as usize % vals.len()];
    let cond = b.icmp(ICmpPred::Slt, Ty::I64, pivot, last);
    let t = b.create_block("t");
    let e = b.create_block("e");
    b.br(cond, t, e);
    b.switch_to(t);
    let s = b.bin(BinOp::Add, Ty::I64, last, pivot);
    b.print(s);
    b.ret(None);
    b.switch_to(e);
    let d = b.bin(BinOp::Xor, Ty::I64, last, pivot);
    b.print(d);
    b.ret(None);
    Module::from_functions(vec![b.finish()])
}

/// A richer recipe with memory traffic: a scratch array in a global,
/// data-dependent stores/loads, and a bounded loop.
#[derive(Debug, Clone)]
struct MemRecipe {
    init: Vec<i64>,
    rounds: u8,
    ops: Vec<(u8, u8, i64)>,
}

fn mem_recipe_strategy() -> impl Strategy<Value = MemRecipe> {
    (
        proptest::collection::vec(-50i64..50, 4..8),
        1u8..5,
        proptest::collection::vec((0u8..4, any::<u8>(), -9i64..9), 1..10),
    )
        .prop_map(|(init, rounds, ops)| MemRecipe { init, rounds, ops })
}

fn build_mem_program(r: &MemRecipe) -> Module {
    use ferrum_mir::module::Global;
    let n = r.init.len();
    let mut module = Module::new();
    let g = module.add_global(Global::new("scratch", r.init.clone()));
    let mut b = FunctionBuilder::new("main", &[], None);
    let base = b.global(g);
    let nv = b.iconst(Ty::I64, n as i64);
    let rounds = b.iconst(Ty::I64, i64::from(r.rounds));
    let zero = b.iconst(Ty::I64, 0);
    // A manual counted loop (round counter in an alloca).
    let pr = b.alloca(Ty::I64);
    b.store(Ty::I64, zero, pr);
    let header = b.create_block("h");
    let body = b.create_block("b");
    let exit = b.create_block("x");
    b.jmp(header);
    b.switch_to(header);
    let cur = b.load(Ty::I64, pr);
    let c = b.icmp(ICmpPred::Slt, Ty::I64, cur, rounds);
    b.br(c, body, exit);
    b.switch_to(body);
    for &(op, idx_pick, k) in &r.ops {
        let i = b.iconst(Ty::I64, i64::from(idx_pick) % n as i64);
        let p = b.gep(base, i);
        let v = b.load(Ty::I64, p);
        let kc = b.iconst(Ty::I64, k);
        let nv2 = match op {
            0 => b.add(Ty::I64, v, kc),
            1 => b.mul(Ty::I64, v, kc),
            2 => b.xor(Ty::I64, v, kc),
            _ => b.sub(Ty::I64, v, kc),
        };
        b.store(Ty::I64, nv2, p);
    }
    let cur2 = b.load(Ty::I64, pr);
    let one = b.iconst(Ty::I64, 1);
    let nxt = b.add(Ty::I64, cur2, one);
    b.store(Ty::I64, nxt, pr);
    b.jmp(header);
    b.switch_to(exit);
    // Print a checksum of the array.
    let acc = b.alloca(Ty::I64);
    b.store(Ty::I64, zero, acc);
    let h2 = b.create_block("h2");
    let b2 = b.create_block("b2");
    let x2 = b.create_block("x2");
    let pi = b.alloca(Ty::I64);
    b.store(Ty::I64, zero, pi);
    b.jmp(h2);
    b.switch_to(h2);
    let i = b.load(Ty::I64, pi);
    let c2 = b.icmp(ICmpPred::Slt, Ty::I64, i, nv);
    b.br(c2, b2, x2);
    b.switch_to(b2);
    let i2 = b.load(Ty::I64, pi);
    let p = b.gep(base, i2);
    let v = b.load(Ty::I64, p);
    let s = b.load(Ty::I64, acc);
    let s2 = b.add(Ty::I64, s, v);
    b.store(Ty::I64, s2, acc);
    let one = b.iconst(Ty::I64, 1);
    let i3 = b.add(Ty::I64, i2, one);
    b.store(Ty::I64, i3, pi);
    b.jmp(h2);
    b.switch_to(x2);
    let out = b.load(Ty::I64, acc);
    b.print(out);
    b.ret(None);
    module.functions.push(b.finish());
    module
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn random_memory_programs_execute_identically_everywhere(r in mem_recipe_strategy()) {
        let module = build_mem_program(&r);
        ferrum_mir::verify::verify_module(&module).expect("verifies");
        let golden = Interp::new(&module).run().expect("interprets").output;
        let pipeline = Pipeline::new();
        for t in [
            Technique::None,
            Technique::IrEddi,
            Technique::HybridAsmEddi,
            Technique::Ferrum,
        ] {
            let prog = pipeline.protect(&module, t).expect("protects");
            let run = pipeline.load(&prog).expect("loads").run(None);
            prop_assert_eq!(run.stop, StopReason::MainReturned, "{}", t);
            prop_assert_eq!(&run.output, &golden, "{}", t);
        }
    }

    #[test]
    fn random_faults_never_silently_corrupt_ferrum_on_memory_programs(
        r in mem_recipe_strategy(),
        picks in proptest::collection::vec((any::<u64>(), any::<u16>()), 8),
    ) {
        let module = build_mem_program(&r);
        let pipeline = Pipeline::new();
        let prog = pipeline.protect(&module, Technique::Ferrum).expect("protects");
        let cpu = pipeline.load(&prog).expect("loads");
        let profile = cpu.profile();
        for (site_pick, raw_bit) in picks {
            let site = profile.sites[(site_pick % profile.sites.len() as u64) as usize];
            let run = cpu.run(Some(FaultSpec::new(site.dyn_index, raw_bit)));
            let outcome = classify(run.stop, &run.output, &profile.result.output);
            prop_assert_ne!(outcome, Outcome::Sdc, "site {:?}", site);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn random_programs_execute_identically_everywhere(r in recipe_strategy()) {
        let module = build_program(&r);
        ferrum_mir::verify::verify_module(&module).expect("verifies");
        let golden = Interp::new(&module).run().expect("interprets").output;
        let pipeline = Pipeline::new();
        for t in [
            Technique::None,
            Technique::IrEddi,
            Technique::HybridAsmEddi,
            Technique::Ferrum,
        ] {
            let prog = pipeline.protect(&module, t).expect("protects");
            let run = pipeline.load(&prog).expect("loads").run(None);
            prop_assert_eq!(run.stop, StopReason::MainReturned, "{}", t);
            prop_assert_eq!(&run.output, &golden, "{}", t);
        }
    }

    #[test]
    fn random_faults_never_silently_corrupt_ferrum(
        r in recipe_strategy(),
        picks in proptest::collection::vec((any::<u64>(), any::<u16>()), 12),
    ) {
        let module = build_program(&r);
        let pipeline = Pipeline::new();
        let prog = pipeline.protect(&module, Technique::Ferrum).expect("protects");
        let cpu = pipeline.load(&prog).expect("loads");
        let profile = cpu.profile();
        for (site_pick, raw_bit) in picks {
            let site = profile.sites[(site_pick % profile.sites.len() as u64) as usize];
            let run = cpu.run(Some(FaultSpec::new(site.dyn_index, raw_bit)));
            let outcome = classify(run.stop, &run.output, &profile.result.output);
            prop_assert_ne!(outcome, Outcome::Sdc, "site {:?}", site);
        }
    }

    #[test]
    fn static_verdicts_are_sound_on_random_programs(
        r in recipe_strategy(),
        picks in proptest::collection::vec((any::<u64>(), any::<u16>()), 12),
    ) {
        // The coverage map's decided verdicts must agree with real
        // injection on arbitrary generated programs, not just the
        // benchmark catalog.
        let module = build_program(&r);
        let pipeline = Pipeline::new();
        let prog = pipeline.protect(&module, Technique::Ferrum).expect("protects");
        let map = CoverageMap::analyze(&prog);
        let cpu = pipeline.load(&prog).expect("loads");
        let profile = cpu.profile();
        for (site_pick, raw_bit) in picks {
            let site = profile.sites[(site_pick % profile.sites.len() as u64) as usize];
            let run = cpu.run(Some(FaultSpec::new(site.dyn_index, raw_bit)));
            let outcome = classify(run.stop, &run.output, &profile.result.output);
            match map.verdict_at(site.pc, raw_bit) {
                Some(StaticVerdict::Masked) =>
                    prop_assert_eq!(outcome, Outcome::Benign, "site {:?}", site),
                Some(StaticVerdict::Detected) =>
                    prop_assert_eq!(outcome, Outcome::Detected, "site {:?}", site),
                _ => {}
            }
        }
    }

    #[test]
    fn pruned_campaign_matches_serial_on_random_programs(
        r in recipe_strategy(),
        seed in any::<u64>(),
    ) {
        let module = build_program(&r);
        let pipeline = Pipeline::new();
        let prog = pipeline.protect(&module, Technique::Ferrum).expect("protects");
        let map = CoverageMap::analyze(&prog);
        let cpu = pipeline.load(&prog).expect("loads");
        let profile = cpu.profile();
        let cfg = CampaignConfig { samples: 64, seed };
        let serial = run_campaign(&cpu, &profile, cfg);
        let pruned = run_campaign_pruned(&cpu, &profile, cfg, &map);
        prop_assert_eq!(serial, pruned);
    }

    #[test]
    fn random_faults_never_silently_corrupt_hybrid(
        r in recipe_strategy(),
        picks in proptest::collection::vec((any::<u64>(), any::<u16>()), 8),
    ) {
        let module = build_program(&r);
        let pipeline = Pipeline::new();
        let prog = pipeline.protect(&module, Technique::HybridAsmEddi).expect("protects");
        let cpu = pipeline.load(&prog).expect("loads");
        let profile = cpu.profile();
        for (site_pick, raw_bit) in picks {
            let site = profile.sites[(site_pick % profile.sites.len() as u64) as usize];
            let run = cpu.run(Some(FaultSpec::new(site.dyn_index, raw_bit)));
            let outcome = classify(run.stop, &run.output, &profile.result.output);
            prop_assert_ne!(outcome, Outcome::Sdc, "site {:?}", site);
        }
    }
}
