//! Cross-validation of differential-replay forensics against campaign
//! ground truth — the acceptance contract of `ferrum-forensics`.
//!
//! Four halves, mirroring the acceptance criteria (DESIGN.md §5e):
//!
//! 1. **Replay is observational**: `run_campaign_forensic` is
//!    outcome-identical to the serial engine per seed, fault for
//!    fault, across every catalog workload × technique.
//! 2. **Every SDC is explained**: each analyzed SDC record locates its
//!    first architectural divergence exactly at the injected dynamic
//!    index, and at least 90% carry a classified escape reason (the
//!    engine achieves 100%; the floor leaves slack for future
//!    classifiers).
//! 3. **Explanations are internally consistent**: cumulative taint is
//!    monotone, the kill window contains the divergence, and the
//!    window closes no later than the corruption's arrival at the
//!    output.
//! 4. **Unknown sites get diagnosed**: statically-`Unknown` coverage
//!    sites that produced an SDC cross-link to a measured explanation.
//!
//! A property-based module (compiled only with `--features proptest`
//! after restoring the external dev-dependency) re-checks the
//! invariants over random seeds.

use ferrum::{
    explain_unknown_sites, run_campaign_forensic, CampaignConfig, CoverageMap, ForensicConfig,
    Outcome, Pipeline, Technique,
};
use ferrum_faultsim::campaign::run_campaign;
use ferrum_faultsim::forensics::{EscapeReason, ForensicRecord, ForensicsReport};
use ferrum_workloads::catalog::{all_workloads, Scale};

const SAMPLES: usize = 200;
const SEED: u64 = 0xF0E2;

fn analyze(
    pipeline: &Pipeline,
    module: &ferrum_mir::module::Module,
    technique: Technique,
    outcomes: Vec<Outcome>,
) -> (
    ferrum::CampaignResult,
    ferrum::CampaignResult,
    ForensicsReport,
    Vec<ferrum::UnknownSiteExplanation>,
) {
    let prog = pipeline.protect(module, technique).expect("protects");
    let map = CoverageMap::analyze(&prog);
    let cpu = pipeline.load(&prog).expect("loads");
    let profile = cpu.profile();
    let cfg = CampaignConfig {
        samples: SAMPLES,
        seed: SEED,
    };
    let serial = run_campaign(&cpu, &profile, cfg);
    let fcfg = ForensicConfig {
        outcomes,
        max_records: usize::MAX,
        ..ForensicConfig::default()
    };
    let (forensic, report) = run_campaign_forensic(&cpu, &profile, cfg, &fcfg);
    let expl = explain_unknown_sites(&profile, &map, &report);
    (serial, forensic, report, expl)
}

/// The consistency contract for one record (halves 2 and 3 above).
fn check_record(ctx: &str, r: &ForensicRecord) {
    let d = r
        .divergence
        .unwrap_or_else(|| panic!("{ctx}: record has no divergence"));
    assert_eq!(
        d.dyn_index, r.fault.dyn_index,
        "{ctx}: divergence must sit at the injected site"
    );
    assert!(
        r.primary_reason.is_some() || r.outcome != Outcome::Sdc,
        "{ctx}: every SDC must be classified"
    );
    let mut prev = 0usize;
    let mut prev_dyn = 0u64;
    for (i, s) in r.taint.samples.iter().enumerate() {
        assert!(
            s.cumulative >= prev,
            "{ctx}: cumulative taint must be monotone"
        );
        assert!(
            i == 0 || s.dyn_index > prev_dyn,
            "{ctx}: taint samples must advance in time"
        );
        prev = s.cumulative;
        prev_dyn = s.dyn_index;
    }
    assert!(
        r.taint.propagation_depth >= 1,
        "{ctx}: a bit flip taints at least one location"
    );
    if let Some(w) = &r.kill_window {
        if !w.escaped {
            assert!(
                w.contains(d.dyn_index),
                "{ctx}: kill window [{}, {}] must contain the divergence at {}",
                w.start,
                w.end,
                d.dyn_index
            );
            if let Some(out) = r.taint.time_to_output {
                assert!(
                    w.end <= out,
                    "{ctx}: repairs past the output write ({out}) cannot kill the fault"
                );
            }
        }
    }
}

#[test]
fn forensic_campaigns_are_outcome_identical_for_all_workloads() {
    let pipeline = Pipeline::new();
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        for technique in [
            Technique::None,
            Technique::IrEddi,
            Technique::HybridAsmEddi,
            Technique::Ferrum,
        ] {
            let (serial, forensic, _, _) =
                analyze(&pipeline, &module, technique, vec![Outcome::Sdc]);
            assert_eq!(
                serial, forensic,
                "{}/{technique}: forensic replay changed campaign outcomes",
                w.name
            );
        }
    }
}

#[test]
fn every_sdc_is_located_and_classified() {
    let pipeline = Pipeline::new();
    let mut total_sdc = 0usize;
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        // IR-EDDI leaks SDCs through backend glue; the raw build leaks
        // everywhere.  Between them every workload contributes records.
        for technique in [Technique::None, Technique::IrEddi] {
            let (_, forensic, report, _) =
                analyze(&pipeline, &module, technique, vec![Outcome::Sdc]);
            assert_eq!(
                report.matching_total, forensic.sdc,
                "{}/{technique}: every SDC must be selected",
                w.name
            );
            assert_eq!(
                report.analyzed(),
                report.matching_total,
                "{}/{technique}: every selected SDC must be analyzed",
                w.name
            );
            assert_eq!(
                report.located(),
                report.analyzed(),
                "{}/{technique}: every record must locate its divergence",
                w.name
            );
            assert!(
                report.classified() as f64 >= 0.9 * report.analyzed() as f64,
                "{}/{technique}: at least 90% of records must be classified ({}/{})",
                w.name,
                report.classified(),
                report.analyzed()
            );
            total_sdc += forensic.sdc;
            for r in &report.records {
                check_record(&format!("{}/{technique}", w.name), r);
            }
            let hist_sum: usize = report.reason_histogram.iter().map(|&(_, n)| n).sum();
            assert_eq!(
                hist_sum,
                report.classified(),
                "{}/{technique}: histogram must account for every classification",
                w.name
            );
        }
    }
    assert!(
        total_sdc > 0,
        "the suite must exercise real SDCs to mean anything"
    );
}

#[test]
fn non_sdc_outcomes_replay_consistently() {
    let pipeline = Pipeline::new();
    let module = ferrum_workloads::workload("pathfinder")
        .expect("exists")
        .build(Scale::Test);
    let (_, forensic, report, _) = analyze(
        &pipeline,
        &module,
        Technique::Ferrum,
        Outcome::ALL.to_vec(),
    );
    assert_eq!(report.matching_total, forensic.total());
    assert_eq!(report.analyzed(), report.matching_total);
    for r in &report.records {
        check_record("pathfinder/all-outcomes", r);
        if r.outcome == Outcome::Benign {
            assert_eq!(
                r.taint.time_to_output, None,
                "a benign fault never corrupts the output"
            );
        }
        if r.outcome == Outcome::Detected {
            assert!(
                r.checkers
                    .iter()
                    .all(|c| c.reason != EscapeReason::CheckerNotReached),
                "a detected fault by definition reached a checker"
            );
        }
    }
}

#[test]
fn unknown_coverage_sites_cross_link_to_explanations() {
    let pipeline = Pipeline::new();
    let mut linked = 0usize;
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let (_, _, report, expl) =
            analyze(&pipeline, &module, Technique::IrEddi, vec![Outcome::Sdc]);
        // Every explanation must point back to an analyzed SDC record.
        for e in &expl {
            let rec = report
                .records
                .iter()
                .find(|r| r.fault.dyn_index == e.dyn_index && r.fault.raw_bit == e.raw_bit)
                .unwrap_or_else(|| panic!("{}: dangling explanation", w.name));
            assert_eq!(rec.outcome, Outcome::Sdc);
            assert_eq!(e.reason, rec.primary_reason);
        }
        linked += expl.len();
    }
    // The suite as a whole must produce at least one cross-link — an
    // IR-EDDI SDC on a site static analysis could not decide.
    assert!(
        linked > 0,
        "expected at least one statically-unknown SDC site across the catalog"
    );
}

/// Property-based re-checks of the record invariants over random seeds.
/// Compiled only with `--features proptest` after restoring the
/// external `proptest` dev-dependency (hermetic-build policy).
#[cfg(feature = "proptest")]
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn records_stay_consistent_over_seeds(seed in 0u64..1_000_000) {
            let pipeline = Pipeline::new();
            let module = ferrum_workloads::workload("bfs").expect("exists").build(Scale::Test);
            let prog = pipeline.protect(&module, Technique::IrEddi).expect("protects");
            let cpu = pipeline.load(&prog).expect("loads");
            let profile = cpu.profile();
            let cfg = CampaignConfig { samples: 60, seed };
            let serial = run_campaign(&cpu, &profile, cfg);
            let fcfg = ForensicConfig {
                outcomes: vec![Outcome::Sdc],
                max_records: usize::MAX,
                ..ForensicConfig::default()
            };
            let (forensic, report) = run_campaign_forensic(&cpu, &profile, cfg, &fcfg);
            prop_assert_eq!(&serial, &forensic);
            for r in &report.records {
                check_record(&format!("bfs/seed{seed}"), r);
            }
        }
    }
}
