//! Whole-suite campaign invariants: the paper's coverage claims hold on
//! every benchmark, not just hand-picked kernels.

use ferrum::{Pipeline, Technique};
use ferrum_faultsim::campaign::{run_campaign, CampaignConfig};
use ferrum_faultsim::rootcause::attribute_sdcs;
use ferrum_workloads::{all_workloads, Scale};

const SAMPLES: usize = 220;

#[test]
fn raw_programs_are_vulnerable_everywhere() {
    let pipeline = Pipeline::new();
    for w in all_workloads() {
        let prog = pipeline
            .protect(&w.build(Scale::Test), Technique::None)
            .unwrap();
        let cpu = pipeline.load(&prog).unwrap();
        let profile = cpu.profile();
        let res = run_campaign(
            &cpu,
            &profile,
            CampaignConfig {
                samples: SAMPLES,
                seed: 1,
            },
        );
        assert!(res.sdc > 0, "{}: expected SDCs in the raw program", w.name);
        assert_eq!(
            res.detected, 0,
            "{}: nothing to detect without protection",
            w.name
        );
    }
}

#[test]
fn ferrum_shows_no_sdc_on_any_workload() {
    let pipeline = Pipeline::new();
    for w in all_workloads() {
        let prog = pipeline
            .protect(&w.build(Scale::Test), Technique::Ferrum)
            .unwrap();
        let cpu = pipeline.load(&prog).unwrap();
        let profile = cpu.profile();
        let res = run_campaign(
            &cpu,
            &profile,
            CampaignConfig {
                samples: SAMPLES,
                seed: 2,
            },
        );
        assert_eq!(
            res.sdc, 0,
            "{}: FERRUM must give 100% coverage: {res:?}",
            w.name
        );
        assert!(res.detected > 0, "{}: checkers should fire", w.name);
    }
}

#[test]
fn hybrid_shows_no_sdc_on_any_workload() {
    let pipeline = Pipeline::new();
    for w in all_workloads() {
        let prog = pipeline
            .protect(&w.build(Scale::Test), Technique::HybridAsmEddi)
            .unwrap();
        let cpu = pipeline.load(&prog).unwrap();
        let profile = cpu.profile();
        let res = run_campaign(
            &cpu,
            &profile,
            CampaignConfig {
                samples: SAMPLES,
                seed: 3,
            },
        );
        assert_eq!(res.sdc, 0, "{}: hybrid must give 100% coverage", w.name);
        assert!(res.detected > 0, "{}", w.name);
    }
}

#[test]
fn ir_eddi_detects_much_but_leaks_in_backend_glue() {
    let pipeline = Pipeline::new();
    let mut leaked_total = 0usize;
    let mut glue_attributed = 0usize;
    for w in all_workloads() {
        let prog = pipeline
            .protect(&w.build(Scale::Test), Technique::IrEddi)
            .unwrap();
        let cpu = pipeline.load(&prog).unwrap();
        let profile = cpu.profile();
        let res = run_campaign(
            &cpu,
            &profile,
            CampaignConfig {
                samples: SAMPLES,
                seed: 4,
            },
        );
        assert!(
            res.detected > 0,
            "{}: IR-EDDI must detect something",
            w.name
        );
        let rc = attribute_sdcs(&cpu, &profile, &res);
        assert_eq!(
            rc.protection, 0,
            "{}: protection code must never cause SDC",
            w.name
        );
        leaked_total += rc.total_sdc;
        glue_attributed += rc.glue_total();
    }
    assert!(
        leaked_total > 0,
        "IR-EDDI must leak somewhere across the suite"
    );
    assert!(
        glue_attributed * 2 >= leaked_total,
        "most residual SDCs should be backend glue: {glue_attributed}/{leaked_total}"
    );
}

#[test]
fn overhead_ordering_matches_the_paper() {
    // Averaged over the suite: FERRUM < IR-EDDI < HYBRID (Fig. 11).
    let pipeline = Pipeline::new();
    let mut sums = [0.0f64; 3];
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let raw = pipeline.protect(&module, Technique::None).unwrap();
        let raw_cycles = pipeline.load(&raw).unwrap().run(None).cycles as f64;
        for (i, t) in Technique::PROTECTED.into_iter().enumerate() {
            let p = pipeline.protect(&module, t).unwrap();
            let c = pipeline.load(&p).unwrap().run(None).cycles as f64;
            sums[i] += (c - raw_cycles) / raw_cycles;
        }
    }
    let [ir, hybrid, ferrum] = sums;
    assert!(ferrum < ir, "FERRUM {ferrum} should beat IR-EDDI {ir}");
    assert!(ir < hybrid, "IR-EDDI {ir} should beat hybrid {hybrid}");
    // The headline: FERRUM is at least 35% faster than IR-level EDDI
    // (the paper reports ~52%).
    assert!(
        ferrum < ir * 0.65,
        "FERRUM {ferrum} vs IR {ir}: speed-up too small"
    );
}

#[test]
fn timeouts_and_crashes_are_classified_not_conflated() {
    // Faults in loop counters can cause both; the classifier must keep
    // them apart from SDCs.
    let pipeline = Pipeline::new();
    let w = ferrum_workloads::workload("bfs").expect("exists");
    let prog = pipeline
        .protect(&w.build(Scale::Test), Technique::None)
        .unwrap();
    let cpu = pipeline.load(&prog).unwrap();
    let profile = cpu.profile();
    let res = run_campaign(
        &cpu,
        &profile,
        CampaignConfig {
            samples: 400,
            seed: 9,
        },
    );
    assert!(
        res.crash > 0,
        "pointer-heavy code should crash sometimes: {res:?}"
    );
    assert_eq!(res.total(), 400);
}
