//! Cross-validation of compositional fault-propagation verdicts and
//! the incremental campaign executor against injection ground truth —
//! the soundness contract of `ferrum-compose` (DESIGN.md §5g).
//!
//! Three halves, mirroring the acceptance criteria:
//!
//! 1. **Composed verdicts are never wrong**: across every catalog
//!    workload × {ferrum, requisition, hybrid, ir-eddi}, a monolithic
//!    campaign must agree with every composed `Masked` (→ `Benign`)
//!    and `Detected` (→ `Detected`) claim per seed — composition may
//!    lift `Unknown` to `Masked` only when the lift is sound.
//! 2. **Incremental ≡ full**: after editing one function, an
//!    incremental campaign seeded from the stale cache is
//!    record-identical to a full stratified re-run on the edited
//!    program, and reuses exactly the shards of untouched functions.
//! 3. **Dynamic escape ⊆ static escape** (proptest-gated, off by
//!    default): a fault whose unit summary proves an empty escape
//!    footprint with no detection path can only ever be `Benign`.

use ferrum::{
    compose, run_campaign_incremental, run_campaign_stratified, ComposedMap, CoverageMap, Pipeline,
    StaticVerdict, SummaryMap, Technique,
};
use ferrum_asm::inst::Inst;
use ferrum_asm::program::{AsmInst, AsmProgram};
use ferrum_cpu::fault::FaultSpec;
use ferrum_cpu::outcome::StopReason;
use ferrum_cpu::run::{Cpu, Profile};
use ferrum_eddi::ferrum::{Ferrum, FerrumConfig};
use ferrum_eddi::hybrid::HybridAsmEddi;
use ferrum_faultsim::campaign::{
    run_campaign_snapshot, CampaignConfig, Outcome, SnapshotPolicy,
};
use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;
use ferrum_mir::value::Value;
use ferrum_workloads::catalog::{all_workloads, Scale};

fn threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// All four protection configurations under test.
fn protect_all(m: &Module) -> Vec<(&'static str, AsmProgram)> {
    let requisition = {
        let asm = ferrum_backend::compile(m).expect("compiles");
        let cfg = FerrumConfig {
            force_requisition: true,
            ..FerrumConfig::default()
        };
        Ferrum::with_config(cfg).protect(&asm).expect("protects")
    };
    vec![
        (
            "ferrum",
            Ferrum::new().protect_module(m).expect("ferrum protects"),
        ),
        ("requisition", requisition),
        (
            "hybrid",
            HybridAsmEddi::new().protect(m).expect("hybrid protects"),
        ),
        (
            "ir-eddi",
            Pipeline::new()
                .protect(m, Technique::IrEddi)
                .expect("ir-eddi protects"),
        ),
    ]
}

/// The composed verdict governing one sampled fault, via the profile's
/// dyn-index → pc mapping.
fn verdict_of(profile: &Profile, map: &ComposedMap, fault: FaultSpec) -> Option<StaticVerdict> {
    let i = profile
        .sites
        .binary_search_by_key(&fault.dyn_index, |s| s.dyn_index)
        .expect("sampled fault must come from a profiled site");
    map.verdict_at(profile.sites[i].pc, fault.raw_bit)
}

/// Injects `samples` faults into `asm` and asserts every record agrees
/// with the composed map's decided verdicts.
fn assert_composed_sound(what: &str, asm: &AsmProgram, samples: usize) {
    let coverage = CoverageMap::analyze(asm);
    let summary = SummaryMap::build(asm, &coverage);
    let composed = compose(asm, &coverage, &summary);
    let cpu = Cpu::load(asm).expect("loads");
    let profile = cpu.profile();
    assert_eq!(
        profile.result.stop,
        StopReason::MainReturned,
        "{what}: golden run must complete"
    );
    let cfg = CampaignConfig {
        samples,
        seed: 0xC0DE,
    };
    let res = run_campaign_snapshot(&cpu, &profile, cfg, threads(), SnapshotPolicy::default());
    for &(fault, outcome) in &res.records {
        match verdict_of(&profile, &composed, fault) {
            Some(StaticVerdict::Masked) => assert_eq!(
                outcome,
                Outcome::Benign,
                "{what}: composed-Masked site {fault:?} produced {outcome:?}"
            ),
            Some(StaticVerdict::Detected) => assert_eq!(
                outcome,
                Outcome::Detected,
                "{what}: composed-Detected site {fault:?} produced {outcome:?}"
            ),
            _ => {}
        }
    }
    // Composition is monotone: it may only decide more than the local
    // map, never less.
    let (local, whole) = (composed.local_rollup(), composed.composed_rollup());
    assert!(
        whole.unknown <= local.unknown,
        "{what}: composition increased unknowns ({} -> {})",
        local.unknown,
        whole.unknown
    );
    assert_eq!(
        whole.masked,
        local.masked + composed.lifted(),
        "{what}: every lift must land in Masked"
    );
}

#[test]
fn composed_verdicts_match_injection_on_every_workload_and_config() {
    for w in all_workloads() {
        let m = w.build(Scale::Test);
        for (cfg_name, asm) in protect_all(&m) {
            assert_composed_sound(&format!("{}/{}", cfg_name, w.name), &asm, 600);
        }
    }
}

/// main() sums helper(i) over a table; `scratch`'s return value is
/// discarded, making its %rax escape dead at the only call site.
/// Three functions give the incremental executor real shards to reuse.
fn multi_function_module() -> Module {
    let mut module = Module::new();
    let g = module.add_global(Global::new("tab", vec![3, 1, 4, 1]));
    let mut h = FunctionBuilder::new("helper", &[Ty::I64], Some(Ty::I64));
    let two = Value::const_int(Ty::I64, 2);
    let d = h.mul(Ty::I64, Value::Arg(0), two);
    h.ret(Some(d));
    module.functions.push(h.finish());
    let mut s = FunctionBuilder::new("scratch", &[Ty::I64], Some(Ty::I64));
    let three = Value::const_int(Ty::I64, 3);
    let t = s.mul(Ty::I64, Value::Arg(0), three);
    s.ret(Some(t));
    module.functions.push(s.finish());
    let mut b = FunctionBuilder::new("main", &[], None);
    let base = b.global(g);
    let mut acc = b.iconst(Ty::I64, 0);
    for i in 0..4 {
        let idx = b.iconst(Ty::I64, i);
        let p = b.gep(base, idx);
        let v = b.load(Ty::I64, p);
        let d = b.call("helper", vec![v], Some(Ty::I64)).unwrap();
        acc = b.add(Ty::I64, acc, d);
    }
    b.call("scratch", vec![acc], None);
    b.print(acc);
    b.ret(None);
    module.functions.push(b.finish());
    module
}

/// Inserts a synthetic `nop` at the head of `name`, changing its
/// content hash without touching its injectable sites.
fn edit_function(asm: &mut AsmProgram, name: &str) {
    let f = asm
        .functions
        .iter_mut()
        .find(|f| f.name == name)
        .expect("function exists");
    f.blocks[0].insts.insert(0, AsmInst::synthetic(Inst::Nop));
}

#[test]
fn incremental_after_edit_matches_full_rerun_and_reuses_the_rest() {
    let module = multi_function_module();
    for (cfg_name, asm) in protect_all(&module) {
        let cpu = Cpu::load(&asm).expect("loads");
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 300,
            seed: 0xBEEF,
        };
        let (_, cache) = run_campaign_stratified(&cpu, &profile, cfg, &asm);

        let mut edited = asm.clone();
        edit_function(&mut edited, "helper");
        let cpu2 = Cpu::load(&edited).expect("edited program loads");
        let profile2 = cpu2.profile();
        let (full, _) = run_campaign_stratified(&cpu2, &profile2, cfg, &edited);
        let (inc, _) = run_campaign_incremental(&cpu2, &profile2, cfg, &edited, &cache);

        assert_eq!(
            full, inc,
            "{cfg_name}: incremental after editing `helper` diverged from a full re-run"
        );
        let untouched: usize = cache
            .shards
            .iter()
            .filter(|s| s.name != "helper")
            .map(|s| s.draws.len())
            .sum();
        assert_eq!(
            inc.stats.reused_sites, untouched,
            "{cfg_name}: incremental must reuse exactly the untouched functions' shards"
        );
        assert!(
            inc.stats.reused_sites > 0,
            "{cfg_name}: reuse must be non-trivial on a multi-function program"
        );
    }
}

/// On single-function catalog binaries an edit invalidates everything:
/// reuse drops to zero and the incremental run must still reproduce
/// the full campaign exactly.
#[test]
fn incremental_catalog_edit_is_identical_with_zero_reuse()  {
    let w = ferrum_workloads::workload("bfs").expect("exists");
    let m = w.build(Scale::Test);
    let asm = Ferrum::new().protect_module(&m).expect("protects");
    let cpu = Cpu::load(&asm).expect("loads");
    let profile = cpu.profile();
    let cfg = CampaignConfig {
        samples: 300,
        seed: 0xFE44,
    };
    let (_, cache) = run_campaign_stratified(&cpu, &profile, cfg, &asm);

    let mut edited = asm.clone();
    edit_function(&mut edited, "main");
    let cpu2 = Cpu::load(&edited).expect("edited program loads");
    let profile2 = cpu2.profile();
    let (full, _) = run_campaign_stratified(&cpu2, &profile2, cfg, &edited);
    let (inc, _) = run_campaign_incremental(&cpu2, &profile2, cfg, &edited, &cache);
    assert_eq!(full, inc, "bfs: incremental diverged after editing main");
    assert_eq!(inc.stats.reused_sites, 0, "bfs is single-function: no shard survives");
}

#[test]
fn incremental_with_unchanged_catalog_program_reuses_everything() {
    for w in all_workloads() {
        let m = w.build(Scale::Test);
        let asm = Ferrum::new().protect_module(&m).expect("protects");
        let cpu = Cpu::load(&asm).expect("loads");
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 200,
            seed: 0xFE44,
        };
        let (full, cache) = run_campaign_stratified(&cpu, &profile, cfg, &asm);
        let (inc, _) = run_campaign_incremental(&cpu, &profile, cfg, &asm, &cache);
        assert_eq!(full, inc, "{}: cached replay diverged", w.name);
        assert_eq!(
            inc.stats.reused_sites,
            inc.total(),
            "{}: unchanged program must replay entirely from cache",
            w.name
        );
        assert!(
            (inc.stats.reuse_rate() - 1.0).abs() < 1e-9,
            "{}: reuse rate must be 100%",
            w.name
        );
    }
}

// ---------------------------------------------------------------------
// Property: dynamic escape ⊆ static escape.  Compiled only with
// `--features proptest` after manually restoring the external
// `proptest` dev-dependency (hermetic-build policy).
// ---------------------------------------------------------------------
#[cfg(feature = "proptest")]
mod escape_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// A unit whose summary proves an empty escape footprint and no
        /// detection path can only ever produce a benign outcome: the
        /// dynamic escape set of any fault is contained in the static
        /// footprint, and an empty footprint leaves nothing to escape.
        #[test]
        fn empty_static_footprint_implies_benign(seed in 0u64..64) {
            let module = multi_function_module();
            for (_, asm) in protect_all(&module) {
                let summary = SummaryMap::analyze(&asm);
                let cpu = Cpu::load(&asm).expect("loads");
                let profile = cpu.profile();
                let cfg = CampaignConfig { samples: 64, seed };
                let res = ferrum_faultsim::campaign::run_campaign(&cpu, &profile, cfg);
                for &(fault, outcome) in &res.records {
                    let i = profile
                        .sites
                        .binary_search_by_key(&fault.dyn_index, |s| s.dyn_index)
                        .expect("profiled site");
                    let Some(unit) = summary.unit_at(profile.sites[i].pc, fault.raw_bit) else {
                        continue;
                    };
                    if unit.escape.is_empty() && !unit.may_detect {
                        prop_assert_eq!(
                            outcome,
                            Outcome::Benign,
                            "empty footprint at {:?} produced {:?}",
                            fault,
                            outcome
                        );
                    }
                }
            }
        }
    }
}
