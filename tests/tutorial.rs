//! Keeps docs/TUTORIAL.md honest: every code block in the walkthrough,
//! compiled and executed.

use ferrum::{Pipeline, Technique};
use ferrum_cpu::fault::FaultSpec;
use ferrum_faultsim::campaign::{run_campaign, CampaignConfig};
use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;
use ferrum_workloads::dsl::{for_loop, load_elem, Var};

fn dot_product() -> Module {
    let mut module = Module::new();
    let ga = module.add_global(Global::new("a", vec![1, 2, 3, 4]));
    let gb = module.add_global(Global::new("b", vec![4, 3, 2, 1]));
    let mut b = FunctionBuilder::new("main", &[], None);
    let (a, bb) = (b.global(ga), b.global(gb));
    let acc = Var::zero(&mut b, Ty::I64);
    let zero = b.iconst(Ty::I64, 0);
    let n = b.iconst(Ty::I64, 4);
    for_loop(&mut b, zero, n, |b, i| {
        let x = load_elem(b, a, i);
        let y = load_elem(b, bb, i);
        let p = b.mul(Ty::I64, x, y);
        acc.add_assign(b, p);
    });
    let r = acc.get(&mut b);
    b.print(r);
    b.ret(None);
    module.functions.push(b.finish());
    module
}

#[test]
fn tutorial_step_1_kernel_and_interpreter() {
    let m = dot_product();
    ferrum_mir::verify::verify_module(&m).unwrap();
    let out = ferrum_mir::interp::Interp::new(&m).run().unwrap();
    assert_eq!(out.output, vec![4 + 6 + 6 + 4]);
}

#[test]
fn tutorial_step_2_listing_has_provenance() {
    let m = dot_product();
    let asm = ferrum_backend::compile(&m).unwrap();
    let listing = ferrum_asm::printer::print_program(&asm);
    assert!(listing.contains("# ir:"));
    assert!(listing.contains("# glue:"));
}

#[test]
fn tutorial_steps_3_to_5_protect_inject_measure() {
    let m = dot_product();
    let pipeline = Pipeline::new();
    let raw = pipeline.protect(&m, Technique::None).unwrap();
    let prot = pipeline.protect(&m, Technique::Ferrum).unwrap();
    let raw_cpu = pipeline.load(&raw).unwrap();
    let cpu = pipeline.load(&prot).unwrap();
    assert_eq!(raw_cpu.run(None).output, cpu.run(None).output);

    let profile = cpu.profile();
    let res = run_campaign(
        &cpu,
        &profile,
        CampaignConfig {
            samples: 500,
            seed: 1,
        },
    );
    assert_eq!(res.sdc, 0);
    assert!(res.detected > 0);

    let raw_cycles = raw_cpu.run(None).cycles;
    let prot_cycles = cpu.run(None).cycles;
    assert!(prot_cycles > raw_cycles / 2, "sanity");

    let trace = cpu.run_traced(Some(FaultSpec::new(40, 3)), 200);
    assert!(!trace.render().is_empty());
}

#[test]
fn tutorial_step_3b_config_knobs() {
    use ferrum_eddi::ferrum::FerrumConfig;
    let m = dot_product();
    let cfg = FerrumConfig {
        zmm: true,
        selective_percent: 75,
        ..FerrumConfig::default()
    };
    let pipeline = Pipeline::new().with_ferrum_config(cfg);
    let prot = pipeline.protect(&m, Technique::Ferrum).unwrap();
    let golden = pipeline.protect(&m, Technique::None).unwrap();
    assert_eq!(
        pipeline.load(&prot).unwrap().run(None).output,
        pipeline.load(&golden).unwrap().run(None).output
    );
}
