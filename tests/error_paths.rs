//! Error-path coverage: the protection passes must *reject* input they
//! cannot protect soundly, never emit silently-broken code.

use ferrum_asm::flags::Cc;
use ferrum_asm::inst::Inst;
use ferrum_asm::operand::Operand;
use ferrum_asm::program::{single_block_main, AsmProgram};
use ferrum_asm::reg::{Gpr, Reg, Width};
use ferrum_eddi::ferrum::{Ferrum, FerrumConfig};
use ferrum_eddi::hybrid::HybridAsmEddi;
use ferrum_eddi::PassError;

/// `[cmp, mov, jcc]`: the mov sits between a comparison and its
/// consumer, so any checker inserted after it would clobber the live
/// flags.  Our backend never emits this shape; hand-written input must
/// be rejected.
fn cmp_mov_jcc_program() -> AsmProgram {
    single_block_main(vec![
        Inst::Mov {
            w: Width::W64,
            src: Operand::Imm(1),
            dst: Operand::Reg(Reg::q(Gpr::Rax)),
        },
        Inst::Cmp {
            w: Width::W64,
            src: Operand::Imm(1),
            dst: Operand::Reg(Reg::q(Gpr::Rax)),
        },
        Inst::Mov {
            w: Width::W64,
            src: Operand::Imm(2),
            dst: Operand::Reg(Reg::q(Gpr::Rcx)),
        },
        Inst::Jcc {
            cc: Cc::E,
            target: "main_entry".into(),
        },
    ])
}

#[test]
fn ferrum_rejects_non_adjacent_flag_consumers() {
    let p = cmp_mov_jcc_program();
    let err = Ferrum::new().protect(&p).unwrap_err();
    assert!(
        matches!(&err, PassError::Unsupported { what, .. }
            if what.contains("non-adjacent") || what.contains("live flags")),
        "{err}"
    );
}

#[test]
fn hybrid_rejects_checker_clobbering_live_flags() {
    let p = cmp_mov_jcc_program();
    let err = HybridAsmEddi::new().protect_asm(&p).unwrap_err();
    assert!(
        matches!(&err, PassError::Unsupported { what, .. } if what.contains("live flags")),
        "{err}"
    );
}

#[test]
fn ferrum_without_deferred_flags_accepts_the_same_shape() {
    // With cmp protection disabled the mov's checker placement is still
    // guarded — the guard alone must reject, because the mov's xor/jne
    // would clobber the jcc's flags.
    let p = cmp_mov_jcc_program();
    let cfg = FerrumConfig {
        deferred_flags: false,
        ..FerrumConfig::default()
    };
    let err = Ferrum::with_config(cfg).protect(&p).unwrap_err();
    assert!(matches!(err, PassError::Unsupported { .. }), "{err}");
}

#[test]
fn passes_reject_simd_and_preprotected_input() {
    let simd = single_block_main(vec![Inst::MovqToXmm {
        src: Operand::Reg(Reg::q(Gpr::Rax)),
        dst: ferrum_asm::reg::Xmm::new(0),
    }]);
    assert!(matches!(
        Ferrum::new().protect(&simd),
        Err(PassError::Unsupported { .. })
    ));
    let plain = single_block_main(vec![Inst::Mov {
        w: Width::W64,
        src: Operand::Imm(1),
        dst: Operand::Reg(Reg::q(Gpr::Rax)),
    }]);
    let once = Ferrum::new().protect(&plain).expect("protects");
    assert!(matches!(
        Ferrum::new().protect(&once),
        Err(PassError::Unsupported { .. })
    ));
}

#[test]
fn error_messages_are_actionable() {
    let p = cmp_mov_jcc_program();
    let err = Ferrum::new().protect(&p).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("main"), "names the function: {text}");
}
