//! Fidelity tests against the paper's code listings: each figure's
//! instruction shape must appear in our output for the corresponding
//! scenario.

use ferrum::{Pipeline, Technique};
use ferrum_asm::printer::print_program;
use ferrum_eddi::ferrum::{Ferrum, FerrumConfig};
use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::inst::MirInst;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;

/// Fig. 2: `int add(int a, int b) { return a + b; }` under IR-level
/// EDDI — the loads and the add are duplicated and a checker compares
/// the results before the return.
#[test]
fn fig2_ir_eddi_duplicates_loads_and_add() {
    let mut f = FunctionBuilder::new("add", &[Ty::I32, Ty::I32], Some(Ty::I32));
    let pa = f.alloca(Ty::I32);
    let pb = f.alloca(Ty::I32);
    f.store(Ty::I32, f.arg(0), pa);
    f.store(Ty::I32, f.arg(1), pb);
    let va = f.load(Ty::I32, pa);
    let vb = f.load(Ty::I32, pb);
    let sum = f.add(Ty::I32, va, vb);
    f.ret(Some(sum));
    let mut main = FunctionBuilder::new("main", &[], None);
    let two = main.iconst(Ty::I32, 2);
    let forty = main.iconst(Ty::I32, 40);
    let r = main.call("add", vec![two, forty], Some(Ty::I32)).unwrap();
    main.print(r);
    main.ret(None);
    let m = Module::from_functions(vec![main.finish(), f.finish()]);

    let protected = ferrum_eddi::ir_eddi::IrEddi::new().protect(&m);
    let add = protected.function("add").expect("add exists");
    let loads = add
        .insts()
        .filter(|i| matches!(i, MirInst::Load { .. }))
        .count();
    assert_eq!(loads, 4, "two loads, each duplicated (Fig. 2 lines 8-12)");
    let adds = add
        .insts()
        .filter(|i| {
            matches!(
                i,
                MirInst::Bin {
                    op: ferrum_mir::inst::BinOp::Add,
                    ..
                }
            )
        })
        .count();
    assert_eq!(adds, 2, "the add and its shadow (Fig. 2 lines 14-15)");
    // The checker: icmp eq + branch to the detect handler before ret.
    let checks = add.insts().filter(|i| {
        matches!(
            i,
            MirInst::ICmp {
                pred: ferrum_mir::inst::ICmpPred::Eq,
                ..
            }
        )
    });
    assert!(
        checks.count() >= 1,
        "Fig. 2 line 17: icmp eq before the return"
    );
    assert!(add
        .insts()
        .any(|i| matches!(i, MirInst::Call { callee, .. } if callee == ferrum_mir::DETECT)));
    // Still computes 42.
    let asm = ferrum_backend::compile(&protected).expect("compiles");
    let out = ferrum_cpu::run::Cpu::load(&asm).unwrap().run(None);
    assert_eq!(out.output, vec![42]);
}

fn listing_for(technique: Technique, module: &Module) -> String {
    let pipeline = Pipeline::new();
    let prog = pipeline.protect(module, technique).expect("protects");
    print_program(&prog)
}

fn simple_kernel() -> Module {
    // A loop with loads, 32-bit arithmetic, and a comparison — enough to
    // trigger every FERRUM mechanism.
    let mut module = Module::new();
    let g = module.add_global(Global::new("tab", vec![3, 1, 4, 1, 5, 9, 2, 6]));
    let mut b = FunctionBuilder::new("main", &[], None);
    let header = b.create_block("h");
    let body = b.create_block("b");
    let exit = b.create_block("x");
    let base = b.global(g);
    let pi = b.alloca(Ty::I64);
    let ps = b.alloca(Ty::I64);
    let zero = b.iconst(Ty::I64, 0);
    b.store(Ty::I64, zero, pi);
    b.store(Ty::I64, zero, ps);
    b.jmp(header);
    b.switch_to(header);
    let i = b.load(Ty::I64, pi);
    let n = b.iconst(Ty::I64, 8);
    let c = b.icmp(ferrum_mir::inst::ICmpPred::Slt, Ty::I64, i, n);
    b.br(c, body, exit);
    b.switch_to(body);
    let i2 = b.load(Ty::I64, pi);
    let p = b.gep(base, i2);
    let v = b.load(Ty::I64, p);
    let s = b.load(Ty::I64, ps);
    let s2 = b.add(Ty::I64, s, v);
    b.store(Ty::I64, s2, ps);
    let one = b.iconst(Ty::I64, 1);
    let i3 = b.add(Ty::I64, i2, one);
    b.store(Ty::I64, i3, pi);
    b.jmp(header);
    b.switch_to(exit);
    let r = b.load(Ty::I64, ps);
    b.print(r);
    b.ret(None);
    module.functions.push(b.finish());
    module
}

/// Fig. 4: the GENERAL-instruction idiom — duplicate into a spare
/// register, `xor`, `jne exit_function`.
#[test]
fn fig4_scalar_duplicate_xor_jne_shape() {
    let listing = listing_for(Technique::HybridAsmEddi, &simple_kernel());
    assert!(
        listing.contains("%r10"),
        "spare register used for duplicates"
    );
    assert!(
        listing.contains("xorq") || listing.contains("xorl"),
        "xor checker"
    );
    assert!(listing.contains("jne exit_function"), "Fig. 4 line 6");
}

/// Fig. 5: deferred comparison detection — a `setcc` pair around a
/// duplicated `cmp`, checked in the branch successors.
#[test]
fn fig5_deferred_detection_shape() {
    let listing = listing_for(Technique::Ferrum, &simple_kernel());
    assert!(
        listing.contains("setl %r11b")
            || listing.contains("sete %r11b")
            || listing.contains("setne %r11b"),
        "original flag captured into %r11b (Fig. 5 line 4):\n{listing}"
    );
    assert!(
        listing.contains("setl %r12b")
            || listing.contains("sete %r12b")
            || listing.contains("setne %r12b"),
        "duplicate flag captured into %r12b (Fig. 5 line 6)"
    );
    assert!(
        listing.contains("cmpb %r11b, %r12b"),
        "pair check in the jump target (Fig. 5 line 10; cmp keeps the \
         registers reusable across multiple predecessors)"
    );
}

/// Fig. 6: the SIMD batch — duplicates move into XMM registers, lane 1
/// via `pinsrq`, widened with `vinserti128`, checked by `vpxor`+`vptest`.
#[test]
fn fig6_simd_batch_shape() {
    let listing = listing_for(Technique::Ferrum, &simple_kernel());
    for needle in [
        "%xmm0",
        "pinsrq $1,",
        "vinserti128 $1,",
        "vpxor %ymm1, %ymm0, %ymm0",
        "vptest %ymm0, %ymm0",
    ] {
        assert!(
            listing.contains(needle),
            "missing `{needle}` in:\n{listing}"
        );
    }
}

/// Fig. 7: stack-level requisition — `pushq` on block entry, duplicate
/// through the requisitioned register, `popq` before leaving.
#[test]
fn fig7_requisition_shape() {
    let module = simple_kernel();
    let asm = ferrum_backend::compile(&module).expect("compiles");
    let cfg = FerrumConfig {
        force_requisition: true,
        ..FerrumConfig::default()
    };
    let prog = Ferrum::with_config(cfg).protect(&asm).expect("protects");
    let listing = print_program(&prog);
    assert!(listing.contains("pushq %"), "Fig. 7 line 2");
    assert!(listing.contains("popq %"), "Fig. 7 line 9");
    // And the requisitioned registers are used for duplication between
    // push and pop (a cmp/jne after each pop verifies the restore).
    assert!(
        listing.contains("cmpq -8(%rsp)"),
        "red-zone verification of the pop"
    );
}
