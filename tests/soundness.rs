//! Whole-campaign soundness: under exhaustive single-bit write-back
//! faults, FERRUM- and hybrid-protected programs never silently corrupt
//! output — the paper's 100% SDC-coverage claim, checked per fault site.

use ferrum_cpu::run::Cpu;
use ferrum_eddi::ferrum::{Ferrum, FerrumConfig};
use ferrum_eddi::hybrid::HybridAsmEddi;
use ferrum_faultsim::campaign::exhaustive_campaign;
use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::inst::ICmpPred;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;

fn kernel() -> Module {
    let mut module = Module::new();
    let g = module.add_global(Global::new("tab", vec![4, -2, 9, -7, 3, 8]));
    let mut b = FunctionBuilder::new("main", &[], None);
    let header = b.create_block("header");
    let body = b.create_block("body");
    let neg = b.create_block("neg");
    let join = b.create_block("join");
    let exit = b.create_block("exit");
    let base = b.global(g);
    let pi = b.alloca(Ty::I64);
    let ps = b.alloca(Ty::I64);
    let zero = b.iconst(Ty::I64, 0);
    b.store(Ty::I64, zero, pi);
    b.store(Ty::I64, zero, ps);
    b.jmp(header);
    b.switch_to(header);
    let i = b.load(Ty::I64, pi);
    let n = b.iconst(Ty::I64, 6);
    let c = b.icmp(ICmpPred::Slt, Ty::I64, i, n);
    b.br(c, body, exit);
    b.switch_to(body);
    let i2 = b.load(Ty::I64, pi);
    let p = b.gep(base, i2);
    let v = b.load(Ty::I64, p);
    let isneg = b.icmp(ICmpPred::Slt, Ty::I64, v, zero);
    b.br(isneg, neg, join);
    b.switch_to(neg);
    let tv = b.mul(Ty::I64, v, v);
    let s0 = b.load(Ty::I64, ps);
    let s1 = b.add(Ty::I64, s0, tv);
    b.store(Ty::I64, s1, ps);
    b.jmp(join);
    b.switch_to(join);
    let s2 = b.load(Ty::I64, ps);
    let d = b.iconst(Ty::I64, 3);
    let q = b.sdiv(Ty::I64, v, d);
    let s3 = b.add(Ty::I64, s2, q);
    b.store(Ty::I64, s3, ps);
    let one = b.iconst(Ty::I64, 1);
    let i3 = b.add(Ty::I64, i2, one);
    b.store(Ty::I64, i3, pi);
    b.jmp(header);
    b.switch_to(exit);
    let r = b.load(Ty::I64, ps);
    b.print(r);
    b.ret(None);
    module.functions.push(b.finish());
    module
}

fn assert_no_sdc(asm: &ferrum_asm::program::AsmProgram, what: &str) {
    let cpu = Cpu::load(asm).expect("loads");
    let profile = cpu.profile();
    assert_eq!(
        profile.result.stop,
        ferrum_cpu::outcome::StopReason::MainReturned,
        "{what}: fault-free run must complete"
    );
    let res = exhaustive_campaign(&cpu, &profile, 4);
    assert_eq!(
        res.sdc,
        0,
        "{what}: SDCs under exhaustive injection: {:?} sites={} total={}",
        res.records
            .iter()
            .filter(|(_, o)| *o == ferrum_faultsim::campaign::Outcome::Sdc)
            .take(5)
            .collect::<Vec<_>>(),
        profile.sites.len(),
        res.total()
    );
    assert!(res.detected > 0, "{what}: detections expected");
}

#[test]
fn ferrum_full_coverage_exhaustive() {
    let m = kernel();
    let prot = Ferrum::new().protect_module(&m).expect("protects");
    assert_no_sdc(&prot, "ferrum");
}

#[test]
fn ferrum_requisition_full_coverage_exhaustive() {
    let m = kernel();
    let asm = ferrum_backend::compile(&m).unwrap();
    let cfg = FerrumConfig {
        force_requisition: true,
        ..FerrumConfig::default()
    };
    let prot = Ferrum::with_config(cfg).protect(&asm).expect("protects");
    assert_no_sdc(&prot, "ferrum-requisition");
}

#[test]
fn hybrid_full_coverage_exhaustive() {
    let m = kernel();
    let prot = HybridAsmEddi::new().protect(&m).expect("protects");
    assert_no_sdc(&prot, "hybrid");
}

#[test]
fn ferrum_full_coverage_with_function_calls() {
    // Calls matter: the callee's own protection clobbers the comparison
    // pair and the SIMD accumulators, so this exercises the
    // flush-before-call rule and the cross-function pair invariant.
    let mut callee = FunctionBuilder::new("combine", &[Ty::I64, Ty::I64], Some(Ty::I64));
    let t = callee.create_block("t");
    let e = callee.create_block("e");
    let a = callee.arg(0);
    let b2 = callee.arg(1);
    let c = callee.icmp(ICmpPred::Slt, Ty::I64, a, b2);
    callee.br(c, t, e);
    callee.switch_to(t);
    let m = callee.mul(Ty::I64, a, b2);
    callee.ret(Some(m));
    callee.switch_to(e);
    let s = callee.sub(Ty::I64, a, b2);
    callee.ret(Some(s));

    let mut main = FunctionBuilder::new("main", &[], None);
    let x = main.iconst(Ty::I64, 6);
    let y = main.iconst(Ty::I64, 7);
    let r1 = main.call("combine", vec![x, y], Some(Ty::I64)).unwrap();
    let r2 = main.call("combine", vec![y, x], Some(Ty::I64)).unwrap();
    let total = main.add(Ty::I64, r1, r2);
    main.print(total);
    main.ret(None);
    let m = Module::from_functions(vec![main.finish(), callee.finish()]);
    let prot = Ferrum::new().protect_module(&m).expect("protects");
    assert_no_sdc(&prot, "ferrum-with-calls");
}

#[test]
fn unprotected_program_is_vulnerable() {
    let m = kernel();
    let asm = ferrum_backend::compile(&m).unwrap();
    let cpu = Cpu::load(&asm).unwrap();
    let profile = cpu.profile();
    let res = exhaustive_campaign(&cpu, &profile, 4);
    assert!(res.sdc > 0, "raw program should show SDCs");
}
