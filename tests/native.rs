//! Native hardware validation: emit GNU assembly, assemble with `gcc`,
//! and run the protected benchmarks on the *real* CPU.  This closes the
//! loop on the simulation substrate — the instruction dialect is a
//! genuine x86-64 subset, so FERRUM-protected code must compute the
//! oracle's answer on silicon too (SSE4.1 + AVX2 required for the
//! checker instructions).
//!
//! Every test skips gracefully when the environment can't run native
//! x86-64 binaries.

use std::process::Command;

use ferrum::{Pipeline, Technique};
use ferrum_workloads::{all_workloads, Scale};

fn native_available() -> bool {
    if !cfg!(target_arch = "x86_64") || !cfg!(target_os = "linux") {
        return false;
    }
    if Command::new("gcc").arg("--version").output().is_err() {
        return false;
    }
    let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
    cpuinfo.contains("avx2") && cpuinfo.contains("sse4_1")
}

fn assemble_and_run(asm_text: &str, tag: &str) -> Vec<i64> {
    let dir = std::env::temp_dir().join(format!("ferrum_native_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let s_path = dir.join("prog.s");
    let bin_path = dir.join("prog");
    std::fs::write(&s_path, asm_text).expect("write .s");
    let gcc = Command::new("gcc")
        .arg("-no-pie")
        .arg("-o")
        .arg(&bin_path)
        .arg(&s_path)
        .output()
        .expect("run gcc");
    assert!(
        gcc.status.success(),
        "gcc failed for {tag}:\n{}",
        String::from_utf8_lossy(&gcc.stderr)
    );
    let run = Command::new(&bin_path).output().expect("run binary");
    assert!(
        run.status.success(),
        "native {tag} exited with {:?}: {}",
        run.status.code(),
        String::from_utf8_lossy(&run.stderr)
    );
    let out = String::from_utf8_lossy(&run.stdout)
        .lines()
        .map(|l| l.trim().parse::<i64>().expect("numeric output line"))
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[test]
fn protected_benchmarks_compute_the_oracle_on_real_hardware() {
    if !native_available() {
        eprintln!("skipping native test: no x86-64 linux + gcc + AVX2");
        return;
    }
    let pipeline = Pipeline::new();
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let oracle = w.oracle(Scale::Test);
        for t in [
            Technique::None,
            Technique::IrEddi,
            Technique::HybridAsmEddi,
            Technique::Ferrum,
        ] {
            let prog = pipeline.protect(&module, t).expect("protects");
            let text = ferrum_asm::gnu::emit_gnu(&prog);
            let got = assemble_and_run(&text, &format!("{}_{t:?}", w.name));
            assert_eq!(got, oracle, "{} under {t} on real hardware", w.name);
        }
    }
}

#[test]
fn zmm_free_checkers_run_natively() {
    // The AVX2 (non-ZMM) FERRUM configuration is the hardware-portable
    // one; make sure its full checker set (pinsrq, vinserti128, vpxor,
    // vptest) executes on this machine for a compute-heavy kernel.
    if !native_available() {
        eprintln!("skipping native test: no x86-64 linux + gcc + AVX2");
        return;
    }
    let w = ferrum_workloads::workload("particlefilter").expect("exists");
    let module = w.build(Scale::Test);
    let pipeline = Pipeline::new();
    let prog = pipeline.protect(&module, Technique::Ferrum).expect("protects");
    let text = ferrum_asm::gnu::emit_gnu(&prog);
    assert!(text.contains("vptest"), "SIMD checkers present");
    let got = assemble_and_run(&text, "pf_ferrum");
    assert_eq!(got, w.oracle(Scale::Test));
}

#[test]
fn tampered_duplicate_is_detected_on_real_hardware() {
    // Simulate a stuck-at fault by statically corrupting one duplicate:
    // the native binary must take the exit_function path (exit code 57)
    // instead of printing wrong output.
    if !native_available() {
        eprintln!("skipping native test: no x86-64 linux + gcc + AVX2");
        return;
    }
    let w = ferrum_workloads::workload("pathfinder").expect("exists");
    let module = w.build(Scale::Test);
    let pipeline = Pipeline::new();
    let mut prog = pipeline.protect(&module, Technique::Ferrum).expect("protects");
    // Find a protection-inserted immediate move (a duplicated constant)
    // and corrupt it.
    let mut tampered = false;
    'outer: for f in &mut prog.functions {
        for b in &mut f.blocks {
            for ai in &mut b.insts {
                if ai.prov.is_protection() {
                    // A 64-bit duplicated constant that feeds a batch
                    // check (the W8 pair initialisers are overwritten
                    // before any check reads them, so skip those).
                    if let ferrum_asm::inst::Inst::Mov {
                        w: ferrum_asm::reg::Width::W64,
                        src: ferrum_asm::operand::Operand::Imm(v),
                        dst: ferrum_asm::operand::Operand::Reg(_),
                    } = &mut ai.inst
                    {
                        *v ^= 1;
                        tampered = true;
                        break 'outer;
                    }
                }
            }
        }
    }
    assert!(tampered, "no duplicate immediate found to corrupt");
    let text = ferrum_asm::gnu::emit_gnu(&prog);

    let dir = std::env::temp_dir().join(format!("ferrum_native_tamper_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let s_path = dir.join("prog.s");
    let bin_path = dir.join("prog");
    std::fs::write(&s_path, text).expect("write .s");
    let gcc = Command::new("gcc")
        .arg("-no-pie")
        .arg("-o")
        .arg(&bin_path)
        .arg(&s_path)
        .output()
        .expect("run gcc");
    assert!(gcc.status.success(), "{}", String::from_utf8_lossy(&gcc.stderr));
    let run = Command::new(&bin_path).output().expect("run binary");
    assert_eq!(
        run.status.code(),
        Some(ferrum_asm::gnu::DETECTED_EXIT_CODE),
        "the checker must fire on real hardware; stdout: {}",
        String::from_utf8_lossy(&run.stdout)
    );
    assert!(String::from_utf8_lossy(&run.stdout).contains("ferrum: fault detected"));
    let _ = std::fs::remove_dir_all(&dir);
}
