//! Cross-executor and cross-engine determinism: the serial,
//! work-stealing, snapshot-accelerated, and pruned campaign executors
//! must produce identical `CampaignResult`s (same aggregate counts AND
//! same per-fault outcome records, in sampling order) for the same
//! seed — across workloads, protection profiles, thread counts,
//! snapshot policies, and **execution engines** (reference interpreter
//! vs. the decode-once flattened engine).

use ferrum::{
    CampaignConfig, CampaignResult, DecodedCpu, Engine, Pipeline, SnapshotPolicy, Technique,
};
use ferrum_cpu::run::Cpu;
use ferrum_cpu::Profile;
use ferrum_faultsim::campaign::{
    run_campaign, run_campaign_on, run_campaign_parallel_on,
    run_campaign_snapshot, run_campaign_snapshot_on,
};
use ferrum_workloads::{all_workloads, workload, Scale};

fn load(name: &str, t: Technique) -> (Cpu, Profile) {
    load_opt(name, t, ferrum::OptLevel::O0)
}

fn load_opt(name: &str, t: Technique, opt: ferrum::OptLevel) -> (Cpu, Profile) {
    let w = workload(name).expect("in catalog");
    let module = w.build(Scale::Test);
    let pipeline = Pipeline::new().with_opt_level(opt);
    let prog = pipeline.protect(&module, t).expect("protects");
    let cpu = pipeline.load(&prog).expect("loads");
    let profile = cpu.profile();
    (cpu, profile)
}

fn assert_identical(a: &CampaignResult, b: &CampaignResult, what: &str) {
    assert_eq!(a.records, b.records, "{what}: per-fault records differ");
    assert_eq!(a, b, "{what}: aggregate counts differ");
    assert_eq!(
        a.stats.latency, b.stats.latency,
        "{what}: latency distributions differ"
    );
}

#[test]
fn all_engines_agree_across_workloads_and_profiles() {
    // The full determinism matrix: 2 workloads × 2 protection profiles
    // × {1, 4} threads × {stealing, snapshot} executors × {interpreter,
    // decoded} engines, all against the serial interpreter reference.
    // The engine AND the executor are implementation details.
    for name in ["knn", "pathfinder"] {
        for technique in [Technique::None, Technique::Ferrum] {
            let (cpu, profile) = load(name, technique);
            let decoded = DecodedCpu::new(&cpu);
            let cfg = CampaignConfig {
                samples: 300,
                seed: 0xDECADE,
            };
            let what = format!("{name}/{technique}");

            let serial = run_campaign(&cpu, &profile, cfg);
            for engine in [Engine::Interpreter(&cpu), Engine::Decoded(&decoded)] {
                let kind = engine.kind().label();
                assert_identical(
                    &run_campaign_on(engine, &profile, cfg),
                    &serial,
                    &format!("{what} serial/{kind}"),
                );
                for threads in [1, 4] {
                    let stealing = run_campaign_parallel_on(engine, &profile, cfg, threads);
                    assert_identical(
                        &serial,
                        &stealing,
                        &format!("{what} steal×{threads}/{kind}"),
                    );
                    let snap = run_campaign_snapshot_on(
                        engine,
                        &profile,
                        cfg,
                        threads,
                        SnapshotPolicy::default(),
                    );
                    assert_identical(&serial, &snap, &format!("{what} snap×{threads}/{kind}"));
                }
            }
        }
    }
}

#[test]
fn decoded_engine_is_byte_identical_across_the_whole_catalog() {
    // Every catalog workload × every technique: campaign outcomes per
    // seed must not depend on the engine.  (Run + profile identity over
    // the same sweep is `ferrum-cpu --selfcheck` in tier-1.)
    for w in all_workloads() {
        for technique in [
            Technique::None,
            Technique::IrEddi,
            Technique::HybridAsmEddi,
            Technique::Ferrum,
        ] {
            let (cpu, profile) = load(w.name, technique);
            let decoded = DecodedCpu::new(&cpu);
            let cfg = CampaignConfig {
                samples: 60,
                seed: 0xFE44_0006,
            };
            assert_identical(
                &run_campaign_on(Engine::Decoded(&decoded), &profile, cfg),
                &run_campaign(&cpu, &profile, cfg),
                &format!("{}/{technique}", w.name),
            );
        }
    }
}

#[test]
fn engines_and_executors_agree_on_optimized_programs() {
    // The -O1 pass bundle rewires register flow and deletes frame
    // round-trips; the decoded engine's superinstruction fusion and
    // the snapshot executor must stay byte-identical on that output
    // too, for raw and protected programs alike.
    for name in ["needle", "kmeans"] {
        for technique in [Technique::None, Technique::IrEddi, Technique::Ferrum] {
            let (cpu, profile) = load_opt(name, technique, ferrum::OptLevel::O1);
            let decoded = DecodedCpu::new(&cpu);
            let cfg = CampaignConfig {
                samples: 200,
                seed: 0x01F0_2024,
            };
            let what = format!("{name}/{technique}@O1");

            let serial = run_campaign(&cpu, &profile, cfg);
            assert_identical(
                &run_campaign_on(Engine::Decoded(&decoded), &profile, cfg),
                &serial,
                &format!("{what} decoded"),
            );
            for engine in [Engine::Interpreter(&cpu), Engine::Decoded(&decoded)] {
                let kind = engine.kind().label();
                assert_identical(
                    &run_campaign_snapshot_on(engine, &profile, cfg, 4, SnapshotPolicy::default()),
                    &serial,
                    &format!("{what} snap×4/{kind}"),
                );
            }
        }
    }
}

#[test]
fn snapshot_policy_never_changes_outcomes() {
    let (cpu, profile) = load("bfs", Technique::Ferrum);
    let cfg = CampaignConfig {
        samples: 200,
        seed: 7,
    };
    let serial = run_campaign(&cpu, &profile, cfg);
    for policy in [
        SnapshotPolicy::default(),
        SnapshotPolicy {
            max_snapshots: 1,
            min_interval: 1,
        },
        SnapshotPolicy {
            max_snapshots: 512,
            min_interval: 8,
        },
        // Degenerate: no snapshots at all — pure re-execution.
        SnapshotPolicy {
            max_snapshots: 0,
            min_interval: 1,
        },
    ] {
        let snap = run_campaign_snapshot(&cpu, &profile, cfg, 3, policy);
        assert_identical(&serial, &snap, &format!("{policy:?}"));
    }
}

#[test]
fn same_seed_same_result_different_seed_different_samples() {
    let (cpu, profile) = load("knn", Technique::None);
    let a = run_campaign_snapshot(
        &cpu,
        &profile,
        CampaignConfig {
            samples: 250,
            seed: 1,
        },
        2,
        SnapshotPolicy::default(),
    );
    let b = run_campaign_snapshot(
        &cpu,
        &profile,
        CampaignConfig {
            samples: 250,
            seed: 1,
        },
        4,
        SnapshotPolicy::default(),
    );
    let c = run_campaign_snapshot(
        &cpu,
        &profile,
        CampaignConfig {
            samples: 250,
            seed: 2,
        },
        4,
        SnapshotPolicy::default(),
    );
    assert_identical(&a, &b, "same seed, different thread counts");
    assert_ne!(
        a.records, c.records,
        "different seeds must sample different faults"
    );
}

#[test]
fn throughput_counters_are_populated() {
    let (cpu, profile) = load("pathfinder", Technique::None);
    let r = run_campaign_snapshot(
        &cpu,
        &profile,
        CampaignConfig {
            samples: 400,
            seed: 3,
        },
        4,
        SnapshotPolicy::default(),
    );
    let s = &r.stats;
    assert_eq!(s.injections, 400);
    assert!(s.injections_per_sec > 0.0);
    assert!(s.threads >= 1);
    assert!(s.snapshots_taken > 0, "{s:?}");
    assert!(s.snapshot_hits > 0, "{s:?}");
    assert!(s.steps_saved > 0, "{s:?}");
    assert!(s.snapshot_hit_rate() <= 1.0);
    assert!(s.steps_saved_ratio() <= 1.0);
}
