//! Campaign-stats schema pinning (docs/campaign-schema.md): every
//! executor on every engine emits the SAME `stats` JSON shape, with
//! worker accounting and detection latency filled in uniformly.
//!
//! This is the regression fence for the PR 7 gaps: the stratified and
//! incremental executors used to report per-worker injection counts
//! that excluded reused faults, so the per-worker sum disagreed with
//! `stats.injections` on exactly those two executors.

use ferrum::json::{Json, ToJson};
use ferrum::{
    CampaignConfig, CampaignResult, CoverageMap, EngineKind, ForensicConfig, Pipeline,
    SnapshotPolicy, Technique,
};
use ferrum_faultsim::campaign::{
    run_campaign_on, run_campaign_parallel_on, run_campaign_pruned_on, run_campaign_snapshot_on,
};
use ferrum_faultsim::compose::{run_campaign_incremental_on, run_campaign_stratified_on};
use ferrum_faultsim::forensics::run_campaign_forensic_on;

/// Key list of the `stats` object, in emission order — update
/// docs/campaign-schema.md when this changes.
const STATS_KEYS: [&str; 18] = [
    "engine",
    "wall_nanos",
    "injections",
    "injections_per_sec",
    "threads",
    "snapshots_taken",
    "snapshot_hits",
    "snapshot_hit_rate",
    "steps_saved",
    "steps_executed",
    "steps_saved_ratio",
    "per_worker",
    "worker_balance",
    "detection_latency",
    "pruned_sites",
    "prune_rate",
    "reused_sites",
    "reuse_rate",
];

fn keys(j: &Json) -> Vec<String> {
    match j {
        Json::Obj(m) => m.iter().map(|(k, _)| k.clone()).collect(),
        other => panic!("stats is not an object: {other:?}"),
    }
}

fn check_shape(label: &str, engine: EngineKind, result: &CampaignResult) {
    let j = result.stats.to_json();
    assert_eq!(keys(&j), STATS_KEYS, "{label}: stats keys drifted");
    assert_eq!(
        j.get("engine").and_then(Json::as_str),
        Some(engine.label()),
        "{label}: engine label"
    );

    // Worker accounting: every executor's per-worker injections sum to
    // the stats' injection counter, and balance stays in [0, 1].
    let workers = j
        .get("per_worker")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{label}: per_worker missing"));
    assert!(!workers.is_empty(), "{label}: no workers reported");
    let sum: u64 = workers
        .iter()
        .map(|w| w.get("injections").and_then(Json::as_u64).expect("worker injections"))
        .sum();
    let injections = j.get("injections").and_then(Json::as_u64).expect("injections");
    assert_eq!(sum, injections, "{label}: per-worker sum != injections");
    let balance = j.get("worker_balance").and_then(Json::as_f64).expect("balance");
    assert!((0.0..=1.0).contains(&balance), "{label}: balance {balance}");

    // Detection latency is always an object with its summary keys,
    // even when nothing was detected.
    let latency = j.get("detection_latency").expect("latency");
    for key in ["count", "p50", "p95", "max"] {
        assert!(latency.get(key).is_some(), "{label}: latency.{key} missing");
    }

    // Derived rates never leave [0, 1] or go non-finite.
    for key in [
        "snapshot_hit_rate",
        "steps_saved_ratio",
        "worker_balance",
        "prune_rate",
        "reuse_rate",
    ] {
        let v = j.get(key).and_then(Json::as_f64).expect(key);
        assert!((0.0..=1.0).contains(&v), "{label}: {key} = {v}");
    }
}

#[test]
fn every_executor_emits_the_same_stats_shape_on_both_engines() {
    let w = ferrum_workloads::workload("pathfinder").expect("in catalog");
    let module = w.build(ferrum_workloads::Scale::Test);
    let pipeline = Pipeline::new();
    let prog = pipeline.protect(&module, Technique::Ferrum).expect("protects");
    let coverage = CoverageMap::analyze(&prog);
    let cpu = pipeline.load(&prog).expect("loads");
    let profile = cpu.profile();
    let cfg = CampaignConfig {
        samples: 80,
        seed: 0xFE44,
    };

    for engine in EngineKind::ALL {
        let serial = engine.with_cpu(&cpu, |e| run_campaign_on(e, &profile, cfg));
        check_shape("serial", engine, &serial);

        let parallel =
            engine.with_cpu(&cpu, |e| run_campaign_parallel_on(e, &profile, cfg, 3));
        check_shape("parallel", engine, &parallel);

        let snapshot = engine.with_cpu(&cpu, |e| {
            run_campaign_snapshot_on(e, &profile, cfg, 2, SnapshotPolicy::default())
        });
        check_shape("snapshot", engine, &snapshot);

        let pruned =
            engine.with_cpu(&cpu, |e| run_campaign_pruned_on(e, &profile, cfg, &coverage));
        check_shape("pruned", engine, &pruned);

        let (stratified, cache) =
            engine.with_cpu(&cpu, |e| run_campaign_stratified_on(e, &profile, cfg, &prog));
        check_shape("stratified", engine, &stratified);

        // The PR 7 gap: incremental runs reuse cached outcomes, and the
        // reused faults must still count toward per-worker injections.
        let (incremental, _) = engine.with_cpu(&cpu, |e| {
            run_campaign_incremental_on(e, &profile, cfg, &prog, &cache)
        });
        check_shape("incremental", engine, &incremental);
        assert!(
            incremental.stats.reused_sites > 0,
            "warm incremental run reused nothing"
        );

        let (forensic, _) = engine.with_cpu(&cpu, |e| {
            run_campaign_forensic_on(e, &profile, cfg, &ForensicConfig::default())
        });
        check_shape("forensic", engine, &forensic);
    }
}

#[test]
fn zero_sample_stats_keep_the_schema_without_dividing_by_zero() {
    let w = ferrum_workloads::workload("bfs").expect("in catalog");
    let module = w.build(ferrum_workloads::Scale::Test);
    let pipeline = Pipeline::new();
    let prog = pipeline.protect(&module, Technique::None).expect("protects");
    let cpu = pipeline.load(&prog).expect("loads");
    let profile = cpu.profile();
    let cfg = CampaignConfig { samples: 0, seed: 1 };

    let result = run_campaign_on(ferrum_faultsim::Engine::Interpreter(&cpu), &profile, cfg);
    let j = result.stats.to_json();
    assert_eq!(keys(&j), STATS_KEYS, "zero-sample stats keys drifted");
    for key in [
        "injections_per_sec",
        "snapshot_hit_rate",
        "steps_saved_ratio",
        "worker_balance",
        "prune_rate",
        "reuse_rate",
    ] {
        let v = j.get(key).and_then(Json::as_f64).expect(key);
        assert!(v.is_finite(), "zero-sample {key} = {v}");
    }
}
