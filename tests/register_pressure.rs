//! Natural (non-forced) stack requisition: hand-written assembly that
//! uses nearly every general-purpose register leaves FERRUM fewer than
//! the three spares it needs, so the pass must fall into the Fig.-7
//! path on its own — and stay transparent and fully protective.

use ferrum_asm::inst::{AluOp, Inst};
use ferrum_asm::operand::Operand;
use ferrum_asm::program::{AsmBlock, AsmFunction, AsmInst, AsmProgram};
use ferrum_asm::reg::{Gpr, Reg, Width};
use ferrum_cpu::outcome::StopReason;
use ferrum_cpu::run::Cpu;
use ferrum_eddi::ferrum::Ferrum;
use ferrum_faultsim::campaign::exhaustive_campaign;

/// Builds a program whose blocks collectively touch every non-frame
/// register, but where each block leaves a few unused — requisitionable
/// — registers.
fn pressure_program() -> AsmProgram {
    let q = |g| Operand::Reg(Reg::q(g));
    let mov = |v: i64, dst| Inst::Mov {
        w: Width::W64,
        src: Operand::Imm(v),
        dst: q(dst),
    };
    let add = |src, dst| Inst::Alu {
        op: AluOp::Add,
        w: Width::W64,
        src: q(src),
        dst: q(dst),
    };

    let mut f = AsmFunction::new("main");
    // Block 0 uses rax..r9 (leaving r10..r15 block-spare).
    let mut b0 = AsmBlock::new("p_bb0");
    for (v, g) in [
        (1, Gpr::Rax),
        (2, Gpr::Rbx),
        (3, Gpr::Rcx),
        (4, Gpr::Rdx),
        (5, Gpr::Rsi),
        (6, Gpr::R8),
        (7, Gpr::R9),
    ] {
        b0.insts.push(AsmInst::synthetic(mov(v, g)));
    }
    for g in [Gpr::Rbx, Gpr::Rcx, Gpr::Rdx, Gpr::Rsi, Gpr::R8, Gpr::R9] {
        b0.insts.push(AsmInst::synthetic(add(g, Gpr::Rax)));
    }
    // Block 1 uses r10..r15 (leaving rbx.. block-spare), accumulating
    // into rax as well.
    let mut b1 = AsmBlock::new("p_bb1");
    for (v, g) in [
        (10, Gpr::R10),
        (11, Gpr::R11),
        (12, Gpr::R12),
        (13, Gpr::R13),
        (14, Gpr::R14),
        (15, Gpr::R15),
    ] {
        b1.insts.push(AsmInst::synthetic(mov(v, g)));
    }
    for g in [Gpr::R10, Gpr::R11, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15] {
        b1.insts.push(AsmInst::synthetic(add(g, Gpr::Rax)));
    }
    // Print and exit.
    b1.insts.push(AsmInst::synthetic(Inst::Mov {
        w: Width::W64,
        src: q(Gpr::Rax),
        dst: q(Gpr::Rdi),
    }));
    b1.insts.push(AsmInst::synthetic(Inst::Call {
        target: "print_i64".into(),
    }));
    b1.insts.push(AsmInst::synthetic(Inst::Ret));
    f.blocks.push(b0);
    f.blocks.push(b1);
    AsmProgram {
        functions: vec![f],
        data: Vec::new(),
    }
}

const EXPECTED: i64 = (1 + 2 + 3 + 4 + 5 + 6 + 7) + (10 + 11 + 12 + 13 + 14 + 15);

#[test]
fn pressure_program_runs_unprotected() {
    let p = pressure_program();
    assert!(p.validate().is_ok());
    let r = Cpu::load(&p).unwrap().run(None);
    assert_eq!(r.stop, StopReason::MainReturned);
    assert_eq!(r.output, vec![EXPECTED]);
}

#[test]
fn ferrum_requisitions_naturally_under_register_pressure() {
    let p = pressure_program();
    let (prot, stats) = Ferrum::new().protect_with_stats(&p).expect("protects");
    assert!(
        stats.requisitioned_blocks > 0,
        "fewer than 3 function-wide spares must trigger requisition: {stats:?}"
    );
    assert!(prot.validate().is_ok(), "{:?}", prot.validate());
    let r = Cpu::load(&prot).unwrap().run(None);
    assert_eq!(r.stop, StopReason::MainReturned, "output {:?}", r.output);
    assert_eq!(r.output, vec![EXPECTED]);
}

#[test]
fn natural_requisition_keeps_full_coverage_exhaustively() {
    let p = pressure_program();
    let prot = Ferrum::new().protect(&p).expect("protects");
    let cpu = Cpu::load(&prot).unwrap();
    let profile = cpu.profile();
    let res = exhaustive_campaign(&cpu, &profile, 6);
    assert_eq!(res.sdc, 0, "{res:?}");
    assert!(res.detected > 0);
}
