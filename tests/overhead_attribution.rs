//! The exact-sum property of per-mechanism overhead attribution: on
//! every catalog workload, the per-mechanism executed-instruction (and
//! cycle) counts from the fault-free profile must account for the
//! FERRUM-minus-baseline delta *exactly*, where the baseline is the
//! peepholed unprotected build (FERRUM peepholes before protecting).
//! A failure here means a protection emission site lost its
//! `Provenance::Protection(_, Mechanism)` tag.

use ferrum::{attribute_overhead, Mechanism, Pipeline};
use ferrum_eddi::FerrumConfig;
use ferrum_workloads::{all_workloads, Scale};

#[test]
fn mechanism_counts_sum_exactly_on_every_catalog_workload() {
    let pipeline = Pipeline::new();
    let mut seen = [0u64; Mechanism::ALL.len()];
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let att = attribute_overhead(&pipeline, &module).expect(w.name);
        assert!(att.protection_insts() > 0, "{}: no protection insts", w.name);
        assert!(
            att.reconciles(),
            "{}: baseline {} insts + mechanism sum {} != protected {} \
             (cycles {} + {} vs {})",
            w.name,
            att.baseline_dyn_insts,
            att.protection_insts(),
            att.protected_dyn_insts,
            att.baseline_cycles,
            att.protection_cycles(),
            att.protected_cycles,
        );
        for m in Mechanism::ALL {
            seen[m as usize] += att.mech.get(m).insts;
        }
    }
    // Across the catalog every mechanism except stack requisition must
    // fire (requisition only triggers under register exhaustion).
    for m in Mechanism::ALL {
        if m == Mechanism::Requisition {
            continue;
        }
        assert!(seen[m as usize] > 0, "{}: never executed", m.label());
    }
}

#[test]
fn requisition_mechanism_reconciles_when_forced() {
    let pipeline = Pipeline::new().with_ferrum_config(FerrumConfig {
        force_requisition: true,
        ..FerrumConfig::default()
    });
    let w = ferrum_workloads::workload("bfs").expect("exists");
    let att = attribute_overhead(&pipeline, &w.build(Scale::Test)).expect("attributes");
    assert!(
        att.mech.get(Mechanism::Requisition).insts > 0,
        "forced requisition must execute requisition glue: {att:?}"
    );
    assert!(att.reconciles(), "{att:?}");
}
