//! Cross-validation of the static coverage map against injection
//! ground truth — the soundness contract of `ferrum-coverage`.
//!
//! Three halves, mirroring the acceptance criteria (DESIGN.md §5d):
//!
//! 1. **Sound verdicts are never wrong**: across every catalog
//!    workload × {ferrum, requisition, hybrid, ir-eddi}, injection
//!    must agree with every `Masked` (→ `Benign`) and `Detected`
//!    (→ `Detected`) claim — in particular, no SDC may ever land on a
//!    statically-decided site.
//! 2. **Pruning changes nothing**: `run_campaign_pruned` is
//!    outcome-identical to the serial engine per seed, fault for
//!    fault.
//! 3. **Pruning is worth it**: on FERRUM-protected catalog binaries
//!    the reported prune rate clears 20%.

use ferrum::{Pipeline, Technique};
use ferrum_asm::analysis::coverage::{CoverageMap, StaticVerdict};
use ferrum_asm::program::AsmProgram;
use ferrum_cpu::outcome::StopReason;
use ferrum_cpu::run::{Cpu, Profile};
use ferrum_cpu::fault::FaultSpec;
use ferrum_eddi::ferrum::{Ferrum, FerrumConfig};
use ferrum_eddi::hybrid::HybridAsmEddi;
use ferrum_faultsim::campaign::{
    run_campaign, run_campaign_pruned, run_campaign_snapshot, CampaignConfig, Outcome,
    SnapshotPolicy,
};
use ferrum_mir::module::Module;
use ferrum_workloads::catalog::{all_workloads, Scale};

fn threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// All four protection configurations under test.
fn protect_all(m: &Module) -> Vec<(&'static str, AsmProgram)> {
    let requisition = {
        let asm = ferrum_backend::compile(m).expect("compiles");
        let cfg = FerrumConfig {
            force_requisition: true,
            ..FerrumConfig::default()
        };
        Ferrum::with_config(cfg).protect(&asm).expect("protects")
    };
    vec![
        (
            "ferrum",
            Ferrum::new().protect_module(m).expect("ferrum protects"),
        ),
        ("requisition", requisition),
        (
            "hybrid",
            HybridAsmEddi::new().protect(m).expect("hybrid protects"),
        ),
        (
            "ir-eddi",
            Pipeline::new()
                .protect(m, Technique::IrEddi)
                .expect("ir-eddi protects"),
        ),
    ]
}

/// The static verdict governing one sampled fault, via the profile's
/// dyn-index → pc mapping.
fn verdict_of(profile: &Profile, map: &CoverageMap, fault: FaultSpec) -> Option<StaticVerdict> {
    let i = profile
        .sites
        .binary_search_by_key(&fault.dyn_index, |s| s.dyn_index)
        .expect("sampled fault must come from a profiled site");
    map.verdict_at(profile.sites[i].pc, fault.raw_bit)
}

/// Injects `samples` faults into `asm` and asserts every record agrees
/// with the map's sound verdicts.  `expect_decided` additionally
/// requires that some sampled fault actually hit a decided site (true
/// for the asm-level techniques, whose checker idioms the analysis
/// recognises; ir-eddi's lowered checks are opaque to it and may
/// yield no decided sites at all).
fn assert_sound(what: &str, asm: &AsmProgram, samples: usize, expect_decided: bool) {
    let map = CoverageMap::analyze(asm);
    let cpu = Cpu::load(asm).expect("loads");
    let profile = cpu.profile();
    assert_eq!(
        profile.result.stop,
        StopReason::MainReturned,
        "{what}: golden run must complete"
    );
    let cfg = CampaignConfig {
        samples,
        seed: 0xC0DE,
    };
    let res = run_campaign_snapshot(&cpu, &profile, cfg, threads(), SnapshotPolicy::default());
    let mut decided = 0usize;
    for &(fault, outcome) in &res.records {
        match verdict_of(&profile, &map, fault) {
            Some(StaticVerdict::Masked) => {
                decided += 1;
                assert_eq!(
                    outcome,
                    Outcome::Benign,
                    "{what}: Masked site {fault:?} produced {outcome:?}"
                );
            }
            Some(StaticVerdict::Detected) => {
                decided += 1;
                assert_eq!(
                    outcome,
                    Outcome::Detected,
                    "{what}: Detected site {fault:?} produced {outcome:?}"
                );
            }
            _ => {}
        }
    }
    // Sanity: the check must actually exercise sound verdicts on
    // protected binaries, or the test proves nothing.
    assert!(
        !expect_decided || decided > 0,
        "{what}: no sampled fault hit a statically-decided site"
    );
}

#[test]
fn sound_verdicts_match_injection_on_every_workload_and_config() {
    for w in all_workloads() {
        let m = w.build(Scale::Test);
        for (cfg_name, asm) in protect_all(&m) {
            let expect_decided = cfg_name != "ir-eddi";
            assert_sound(&format!("{}/{}", cfg_name, w.name), &asm, 800, expect_decided);
        }
    }
}

#[test]
fn pruned_engine_is_outcome_identical_across_configs() {
    // Every config on one workload; the FERRUM config on every
    // workload is covered by the prune-rate test below.
    let w = ferrum_workloads::workload("pathfinder").expect("exists");
    let m = w.build(Scale::Test);
    for (cfg_name, asm) in protect_all(&m) {
        let map = CoverageMap::analyze(&asm);
        let cpu = Cpu::load(&asm).expect("loads");
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 400,
            seed: 0xFE44,
        };
        let serial = run_campaign(&cpu, &profile, cfg);
        let pruned = run_campaign_pruned(&cpu, &profile, cfg, &map);
        assert_eq!(
            serial, pruned,
            "{cfg_name}/pathfinder: pruned engine diverged from serial"
        );
    }
}

#[test]
fn ferrum_prune_rate_clears_twenty_percent_on_all_workloads() {
    for w in all_workloads() {
        let m = w.build(Scale::Test);
        let asm = Ferrum::new().protect_module(&m).expect("protects");
        let map = CoverageMap::analyze(&asm);
        let cpu = Cpu::load(&asm).expect("loads");
        let profile = cpu.profile();
        let cfg = CampaignConfig {
            samples: 400,
            seed: 0xFE44,
        };
        let serial = run_campaign(&cpu, &profile, cfg);
        let pruned = run_campaign_pruned(&cpu, &profile, cfg, &map);
        assert_eq!(
            serial, pruned,
            "ferrum/{}: pruned engine diverged from serial",
            w.name
        );
        assert!(
            pruned.stats.prune_rate() >= 0.20,
            "ferrum/{}: prune rate {:.1}% below the 20% floor ({} of {} pruned)",
            w.name,
            pruned.stats.prune_rate() * 100.0,
            pruned.stats.pruned_sites,
            pruned.total(),
        );
    }
}

/// The manifest-validated analysis must stay sound too (it can only
/// demote claims, never add them) and keep stock FERRUM output above
/// the prune floor.
#[test]
fn manifest_validated_map_is_sound_and_still_prunes() {
    let w = ferrum_workloads::workload("backprop").expect("exists");
    let m = w.build(Scale::Test);
    let asm = ferrum_backend::compile(&m).expect("compiles");
    let (prot, manifests) = Ferrum::new().protect_with_manifest(&asm).expect("protects");
    let plain = CoverageMap::analyze(&prot);
    let validated = CoverageMap::analyze_with(&prot, Some(&manifests));
    // Validation only demotes Detected → Unknown.
    let (p, v) = (plain.rollup(), validated.rollup());
    assert_eq!(p.masked, v.masked);
    assert!(v.detected <= p.detected);
    assert_eq!(p.total(), v.total());

    let cpu = Cpu::load(&prot).expect("loads");
    let profile = cpu.profile();
    let cfg = CampaignConfig {
        samples: 400,
        seed: 0xBEEF,
    };
    let serial = run_campaign(&cpu, &profile, cfg);
    let pruned = run_campaign_pruned(&cpu, &profile, cfg, &validated);
    assert_eq!(serial, pruned);
    assert!(
        pruned.stats.prune_rate() >= 0.20,
        "manifest-validated prune rate {:.1}% below the 20% floor",
        pruned.stats.prune_rate() * 100.0
    );
}
