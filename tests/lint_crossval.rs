//! Cross-validation of `ferrum-lint` against injection ground truth.
//!
//! Two halves, mirroring the acceptance criteria of the static
//! soundness layer (DESIGN.md):
//!
//! 1. **Stock output is clean**: the lint reports zero findings on
//!    FERRUM- (normal and forced-requisition) and hybrid-protected
//!    output for every workload in the catalog.
//! 2. **Mutations are caught twice**: for each seeded mutation class the
//!    lint reports a finding at the mutated site *and* the snapshot
//!    campaign engine observes an SDC (or a detection gap) that stock
//!    protection does not have — tying the static verdict to dynamic
//!    ground truth.

use ferrum_asm::analysis::lint::{lint_program, lint_program_with, LintContract};
use ferrum_asm::program::AsmProgram;
use ferrum_cpu::run::Cpu;
use ferrum_eddi::ferrum::{Ferrum, FerrumConfig};
use ferrum_eddi::hybrid::HybridAsmEddi;
use ferrum_faultsim::campaign::exhaustive_campaign;
use ferrum_faultsim::crossval::{apply_mutation, count_mutation_sites, MutationKind};
use ferrum_workloads::catalog::{all_workloads, Scale};

fn ferrum_protect(m: &ferrum_mir::module::Module) -> AsmProgram {
    Ferrum::new().protect_module(m).expect("ferrum protects")
}

fn requisition_protect(m: &ferrum_mir::module::Module) -> AsmProgram {
    let asm = ferrum_backend::compile(m).expect("compiles");
    let cfg = FerrumConfig {
        force_requisition: true,
        ..FerrumConfig::default()
    };
    Ferrum::with_config(cfg).protect(&asm).expect("protects")
}

fn hybrid_protect(m: &ferrum_mir::module::Module) -> AsmProgram {
    HybridAsmEddi::new().protect(m).expect("hybrid protects")
}

fn assert_clean(asm: &AsmProgram, what: &str) {
    let rep = lint_program(asm);
    assert!(
        rep.is_clean(),
        "{what}: expected clean lint, got {} finding(s); first: {:#?}",
        rep.findings.len(),
        rep.findings.first()
    );
}

#[test]
fn stock_ferrum_output_is_lint_clean() {
    for w in all_workloads() {
        let m = w.build(Scale::Test);
        let prot = ferrum_protect(&m);
        let rep = lint_program(&prot);
        assert!(rep.insts_scanned > 0, "{}: lint scanned nothing", w.name);
        assert!(
            rep.is_clean(),
            "ferrum/{}: {} finding(s); first: {:#?}",
            w.name,
            rep.findings.len(),
            rep.findings.first()
        );
    }
}

#[test]
fn stock_requisition_output_is_lint_clean() {
    for w in all_workloads() {
        let m = w.build(Scale::Test);
        assert_clean(&requisition_protect(&m), &format!("requisition/{}", w.name));
    }
}

#[test]
fn stock_hybrid_output_is_lint_clean() {
    for w in all_workloads() {
        let m = w.build(Scale::Test);
        assert_clean(&hybrid_protect(&m), &format!("hybrid/{}", w.name));
    }
}

/// The pass-emitted manifest is verified, not trusted: stock output
/// stays clean under manifest-driven linting in both register modes,
/// and a seeded original-code write to a reserved register — invisible
/// to shape inference alone — is flagged.
#[test]
fn manifest_driven_lint_is_clean_and_catches_reservation_violations() {
    use ferrum_asm::inst::Inst;
    use ferrum_asm::operand::Operand;
    use ferrum_asm::program::AsmInst;
    use ferrum_asm::provenance::Provenance;
    use ferrum_asm::reg::{Reg, Width};

    for w in all_workloads() {
        let m = w.build(Scale::Test);
        let asm = ferrum_backend::compile(&m).expect("compiles");
        let (prot, manifests) = Ferrum::new().protect_with_manifest(&asm).expect("protects");
        let rep = lint_program_with(&prot, &manifests);
        assert!(
            rep.is_clean(),
            "manifest/{}: {} finding(s); first: {:#?}",
            w.name,
            rep.findings.len(),
            rep.findings.first()
        );

        // Requisition mode reserves nothing function-wide; its manifest
        // must say so, and stays clean too.
        let cfg = FerrumConfig {
            force_requisition: true,
            ..FerrumConfig::default()
        };
        let (rprot, rmanifests) = Ferrum::with_config(cfg)
            .protect_with_manifest(&asm)
            .expect("protects");
        assert!(rmanifests.values().all(|mf| mf.reserved_gprs.is_empty()));
        let rrep = lint_program_with(&rprot, &rmanifests);
        assert!(rrep.is_clean(), "manifest-req/{}: not clean", w.name);

        // Seed a reservation violation in one normal-mode function.
        let Some((fi, mf)) = prot
            .functions
            .iter()
            .enumerate()
            .find_map(|(fi, f)| {
                let mf = manifests.get(&f.name)?;
                (!mf.reserved_gprs.is_empty()).then_some((fi, mf))
            })
        else {
            continue; // every function requisitions: nothing to violate
        };
        let mut bad = prot.clone();
        let g = mf.reserved_gprs[0];
        bad.functions[fi].blocks[0].insts.insert(
            0,
            AsmInst::new(
                Inst::Mov {
                    w: Width::W64,
                    src: Operand::Imm(0),
                    dst: Operand::Reg(Reg::q(g)),
                },
                Provenance::FromIr(0),
            ),
        );
        let bad_rep = lint_program_with(&bad, &manifests);
        assert!(
            bad_rep
                .findings
                .iter()
                .any(|f| f.contract == LintContract::CheckedSync
                    && f.explanation.contains("reserved")),
            "manifest/{}: seeded write to reserved {g:?} not flagged",
            w.name
        );
    }
}

// ---------------------------------------------------------------------
// Mutation cross-validation: static verdict vs. injection ground truth.
// ---------------------------------------------------------------------

use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::inst::ICmpPred;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;

/// A compact kernel with all the protection shapes the mutations
/// target: back-to-back loads (SIMD batch pairs), data-dependent
/// branches (deferred flag pairs + spliced rechecks), and a division
/// (checker-dense scalar idiom).  Small enough that an exhaustive
/// campaign over every mutant site stays fast.
fn kernel() -> Module {
    let mut module = Module::new();
    let g = module.add_global(Global::new("tab", vec![5, -3, 8, -1]));
    let mut b = FunctionBuilder::new("main", &[], None);
    let header = b.create_block("header");
    let body = b.create_block("body");
    let neg = b.create_block("neg");
    let join = b.create_block("join");
    let exit = b.create_block("exit");
    let base = b.global(g);
    let pi = b.alloca(Ty::I64);
    let ps = b.alloca(Ty::I64);
    let zero = b.iconst(Ty::I64, 0);
    b.store(Ty::I64, zero, pi);
    b.store(Ty::I64, zero, ps);
    b.jmp(header);
    b.switch_to(header);
    let i = b.load(Ty::I64, pi);
    let n = b.iconst(Ty::I64, 4);
    let c = b.icmp(ICmpPred::Slt, Ty::I64, i, n);
    b.br(c, body, exit);
    b.switch_to(body);
    let i2 = b.load(Ty::I64, pi);
    let p = b.gep(base, i2);
    let v = b.load(Ty::I64, p);
    let isneg = b.icmp(ICmpPred::Slt, Ty::I64, v, zero);
    b.br(isneg, neg, join);
    b.switch_to(neg);
    let sq = b.mul(Ty::I64, v, v);
    let s0 = b.load(Ty::I64, ps);
    let s1 = b.add(Ty::I64, s0, sq);
    b.store(Ty::I64, s1, ps);
    b.jmp(join);
    b.switch_to(join);
    let s2 = b.load(Ty::I64, ps);
    let d = b.iconst(Ty::I64, 3);
    let q = b.sdiv(Ty::I64, v, d);
    let s3 = b.add(Ty::I64, s2, q);
    b.store(Ty::I64, s3, ps);
    let one = b.iconst(Ty::I64, 1);
    let i3 = b.add(Ty::I64, i2, one);
    b.store(Ty::I64, i3, pi);
    b.jmp(header);
    b.switch_to(exit);
    let r = b.load(Ty::I64, ps);
    b.print(r);
    b.ret(None);
    module.functions.push(b.finish());
    module
}

/// Runs an exhaustive campaign on `asm`; returns the SDC count, or
/// `None` when the fault-free run no longer completes (a mutation that
/// perturbs clean behaviour — skipped, since no golden output exists).
fn sdc_count(asm: &AsmProgram) -> Option<usize> {
    let cpu = Cpu::load(asm).ok()?;
    let profile = cpu.profile();
    if profile.result.stop != ferrum_cpu::outcome::StopReason::MainReturned {
        return None;
    }
    let res = exhaustive_campaign(&cpu, &profile, 4);
    Some(res.sdc)
}

/// For each applicable site of `kind`: the stock program is lint-clean
/// and SDC-free, and at least one mutant both (a) draws a lint finding
/// of `expected` in the mutated function and (b) shows SDCs under
/// exhaustive injection — the same weakened site caught statically and
/// dynamically.
/// `same_block`: whether the witness finding must sit in the mutated
/// block.  Checker and batch mutations manifest at the weakened site
/// itself; a skipped edge recheck manifests wherever the unresolved
/// flag pair is later clobbered or reaches a return — possibly a
/// successor block — with the finding's explanation naming the
/// originating compare.
fn assert_mutation_cross_validates(kind: MutationKind, expected: LintContract, same_block: bool) {
    let stock = ferrum_protect(&kernel());
    assert_clean(&stock, &format!("{}/stock", kind.name()));
    assert_eq!(
        sdc_count(&stock),
        Some(0),
        "{}: stock kernel must be SDC-free",
        kind.name()
    );

    let n = count_mutation_sites(&stock, kind);
    assert!(n > 0, "{}: kernel exposes no mutation sites", kind.name());

    // `cross_validated` needs one mutant where the campaign sees SDCs
    // and the lint reports the `expected` contract in the mutated block
    // — the same weakened site caught by both verdicts.  Independently,
    // *no* SDC-producing mutant may escape the lint entirely (any
    // contract: dropping a drain checker is a batch-integrity defect,
    // dropping a red-zone checker a requisition defect, and so on).
    let mut cross_validated = false;
    for k in 0..n {
        let (mutant, site) = apply_mutation(&stock, kind, k).expect("site in range");
        let rep = lint_program(&mutant);
        let in_function: Vec<_> = rep
            .findings
            .iter()
            .filter(|f| f.function == site.function)
            .collect();
        let at_site = in_function
            .iter()
            .any(|f| f.contract == expected && (!same_block || f.block == site.block));
        if let Some(s) = sdc_count(&mutant) {
            if s > 0 {
                assert!(
                    !in_function.is_empty(),
                    "{} site {k} ({}/{}): campaign sees {s} SDC(s) but lint is silent",
                    kind.name(),
                    site.block,
                    site.description
                );
                if at_site {
                    cross_validated = true;
                }
            }
        }
    }
    assert!(
        cross_validated,
        "{}: no mutant produced both a lint `{:?}` finding at the mutated \
         site and campaign SDCs",
        kind.name(),
        expected
    );
}

#[test]
fn dropped_checker_is_caught_statically_and_dynamically() {
    assert_mutation_cross_validates(MutationKind::DropChecker, LintContract::CheckedSync, true);
}

#[test]
fn reused_batch_slot_is_caught_statically_and_dynamically() {
    assert_mutation_cross_validates(
        MutationKind::ReuseBatchSlot,
        LintContract::BatchIntegrity,
        true,
    );
}

#[test]
fn skipped_edge_recheck_is_caught_statically_and_dynamically() {
    assert_mutation_cross_validates(
        MutationKind::SkipEdgeRecheck,
        LintContract::DeferredFlags,
        false,
    );
}
