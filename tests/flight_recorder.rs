//! The campaign flight recorder's contract (DESIGN.md §5h):
//!
//! 1. **Observational purity**: installing a recorder never changes a
//!    campaign's outcomes — recorder-on and recorder-off runs of the
//!    same seed are identical on every executor and engine.
//! 2. **Stream consistency**: sequence numbers are dense and
//!    monotone, the stream is bracketed by `started`/`finished`,
//!    shard-completion records reassemble the exact campaign record
//!    stream, and every progress snapshot's tallies sum to its `done`
//!    counter with the final snapshot equal to the final stats.
//! 3. **Resume determinism**: a journal cut at ANY shard boundary
//!    resumes to a `CampaignResult` byte-identical to the
//!    uninterrupted run, reusing exactly the journaled faults.
//! 4. **Degenerate telemetry** never panics: zero-sample campaigns,
//!    single-worker balance, empty rolling-rate windows.
//!
//! The recorder is a process-wide singleton, so every test that
//! installs one holds `LOCK` for its whole body.

use std::sync::{Arc, Mutex};

use ferrum::flight::{event_to_ndjson, journal_from_ndjson, parse_events, NdjsonSink};
use ferrum::{
    install_flight_recorder, program_signature, resume_campaign_from_journal,
    uninstall_flight_recorder, CampaignConfig, CampaignEvent, CampaignResult, EngineKind,
    FlightEvent, FlightPolicy, FlightRecorder, JournalSnapshot, MemorySink, Pipeline,
    SnapshotPolicy, Technique,
};
use ferrum_asm::program::AsmProgram;
use ferrum_cpu::run::{Cpu, Profile};
use ferrum_faultsim::campaign::{
    run_campaign_on, run_campaign_parallel_on, run_campaign_snapshot_on,
};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn load(name: &str, technique: Technique) -> (AsmProgram, Cpu, Profile) {
    let w = ferrum_workloads::workload(name).expect("in catalog");
    let module = w.build(ferrum_workloads::Scale::Test);
    let pipeline = Pipeline::new();
    let prog = pipeline.protect(&module, technique).expect("protects");
    let cpu = pipeline.load(&prog).expect("loads");
    let profile = cpu.profile();
    (prog, cpu, profile)
}

fn record(
    prog: &AsmProgram,
    cpu: &Cpu,
    policy: FlightPolicy,
    run: impl FnOnce() -> CampaignResult,
) -> (CampaignResult, Vec<FlightEvent>) {
    let _ = (prog, cpu);
    let sink = Arc::new(MemorySink::new());
    install_flight_recorder(Arc::new(
        FlightRecorder::new(sink.clone())
            .with_policy(policy)
            .with_program_hash(program_signature(prog)),
    ));
    let result = run();
    uninstall_flight_recorder();
    (result, sink.events())
}

const CFG: CampaignConfig = CampaignConfig {
    samples: 96,
    seed: 0xFE44,
};

// ---------------------------------------------------------------------
// 1. Observational purity
// ---------------------------------------------------------------------

#[test]
fn recording_never_changes_outcomes() {
    let _g = lock();
    let (prog, cpu, profile) = load("bfs", Technique::Ferrum);
    for engine in EngineKind::ALL {
        let bare = engine.with_cpu(&cpu, |e| run_campaign_on(e, &profile, CFG));
        let (recorded, events) = record(&prog, &cpu, FlightPolicy::default(), || {
            engine.with_cpu(&cpu, |e| run_campaign_on(e, &profile, CFG))
        });
        assert_eq!(recorded, bare, "{}: recorder changed outcomes", engine.label());
        assert!(!events.is_empty(), "{}: no events captured", engine.label());

        let bare_par =
            engine.with_cpu(&cpu, |e| run_campaign_parallel_on(e, &profile, CFG, 3));
        let (rec_par, _) = record(&prog, &cpu, FlightPolicy::default(), || {
            engine.with_cpu(&cpu, |e| run_campaign_parallel_on(e, &profile, CFG, 3))
        });
        assert_eq!(rec_par, bare_par, "{}: parallel purity", engine.label());

        let bare_snap = engine.with_cpu(&cpu, |e| {
            run_campaign_snapshot_on(e, &profile, CFG, 2, SnapshotPolicy::default())
        });
        let (rec_snap, _) = record(&prog, &cpu, FlightPolicy::default(), || {
            engine.with_cpu(&cpu, |e| {
                run_campaign_snapshot_on(e, &profile, CFG, 2, SnapshotPolicy::default())
            })
        });
        assert_eq!(rec_snap, bare_snap, "{}: snapshot purity", engine.label());
    }
}

// ---------------------------------------------------------------------
// 2. Stream consistency
// ---------------------------------------------------------------------

#[test]
fn event_stream_is_internally_consistent() {
    let _g = lock();
    for (name, technique) in [("pathfinder", Technique::Ferrum), ("knn", Technique::None)] {
        let (prog, cpu, profile) = load(name, technique);
        let (result, events) = record(&prog, &cpu, FlightPolicy::default(), || {
            run_campaign_on(ferrum_faultsim::Engine::Interpreter(&cpu), &profile, CFG)
        });

        // Dense, monotone sequence numbers in delivery order.
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.seq, i as u64, "{name}: seq hole at {i}");
        }
        assert!(matches!(
            events.first().map(|e| &e.event),
            Some(CampaignEvent::Started { .. })
        ));
        assert!(matches!(
            events.last().map(|e| &e.event),
            Some(CampaignEvent::Finished { .. })
        ));

        // Shard records reassemble the campaign's record stream.
        let mut shards: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.event {
                CampaignEvent::ShardCompleted(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        shards.sort_by_key(|s| s.start);
        let reassembled: Vec<_> = shards.iter().flat_map(|s| s.records.iter().copied()).collect();
        assert_eq!(reassembled, result.records, "{name}: shard reassembly");
        let declared = match &events[0].event {
            CampaignEvent::Started { shards, .. } => *shards,
            _ => unreachable!(),
        };
        assert_eq!(shards.len(), declared, "{name}: shard count");

        // Progress snapshots: tallies sum to done, monotone, and the
        // final one equals the final stats.
        let snapshots: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.event {
                CampaignEvent::Progress(p) => Some(p.clone()),
                _ => None,
            })
            .collect();
        assert!(!snapshots.is_empty(), "{name}: no snapshots");
        let mut last = 0;
        for p in &snapshots {
            assert_eq!(p.tallies.total(), p.done, "{name}: snapshot tally sum");
            assert!(p.done >= last, "{name}: progress went backwards");
            last = p.done;
        }
        let fin = snapshots.last().expect("non-empty");
        assert_eq!(fin.done, result.total(), "{name}: final snapshot done");
        assert!(fin.tallies.matches(&result), "{name}: final snapshot tallies");

        // The finished event repeats the final counts.
        if let CampaignEvent::Finished { tallies, .. } = &events.last().expect("last").event {
            assert!(tallies.matches(&result), "{name}: finished tallies");
        }
    }
}

#[test]
fn ndjson_file_round_trip_preserves_the_stream() {
    let _g = lock();
    let (prog, cpu, profile) = load("needle", Technique::Ferrum);
    let path = std::env::temp_dir().join("ferrum-flight-roundtrip.ndjson");
    let path_s = path.to_str().expect("utf8 temp path");

    let sink = Arc::new(MemorySink::new());
    let file = Arc::new(NdjsonSink::create(path_s).expect("creates"));
    install_flight_recorder(Arc::new(
        FlightRecorder::new(Arc::new(ferrum::TeeSink::new(vec![sink.clone(), file])))
            .with_program_hash(program_signature(&prog)),
    ));
    let result = run_campaign_on(ferrum_faultsim::Engine::Interpreter(&cpu), &profile, CFG);
    uninstall_flight_recorder();

    let text = std::fs::read_to_string(&path).expect("reads back");
    let parsed = parse_events(&text).expect("parses");
    assert_eq!(parsed, sink.events(), "file != memory stream");

    // The journal reconstructed from the file resumes to the same
    // result even though nothing was killed (everything is reused).
    let journal = journal_from_ndjson(&text).expect("journal");
    assert!(journal.finished);
    let resumed = resume_campaign_from_journal(
        ferrum_faultsim::Engine::Interpreter(&cpu),
        &profile,
        CFG,
        &journal,
    )
    .expect("resumes");
    assert_eq!(resumed, result);
    assert_eq!(resumed.stats.reused_sites, result.total());
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// 3. Resume determinism: every shard boundary
// ---------------------------------------------------------------------

/// Truncates `events` right after the `k`-th shard completion — the
/// write-ahead journal a kill at that boundary would leave behind.
fn cut_after_shards(events: &[FlightEvent], k: usize) -> &[FlightEvent] {
    if k == 0 {
        // Killed before any shard completed: only the header survives.
        return &events[..1];
    }
    let mut seen = 0;
    for (i, ev) in events.iter().enumerate() {
        if matches!(ev.event, CampaignEvent::ShardCompleted(_)) {
            seen += 1;
            if seen == k {
                return &events[..=i];
            }
        }
    }
    events
}

#[test]
fn resume_at_every_shard_boundary_is_byte_identical() {
    let _g = lock();
    let (prog, cpu, profile) = load("bfs", Technique::Ferrum);
    for engine in EngineKind::ALL {
        let (full, events) = record(&prog, &cpu, FlightPolicy::default(), || {
            engine.with_cpu(&cpu, |e| run_campaign_on(e, &profile, CFG))
        });
        let shards = events
            .iter()
            .filter(|e| matches!(e.event, CampaignEvent::ShardCompleted(_)))
            .count();
        assert!(shards > 2, "{}: want a multi-shard campaign", engine.label());

        for k in 0..=shards {
            let journal = JournalSnapshot::from_events(cut_after_shards(&events, k))
                .expect("journal from header");
            assert_eq!(journal.completed(), k * journal.shard_size.min(CFG.samples));
            let resumed = engine
                .with_cpu(&cpu, |e| resume_campaign_from_journal(e, &profile, CFG, &journal))
                .unwrap_or_else(|e| panic!("{}: resume at {k}: {e}", engine.label()));
            assert_eq!(resumed, full, "{}: kill after shard {k}", engine.label());
            assert_eq!(
                resumed.stats.reused_sites,
                journal.completed(),
                "{}: reuse at {k}",
                engine.label()
            );
        }
    }
}

#[test]
fn resume_rejects_a_mismatched_journal() {
    let _g = lock();
    let (prog, cpu, profile) = load("bfs", Technique::Ferrum);
    let (_, events) = record(&prog, &cpu, FlightPolicy::default(), || {
        run_campaign_on(ferrum_faultsim::Engine::Interpreter(&cpu), &profile, CFG)
    });
    let mut journal = JournalSnapshot::from_events(cut_after_shards(&events, 2)).expect("journal");

    // Wrong seed: the journaled faults no longer match this campaign.
    let other = CampaignConfig {
        samples: CFG.samples,
        seed: CFG.seed + 1,
    };
    let err = resume_campaign_from_journal(
        ferrum_faultsim::Engine::Interpreter(&cpu),
        &profile,
        other,
        &journal,
    )
    .expect_err("seed mismatch accepted");
    assert!(err.contains("seed"), "unhelpful error: {err}");

    // Tampered program hash: content drift is refused outright.
    journal.fingerprint.program_hash ^= 1;
    let err = resume_campaign_from_journal(
        ferrum_faultsim::Engine::Interpreter(&cpu),
        &profile,
        CFG,
        &journal,
    )
    .expect_err("hash mismatch accepted");
    assert!(err.contains("hash"), "unhelpful error: {err}");
}

// ---------------------------------------------------------------------
// 4. Degenerate telemetry
// ---------------------------------------------------------------------

#[test]
fn zero_sample_campaign_emits_a_complete_stream() {
    let _g = lock();
    let (prog, cpu, profile) = load("bfs", Technique::None);
    let empty = CampaignConfig {
        samples: 0,
        seed: 7,
    };
    let (result, events) = record(&prog, &cpu, FlightPolicy::default(), || {
        run_campaign_on(ferrum_faultsim::Engine::Interpreter(&cpu), &profile, empty)
    });
    assert_eq!(result.total(), 0);
    assert!(matches!(
        events.first().map(|e| &e.event),
        Some(CampaignEvent::Started { total: 0, .. })
    ));
    assert!(matches!(
        events.last().map(|e| &e.event),
        Some(CampaignEvent::Finished { .. })
    ));
    // The final snapshot exists and divides nothing by zero.
    let snap = events
        .iter()
        .find_map(|e| match &e.event {
            CampaignEvent::Progress(p) => Some(p.clone()),
            _ => None,
        })
        .expect("zero-sample campaign still snapshots");
    assert_eq!(snap.done, 0);
    assert!(snap.rate >= 0.0 && snap.rate.is_finite());
    assert!(snap.sdc_ci.0.is_finite() && snap.sdc_ci.1.is_finite());

    // No work ran: balance is the documented 0.0, never NaN.
    assert_eq!(result.stats.worker_balance(), 0.0);
    assert!(result.stats.injections_per_sec.is_finite());
}

#[test]
fn tiny_policy_windows_do_not_panic() {
    let _g = lock();
    let (prog, cpu, profile) = load("bfs", Technique::None);
    // Pathological policy: snapshot after every injection with a
    // minimal rolling window — rates must stay finite.
    let policy = FlightPolicy {
        shard_size: 1,
        progress_every: 1,
        heartbeat_every: 1,
        window: 1,
    };
    let tiny = CampaignConfig {
        samples: 5,
        seed: 3,
    };
    let (result, events) = record(&prog, &cpu, policy, || {
        run_campaign_on(ferrum_faultsim::Engine::Interpreter(&cpu), &profile, tiny)
    });
    assert_eq!(result.total(), 5);
    for ev in &events {
        if let CampaignEvent::Progress(p) = &ev.event {
            assert!(p.rate.is_finite(), "rate blew up: {}", p.rate);
            for r in &p.worker_rates {
                assert!(r.is_finite());
            }
        }
    }
    let shards = events
        .iter()
        .filter(|e| matches!(e.event, CampaignEvent::ShardCompleted(_)))
        .count();
    assert_eq!(shards, 5, "one shard per injection");

    // A lone worker that did run is perfectly balanced.
    assert!((result.stats.worker_balance() - 1.0).abs() < 1e-12);
}

// ---------------------------------------------------------------------
// NDJSON torn-tail semantics on a real journal
// ---------------------------------------------------------------------

#[test]
fn torn_journal_tail_resumes_from_the_last_complete_record() {
    let _g = lock();
    let (prog, cpu, profile) = load("bfs", Technique::Ferrum);
    let (full, events) = record(&prog, &cpu, FlightPolicy::default(), || {
        run_campaign_on(ferrum_faultsim::Engine::Interpreter(&cpu), &profile, CFG)
    });
    let ndjson: String = events.iter().map(|e| event_to_ndjson(e) + "\n").collect();
    // Kill mid-write: drop the trailing newline and half the last line.
    let torn = &ndjson[..ndjson.len() - ndjson.lines().last().expect("lines").len() / 2 - 1];
    let journal = journal_from_ndjson(torn).expect("torn tail is not fatal");
    assert!(!journal.finished || journal.completed() == full.total());
    let resumed = resume_campaign_from_journal(
        ferrum_faultsim::Engine::Interpreter(&cpu),
        &profile,
        CFG,
        &journal,
    )
    .expect("resumes");
    assert_eq!(resumed, full);
}

// ---------------------------------------------------------------------
// Proptest sweep (off by default; hermetic-build policy)
// ---------------------------------------------------------------------

#[cfg(feature = "proptest")]
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any seed, any kill point: resume is byte-identical.
        #[test]
        fn resume_is_identical_for_any_seed_and_kill_point(
            seed in 0u64..u64::MAX,
            kill in 0usize..32,
        ) {
            let _g = lock();
            let (prog, cpu, profile) = load("bfs", Technique::Ferrum);
            let cfg = CampaignConfig { samples: 64, seed };
            let (full, events) = record(&prog, &cpu, FlightPolicy::default(), || {
                run_campaign_on(ferrum_faultsim::Engine::Interpreter(&cpu), &profile, cfg)
            });
            let shards = events
                .iter()
                .filter(|e| matches!(e.event, CampaignEvent::ShardCompleted(_)))
                .count();
            let k = kill % (shards + 1);
            let journal = JournalSnapshot::from_events(cut_after_shards(&events, k))
                .expect("journal");
            let resumed = resume_campaign_from_journal(
                ferrum_faultsim::Engine::Interpreter(&cpu),
                &profile,
                cfg,
                &journal,
            )
            .expect("resumes");
            prop_assert_eq!(resumed, full);
        }
    }
}
