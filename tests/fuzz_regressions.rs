//! Pinned differential-fuzzer regressions.
//!
//! Every divergence the `ferrum-fuzz` harness has ever surfaced is
//! minimized to its seed and pinned here, so the exact program that
//! broke a layer once is re-checked on every tier-1 run — much
//! cheaper than re-fuzzing, and immune to generator drift hiding the
//! shape (the generator is seeded and deterministic by contract).

use ferrum_fuzz::{check_program, generate_module, run_fuzz, FuzzConfig};
use ferrum_mir::interp::Interp;

/// Regression: loop counters must live in slots ordinary statements
/// can never store through.  An early generator drew the induction
/// slot from the general pool, so a nested statement inside the body
/// could reset it every iteration — seed 65 spun until the step
/// limit.  The pinned seed must now terminate (and pass the whole
/// stack).
#[test]
fn seed_65_terminates_with_isolated_loop_counters() {
    let (m, _) = generate_module(65);
    ferrum_mir::verify::verify_module(&m).expect("verifies");
    Interp::new(&m).run().expect("seed 65 must terminate");
    let (_, _, divergences) = check_program(65, 10);
    assert!(divergences.is_empty(), "{divergences:#?}");
}

/// The head of the tier-1 fuzz window (seeds 42..92) stays clean.
/// `scripts/tier1.sh` sweeps 200 programs from the same base seed;
/// this is the fast in-process guard for `cargo test` alone.
#[test]
fn tier1_seed_window_head_is_clean() {
    let report = run_fuzz(
        &FuzzConfig {
            programs: 50,
            base_seed: 42,
            campaign_samples: 8,
        },
        |_, _| {},
    );
    assert_eq!(report.programs, 50);
    assert!(report.is_clean(), "{:#?}", report.divergences);
}

/// The structurally heaviest programs in the first 200 seeds — most
/// basic blocks in `main`, i.e. deepest loop/diamond nesting — get
/// the full oracle stack individually.  These are the shapes most
/// likely to shake out pass-pipeline CFG bugs, so they stay pinned
/// even if the uniform sweep above shrinks.
#[test]
fn heaviest_cfg_seeds_run_clean() {
    let mut shapes: Vec<(usize, u64)> = (42..242)
        .map(|seed| (generate_module(seed).1.blocks, seed))
        .collect();
    shapes.sort_unstable();
    shapes.reverse();
    for &(blocks, seed) in shapes.iter().take(3) {
        assert!(blocks > 8, "seed {seed}: generator lost CFG diversity");
        let (_, _, divergences) = check_program(seed, 10);
        assert!(divergences.is_empty(), "seed {seed}: {divergences:#?}");
    }
}
