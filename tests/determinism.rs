//! Reproducibility guarantees: every layer of the stack is
//! deterministic, so published numbers can be regenerated bit-for-bit.

use ferrum::{evaluate_workload, EvalConfig, Pipeline, Scale, Technique};
use ferrum_workloads::all_workloads;

#[test]
fn protection_output_is_bit_identical_across_runs() {
    let pipeline = Pipeline::new();
    for w in all_workloads().into_iter().take(3) {
        let module = w.build(Scale::Test);
        for t in Technique::PROTECTED {
            let a = pipeline.protect(&module, t).expect("protects");
            let b = pipeline.protect(&module, t).expect("protects");
            assert_eq!(a, b, "{}/{t}", w.name);
        }
    }
}

#[test]
fn workload_inputs_are_deterministic() {
    for w in all_workloads() {
        let a = w.build(Scale::Paper);
        let b = w.build(Scale::Paper);
        assert_eq!(a, b, "{}", w.name);
        assert_eq!(w.oracle(Scale::Paper), w.oracle(Scale::Paper), "{}", w.name);
    }
}

#[test]
fn full_evaluation_is_reproducible() {
    let pipeline = Pipeline::new();
    let w = ferrum_workloads::workload("lud").expect("exists");
    let cfg = EvalConfig {
        samples: 150,
        seed: 123,
        scale: Scale::Test,
        ..EvalConfig::default()
    };
    let a = evaluate_workload(&pipeline, &w, cfg).expect("evaluates");
    let b = evaluate_workload(&pipeline, &w, cfg).expect("evaluates");
    assert_eq!(a.raw_cycles, b.raw_cycles);
    assert_eq!(a.raw_sdc_prob, b.raw_sdc_prob);
    for (x, y) in a.techniques.iter().zip(&b.techniques) {
        assert_eq!(x.cycles, y.cycles);
        assert_eq!(x.sdc_prob, y.sdc_prob);
        assert_eq!(x.campaign, y.campaign);
    }
}

#[test]
fn simulation_state_is_isolated_between_runs() {
    // Repeated runs on one Cpu share nothing: a run that corrupts
    // globals must not leak into the next.
    let pipeline = Pipeline::new();
    let w = ferrum_workloads::workload("kmeans").expect("exists");
    let prog = pipeline
        .protect(&w.build(Scale::Test), Technique::None)
        .expect("compiles");
    let cpu = pipeline.load(&prog).expect("loads");
    let clean1 = cpu.run(None);
    // A fault that certainly perturbs memory-bound state.
    let profile = cpu.profile();
    for s in profile.sites.iter().step_by(7) {
        let _ = cpu.run(Some(ferrum_cpu::fault::FaultSpec::new(s.dyn_index, 1)));
    }
    let clean2 = cpu.run(None);
    assert_eq!(clean1, clean2, "faulted runs must not pollute later runs");
}
