//! Adversarial double-fault demonstration: duplication-based detection
//! is a *single-fault* design (paper §II-A).  A deliberately targeted
//! pair of faults — the same bit flipped in a value at its write-back
//! *and* in its duplicate at the duplicate's write-back — produces two
//! corrupted-but-equal copies that every checker happily accepts.
//!
//! Random double faults almost never align like this
//! (`repro_multibit` measures 100% coverage under random pairs); this
//! test constructs the alignment on purpose to document the boundary of
//! the guarantee.

use ferrum::{Pipeline, StopReason, Technique};
use ferrum_cpu::fault::FaultSpec;
use ferrum_mir::builder::FunctionBuilder;
use ferrum_mir::module::{Global, Module};
use ferrum_mir::types::Ty;

fn print_global_module() -> Module {
    let mut module = Module::new();
    let g = module.add_global(Global::new("val", vec![1000]));
    let mut b = FunctionBuilder::new("main", &[], None);
    let base = b.global(g);
    let v = b.load(Ty::I64, base);
    let one = b.iconst(Ty::I64, 1);
    let w = b.add(Ty::I64, v, one);
    b.print(w);
    b.ret(None);
    module.functions.push(b.finish());
    module
}

#[test]
fn aligned_double_fault_defeats_duplication() {
    let module = print_global_module();
    let pipeline = Pipeline::new();
    let prog = pipeline
        .protect(&module, Technique::Ferrum)
        .expect("protects");
    let cpu = pipeline.load(&prog).expect("loads");
    let profile = cpu.profile();
    let golden = &profile.result.output;

    // Scan adjacent (duplicate, original) site pairs: a protection-
    // provenance site immediately followed by a program site.  Flip the
    // same low bit in both destinations.
    let mut escaped = false;
    for w in profile.sites.windows(2) {
        let (a, b) = (w[0], w[1]);
        if !a.prov.is_protection() || b.prov.is_protection() {
            continue;
        }
        if b.dyn_index != a.dyn_index + 1 {
            continue;
        }
        for bit in [1u16, 3, 5] {
            let run = cpu.run_multi(&[
                FaultSpec::new(a.dyn_index, bit),
                FaultSpec::new(b.dyn_index, bit),
            ]);
            if run.stop == StopReason::MainReturned && &run.output != golden {
                escaped = true;
            }
        }
    }
    assert!(
        escaped,
        "a deliberately aligned duplicate/original fault pair should \
         silently corrupt the output — the documented single-fault limit"
    );
}

#[test]
fn each_half_of_the_adversarial_pair_alone_is_caught() {
    // Sanity check: the individual faults composing any escaping pair
    // are detected (or benign) on their own — only the *combination*
    // escapes.
    let module = print_global_module();
    let pipeline = Pipeline::new();
    let prog = pipeline
        .protect(&module, Technique::Ferrum)
        .expect("protects");
    let cpu = pipeline.load(&prog).expect("loads");
    let profile = cpu.profile();
    let golden = &profile.result.output;
    for site in &profile.sites {
        for bit in [1u16, 3, 5] {
            let run = cpu.run(Some(FaultSpec::new(site.dyn_index, bit)));
            let silent = run.stop == StopReason::MainReturned && &run.output != golden;
            assert!(
                !silent,
                "single fault must never be silent: {site:?} bit {bit}"
            );
        }
    }
}
