//! End-to-end differential tests: for every benchmark in the suite and
//! every technique, the compiled + protected program must print exactly
//! what the MIR interpreter and the native Rust oracle compute.

use ferrum::{Pipeline, StopReason, Technique};
use ferrum_mir::interp::Interp;
use ferrum_workloads::{all_workloads, Scale};

#[test]
fn oracle_interpreter_and_simulator_agree_on_every_workload() {
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        ferrum_mir::verify::verify_module(&module).unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
        let oracle = w.oracle(Scale::Test);
        let interp = Interp::new(&module)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(interp.output, oracle, "{}: interpreter vs oracle", w.name);

        let pipeline = Pipeline::new();
        let raw = pipeline
            .protect(&module, Technique::None)
            .expect("compiles");
        let run = pipeline.load(&raw).expect("loads").run(None);
        assert_eq!(run.stop, StopReason::MainReturned, "{}", w.name);
        assert_eq!(run.output, oracle, "{}: simulator vs oracle", w.name);
    }
}

#[test]
fn every_technique_is_transparent_on_every_workload() {
    let pipeline = Pipeline::new();
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let oracle = w.oracle(Scale::Test);
        for t in Technique::PROTECTED {
            let prog = pipeline
                .protect(&module, t)
                .unwrap_or_else(|e| panic!("{}/{t}: {e}", w.name));
            prog.validate()
                .unwrap_or_else(|e| panic!("{}/{t}: {e:?}", w.name));
            let run = pipeline.load(&prog).expect("loads").run(None);
            assert_eq!(run.stop, StopReason::MainReturned, "{}/{t}", w.name);
            assert_eq!(run.output, oracle, "{}/{t}: wrong output", w.name);
        }
    }
}

#[test]
fn protected_listings_round_trip_through_the_parser() {
    let pipeline = Pipeline::new();
    let w = ferrum_workloads::workload("needle").expect("exists");
    let module = w.build(Scale::Test);
    for t in [Technique::None, Technique::Ferrum, Technique::HybridAsmEddi] {
        let prog = pipeline.protect(&module, t).expect("protects");
        let text = ferrum_asm::printer::print_program(&prog);
        let back = ferrum_asm::parser::parse_program(&text).unwrap_or_else(|e| panic!("{t}: {e}"));
        assert_eq!(back, prog, "{t}: listing round trip");
    }
}

#[test]
fn protected_programs_grow_as_expected() {
    // FERRUM output (after peephole) must still be larger than raw, and
    // hybrid must be the largest static program.
    let pipeline = Pipeline::new();
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let raw = pipeline
            .protect(&module, Technique::None)
            .unwrap()
            .static_inst_count();
        let ir = pipeline
            .protect(&module, Technique::IrEddi)
            .unwrap()
            .static_inst_count();
        let hy = pipeline
            .protect(&module, Technique::HybridAsmEddi)
            .unwrap()
            .static_inst_count();
        let fe = pipeline
            .protect(&module, Technique::Ferrum)
            .unwrap()
            .static_inst_count();
        assert!(
            ir > raw && hy > raw && fe > raw,
            "{}: {raw} {ir} {hy} {fe}",
            w.name
        );
        assert!(hy > ir, "{}: hybrid should be the biggest program", w.name);
    }
}

#[test]
fn cross_layer_gap_exists_in_every_workload() {
    // Every compiled benchmark must contain backend glue instructions —
    // the fault surface IR-level EDDI cannot see (paper §IV-B1).
    let pipeline = Pipeline::new();
    for w in all_workloads() {
        let module = w.build(Scale::Test);
        let prog = pipeline.protect(&module, Technique::IrEddi).unwrap();
        let glue = prog
            .functions
            .iter()
            .flat_map(|f| f.insts())
            .filter(|ai| ai.prov.is_glue())
            .count();
        assert!(glue > 0, "{}: no glue instructions?", w.name);
        // And the protected program still contains unprotected injectable
        // glue sites.
        let glue_sites = prog
            .functions
            .iter()
            .flat_map(|f| f.insts())
            .filter(|ai| ai.prov.is_glue() && ai.inst.injectable_bits().is_some())
            .count();
        assert!(
            glue_sites > 0,
            "{}: IR-EDDI left no residual sites?",
            w.name
        );
    }
}
