//! Tracing is observational by contract: campaign results must be
//! byte-identical whether a recording sink, a no-op sink, or no sink at
//! all is installed — with or without the `trace` cargo feature.  Every
//! test that touches the process-wide sink holds [`SINK_LOCK`] so the
//! install/uninstall sequences cannot interleave.

use std::sync::{Arc, Mutex};

/// Serializes global-sink manipulation across tests in this binary.
static SINK_LOCK: Mutex<()> = Mutex::new(());

use ferrum::{CampaignConfig, Pipeline, SnapshotPolicy, Technique};
use ferrum_faultsim::campaign::{run_campaign, run_campaign_snapshot, CampaignResult};
use ferrum_trace::{NullSink, RingSink};
use ferrum_workloads::{workload, Scale};

#[test]
fn campaigns_are_identical_with_and_without_trace_sinks() {
    let _guard = SINK_LOCK.lock().expect("sink lock");
    let pipeline = Pipeline::new();
    let module = workload("bfs").expect("exists").build(Scale::Test);
    let prog = pipeline.protect(&module, Technique::Ferrum).expect("protects");
    let cpu = pipeline.load(&prog).expect("loads");
    let profile = cpu.profile();
    let cfg = CampaignConfig {
        samples: 200,
        seed: 31,
    };
    let run_both = || -> (CampaignResult, CampaignResult) {
        (
            run_campaign(&cpu, &profile, cfg),
            run_campaign_snapshot(&cpu, &profile, cfg, 4, SnapshotPolicy::default()),
        )
    };

    // Reference: no sink installed.
    assert!(!ferrum_trace::enabled());
    let (serial_ref, snap_ref) = run_both();
    assert_eq!(serial_ref, snap_ref);

    // Recording sink installed.
    let ring = Arc::new(RingSink::new(8192));
    ferrum_trace::install(ring.clone());
    let (serial_ring, snap_ring) = run_both();

    // No-op sink installed.
    ferrum_trace::install(Arc::new(NullSink));
    let (serial_null, snap_null) = run_both();
    ferrum_trace::uninstall();
    assert!(!ferrum_trace::enabled());

    for (label, got) in [
        ("serial+ring", &serial_ring),
        ("serial+null", &serial_null),
    ] {
        assert_eq!(got, &serial_ref, "{label}: outcomes diverged");
        assert_eq!(
            got.records, serial_ref.records,
            "{label}: record stream diverged"
        );
        assert_eq!(
            got.stats.latency, serial_ref.stats.latency,
            "{label}: latency distribution diverged"
        );
    }
    for (label, got) in [("snap+ring", &snap_ring), ("snap+null", &snap_null)] {
        assert_eq!(got, &snap_ref, "{label}: outcomes diverged");
        assert_eq!(
            got.stats.latency, snap_ref.stats.latency,
            "{label}: latency distribution diverged"
        );
    }

    // With the feature compiled in, the ring must actually have seen
    // the campaign probes; without it, installing was a no-op.
    if cfg!(feature = "trace") {
        assert!(ring.counter_total("campaign.injections") >= 400);
        assert!(ring.span_nanos("campaign.serial") > 0);
    } else {
        assert!(ring.events().is_empty());
    }
}

#[test]
fn differential_profiling_is_identical_with_and_without_trace_sinks() {
    let _guard = SINK_LOCK.lock().expect("sink lock");
    let pipeline = Pipeline::new();
    let module = workload("needle").expect("exists").build(Scale::Test);

    // Reference: no sink installed.
    assert!(!ferrum_trace::enabled());
    let bare = ferrum::diff_profile(&pipeline, &module, Technique::Ferrum).expect("profiles");
    assert!(bare.sites_reconcile());

    // Recording sink installed: result byte-identical, and with the
    // feature compiled in the profiler's span fired exactly once.
    let ring = Arc::new(RingSink::new(8192));
    ferrum_trace::install(ring.clone());
    let traced = ferrum::diff_profile(&pipeline, &module, Technique::Ferrum).expect("profiles");
    ferrum_trace::uninstall();

    assert_eq!(traced.sites, bare.sites, "per-site attribution diverged");
    assert_eq!(traced.baseline_pcs, bare.baseline_pcs, "baseline profile diverged");
    assert_eq!(traced.protected_pcs, bare.protected_pcs, "protected profile diverged");
    if cfg!(feature = "trace") {
        assert_eq!(ring.span_count("diff-profile"), 1);
        assert!(ring.span_nanos("diff-profile") > 0);
    } else {
        assert!(ring.events().is_empty());
    }
}
